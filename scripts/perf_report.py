"""A/B the fast search core against the reference oracle -> BENCH_search.json.

For every requested scenario this script launches
``benchmarks/bench_search_core.py`` twice -- once with
``REPRO_SEARCH_ENGINE=reference``, once with ``fast`` -- in fresh
interpreter processes (cold engine tables, no memo carry-over), takes the
best of ``--repeats`` runs per engine, and writes a machine-readable
report.  See ``docs/PERF.md`` for the report format and methodology.

Usage::

    PYTHONPATH=src python scripts/perf_report.py                  # full set
    PYTHONPATH=src python scripts/perf_report.py --quick          # CI smoke
    PYTHONPATH=src python scripts/perf_report.py \
        --scenarios fig1-sync --min-speedup 1.0                   # gate

``--min-speedup X`` turns the report into a regression gate: exit 1 if any
measured scenario's wall-clock speedup (reference / fast) falls below X.
The CI benchmark-smoke job runs the Fig. 1 search with ``--min-speedup
1.0`` -- the optimized engine must never be slower than the oracle it
replaces.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH = REPO_ROOT / "benchmarks" / "bench_search_core.py"

#: scenarios in the default (committed) report, cheapest first
DEFAULT_SCENARIOS = (
    "fig1-sync",
    "thm1-five",
    "fig1-copies",
    "fig1-b1",
    "fig1-delay",
    "gen2-delay",
    "battery-search",
)

QUICK_SCENARIOS = ("fig1-sync", "thm1-five")


def run_one(scenario: str, engine: str) -> dict[str, Any]:
    """One fresh-process measurement of ``scenario`` under ``engine``."""
    env = dict(os.environ)
    env["REPRO_SEARCH_ENGINE"] = engine
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(BENCH), "--scenario", scenario],
        env=env,
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{scenario}/{engine} failed (exit {proc.returncode}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def best_of(scenario: str, engine: str, repeats: int) -> dict[str, Any]:
    """Best (lowest wall time) of ``repeats`` fresh-process runs."""
    runs = [run_one(scenario, engine) for _ in range(repeats)]
    return min(runs, key=lambda r: r["wall_s"])


def bench_scenario(scenario: str, repeats: int) -> dict[str, Any]:
    ref = best_of(scenario, "reference", repeats)
    fast = best_of(scenario, "fast", repeats)
    entry: dict[str, Any] = {"reference": ref, "fast": fast}
    if fast["wall_s"] > 0:
        entry["speedup_wall"] = round(ref["wall_s"] / fast["wall_s"], 2)
    if fast["cpu_s"] > 0:
        entry["speedup_cpu"] = round(ref["cpu_s"] / fast["cpu_s"], 2)
    return entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenarios",
        default=None,
        help="comma-separated scenario names (default: the full committed set)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"only {', '.join(QUICK_SCENARIOS)} (the CI smoke set)",
    )
    parser.add_argument("--repeats", type=int, default=1, help="best-of-N per engine")
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_search.json"),
        help="report path (default: BENCH_search.json at the repo root)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit 1 if any scenario's wall speedup falls below this",
    )
    args = parser.parse_args(argv)

    if args.scenarios:
        names = [s.strip() for s in args.scenarios.split(",") if s.strip()]
    elif args.quick:
        names = list(QUICK_SCENARIOS)
    else:
        names = list(DEFAULT_SCENARIOS)

    report: dict[str, Any] = {
        "schema": "bench-search/v1",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "repeats": args.repeats,
        "scenarios": {},
    }
    failed_gate: list[str] = []
    for name in names:
        print(f"[bench] {name} ...", flush=True)
        entry = bench_scenario(name, args.repeats)
        report["scenarios"][name] = entry
        speedup = entry.get("speedup_wall")
        ref_w, fast_w = entry["reference"]["wall_s"], entry["fast"]["wall_s"]
        print(
            f"[bench] {name}: reference {ref_w:.3f}s  fast {fast_w:.3f}s  "
            f"speedup {speedup if speedup is not None else 'n/a'}x",
            flush=True,
        )
        if (
            args.min_speedup is not None
            and speedup is not None
            and speedup < args.min_speedup
        ):
            failed_gate.append(f"{name}: {speedup}x < {args.min_speedup}x")

    out = Path(args.output)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[bench] wrote {out}")
    if failed_gate:
        for line in failed_gate:
            print(f"[bench] SPEEDUP GATE FAILED -- {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
