"""N-engine A/B of the search core -> BENCH_search.json (bench-search/v2).

For every requested scenario this script launches
``benchmarks/bench_search_core.py`` once per engine under comparison
(``REPRO_SEARCH_ENGINE=reference|fast|vector|kernel``) in fresh
interpreter processes (cold engine tables, no memo carry-over; the
kernel backend's one-time JIT/C compile is warmed untimed), takes the best of
``--repeats`` runs per engine, cross-checks that every engine reports an
identical ``states`` count (the engines are pinned bit-identical; a
divergence here is a correctness bug, not a perf result), and writes a
machine-readable report.  See ``docs/PERF.md`` for the report format and
methodology.

Usage::

    PYTHONPATH=src python scripts/perf_report.py                  # full set
    PYTHONPATH=src python scripts/perf_report.py --quick          # CI smoke
    PYTHONPATH=src python scripts/perf_report.py \
        --scenarios fig1-sync --gate vector:fast:1.0              # gate

``--gate FASTER:BASELINE:MIN`` (repeatable) turns the report into a
regression gate: exit 1 if FASTER's CPU-time speedup over BASELINE falls
below MIN on any measured scenario.  CPU time is the gated metric because
the engines are single-process and CI wall clocks are shared-runner
noise.  ``--min-speedup X`` is the v1 spelling of a wall-clock
``fast:reference:X`` gate, kept for compatibility.  The CI
benchmark-smoke job gates ``fast:reference:1.0`` and ``vector:fast:1.0``
on the Fig. 1 search -- an optimized engine must never be slower than the
engine it supersedes -- and the optional-dependency kernel job gates
``kernel:vector:1.0`` the same way.

The kernel engine appears in the default engine list only when an
accelerated backend (numba or a C compiler) is available; the
interpreted fallback tier is a correctness floor, not a perf claim, and
benchmarking it would just report a known slowdown.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH = REPO_ROOT / "benchmarks" / "bench_search_core.py"

#: scenarios in the default (committed) report, cheapest first
DEFAULT_SCENARIOS = (
    "fig1-sync",
    "thm1-five",
    "fig1-copies",
    "fig1-b1",
    "fig1-delay",
    "gen2-delay",
    "battery-search",
)

QUICK_SCENARIOS = ("fig1-sync", "thm1-five")

#: engines in the default report, slowest first (speedups read downward)
DEFAULT_ENGINES = ("reference", "fast", "vector")


def default_engines() -> tuple[str, ...]:
    """The default comparison set, plus the kernel when it would be fast.

    Probing ``kernel_available`` imports from ``src`` -- fine here, the
    subprocess runs get their own fresh interpreters either way.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.analysis.kernelpath import kernel_available
    except Exception:
        return DEFAULT_ENGINES
    finally:
        sys.path.pop(0)
    return DEFAULT_ENGINES + ("kernel",) if kernel_available() else DEFAULT_ENGINES


def run_one(scenario: str, engine: str) -> dict[str, Any]:
    """One fresh-process measurement of ``scenario`` under ``engine``."""
    env = dict(os.environ)
    env["REPRO_SEARCH_ENGINE"] = engine
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(BENCH), "--scenario", scenario],
        env=env,
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{scenario}/{engine} failed (exit {proc.returncode}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def best_of(scenario: str, engine: str, repeats: int) -> dict[str, Any]:
    """Best (lowest CPU time) of ``repeats`` fresh-process runs."""
    runs = [run_one(scenario, engine) for _ in range(repeats)]
    return min(runs, key=lambda r: r["cpu_s"])


def bench_scenario(
    scenario: str, engines: list[str], repeats: int
) -> dict[str, Any]:
    """Measure every engine on one scenario; cross-check state counts.

    The entry maps each engine name to its best run plus a ``speedups``
    table with one ``"FASTER/BASELINE"`` key per ordered engine pair
    (list order), each holding wall and CPU ratios.
    """
    entry: dict[str, Any] = {
        eng: best_of(scenario, eng, repeats) for eng in engines
    }
    counts = {eng: entry[eng].get("states") for eng in engines}
    if len(set(counts.values())) > 1:
        raise RuntimeError(
            f"{scenario}: engines disagree on states explored -- {counts}; "
            "this is a search-correctness bug, refusing to write a report"
        )
    speedups: dict[str, dict[str, float]] = {}
    for i, base in enumerate(engines):
        for faster in engines[i + 1 :]:
            pair: dict[str, float] = {}
            if entry[faster]["wall_s"] > 0:
                pair["wall"] = round(
                    entry[base]["wall_s"] / entry[faster]["wall_s"], 2
                )
            if entry[faster]["cpu_s"] > 0:
                pair["cpu"] = round(
                    entry[base]["cpu_s"] / entry[faster]["cpu_s"], 2
                )
            speedups[f"{faster}/{base}"] = pair
    entry["speedups"] = speedups
    return entry


def parse_gate(text: str) -> tuple[str, str, float]:
    """``FASTER:BASELINE:MIN`` -> validated triple."""
    parts = text.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"--gate wants FASTER:BASELINE:MIN, got {text!r}"
        )
    try:
        floor = float(parts[2])
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"--gate minimum must be a number, got {parts[2]!r}"
        ) from exc
    return parts[0], parts[1], floor


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenarios",
        default=None,
        help="comma-separated scenario names (default: the full committed set)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"only {', '.join(QUICK_SCENARIOS)} (the CI smoke set)",
    )
    parser.add_argument(
        "--engines",
        default=None,
        help="comma-separated engines to compare, slowest first (default: "
        f"{','.join(DEFAULT_ENGINES)}, plus kernel when an accelerated "
        "backend is available)",
    )
    parser.add_argument("--repeats", type=int, default=1, help="best-of-N per engine")
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_search.json"),
        help="report path (default: BENCH_search.json at the repo root)",
    )
    parser.add_argument(
        "--gate", action="append", type=parse_gate, default=[],
        metavar="FASTER:BASELINE:MIN",
        help="exit 1 if FASTER's CPU speedup over BASELINE falls below MIN "
        "on any scenario (repeatable)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="v1 compatibility: a wall-clock fast:reference gate",
    )
    args = parser.parse_args(argv)

    if args.scenarios:
        names = [s.strip() for s in args.scenarios.split(",") if s.strip()]
    elif args.quick:
        names = list(QUICK_SCENARIOS)
    else:
        names = list(DEFAULT_SCENARIOS)
    if args.engines:
        engines = [e.strip() for e in args.engines.split(",") if e.strip()]
    else:
        engines = list(default_engines())

    report: dict[str, Any] = {
        "schema": "bench-search/v2",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "repeats": args.repeats,
        "engines": engines,
        "scenarios": {},
    }
    failed_gate: list[str] = []
    for name in names:
        print(f"[bench] {name} ...", flush=True)
        entry = bench_scenario(name, engines, args.repeats)
        report["scenarios"][name] = entry
        times = "  ".join(f"{e} {entry[e]['cpu_s']:.3f}s" for e in engines)
        ratios = "  ".join(
            f"{k} {v.get('cpu', 'n/a')}x" for k, v in entry["speedups"].items()
        )
        print(f"[bench] {name}: {times}", flush=True)
        print(f"[bench] {name}: {ratios}", flush=True)
        for faster, base, floor in args.gate:
            pair = entry["speedups"].get(f"{faster}/{base}")
            got = None if pair is None else pair.get("cpu")
            if got is None:
                failed_gate.append(
                    f"{name}: no {faster}/{base} measurement for the gate"
                )
            elif got < floor:
                failed_gate.append(f"{name}: {faster}/{base} {got}x < {floor}x")
        if args.min_speedup is not None:
            pair = entry["speedups"].get("fast/reference", {})
            wall = pair.get("wall")
            if wall is not None and wall < args.min_speedup:
                failed_gate.append(
                    f"{name}: fast/reference {wall}x < {args.min_speedup}x (wall)"
                )

    out = Path(args.output)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[bench] wrote {out}")
    if failed_gate:
        for line in failed_gate:
            print(f"[bench] SPEEDUP GATE FAILED -- {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
