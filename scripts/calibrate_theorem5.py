"""Build a labeled dataset of three-shared-message configurations.

Ground truth per configuration comes from the full-adversary search
protocol (:func:`repro.analysis.classify.classify_configuration`).  Output:
JSON lines of ``{"d": [...], "h": [...], "unreachable": bool}`` used to
calibrate the reconstructed Theorem 5 conditions 6-8 (see
``repro/core/conditions.py``) and to choose the Figure 3 panel parameters.
"""

from __future__ import annotations

import json
import random
import sys
import time

from repro.analysis.classify import classify_configuration
from repro.core.specs import CycleMessageSpec, build_shared_cycle


def label(ds, hs):
    specs = [
        CycleMessageSpec(approach_len=d, hold_len=h, label=f"S{i}")
        for i, (d, h) in enumerate(zip(ds, hs))
    ]
    c = build_shared_cycle(specs, name="cal")
    reachable, _ = classify_configuration(
        c.checker_messages(), budget=0, copy_depth=1, max_states=20_000_000
    )
    return not reachable


def main(out_path: str, samples: int, seed: int) -> None:
    rng = random.Random(seed)
    seen = set()
    rows = []
    t0 = time.time()
    while len(rows) < samples:
        ds = tuple(rng.sample(range(1, 6), 3))
        hs = tuple(rng.randint(1, 6) for _ in range(3))
        if (ds, hs) in seen:
            continue
        seen.add((ds, hs))
        unreachable = label(ds, hs)
        rows.append({"d": list(ds), "h": list(hs), "unreachable": unreachable})
        if len(rows) % 20 == 0:
            print(f"{len(rows)}/{samples}  ({time.time()-t0:.0f}s)", flush=True)
    with open(out_path, "w") as f:
        for r in rows:
            f.write(json.dumps(r) + "\n")
    n_unreach = sum(r["unreachable"] for r in rows)
    print(f"done: {len(rows)} configs, {n_unreach} unreachable")


if __name__ == "__main__":
    out = sys.argv[1] if len(sys.argv) > 1 else "/tmp/thm5_dataset.jsonl"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 250
    main(out, n, seed=42)
