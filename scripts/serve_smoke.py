"""End-to-end smoke test for ``repro serve``: boot, query, cache, stream.

Boots a real server in a background thread (OS-assigned port, sqlite
cold tier in a temp dir), then exercises the public surface the way a
fleet would:

1.  cold ``/v1/search`` (must execute live and match the CLI's
    ``search --json`` bytes exactly),
2.  identical repeat query (must be answered from cache, fast),
3.  ``/v1/lint`` and a small ``/v1/campaign`` batch,
4.  ``/v1/events`` subscription -- every streamed event must validate
    against the telemetry schema,
5.  ``/v1/status`` -- the hit rate must be nonzero by now,
6.  ``GET /metrics`` under the load above -- the exposition text must
    pass the strict format checker and the request-latency histogram's
    cumulative buckets must account for every request served.

Exit 0 only if every check passes.  CI runs this as the serve-smoke job;
locally::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import check_exposition, validate_event  # noqa: E402
from repro.obs.prom import parse_samples  # noqa: E402
from repro.serve import ReproServer, ServeClient, ServeConfig  # noqa: E402

CHECKS: list[tuple[str, bool, str]] = []


def check(name: str, ok: bool, detail: str = "") -> None:
    CHECKS.append((name, ok, detail))
    mark = "ok  " if ok else "FAIL"
    print(f"[{mark}] {name}" + (f" -- {detail}" if detail else ""))


def cli_search_json() -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "search", "fig1", "--json"],
        capture_output=True,
        text=True,
        check=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    return proc.stdout


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="serve-smoke-")
    server = ReproServer(
        ServeConfig(
            port=0,
            cache_backend=f"sqlite:{Path(tmp) / 'smoke.db'}",
            window=0.01,
        )
    )
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    if not server.wait_ready(20):
        print("FAIL: server did not come up", file=sys.stderr)
        return 1
    print(f"server up at {server.url}")
    client = ServeClient(server.url, timeout=300)

    try:
        # 1. cold search is live and byte-identical to the CLI
        cold = client.search("fig1").raise_for_status()
        check("cold search executes live", cold.source == "live", cold.source)
        check(
            "cold search matches `search fig1 --json` bytes",
            cold.body.decode("utf-8") == cli_search_json(),
        )
        check(
            "verdict is the paper's Fig. 1 result (cycle, no deadlock)",
            cold.payload["verdict"] == "unreachable",
        )

        # 2. the repeat query is a cache hit
        t0 = time.perf_counter()
        warm = client.search("fig1").raise_for_status()
        warm_ms = (time.perf_counter() - t0) * 1000
        check(
            "repeat query served from cache",
            warm.source == "cache",
            f"{warm_ms:.1f} ms",
        )
        check("cached bytes identical", warm.body == cold.body)

        # 3. the other endpoints answer
        lint = client.lint("fig1").raise_for_status()
        check("lint endpoint", "verdict" in lint.payload)
        camp = client.campaign("quick", limit=3).raise_for_status()
        check(
            "campaign endpoint runs the quick spec",
            camp.payload["total"] == 3 and camp.payload["failed"] == 0,
            f"total={camp.payload['total']} failed={camp.payload['failed']}",
        )

        # 4. streamed telemetry events validate against the schema
        events: list[dict] = []
        sub = threading.Thread(
            target=lambda: events.extend(client.events(max_events=8, timeout=6.0)),
            daemon=True,
        )
        sub.start()
        time.sleep(0.3)
        client.search("fig2-pair", {"d1": 2, "d2": 1, "hold": 2})
        sub.join(timeout=20)
        bad = [e for e in events if validate_event(e)]
        check(
            "event stream delivers schema-valid telemetry",
            bool(events) and not bad,
            f"{len(events)} events, {len(bad)} invalid",
        )

        # 5. status shows the cache doing its job
        status = client.status().raise_for_status().payload
        check(
            "status reports a nonzero hit rate",
            status["cache"]["hit_rate"] > 0,
            json.dumps(status["cache"]["hit_rate"]),
        )
        check(
            "status counts every request",
            status["server"]["requests"] >= 6,
            str(status["server"]["requests"]),
        )

        # 6. metrics scrape: strict exposition format + histogram math
        text = client.metrics()
        problems = check_exposition(text)
        check(
            "metrics exposition passes the strict checker",
            not problems,
            "; ".join(problems[:3]),
        )
        samples = parse_samples(text)
        latency = samples.get("repro_serve_request_latency_s_bucket", {})
        inf_count = sum(
            v for labels, v in latency.items() if 'le="+Inf"' in labels
        )
        total = sum(
            samples.get("repro_serve_request_latency_s_count", {}).values()
        )
        check(
            "latency histogram buckets are cumulative to +Inf == _count",
            latency and inf_count == total,
            f"+Inf={inf_count} count={total}",
        )
        # 5 task requests so far: search x3 (cold/warm/fig2-pair),
        # lint, campaign (status/events/metrics are not batched work)
        check(
            "latency histogram saw every task request",
            total >= 5,
            f"observed={total}",
        )
        check(
            "request counter exported",
            samples.get("repro_serve_requests_total", {}).get("", 0) >= 6,
        )
    finally:
        server.shutdown()
        thread.join(10)

    failed = [name for name, ok, _ in CHECKS if not ok]
    print(f"\n{len(CHECKS) - len(failed)}/{len(CHECKS)} checks passed")
    if failed:
        print("failed: " + ", ".join(failed), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
