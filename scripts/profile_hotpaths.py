"""Profile the two hot paths (HPC-guide workflow: measure before tuning).

Usage::

    python scripts/profile_hotpaths.py sim      # flit-level engine
    python scripts/profile_hotpaths.py search   # exhaustive checker

Prints cProfile's top cumulative entries.  Findings that shaped the code
(recorded here so the next person doesn't re-derive them):

* engine: dominated by `_grant_round` dict lookups and `_cascade`; channel
  state lives in dicts keyed by int cid (O(1)); avoided per-flit objects
  (flits are ints).
* checker: dominated by `occupied_channels` tuple scans; states are plain
  tuples so hashing/dedup is cheap; successor generation allocates the
  option lists lazily per round.
"""

from __future__ import annotations

import cProfile
import pstats
import sys


def profile_sim() -> None:
    from repro.routing import dimension_order_mesh
    from repro.sim import SimConfig, Simulator
    from repro.sim.traffic import uniform_random_traffic
    from repro.topology import mesh

    net = mesh((8, 8))
    fn = dimension_order_mesh(net, 2)
    specs = uniform_random_traffic(net, rate=0.08, cycles=300, length=4, seed=3)

    def run() -> None:
        res = Simulator(net, fn, specs, config=SimConfig(max_cycles=50_000)).run()
        assert res.completed

    cProfile.runctx("run()", globals(), locals(), "/tmp/sim.prof")
    pstats.Stats("/tmp/sim.prof").sort_stats("cumulative").print_stats(18)


def profile_search() -> None:
    from repro.analysis import SystemSpec, search_deadlock
    from repro.core.cyclic_dependency import build_cyclic_dependency_network

    cdn = build_cyclic_dependency_network()
    msgs = cdn.checker_messages()

    def run() -> None:
        res = search_deadlock(SystemSpec.uniform(msgs, budget=2), find_witness=False)
        assert res.deadlock_reachable

    cProfile.runctx("run()", globals(), locals(), "/tmp/search.prof")
    pstats.Stats("/tmp/search.prof").sort_stats("cumulative").print_stats(18)


if __name__ == "__main__":
    what = sys.argv[1] if len(sys.argv) > 1 else "sim"
    {"sim": profile_sim, "search": profile_search}[what]()
