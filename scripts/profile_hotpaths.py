"""Profile the hot paths (HPC-guide workflow: measure before tuning).

Usage::

    python scripts/profile_hotpaths.py sim      # flit-level engine
    python scripts/profile_hotpaths.py search   # exhaustive checker
    python scripts/profile_hotpaths.py vector   # whole-frontier numpy engine
    python scripts/profile_hotpaths.py kernel   # fused compiled-loop engine

Prints cProfile's top cumulative entries (``sim``/``search``), the
vector engine's per-phase wall-time breakdown (``vector``), or the
kernel engine's backend tier + throughput against the vector engine on
the same search (``kernel``).  Findings that
shaped the code (recorded here so the next person doesn't re-derive them):

* engine: dominated by `_grant_round` dict lookups and `_cascade`; channel
  state lives in dicts keyed by int cid (O(1)); avoided per-flit objects
  (flits are ints).
* checker: dominated by `occupied_channels` tuple scans; states are plain
  tuples so hashing/dedup is cheap; successor generation allocates the
  option lists lazily per round.
* vector: dominated by the expand phase (wave-machine successor
  generation, in particular `_branch_children` child materialization and
  the clash/arbitration reduces); dedup and the sorted visited-store probe
  are an order of magnitude cheaper.  np.where is slower than arithmetic
  masking (`x * m`, xor-select) on every hot select, and late drain chains
  are cheaper run serially (``MAX_DRAIN_ROWS``) than as one-row waves.
"""

from __future__ import annotations

import cProfile
import pstats
import sys


def profile_sim() -> None:
    from repro.routing import dimension_order_mesh
    from repro.sim import SimConfig, Simulator
    from repro.sim.traffic import uniform_random_traffic
    from repro.topology import mesh

    net = mesh((8, 8))
    fn = dimension_order_mesh(net, 2)
    specs = uniform_random_traffic(net, rate=0.08, cycles=300, length=4, seed=3)

    def run() -> None:
        res = Simulator(net, fn, specs, config=SimConfig(max_cycles=50_000)).run()
        assert res.completed

    cProfile.runctx("run()", globals(), locals(), "/tmp/sim.prof")
    pstats.Stats("/tmp/sim.prof").sort_stats("cumulative").print_stats(18)


def profile_search() -> None:
    from repro.analysis import SystemSpec, search_deadlock
    from repro.core.cyclic_dependency import build_cyclic_dependency_network

    cdn = build_cyclic_dependency_network()
    msgs = cdn.checker_messages()

    def run() -> None:
        res = search_deadlock(SystemSpec.uniform(msgs, budget=2), find_witness=False)
        assert res.deadlock_reachable

    cProfile.runctx("run()", globals(), locals(), "/tmp/search.prof")
    pstats.Stats("/tmp/search.prof").sort_stats("cumulative").print_stats(18)


def profile_vector() -> None:
    """Per-phase wall-time baseline for future vector-kernel work."""
    import time

    from repro.analysis.fastpath import engine_for
    from repro.analysis.state import CheckerMessage, SystemSpec
    from repro.analysis.vectorpath import VectorEngine
    from repro.core.cyclic_dependency import build_cyclic_dependency_network

    msgs = list(build_cyclic_dependency_network().checker_messages())
    donors = [msgs[1], msgs[3]]  # M2/M4, the copies Theorem 1 interposes
    for k in range(2):
        d = donors[k % 2]
        msgs.append(CheckerMessage(d.path, d.length, f"copy{k}"))
    spec = SystemSpec.uniform(msgs, budget=1)
    eng = VectorEngine(spec, fast=engine_for(spec))
    if not eng.vectorizable:
        raise SystemExit("profile spec unexpectedly not vectorizable")
    eng.search(max_states=40_000_000)  # warm tables + allocator
    eng.reset_profile()
    t0 = time.perf_counter()
    deadlock, states = eng.search(max_states=40_000_000)
    total = time.perf_counter() - t0
    phases = dict(eng.phase_seconds)
    labels = {
        "narrow": "narrow prologue (fused per-state expansion)",
        "expand": "expand (wave-machine successor generation)",
        "dedup": "dedup (level pack + first-occurrence)",
        "visited": "visited (sorted-store probe + merge)",
        "deadlock": "deadlock (vectorized mask test)",
    }
    print(
        f"vector search: states={states} deadlock={deadlock} "
        f"wall={total:.3f}s peak_frontier={eng.last_peak_frontier}"
    )
    for key, label in labels.items():
        sec = phases.pop(key, 0.0)
        print(f"  {sec:7.3f}s  {sec / total * 100:5.1f}%  {label}")
    for key, sec in sorted(phases.items()):  # future phases, if any
        print(f"  {sec:7.3f}s  {sec / total * 100:5.1f}%  {key}")
    other = total - sum(eng.phase_seconds.values())
    print(f"  {other:7.3f}s  {other / total * 100:5.1f}%  (outside phases)")


def profile_kernel() -> None:
    """Kernel-vs-vector wall time on the fig1-copies search.

    The kernel core is one fused loop, so there is no per-phase split to
    report; the actionable numbers are the resolved backend tier, the
    states/sec, and the ratio over the vector engine on the same spec.
    """
    import time

    from repro.analysis.fastpath import engine_for
    from repro.analysis.kernelpath import kernel_engine_for, resolve_backend
    from repro.analysis.state import CheckerMessage, SystemSpec
    from repro.analysis.vectorpath import VectorEngine
    from repro.core.cyclic_dependency import build_cyclic_dependency_network

    msgs = list(build_cyclic_dependency_network().checker_messages())
    donors = [msgs[1], msgs[3]]
    for k in range(2):
        d = donors[k % 2]
        msgs.append(CheckerMessage(d.path, d.length, f"copy{k}"))
    spec = SystemSpec.uniform(msgs, budget=1)
    keng = kernel_engine_for(spec)
    keng.search(max_states=40_000_000)  # warm: backend JIT/compile + tables
    t0 = time.perf_counter()
    deadlock, states = keng.search(max_states=40_000_000)
    kwall = time.perf_counter() - t0
    veng = VectorEngine(spec, fast=engine_for(spec))
    veng.search(max_states=40_000_000)
    t0 = time.perf_counter()
    veng.search(max_states=40_000_000)
    vwall = time.perf_counter() - t0
    print(
        f"kernel search [{resolve_backend()}]: states={states} "
        f"deadlock={deadlock} wall={kwall:.3f}s "
        f"({states / kwall:,.0f} states/s)"
    )
    print(f"vector search: wall={vwall:.3f}s ({states / vwall:,.0f} states/s)")
    print(f"kernel/vector speedup: {vwall / kwall:.2f}x")


if __name__ == "__main__":
    what = sys.argv[1] if len(sys.argv) > 1 else "sim"
    {
        "sim": profile_sim,
        "search": profile_search,
        "vector": profile_vector,
        "kernel": profile_kernel,
    }[what]()
