"""Differential pin: the vector search core is bit-identical to its peers.

The whole-frontier :class:`~repro.analysis.vectorpath.VectorEngine`
replaces the per-state fast engine on large searches, but both the fast
engine and the reference implementation stay in the tree as cross-checking
oracles (``engine=...`` / ``REPRO_SEARCH_ENGINE``).  These tests assert
three-way equivalence on paper-battery scenarios and on randomly generated
small specs: identical ``deadlock_reachable`` verdicts, identical
``states_explored`` counts (symmetry reduction on and off), identical
:class:`SearchLimitExceeded` behaviour, and witnesses that are equal
step-for-step across all three engines and replay to a genuine deadlock
under the *reference* dynamics.

The vector engine only widens once a BFS level reaches
``MIN_VECTOR_FRONTIER`` states, so several tests monkeypatch the threshold
to 1 (and shrink ``MAX_DRAIN_ROWS``) to force the wave machine onto the
small specs this suite can afford to search exhaustively.
"""

from __future__ import annotations

from contextlib import contextmanager

import pytest
from hypothesis import given, settings, strategies as st

import numpy as np

import repro.analysis.vectorpath as vectorpath_mod
from repro.analysis.fastpath import engine_for
from repro.analysis.frontier import frontier_search
from repro.analysis.reachability import (
    SearchLimitExceeded,
    Witness,
    search_deadlock,
)
from repro.analysis.state import CheckerMessage, SystemSpec
from repro.analysis.vectorpath import (
    COUNTERS,
    VectorEngine,
    WideSpecFallbackWarning,
    _merge_sorted,
    _SortedRuns,
)
from repro.campaign.scenarios import build_scenario

ENGINES = ("reference", "fast", "vector")


@pytest.fixture(autouse=True)
def _certificates_off(monkeypatch):
    """These tests pin BFS-engine equivalence; the static-certificate
    pre-pass would decide several battery specs with zero search states and
    mask the comparison."""
    monkeypatch.setenv("REPRO_STATIC_CERTIFICATES", "off")


@pytest.fixture()
def force_wide(monkeypatch):
    """Drive every level through the wave machine, tail drain included."""
    monkeypatch.setattr(vectorpath_mod, "MIN_VECTOR_FRONTIER", 1)
    monkeypatch.setattr(vectorpath_mod, "MAX_DRAIN_ROWS", 2)


def _battery_specs() -> list[tuple[str, SystemSpec]]:
    """Small paper-battery scenarios spanning both verdicts."""
    fig1 = build_scenario("fig1", {}).messages
    gen1 = build_scenario("gen", {"m": 1}).messages
    overlap = build_scenario(
        "theorem2-overlap", {"ring_n": 6, "entries": (0, 3), "run_lens": (4, 4)}
    ).messages
    return [
        ("fig1-b0", SystemSpec.uniform(fig1, budget=0)),  # unreachable
        ("fig1-b1", SystemSpec.uniform(fig1, budget=1)),  # deadlock
        ("gen1-b0", SystemSpec.uniform(gen1, budget=0)),
        ("gen1-b1", SystemSpec.uniform(gen1, budget=1)),
        ("thm2-overlap-b0", SystemSpec.uniform(overlap, budget=0)),
    ]


BATTERY = _battery_specs()


def _assert_valid_witness(spec: SystemSpec, wit: Witness) -> None:
    """Replay the witness through the *reference* successor relation."""
    cur = spec.initial_state()
    for actions, nxt in zip(wit.steps, wit.states):
        assert (nxt, actions) in spec.successors(cur), (cur, actions)
        cur = nxt
    dead = spec.deadlocked_set(cur)
    assert dead, "witness does not end in a deadlock"
    assert dead == wit.deadlocked


def _three_way(spec: SystemSpec, **kw):
    return {
        eng: search_deadlock(spec, engine=eng, **kw) for eng in ENGINES
    }


@pytest.mark.parametrize("label,spec", BATTERY, ids=[b[0] for b in BATTERY])
@pytest.mark.parametrize("symmetry", [False, True], ids=["nosym", "sym"])
def test_battery_verdicts_and_counts(label, spec, symmetry, force_wide):
    res = _three_way(
        spec, find_witness=False, symmetry_reduction=symmetry
    )
    ref = res["reference"]
    for eng in ("fast", "vector"):
        assert res[eng].deadlock_reachable == ref.deadlock_reachable, eng
        assert res[eng].states_explored == ref.states_explored, eng


@pytest.mark.parametrize("label,spec", BATTERY, ids=[b[0] for b in BATTERY])
def test_battery_witness_equality_and_replay(label, spec, force_wide):
    res = _three_way(spec)
    ref = res["reference"]
    for eng in ("fast", "vector"):
        got = res[eng]
        assert got.deadlock_reachable == ref.deadlock_reachable, eng
        assert got.states_explored == ref.states_explored, eng
        if not ref.deadlock_reachable:
            assert got.witness is None and ref.witness is None
            continue
        assert got.witness is not None and ref.witness is not None
        assert got.witness.steps == ref.witness.steps, eng
        assert got.witness.states == ref.witness.states, eng
        assert got.witness.deadlocked == ref.witness.deadlocked, eng
        _assert_valid_witness(spec, got.witness)


@pytest.mark.parametrize("label,spec", BATTERY[:2], ids=["fig1-b0", "fig1-b1"])
def test_battery_default_thresholds_match(label, spec):
    """Same pin without forcing: narrow prologue + real threshold values."""
    res = _three_way(spec, find_witness=False)
    ref = res["reference"]
    for eng in ("fast", "vector"):
        assert res[eng].deadlock_reachable == ref.deadlock_reachable, eng
        assert res[eng].states_explored == ref.states_explored, eng


@pytest.mark.parametrize("cap", [2, 10, 50])
def test_state_cap_is_engine_independent(cap, force_wide):
    """SearchLimitExceeded parity: all engines raise at the same count."""
    spec = BATTERY[0][1]
    outcomes = {}
    for eng in ENGINES:
        try:
            res = search_deadlock(
                spec, engine=eng, find_witness=False, max_states=cap
            )
            outcomes[eng] = res.states_explored
        except SearchLimitExceeded:
            outcomes[eng] = "raised"
    assert outcomes["vector"] == outcomes["reference"]
    assert outcomes["fast"] == outcomes["reference"]


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown search engine"):
        search_deadlock(BATTERY[0][1], engine="warp", find_witness=False)


def test_env_var_selects_vector(monkeypatch):
    """REPRO_SEARCH_ENGINE=vector is the same switch as engine="vector"."""
    spec = BATTERY[1][1]
    explicit = search_deadlock(spec, engine="vector", find_witness=False)
    monkeypatch.setenv("REPRO_SEARCH_ENGINE", "vector")
    via_env = search_deadlock(spec, find_witness=False)
    assert via_env.deadlock_reachable == explicit.deadlock_reachable
    assert via_env.states_explored == explicit.states_explored


def test_search_jobs_refuses_vector_engine(force_wide):
    """jobs>1 + vector: loud refusal (warning + counter), serial result."""
    spec = BATTERY[0][1]
    serial = engine_for(spec).search()
    before = COUNTERS["vectorpath.fallback.jobs"]
    with pytest.warns(RuntimeWarning, match="does not compose"):
        par = frontier_search(spec, jobs=2, engine="vector")
    assert par == serial
    assert COUNTERS["vectorpath.fallback.jobs"] == before + 1
    # jobs<=1 is not a refusal: no warning, same result
    assert frontier_search(spec, jobs=1, engine="vector") == serial


def test_search_deadlock_jobs_with_vector_warns(force_wide):
    spec = BATTERY[0][1]
    serial = search_deadlock(spec, engine="fast", find_witness=False)
    with pytest.warns(RuntimeWarning, match="does not compose"):
        res = search_deadlock(
            spec, engine="vector", find_witness=False, jobs=2
        )
    assert res.states_explored == serial.states_explored


def test_classify_and_delay_thread_vector_engine(force_wide):
    """The engine knob changes execution only: classify/delay results are
    identical under the vector engine."""
    from repro.analysis.classify import classify_configuration
    from repro.analysis.delay import min_delay_to_deadlock

    msgs = build_scenario("fig1", {}).messages
    by_engine = {}
    for eng in ("fast", "vector"):
        reachable, cls_res = classify_configuration(msgs, engine=eng)
        dly = min_delay_to_deadlock(msgs, max_delay=2, engine=eng)
        by_engine[eng] = (
            reachable,
            cls_res.states_explored,
            dly.min_delay,
            {k: r.states_explored for k, r in dly.results.items()},
        )
    assert by_engine["vector"] == by_engine["fast"]


def test_execute_task_engine_knob_not_in_hash(force_wide):
    """engine is an execution knob: task identity (and thus the cache key)
    must not depend on it, while results must not differ either."""
    from repro.campaign.specs import build_spec
    from repro.campaign.tasks import execute_task

    task = next(t for t in build_spec("paper-battery") if t.kind == "reachability")
    fast = execute_task(task, engine="fast")
    vec = execute_task(task, engine="vector")
    assert vec.task_hash == fast.task_hash
    assert vec.detail.get("states_explored") == fast.detail.get(
        "states_explored"
    )


def test_telemetry_counters_move(force_wide):
    """A forced-wide search must exercise the wave machine and record
    emitted/unique dedup volume."""
    spec = BATTERY[0][1]
    before = dict(COUNTERS)
    VectorEngine(spec, fast=engine_for(spec)).search()
    assert COUNTERS["vectorpath.levels.wide"] > before["vectorpath.levels.wide"]
    assert COUNTERS["vectorpath.emitted"] > before["vectorpath.emitted"]
    assert COUNTERS["vectorpath.unique"] > before["vectorpath.unique"]
    assert COUNTERS["vectorpath.emitted"] >= COUNTERS["vectorpath.unique"]


# ----------------------------------------------------------------------
# randomly generated small specs
# ----------------------------------------------------------------------
@st.composite
def small_specs(draw) -> SystemSpec:
    num_channels = draw(st.integers(min_value=2, max_value=5))
    n_msgs = draw(st.integers(min_value=1, max_value=3))
    messages = []
    budgets = []
    for mi in range(n_msgs):
        plen = draw(st.integers(min_value=1, max_value=min(3, num_channels)))
        path = tuple(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=num_channels - 1),
                    min_size=plen,
                    max_size=plen,
                    unique=True,
                )
            )
        )
        length = draw(st.integers(min_value=1, max_value=3))
        messages.append(CheckerMessage(path=path, length=length, tag=f"M{mi}"))
        budgets.append(draw(st.integers(min_value=0, max_value=2)))
    return SystemSpec(messages=tuple(messages), budgets=tuple(budgets))


@contextmanager
def _forced_wide():
    """Hypothesis-safe forced-wide switch (no function-scoped fixtures)."""
    old = (vectorpath_mod.MIN_VECTOR_FRONTIER, vectorpath_mod.MAX_DRAIN_ROWS)
    vectorpath_mod.MIN_VECTOR_FRONTIER = 1
    vectorpath_mod.MAX_DRAIN_ROWS = 2
    try:
        yield
    finally:
        vectorpath_mod.MIN_VECTOR_FRONTIER, vectorpath_mod.MAX_DRAIN_ROWS = old


@settings(max_examples=30, deadline=None)
@given(spec=small_specs(), symmetry=st.booleans())
def test_random_specs_three_way_counts(spec, symmetry):
    res = {}
    with _forced_wide():
        for eng in ENGINES:
            try:
                got = search_deadlock(
                    spec,
                    engine=eng,
                    find_witness=False,
                    symmetry_reduction=symmetry,
                    max_states=60_000,
                )
                res[eng] = (got.deadlock_reachable, got.states_explored)
            except SearchLimitExceeded:
                res[eng] = "raised"
    assert res["vector"] == res["reference"]
    assert res["fast"] == res["reference"]


@settings(max_examples=20, deadline=None)
@given(spec=small_specs())
def test_random_specs_three_way_witnesses(spec):
    with _forced_wide():
        ref = search_deadlock(spec, engine="reference", max_states=60_000)
        for eng in ("fast", "vector"):
            got = search_deadlock(spec, engine=eng, max_states=60_000)
            assert got.deadlock_reachable == ref.deadlock_reachable, eng
            assert got.states_explored == ref.states_explored, eng
            if ref.deadlock_reachable:
                assert got.witness is not None and ref.witness is not None
                assert got.witness.steps == ref.witness.steps, eng
                assert got.witness.states == ref.witness.states, eng
                _assert_valid_witness(spec, got.witness)


# ----------------------------------------------------------------------
# sorted-runs visited store (the np.insert replacement)
# ----------------------------------------------------------------------
def test_merge_sorted_is_exact_union():
    rng = np.random.default_rng(7)
    pool = rng.choice(10_000, size=600, replace=False)
    a = np.sort(pool[:400]).astype(np.int64)
    b = np.sort(pool[400:]).astype(np.int64)
    out = _merge_sorted(a, b)
    assert out.dtype == a.dtype
    np.testing.assert_array_equal(out, np.sort(pool).astype(np.int64))
    # byte-string keys (wide mode) merge the same way
    sa = a.astype(">i4").view("S4").ravel()
    sb = b.astype(">i4").view("S4").ravel()
    np.testing.assert_array_equal(
        _merge_sorted(sa, sb), np.sort(np.concatenate([sa, sb]))
    )


def test_sorted_runs_matches_set_semantics():
    """Member/insert over many disjoint blocks == a python set, with the
    run count staying logarithmic in the total key volume."""
    rng = np.random.default_rng(11)
    keys = rng.permutation(20_000)[:4096].astype(np.int64)
    store = _SortedRuns(np.sort(keys[:512]).copy())
    seen = set(keys[:512].tolist())
    off = 512
    while off < keys.size:
        block = keys[off : off + rng.integers(1, 300)]
        off += block.size
        probe = np.sort(np.concatenate([block, keys[:64]]))
        member = store.member(probe)
        assert member.tolist() == [int(k) in seen for k in probe]
        store.insert(np.sort(block).copy())
        seen.update(block.tolist())
        assert store.size == len(seen)
        assert store.runs <= int(np.log2(store.size)) + 1
    final = np.sort(keys)
    assert store.member(final).all()
    assert not store.member(np.asarray([20_001], dtype=np.int64)).any()


def test_sorted_runs_empty_blocks():
    store = _SortedRuns(np.empty(0, dtype=np.int64))
    assert store.runs == 0 and store.size == 0
    assert not store.member(np.asarray([3], dtype=np.int64)).any()
    store.insert(np.empty(0, dtype=np.int64))
    assert store.runs == 0
    store.insert(np.asarray([5], dtype=np.int64))
    assert store.member(np.asarray([5], dtype=np.int64)).all()


# ----------------------------------------------------------------------
# multi-word (byte-string) state keys
# ----------------------------------------------------------------------
@pytest.mark.parametrize("label,spec", BATTERY, ids=[b[0] for b in BATTERY])
def test_forced_wide_keys_bit_identical(label, spec):
    """Flipping a small spec onto the byte-string key path changes nothing:
    search and witness stay bit-identical to the fast engine.

    ``_wide_keys`` is only consulted at pack/unpack time while the byte
    dtypes are precomputed for every spec, so forcing the flag runs the
    real multi-word store on specs small enough to cross-check everywhere.
    """
    fast = engine_for(spec)
    with _forced_wide():
        eng = VectorEngine(spec, fast=fast)
        eng._wide_keys = True
        assert eng.search() == fast.search()
        assert eng.search_witness() == fast.search_witness()


def test_wide_key_round_trip():
    """pack -> sort -> unpack is lossless and order-preserving for byte
    keys (lexicographic over big-endian words == elementwise order)."""
    spec = BATTERY[0][1]
    eng = VectorEngine(spec, fast=engine_for(spec))
    eng._wide_keys = True
    rng = np.random.default_rng(3)
    rows = rng.integers(0, 2**17, size=(64, eng._n)).astype(np.int64)
    keys = eng._pack_rows(rows)
    order = np.argsort(keys, kind="stable")
    expect = sorted(map(tuple, rows.tolist()))
    assert [eng._unpack(k) for k in keys[order]] == expect


# ----------------------------------------------------------------------
# shared-channel mask compression / structured fallback warning
# ----------------------------------------------------------------------
def _overlap_ring(ring_n, entries, run_lens, budget):
    msgs = build_scenario(
        "theorem2-overlap",
        {"ring_n": ring_n, "entries": entries, "run_lens": run_lens},
    ).messages
    return SystemSpec.uniform(msgs, budget=budget)


def test_compression_lifts_wide_channel_spec():
    """>62 raw channels, tiny shared set: vectorizable, bit-identical."""
    spec = _overlap_ring(70, (0, 35), (40, 40), budget=0)
    fast = engine_for(spec)
    assert fast.num_bits > 62
    eng = VectorEngine(spec, fast=fast)
    assert eng.vectorizable
    assert eng.num_bits_eff <= 62
    assert eng.num_bits_eff < fast.num_bits
    assert eng.search() == fast.search()
    assert eng.search_witness() == fast.search_witness()


def test_compression_identity_when_all_channels_shared():
    """Two messages over one shared path: every channel is contested, so
    compression degenerates to the identity and drops nothing."""
    spec = SystemSpec(
        messages=(
            CheckerMessage(path=(0, 1), length=1, tag="A"),
            CheckerMessage(path=(0, 1), length=1, tag="B"),
        ),
        budgets=(1, 1),
    )
    fast = engine_for(spec)
    eng = VectorEngine(spec, fast=fast)
    assert eng.num_bits_eff == eng.num_bits
    with _forced_wide():
        assert VectorEngine(spec, fast=fast).search() == fast.search()


def test_compression_shrinks_battery_spec():
    """fig1 carries private path segments; compression strips them while
    the whole battery above stays bit-identical with it always on."""
    spec = BATTERY[0][1]
    eng = VectorEngine(spec, fast=engine_for(spec))
    assert 0 < eng.num_bits_eff < eng.num_bits


def test_wide_spec_fallback_warning_is_structured():
    """A spec whose *shared* channels still overflow 62 bits falls back
    loudly, with the effective bit requirement on the warning."""
    spec = _overlap_ring(80, (0, 10), (75, 75), budget=0)
    fast = engine_for(spec)
    eng = VectorEngine(spec, fast=fast)
    assert not eng.vectorizable
    assert eng.num_bits_eff > 62
    before = COUNTERS["vectorpath.fallback.searches"]
    with pytest.warns(WideSpecFallbackWarning) as rec:
        got = eng.search()
    assert COUNTERS["vectorpath.fallback.searches"] == before + 1
    warning = rec[0].message
    assert warning.engine == "vector"
    assert warning.n == eng._n
    assert warning.num_bits == eng.num_bits_eff
    assert warning.max_bits == vectorpath_mod.MAX_VECTOR_BITS
    assert str(eng.num_bits_eff) in str(warning)
    assert got == fast.search()
