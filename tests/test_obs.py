"""Telemetry layer: gate, spans/counters, exporters, schema, event reports."""

import json

import pytest

import repro.obs as obs
from repro.obs import (
    SNAPSHOT_SCHEMA,
    JsonlExporter,
    Telemetry,
    snapshot_report,
    validate_event,
    validate_stream,
    write_snapshot,
)
from repro.obs.report import EventStreamError, read_events, render, summarize


@pytest.fixture(autouse=True)
def _clean_gate(monkeypatch):
    """Every test starts with telemetry off and no process collector."""
    monkeypatch.delenv(obs.ENV_VAR, raising=False)
    obs.reset()
    yield
    obs.reset()


class ListSink:
    def __init__(self):
        self.events = []

    def __call__(self, event):
        self.events.append(event)


class TestDisabledGate:
    def test_disabled_get_returns_none_and_allocates_nothing(self):
        assert obs.get() is None
        assert obs.enabled() is False
        # no collector (and therefore no exporter/sink) was constructed
        assert obs._active is None

    def test_disabled_instrumented_run_allocates_no_collector(self):
        # drive an instrumented subsystem end to end with telemetry off:
        # the gate must stay cold
        from repro.routing import clockwise_ring
        from repro.sim import MessageSpec, Simulator
        from repro.topology import ring

        net = ring(4)
        res = Simulator(net, clockwise_ring(net, 4), [MessageSpec(0, 0, 2, length=2)]).run()
        assert res.completed
        assert obs._active is None

    def test_off_values_disable(self, monkeypatch):
        for value in ("off", "0", "false", "", "no"):
            monkeypatch.setenv(obs.ENV_VAR, value)
            obs.reset()
            assert obs.get() is None

    def test_enabled_get_is_a_lazy_singleton(self, monkeypatch):
        monkeypatch.setenv(obs.ENV_VAR, "on")
        tel = obs.get()
        assert isinstance(tel, Telemetry)
        assert obs.get() is tel

    def test_scope_restores_previous_collector(self):
        tel = Telemetry()
        with obs.scope(tel):
            assert obs.get() is tel
        assert obs._active is None


class TestTelemetryCore:
    def test_span_nesting_and_current_span(self):
        tel = Telemetry()
        assert tel.current_span() is None
        with tel.span("outer") as outer:
            assert tel.current_span() is outer
            with tel.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert tel.current_span() is inner
            assert tel.current_span() is outer
        assert tel.current_span() is None
        assert tel.span_stats["outer"].count == 1
        assert tel.span_stats["inner"].count == 1

    def test_counter_registry_equals_event_sum(self):
        tel = Telemetry()
        sink = ListSink()
        tel.add_sink(sink)
        tel.incr("x")
        tel.incr("x", 4)
        tel.incr("y", 2.5)
        assert tel.counters == {"x": 5, "y": 2.5}
        replayed = {}
        for e in sink.events:
            assert e["kind"] == "counter"
            replayed[e["name"]] = replayed.get(e["name"], 0) + e["value"]
        assert replayed == tel.counters

    def test_gauge_last_write_wins(self):
        tel = Telemetry()
        tel.gauge("depth", 3)
        tel.gauge("depth", 7)
        assert tel.gauges == {"depth": 7}

    def test_reserved_words_usable_as_attrs(self):
        # name/value/dur_s are positional-only parameters, so the same
        # words stay available as attribute keys (campaign tasks attach
        # their own ``name``)
        tel = Telemetry()
        sink = ListSink()
        tel.add_sink(sink)
        tel.point_span("campaign.task", 0.25, name="fig1():reachability", value=1)
        tel.incr("hits", 1, name="k")
        tel.event("e", dur_s=9)
        start, end = sink.events[0], sink.events[1]
        assert start["kind"] == "span_start" and end["kind"] == "span_end"
        assert end["attrs"]["name"] == "fig1():reachability"
        assert end["dur_s"] == 0.25
        assert tel.span_stats["campaign.task"].count == 1

    def test_span_attrs_merged_on_span_end(self):
        tel = Telemetry()
        sink = ListSink()
        tel.add_sink(sink)
        with tel.span("s", static="a") as sp:
            sp.set(verdict="ok")
        end = [e for e in sink.events if e["kind"] == "span_end"][0]
        assert end["attrs"] == {"static": "a", "verdict": "ok"}
        assert end["dur_s"] >= 0

    def test_mark_since_deltas(self):
        tel = Telemetry()
        tel.incr("a", 10)
        with tel.span("old"):
            pass
        mark = tel.mark()
        tel.incr("a", 3)
        tel.incr("b")
        with tel.span("new"):
            pass
        delta = tel.since(mark)
        assert delta["counters"] == {"a": 3, "b": 1}
        assert set(delta["spans"]) == {"new"}
        assert delta["spans"]["new"]["count"] == 1

    def test_snapshot_shape(self):
        tel = Telemetry()
        tel.incr("c", 2)
        tel.gauge("g", 1.5)
        with tel.span("s"):
            pass
        snap = tel.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["spans"]["s"]["count"] == 1
        assert snap["spans"]["s"]["wall_s"] >= 0


class TestSchema:
    def _scripted_session(self):
        tel = Telemetry()
        sink = ListSink()
        tel.add_sink(sink)
        tel.run_start("repro.test", argv=["x"])
        with tel.span("outer", k=1):
            tel.incr("n", 2)
            tel.gauge("g", 0.5)
            tel.event("fastpath", code="CRT001")
            tel.observe("latency_s", 0.25)
            tel.point_span("campaign.task", 0.1, name="t")
        tel.run_end("repro.test")
        return sink.events

    def test_every_emitted_event_is_schema_valid(self):
        events = self._scripted_session()
        assert {e["kind"] for e in events} == set(obs.EVENT_KINDS)
        assert validate_stream(events) == []

    def test_violations_detected(self):
        assert any("kind" in v for v in validate_event({"v": 1}))
        bad_kind = {"v": 1, "t": 0.0, "kind": "zap", "name": "x", "span": None,
                    "parent": None, "attrs": {}}
        assert validate_event(bad_kind)
        neg_dur = dict(bad_kind, kind="span_end", span=1, dur_s=-1.0)
        assert validate_event(neg_dur)
        bool_value = dict(bad_kind, kind="counter", value=True)
        assert validate_event(bool_value)
        ok = dict(bad_kind, kind="counter", value=2)
        assert validate_event(ok) == []


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tel = Telemetry()
        with JsonlExporter(path) as exporter:
            tel.add_sink(exporter)
            with tel.span("s"):
                tel.incr("c", 3)
        events, bad = read_events(path)
        assert bad == 0
        assert [e["kind"] for e in events] == ["span_start", "counter", "span_end"]
        assert validate_stream(events) == []

    def test_snapshot_report_and_file(self, tmp_path):
        tel = Telemetry(run_id="r1")
        tel.incr("c")
        report = snapshot_report(tel)
        assert report["schema"] == SNAPSHOT_SCHEMA
        assert report["run_id"] == "r1"
        assert report["counters"] == {"c": 1}
        out = write_snapshot(tel, tmp_path / "snap.json")
        on_disk = json.loads(out.read_text())
        assert on_disk["schema"] == SNAPSHOT_SCHEMA
        assert on_disk["counters"] == {"c": 1}


class TestSummarize:
    def test_report_rebuilds_registry_from_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tel = Telemetry()
        with JsonlExporter(path) as exporter:
            tel.add_sink(exporter)
            tel.run_start("repro.test")
            with tel.span("work"):
                tel.incr("n", 2)
                tel.incr("n", 3)
            tel.point_span("campaign.task", 1.5, name="t1", ok=True)
            tel.run_end("repro.test")
        report = summarize(path)
        assert report.schema_valid
        assert report.counters == {"n": 5}
        assert report.spans["work"].count == 1
        assert report.run_names == ["repro.test"]
        assert report.task_wall_times() == {"t1": 1.5}
        assert report.cache_hit_rate() is None  # no campaign cache counters
        text = render(report)
        assert "telemetry report" in text and "campaign.task" in text
        as_json = report.to_json()
        assert as_json["counters"] == {"n": 5}

    def test_unparseable_lines_counted(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"v": 1, "t": 0.0, "kind": "counter", "name": "c", "span": null,'
            ' "parent": null, "attrs": {}, "value": 1}\n'
            "not json\n[1,2]\n"
        )
        report = summarize(path)
        assert report.unparseable_lines == 2
        assert not report.schema_valid

    def test_no_parseable_events_is_a_named_defect(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("not json\n[1,2]\n")
        with pytest.raises(EventStreamError, match="no parseable events"):
            summarize(path)

    def test_certificate_activity_surfaced(self, tmp_path):
        """The certificate-layer counters get their own report line."""
        path = tmp_path / "events.jsonl"
        tel = Telemetry()
        with JsonlExporter(path) as exporter:
            tel.add_sink(exporter)
            tel.incr("lint.certificate.witness_emitted", 2)
            tel.incr("lint.certificate.replay.pass", 2)
            tel.incr("lint.certificate.adaptive.decided", 1)
            tel.incr("search.certificate_short_circuits", 2)
            tel.incr("unrelated", 7)
        report = summarize(path)
        assert report.certificate_activity() == {
            "witness_emitted": 2,
            "replay.pass": 2,
            "adaptive.decided": 1,
        }
        text = render(report)
        assert "certificate activity" in text
        assert "witness_emitted=2" in text
        assert report.to_json()["certificate_activity"] == {
            "adaptive.decided": 1,
            "replay.pass": 2,
            "witness_emitted": 2,
        }

    def test_certificate_counters_mirror_into_telemetry(self, tmp_path):
        """End to end: a certificate-decided search under a live collector
        emits both the search fast-path counter and the lint mirror."""
        from repro import obs
        from repro.analysis.reachability import search_deadlock
        from repro.analysis.state import CheckerMessage, SystemSpec

        spec = SystemSpec.uniform(
            [
                CheckerMessage(path=(0, 1, 2), length=2, tag="a"),
                CheckerMessage(path=(2, 3, 0), length=2, tag="b"),
            ]
        )
        path = tmp_path / "events.jsonl"
        tel = Telemetry()
        with JsonlExporter(path) as exporter:
            tel.add_sink(exporter)
            with obs.scope(tel):
                res = search_deadlock(spec, find_witness=True, certificates="on")
        assert res.states_explored == 0 and res.witness is not None
        report = summarize(path)
        assert report.counters["search.certificate_short_circuits"] == 1
        assert report.certificate_activity()["witness_emitted"] == 1


class TestCampaignIntegration:
    """The acceptance bar: events alone reproduce the ledger's numbers."""

    def _run(self, tmp_path, events_name):
        from repro.cli import main

        events = tmp_path / events_name
        rc = main([
            "campaign", "run", "--spec", "quick", "--limit", "4",
            "--jobs", "1", "--cache-dir", str(tmp_path / "cache"),
            "--no-progress", "--telemetry", str(events),
            "--telemetry-snapshot", str(tmp_path / "snap.json"),
        ])
        assert rc == 0
        return events

    def test_events_reproduce_ledger_walls_and_hit_rate(self, tmp_path, capsys):
        from repro.campaign import read_ledger

        cold = self._run(tmp_path, "cold.jsonl")
        warm = self._run(tmp_path, "warm.jsonl")
        capsys.readouterr()

        results, summaries = read_ledger(tmp_path / "cache" / "ledgers" / "quick.jsonl")
        for events, summary, results_slice in (
            (cold, summaries[0], results[:4]),
            (warm, summaries[1], results[4:]),
        ):
            report = summarize(events)
            assert report.schema_valid
            # every task got a span, with the ledger's exact wall time
            assert len(report.tasks) == len(results_slice) == 4
            walls = report.task_wall_times()
            for res in results_slice:
                assert walls[res.name] == pytest.approx(res.wall_time, abs=1e-5)
            # cache hit rate re-derived from counter events alone
            assert report.cache_hit_rate() == pytest.approx(
                summary["cache"]["hit_rate"], abs=1e-4
            )
        assert summarize(warm).cache_hit_rate() == 1.0

    def test_task_results_carry_telemetry_deltas(self, tmp_path, capsys):
        from repro.campaign import read_ledger

        self._run(tmp_path, "events.jsonl")
        capsys.readouterr()
        results, _ = read_ledger(tmp_path / "cache" / "ledgers" / "quick.jsonl")
        assert all(res.telemetry is not None for res in results)
        kinds = {res.kind for res in results}
        assert any(
            "search.states_explored" in res.telemetry["counters"]
            for res in results
            if res.kind == "reachability"
        ) or "reachability" not in kinds

    def test_campaign_status_rolls_up_task_telemetry(self, tmp_path, capsys):
        from repro.cli import main

        self._run(tmp_path, "events.jsonl")
        capsys.readouterr()
        assert main(["campaign", "status", "--cache-dir",
                     str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "telemetry roll-up" in out
        assert "task executions with telemetry" in out
        assert "search.calls" in out

    def test_snapshot_written(self, tmp_path, capsys):
        self._run(tmp_path, "events.jsonl")
        capsys.readouterr()
        snap = json.loads((tmp_path / "snap.json").read_text())
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["counters"]["campaign.tasks"] == 4
