"""TraceRecorder tests."""

from repro.routing import clockwise_ring
from repro.sim import MessageSpec, Simulator
from repro.sim.trace import TraceRecorder
from repro.topology import ring


def make_run():
    net = ring(6)
    rec = TraceRecorder()
    sim = Simulator(
        net, clockwise_ring(net, 6), [MessageSpec(0, 0, 2, length=3, tag="probe")],
        trace=rec,
    )
    sim.run()
    return rec


def test_events_collected():
    rec = make_run()
    kinds = {k for _, k, _ in rec.events}
    assert {"inject", "advance", "arrive", "consume", "release", "deliver"} <= kinds


def test_of_kind_and_for_message():
    rec = make_run()
    assert all(k == "inject" for _, k, _ in rec.of_kind("inject"))
    assert all(d.get("mid") == 0 for _, _, d in rec.for_message(0))
    assert rec.for_message(99) == []


def test_first():
    rec = make_run()
    assert rec.first("inject", 0) == 0
    assert rec.first("deliver", 0) == 2 + 3 - 1
    assert rec.first("nonexistent", 0) is None


def test_clear():
    rec = make_run()
    rec.clear()
    assert rec.events == []


def test_render_and_limit():
    rec = make_run()
    out = rec.render(limit=3)
    assert "more events" in out
    assert out.count("\n") == 3
    full = rec.render(limit=10_000)
    assert "more events" not in full


def make_filtered_run(kinds):
    net = ring(6)
    rec = TraceRecorder(kinds=kinds)
    sim = Simulator(
        net, clockwise_ring(net, 6), [MessageSpec(0, 0, 2, length=3)],
        trace=rec,
    )
    sim.run()
    return rec


def test_kind_filter_records_only_named_kinds():
    rec = make_filtered_run({"deliver"})
    assert rec.events and all(k == "deliver" for _, k, _ in rec.events)
    # the filtered stream matches the deliver slice of an unfiltered run
    full = make_run()
    assert [(k, d) for _, k, d in rec.events] == [
        (k, d) for _, k, d in full.of_kind("deliver")
    ]


def test_kind_filter_accepts_any_collection_and_none_records_all():
    as_list = make_filtered_run(["inject", "deliver"])
    assert {k for _, k, _ in as_list.events} == {"inject", "deliver"}
    assert isinstance(as_list.kinds, frozenset)
    unfiltered = make_filtered_run(None)
    assert {"advance", "consume", "release"} <= {k for _, k, _ in unfiltered.events}
