"""TraceRecorder tests."""

from repro.routing import clockwise_ring
from repro.sim import MessageSpec, Simulator
from repro.sim.trace import TraceRecorder
from repro.topology import ring


def make_run():
    net = ring(6)
    rec = TraceRecorder()
    sim = Simulator(
        net, clockwise_ring(net, 6), [MessageSpec(0, 0, 2, length=3, tag="probe")],
        trace=rec,
    )
    sim.run()
    return rec


def test_events_collected():
    rec = make_run()
    kinds = {k for _, k, _ in rec.events}
    assert {"inject", "advance", "arrive", "consume", "release", "deliver"} <= kinds


def test_of_kind_and_for_message():
    rec = make_run()
    assert all(k == "inject" for _, k, _ in rec.of_kind("inject"))
    assert all(d.get("mid") == 0 for _, _, d in rec.for_message(0))
    assert rec.for_message(99) == []


def test_first():
    rec = make_run()
    assert rec.first("inject", 0) == 0
    assert rec.first("deliver", 0) == 2 + 3 - 1
    assert rec.first("nonexistent", 0) is None


def test_clear():
    rec = make_run()
    rec.clear()
    assert rec.events == []


def test_render_and_limit():
    rec = make_run()
    out = rec.render(limit=3)
    assert "more events" in out
    assert out.count("\n") == 3
    full = rec.render(limit=10_000)
    assert "more events" not in full
