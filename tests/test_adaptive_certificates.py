"""CRT008 (Duato escape certificate) cross-checked against the oracle.

Three independent deciders must agree on adaptive routing functions:

* the static certificate (:func:`repro.lint.certificates.adaptive_certificate`,
  CRT008 via Duato's escape condition or CRT001 via an acyclic full CDG);
* the OR-semantics knot detector
  (:meth:`repro.analysis.adaptive_state.AdaptiveSystem.deadlocked_set`);
* the exhaustive adaptive search under the full adversary
  (:func:`repro.analysis.adaptive_state.search_adaptive_deadlock`).

Hypothesis drives random small 2D meshes with 2 VCs through all three.
"""

import itertools

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.analysis.adaptive_state import (
    AdaptiveMessage,
    AdaptiveSystem,
    search_adaptive_deadlock,
)
from repro.analysis.reachability import SearchLimitExceeded
from repro.campaign.scenarios import build_scenario
from repro.lint import CertificateMismatch, adaptive_certificate, lint_adaptive
from repro.routing.adaptive import FullyAdaptiveMesh, duato_escape_mesh
from repro.topology import mesh


def four_corners(dims, length=2):
    x, y = dims[0] - 1, dims[1] - 1
    corners = [(0, 0), (x, 0), (x, y), (0, y)]
    return [
        AdaptiveMessage(src=c, dst=(x - c[0], y - c[1]), length=length, tag=f"c{i}")
        for i, c in enumerate(corners)
    ]


# ----------------------------------------------------------------------
# pinned cross-checks on the registry geometries
# ----------------------------------------------------------------------
class TestRegistryAgreement:
    def test_escape_mesh_certified_and_search_agrees(self):
        net = mesh((2, 2), vcs=2)
        fn = duato_escape_mesh(net, 2)
        cert = adaptive_certificate(fn)
        assert cert is not None and cert.code == "CRT008"
        assert not cert.deadlock_reachable
        # check mode replays the full search and raises on disagreement
        res = search_adaptive_deadlock(
            fn, four_corners((2, 2)), certificates="check"
        )
        assert not res.deadlock_reachable and res.states_explored > 0
        assert res.certificate == "CRT008"

    def test_full_adaptive_mesh_is_honestly_undecided(self):
        net = mesh((2, 2))
        fn = FullyAdaptiveMesh(net, 2)
        assert adaptive_certificate(fn) is None

    def test_four_corners_deadlock_found_by_knot(self):
        """The OR-knot detector, via the search, nails all four members."""
        net = mesh((2, 2))
        fn = FullyAdaptiveMesh(net, 2)
        res = search_adaptive_deadlock(fn, four_corners((2, 2)))
        assert res.deadlock_reachable
        assert set(res.deadlocked_tags) == {"c0", "c1", "c2", "c3"}
        assert res.certificate is None  # no certificate covers this fn

    def test_two_corners_unreachable(self):
        net = mesh((2, 2))
        fn = FullyAdaptiveMesh(net, 2)
        res = search_adaptive_deadlock(fn, four_corners((2, 2))[:2])
        assert not res.deadlock_reachable and res.states_explored > 0

    def test_escape_mesh_zero_state_fast_path(self):
        net = mesh((3, 3), vcs=2)
        fn = duato_escape_mesh(net, 2)
        res = search_adaptive_deadlock(
            fn, four_corners((3, 3)), certificates="on"
        )
        assert not res.deadlock_reachable
        assert res.states_explored == 0 and res.certificate == "CRT008"

    def test_lint_adaptive_verdicts(self):
        net = mesh((3, 3), vcs=2)
        report = lint_adaptive(duato_escape_mesh(net, 2))
        assert report.verdict == "deadlock_free"
        assert report.certificate_diagnostic.code == "CRT008"
        undecided = lint_adaptive(FullyAdaptiveMesh(mesh((3, 3)), 2))
        assert undecided.verdict == "undecided"

    def test_check_mode_raises_on_bogus_certificate(self, monkeypatch):
        import repro.analysis.adaptive_state as mod
        import repro.lint.certificates as certs

        net = mesh((2, 2))
        fn = FullyAdaptiveMesh(net, 2)
        fake = certs.Certificate(
            code="CRT008", verdict="DEADLOCK_FREE", rationale="bogus"
        )
        monkeypatch.setattr(certs, "adaptive_certificate", lambda f: fake)
        with pytest.raises(CertificateMismatch, match="CRT008"):
            search_adaptive_deadlock(
                fn, four_corners((2, 2)), certificates="check"
            )

    @pytest.mark.parametrize(
        "name,params",
        [
            ("adaptive-mesh", {"routing": "escape", "dims": [2, 2], "msgs": 2}),
            ("adaptive-mesh", {"routing": "full", "dims": [2, 2], "msgs": 4}),
            ("adaptive-mesh", {"routing": "full", "dims": [2, 2], "msgs": 2}),
        ],
    )
    def test_registry_scenarios_pass_check_mode(self, name, params):
        """Every registry adaptive scenario survives certificates='check'."""
        bundle = build_scenario(name, params)
        fn, messages = bundle.adaptive
        search_adaptive_deadlock(fn, messages, certificates="check")


# ----------------------------------------------------------------------
# OR-semantics of the knot detector
# ----------------------------------------------------------------------
class TestKnotSemantics:
    def test_free_candidate_excludes_from_knot(self):
        """A message with ANY free candidate is not deadlocked (OR, not AND)."""
        net = mesh((2, 2))
        fn = FullyAdaptiveMesh(net, 2)
        system = AdaptiveSystem(fn, four_corners((2, 2))[:2])
        # walk the full reachable space: the search says no deadlock, so
        # the knot must be empty in every reachable state
        seen = {system.initial_state()}
        frontier = [system.initial_state()]
        while frontier:
            state = frontier.pop()
            assert system.deadlocked_set(state) == ()
            for nxt in system.successors(state):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)

    def test_knot_requires_all_candidates_held_by_knot_members(self):
        net = mesh((2, 2))
        fn = FullyAdaptiveMesh(net, 2)
        msgs = four_corners((2, 2))
        system = AdaptiveSystem(fn, msgs)
        # find a deadlocked state by BFS and re-verify the knot by hand
        seen = {system.initial_state()}
        frontier = [system.initial_state()]
        dead_state = None
        while frontier and dead_state is None:
            state = frontier.pop()
            if system.deadlocked_set(state):
                dead_state = state
                break
            for nxt in system.successors(state):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        assert dead_state is not None
        knot = set(system.deadlocked_set(dead_state))
        occ = system.occupied(dead_state)
        for i in knot:
            taken = dead_state[i][0]
            cands = system._candidates(taken, i)
            assert cands, "knot member must still want a channel"
            owners = {occ.get(c) for c in cands}
            assert None not in owners  # every candidate is occupied...
            assert owners <= knot  # ...by another knot member


# ----------------------------------------------------------------------
# hypothesis: random geometries never get a wrong CRT008
# ----------------------------------------------------------------------
@st.composite
def mesh_and_messages(draw):
    dims = (draw(st.integers(2, 3)), 2)
    nodes = list(itertools.product(range(dims[0]), range(dims[1])))
    n_msgs = draw(st.integers(min_value=1, max_value=3))
    msgs = []
    for mi in range(n_msgs):
        src, dst = draw(
            st.lists(st.sampled_from(nodes), min_size=2, max_size=2, unique=True)
        )
        length = draw(st.integers(min_value=1, max_value=2))
        msgs.append(AdaptiveMessage(src=src, dst=dst, length=length, tag=f"m{mi}"))
    return dims, msgs


@settings(max_examples=12, deadline=None)
@given(case=mesh_and_messages())
def test_random_escape_meshes_certified_soundly(case):
    """CRT008 on random 2-VC meshes: the exhaustive search never refutes it."""
    dims, msgs = case
    net = mesh(dims, vcs=2)
    fn = duato_escape_mesh(net, 2)
    cert = adaptive_certificate(fn)
    assert cert is not None and cert.code == "CRT008"
    assert not cert.deadlock_reachable
    try:
        res = search_adaptive_deadlock(
            fn, msgs, certificates="off", max_states=150_000
        )
    except SearchLimitExceeded:
        assume(False)  # state space too large for this example; discard
    assert not res.deadlock_reachable


@settings(max_examples=12, deadline=None)
@given(case=mesh_and_messages())
def test_random_full_adaptive_meshes_check_mode(case):
    """check mode never raises: the certificate layer refuses to certify
    anything the search could refute on 1-VC fully adaptive meshes."""
    dims, msgs = case
    net = mesh(dims)
    fn = FullyAdaptiveMesh(net, 2)
    try:
        search_adaptive_deadlock(fn, msgs, certificates="check", max_states=150_000)
    except SearchLimitExceeded:
        assume(False)
