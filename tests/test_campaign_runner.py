"""Runner: parallel/serial equivalence, timeout, retry, fallback, ledger."""

import concurrent.futures

import pytest

from repro.campaign.cache import ResultCache
from repro.campaign.ledger import RunLedger, read_ledger
from repro.campaign.progress import ProgressReporter
from repro.campaign.runner import RunnerConfig, run_campaign
from repro.campaign.tasks import CampaignTask


def _small_battery() -> list[CampaignTask]:
    tasks = [
        CampaignTask.make(
            "reachability", "fig2-pair", d1=d1, d2=d2, hold=2, expect="deadlock"
        )
        for d1, d2 in ((1, 1), (2, 1), (1, 2))
    ]
    tasks.append(CampaignTask.make("reachability", "fig1", expect="unreachable"))
    tasks.append(CampaignTask.make("cdg", "baseline-cdg", algorithm="dor",
                                   dims=(3, 3), expect="acyclic"))
    return tasks


def test_serial_and_parallel_ledger_verdicts_agree(tmp_path):
    """max_workers=1 and =4 must write identical verdicts for each hash."""
    verdicts = {}
    for workers in (1, 4):
        path = tmp_path / f"ledger-{workers}.jsonl"
        with RunLedger(path) as ledger:
            results, summary = run_campaign(
                _small_battery(),
                ledger=ledger,
                config=RunnerConfig(max_workers=workers),
            )
        assert summary.failed == 0 and summary.all_expected
        recorded, summaries = read_ledger(path)
        assert len(recorded) == len(results) == 5
        assert len(summaries) == 1
        verdicts[workers] = {r.task_hash: r.verdict for r in recorded}
    assert verdicts[1] == verdicts[4]


def test_parallel_runs_use_worker_processes(tmp_path):
    results, _ = run_campaign(
        _small_battery()[:3], config=RunnerConfig(max_workers=2)
    )
    assert all(r.worker.startswith("pid") for r in results)


def test_timeout_then_retry_exhaustion(tmp_path):
    """A deliberately slow task trips the per-task timeout on every wave."""
    slow = CampaignTask.make("reachability", "debug-sleep", seconds=1.2)
    results, summary = run_campaign(
        [slow],
        config=RunnerConfig(
            max_workers=2, task_timeout=0.2, retries=1, backoff=0.05
        ),
    )
    (res,) = results
    assert not res.ok
    assert "timeout" in res.error
    assert res.attempts == 2  # initial attempt + one retry
    assert summary.failed == 1 and not summary.all_expected


def test_flaky_task_succeeds_on_retry(tmp_path):
    token_dir = tmp_path / "tokens"
    token_dir.mkdir()
    flaky = CampaignTask.make(
        "reachability", "debug-flaky", token_dir=str(token_dir), fail_times=1
    )
    results, summary = run_campaign(
        [flaky], config=RunnerConfig(max_workers=1, retries=2, backoff=0.01)
    )
    (res,) = results
    assert res.ok and res.verdict == "unreachable"
    assert res.attempts == 2
    assert summary.failed == 0


def test_retries_zero_fails_fast(tmp_path):
    token_dir = tmp_path / "tokens"
    token_dir.mkdir()
    flaky = CampaignTask.make(
        "reachability", "debug-flaky", token_dir=str(token_dir), fail_times=1
    )
    results, _ = run_campaign(
        [flaky], config=RunnerConfig(max_workers=1, retries=0)
    )
    assert not results[0].ok and results[0].attempts == 1


def test_pool_unavailable_degrades_to_serial(monkeypatch):
    """Environments without process pools still complete the campaign."""

    def broken_pool(*a, **kw):
        raise OSError("no process support here")

    monkeypatch.setattr(
        concurrent.futures, "ProcessPoolExecutor", broken_pool
    )
    results, summary = run_campaign(
        _small_battery()[:3], config=RunnerConfig(max_workers=4)
    )
    assert summary.failed == 0
    assert all(r.ok and r.worker == "serial" for r in results)
    assert {r.verdict for r in results} == {"deadlock"}


def test_duplicate_tasks_run_once():
    task = CampaignTask.make("reachability", "fig2-pair", d1=1, d2=1, hold=2)
    results, summary = run_campaign([task, task, task])
    assert len(results) == 1 and summary.total == 1


def test_cache_short_circuits_second_run(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    tasks = _small_battery()
    _, cold = run_campaign(tasks, cache=cache, config=RunnerConfig(max_workers=1))
    assert cold.live == len(tasks) and cold.from_cache == 0

    cache2 = ResultCache(tmp_path / "cache")
    results, warm = run_campaign(
        tasks, cache=cache2, config=RunnerConfig(max_workers=1)
    )
    assert warm.from_cache == len(tasks) and warm.live == 0
    assert warm.all_expected
    assert all(r.source == "cache" for r in results)
    assert cache2.stats.hit_rate == 1.0


def test_invalid_runner_config():
    with pytest.raises(ValueError):
        RunnerConfig(max_workers=0)
    with pytest.raises(ValueError):
        RunnerConfig(retries=-1)
    with pytest.raises(ValueError):
        RunnerConfig(task_timeout=0)


def test_progress_reporter_emits(capsys):
    import sys

    reporter = ProgressReporter(2, stream=sys.stdout, interval=0.0)
    from repro.campaign.tasks import TaskResult

    for source in ("cache", "live"):
        reporter.update(
            TaskResult(task_hash="x", name="t", kind="k", scenario="s",
                       params={}, verdict="ok", source=source)
        )
    out = capsys.readouterr().out
    assert "2/2 done" in out and "cache 1" in out


def test_ledger_skips_corrupt_lines(tmp_path):
    path = tmp_path / "ledger.jsonl"
    with RunLedger(path) as ledger:
        run_campaign(
            [CampaignTask.make("reachability", "fig2-pair", d1=1, d2=1, hold=2)],
            ledger=ledger,
        )
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("{truncated garbage\n")
    results, summaries = read_ledger(path)
    assert len(results) == 1 and len(summaries) == 1
