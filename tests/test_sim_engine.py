"""Flit-level engine tests: movement, atomicity, pipelining, delivery."""

import pytest

from repro.routing import clockwise_ring, dimension_order_mesh
from repro.sim import MessageSpec, MessageStatus, SimConfig, Simulator
from repro.sim.trace import TraceRecorder
from repro.topology import mesh, ring


def make_ring_sim(specs, n=6, **kw):
    net = ring(n)
    return Simulator(net, clockwise_ring(net, n), specs, **kw)


class TestSimConfigValidation:
    """Bad knob values must fail at construction, not deep in the run loop."""

    def test_rejects_nonpositive_buffer_depth(self):
        with pytest.raises(ValueError, match="buffer_depth"):
            SimConfig(buffer_depth=0)
        with pytest.raises(ValueError, match="buffer_depth"):
            SimConfig(buffer_depth=-3)

    def test_rejects_nonpositive_max_cycles(self):
        with pytest.raises(ValueError, match="max_cycles"):
            SimConfig(max_cycles=0)
        with pytest.raises(ValueError, match="max_cycles"):
            SimConfig(max_cycles=-1)

    def test_rejects_unknown_switching(self):
        with pytest.raises(ValueError, match="unknown switching"):
            SimConfig(switching="circuit")
        with pytest.raises(ValueError, match="unknown switching"):
            SimConfig(switching="Wormhole")  # exact strings only

    def test_valid_switching_accepted(self):
        for s in ("wormhole", "store_and_forward", "virtual_cut_through"):
            assert SimConfig(buffer_depth=8, switching=s).switching == s

    def test_classmethod_constructors_validate_too(self):
        with pytest.raises(ValueError, match="buffer_depth"):
            SimConfig.store_and_forward(0)
        assert SimConfig.virtual_cut_through(4).buffer_depth == 4


class TestSingleMessage:
    def test_latency_formula(self):
        # path k channels, length L, unobstructed: done at t0 + k + L - 1
        for k, L in [(3, 4), (5, 1), (2, 7)]:
            sim = make_ring_sim([MessageSpec(0, 0, k, length=L)], n=8)
            res = sim.run()
            assert res.completed
            assert res.messages[0].latency() == k + L - 1

    def test_inject_time_respected(self):
        sim = make_ring_sim([MessageSpec(0, 0, 2, length=2, inject_time=5)])
        res = sim.run()
        assert res.messages[0].inject_cycle == 5

    def test_channels_released_behind_short_message(self):
        rec = TraceRecorder()
        sim = make_ring_sim([MessageSpec(0, 0, 5, length=1)], n=8, trace=rec)
        res = sim.run()
        assert res.completed
        # a 1-flit message frees each channel right after passing it
        releases = [c for c, k, d in rec.events if k == "release"]
        assert len(releases) == 5

    def test_status_transitions(self):
        sim = make_ring_sim([MessageSpec(0, 0, 2, length=3)])
        m = sim.messages[0]
        assert m.status is MessageStatus.PENDING
        sim.step()
        assert m.status is MessageStatus.ACTIVE
        sim.run()
        assert m.status is MessageStatus.DELIVERED


class TestAtomicAllocation:
    def test_channel_owned_exclusively(self):
        # two messages whose paths share channel 2->3
        specs = [
            MessageSpec(0, 0, 4, length=6),
            MessageSpec(1, 2, 4, length=6, inject_time=1),
        ]
        net = ring(6)
        sim = Simulator(net, clockwise_ring(net, 6), specs)
        for _ in range(40):
            sim.step()
            # invariant: a non-empty queue always has an owner
            for q in sim._queues.values():
                if q.queue:
                    assert q.owner is not None
        res_states = [m.status for m in sim.messages.values()]
        assert all(s is MessageStatus.DELIVERED for s in res_states)

    def test_blocked_message_holds_channels(self):
        # long message 0->3; second message 5->2 blocks behind it
        specs = [
            MessageSpec(0, 0, 3, length=20),
            MessageSpec(1, 5, 2, length=4, inject_time=2),
        ]
        net = ring(6)
        sim = Simulator(net, clockwise_ring(net, 6), specs)
        for _ in range(6):
            sim.step()
        m1 = sim.messages[1]
        # m1 must be blocked at channel 0->1 (owned by message 0)
        assert m1.blocked_on is not None
        assert sim.channel_owner(m1.blocked_on) == 0


class TestPipelinedHandoff:
    def test_same_cycle_channel_reuse(self):
        """A channel freed by a tail flit is acquirable in the same cycle.

        Message B (behind A on the ring) must acquire each channel exactly
        when A's tail leaves it, with no idle bubble: B's total time equals
        A's departure plus its own pipeline, not plus per-hop gaps.
        """
        net = ring(8)
        fn = clockwise_ring(net, 8)
        a = MessageSpec(0, 0, 4, length=3)
        b = MessageSpec(1, 0, 4, length=3, inject_time=0)
        sim = Simulator(net, fn, [a, b])
        res = sim.run()
        assert res.completed
        la = res.messages[0].latency()
        lb = res.messages[1].latency()
        # B starts L_a cycles after A (cs-style serialization on channel 0->1)
        assert lb == la + 3

    def test_buffer_depth_two_shortens_trains(self):
        net = ring(8)
        fn = clockwise_ring(net, 8)
        spec = [MessageSpec(0, 0, 2, length=6)]
        deep = Simulator(net, fn, spec, config=SimConfig(buffer_depth=3)).run()
        assert deep.completed
        # 2 channels x 3 flits of capacity: whole message fits in the path
        assert deep.messages[0].latency() == 2 + 6 - 1  # unchanged when unobstructed


class TestConfigValidation:
    def test_bad_buffer_depth(self):
        with pytest.raises(ValueError):
            SimConfig(buffer_depth=0)

    def test_bad_max_cycles(self):
        with pytest.raises(ValueError):
            SimConfig(max_cycles=0)

    def test_duplicate_mid_rejected(self):
        net = ring(4)
        with pytest.raises(ValueError, match="duplicate"):
            Simulator(
                net,
                clockwise_ring(net, 4),
                [MessageSpec(0, 0, 1, length=1), MessageSpec(0, 1, 2, length=1)],
            )


class TestMeshTraffic:
    def test_all_delivered_under_dor(self):
        from repro.sim.traffic import uniform_random_traffic

        net = mesh((4, 4))
        fn = dimension_order_mesh(net, 2)
        specs = uniform_random_traffic(net, rate=0.2, cycles=30, length=3, seed=5)
        res = Simulator(net, fn, specs, config=SimConfig(max_cycles=5000)).run()
        assert res.completed
        assert res.stats.delivered_messages == len(specs)

    def test_timeout_reported(self):
        net = ring(6)
        specs = [MessageSpec(i, i, (i + 3) % 6, length=8) for i in range(6)]
        res = Simulator(
            net,
            clockwise_ring(net, 6),
            specs,
            config=SimConfig(max_cycles=50, stop_on_deadlock=False, quiescence_window=1000),
        ).run()
        assert res.timed_out or res.deadlocked


class TestRoutingFailure:
    def test_undefined_route_marks_failed(self):
        from repro.routing import TableRouting
        from repro.topology import Network

        net = Network()
        ab = net.add_channel("A", "B")
        net.add_channel("B", "A")
        tr = TableRouting(net, {("A", "B"): [ab]})
        sim = Simulator(net, tr, [MessageSpec(0, "B", "A", length=2)])
        res = sim.run()
        assert res.messages[0].status is MessageStatus.FAILED
        assert res.delivered == 0


class TestUtilizationCounters:
    """SimStats.channel_busy_cycles driven through Simulator.step() directly,
    asserted against hand-computed flit movement (not via run())."""

    def _step_to_completion(self, sim, bound=200):
        for _ in range(bound):
            if all(
                m.status in (MessageStatus.DELIVERED, MessageStatus.FAILED)
                for m in sim.messages.values()
            ):
                return
            sim.step()
        raise AssertionError("simulation did not finish within the step bound")

    def test_unobstructed_message_busy_length_cycles_per_hop(self):
        # depth-1 wormhole: every path channel holds exactly one flit per
        # cycle from the header's arrival until the tail leaves, so each of
        # the k channels is busy exactly L cycles.
        for k, L in [(3, 1), (2, 2), (4, 3)]:
            sim = make_ring_sim(
                [MessageSpec(0, 0, k, length=L)],
                n=8,
                config=SimConfig(track_utilization=True),
            )
            self._step_to_completion(sim)
            busy = sim.stats.channel_busy_cycles
            assert len(busy) == k
            assert all(cycles == L for cycles in busy.values())

    def test_stalled_message_keeps_held_channel_busy(self):
        # A single flit frozen on cycles 1-2 sits in its first channel for
        # three cycles; the downstream hops still see it for one cycle each.
        from repro.sim.injection import StallSchedule

        sim = make_ring_sim(
            [MessageSpec(0, 0, 3, length=1)],
            n=8,
            config=SimConfig(track_utilization=True),
            stalls=StallSchedule({0: [1, 2]}),
        )
        self._step_to_completion(sim)
        assert sorted(sim.stats.channel_busy_cycles.values()) == [1, 1, 3]

    def test_counters_match_per_cycle_queue_occupancy(self):
        # Ground truth recomputed after every step through the public queue
        # accessor: a channel's counter goes up iff its queue was non-empty
        # at the end of that cycle.
        net = ring(6)
        specs = [
            MessageSpec(0, 0, 3, length=4),
            MessageSpec(1, 1, 4, length=2, inject_time=1),
            MessageSpec(2, 5, 2, length=3, inject_time=2),
        ]
        sim = Simulator(
            net,
            clockwise_ring(net, 6),
            specs,
            config=SimConfig(track_utilization=True),
        )
        expected = {}
        for _ in range(200):
            if all(
                m.status in (MessageStatus.DELIVERED, MessageStatus.FAILED)
                for m in sim.messages.values()
            ):
                break
            sim.step()
            for ch in net.channels:
                if sim.queue_of(ch).queue:
                    expected[ch.cid] = expected.get(ch.cid, 0) + 1
        assert sim.stats.channel_busy_cycles == expected
        assert expected  # the scenario actually moved flits
