"""Packet segmentation / reassembly tests."""

import pytest

from repro.routing import clockwise_ring, dimension_order_mesh
from repro.sim import SimConfig, Simulator
from repro.sim.packets import TransferSpec, reassemble, segment_transfers
from repro.topology import mesh, ring


class TestSegmentation:
    def test_packet_count_and_lengths(self):
        plans, specs = segment_transfers(
            [TransferSpec(0, "A", "B", total_flits=10, max_packet_flits=4)]
        )
        assert plans[0].num_packets == 3
        assert [s.length for s in specs] == [4, 4, 2]
        assert [s.tag for s in specs] == ["t0.p0", "t0.p1", "t0.p2"]

    def test_exact_multiple(self):
        _, specs = segment_transfers(
            [TransferSpec(0, "A", "B", total_flits=8, max_packet_flits=4)]
        )
        assert [s.length for s in specs] == [4, 4]

    def test_unique_mids_across_transfers(self):
        _, specs = segment_transfers(
            [
                TransferSpec(0, "A", "B", total_flits=5, max_packet_flits=2),
                TransferSpec(1, "B", "A", total_flits=3, max_packet_flits=2),
            ],
            first_mid=10,
        )
        mids = [s.mid for s in specs]
        assert mids == list(range(10, 15))

    def test_non_pipelined_staggers_injection(self):
        _, specs = segment_transfers(
            [TransferSpec(0, "A", "B", total_flits=9, max_packet_flits=3, pipelined=False)]
        )
        assert [s.inject_time for s in specs] == [0, 3, 6]

    def test_validation(self):
        with pytest.raises(ValueError):
            TransferSpec(0, "A", "B", total_flits=0, max_packet_flits=2)
        with pytest.raises(ValueError):
            TransferSpec(0, "A", "B", total_flits=2, max_packet_flits=0)


class TestEndToEnd:
    def test_transfer_over_ring(self):
        n = 8
        net = ring(n)
        fn = clockwise_ring(net, n)
        plans, specs = segment_transfers(
            [TransferSpec(0, 0, 4, total_flits=12, max_packet_flits=4)]
        )
        res = Simulator(net, fn, specs, config=SimConfig(max_cycles=500)).run()
        reports = reassemble(plans, res)
        r = reports[0]
        assert r.complete
        assert r.in_order  # oblivious: same path, injection order preserved
        assert r.flits_delivered == 12
        assert r.transfer_latency is not None

    def test_two_competing_transfers_on_mesh(self):
        net = mesh((4, 4))
        fn = dimension_order_mesh(net, 2)
        plans, specs = segment_transfers(
            [
                TransferSpec(0, (0, 0), (3, 3), total_flits=20, max_packet_flits=5),
                TransferSpec(1, (3, 0), (0, 3), total_flits=20, max_packet_flits=5),
            ]
        )
        res = Simulator(net, fn, specs, config=SimConfig(max_cycles=2000)).run()
        for r in reassemble(plans, res):
            assert r.complete and r.in_order

    def test_packetization_beats_one_big_message_under_contention(self):
        """Smaller packets release channels sooner: cross traffic suffers
        less when the big transfer is packetized."""
        n = 10
        latency_of_probe = {}
        for max_pkt in (30, 5):
            net = ring(n)
            fn = clockwise_ring(net, n)
            plans, specs = segment_transfers(
                [TransferSpec(0, 0, 6, total_flits=30, max_packet_flits=max_pkt)]
            )
            from repro.sim.message import MessageSpec

            probe = MessageSpec(99, 3, 5, length=2, inject_time=6, tag="probe")
            res = Simulator(
                net, fn, specs + [probe], config=SimConfig(max_cycles=2000)
            ).run()
            assert res.completed
            latency_of_probe[max_pkt] = res.messages[99].latency()
        assert latency_of_probe[5] < latency_of_probe[30]

    def test_incomplete_transfer_reported(self):
        """A deadlocked run yields complete=False, not a crash."""
        n = 6
        net = ring(n)
        fn = clockwise_ring(net, n)
        from repro.sim.message import MessageSpec

        plans, specs = segment_transfers(
            [TransferSpec(0, 0, 3, total_flits=8, max_packet_flits=8)]
        )
        jam = [MessageSpec(50 + i, i, (i + 3) % n, length=9) for i in range(n)]
        res = Simulator(net, fn, specs + jam, config=SimConfig(max_cycles=300)).run()
        reports = reassemble(plans, res)
        assert not reports[0].complete
        assert reports[0].finish_cycle is None
