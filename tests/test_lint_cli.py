"""``python -m repro lint`` and the campaign ``lint`` task kind."""

import json

import pytest

from repro.campaign import build_spec
from repro.campaign.tasks import SCHEMA_VERSION, CampaignTask, execute_task
from repro.cli import main


class TestLintCli:
    def test_single_scenario_text(self, capsys):
        assert main(["lint", "ring-cycle", "--params", '{"n": 4}']) == 0
        out = capsys.readouterr().out
        assert "verdict=reachable_deadlock" in out
        assert "CRT005" in out

    def test_single_scenario_json(self, capsys):
        assert main(["lint", "fig1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "undecided"
        assert payload["certificate"] is None
        codes = {d["code"] for d in payload["diagnostics"]}
        assert {"PRP001", "PRP002", "PRP004", "CDG001"} <= codes
        # evidence is fully lowered to JSON (round-trips by construction)
        assert all(isinstance(d["evidence"], dict) for d in payload["diagnostics"])

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["lint", "not-a-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bad_params_exit_2(self, capsys):
        assert main(["lint", "fig1", "--params", "{oops"]) == 2
        assert "not valid JSON" in capsys.readouterr().err
        assert main(["lint", "fig1", "--params", "[1]"]) == 2
        assert "JSON object" in capsys.readouterr().err

    def test_requires_exactly_one_target_form(self, capsys):
        assert main(["lint"]) == 2
        assert main(["lint", "fig1", "--all"]) == 2

    def test_build_failure_exits_2(self, capsys):
        # gen requires the m parameter; the build error is reported, not raised
        assert main(["lint", "gen"]) == 2
        assert "build failed" in capsys.readouterr().err

    def test_all_quick_spec_clean(self, capsys):
        assert main(["lint", "--all", "--spec", "quick"]) == 0
        out = capsys.readouterr().out
        assert "targets linted" in out
        assert "0 error-severity finding(s)" in out

    def test_all_json_is_a_list(self, capsys):
        assert main(["lint", "--all", "--spec", "quick", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) >= 3
        verdicts = {p["verdict"] for p in payload}
        assert "reachable_deadlock" in verdicts  # ring-cycle is in quick


class TestCampaignLintKind:
    def test_schema_version_bumped_for_lint(self):
        # v3: static-certificate pre-pass + the lint task kind change payloads
        # v4: TaskResult grew the per-task telemetry summary field
        # v5: adaptive/cross_check task kinds; certificate-built witnesses can
        #     legitimately report states_explored == 0
        assert SCHEMA_VERSION == 5

    def test_lint_task_executes(self):
        task = CampaignTask.make(
            "lint", "ring-cycle", n=4, expect="reachable_deadlock"
        )
        res = execute_task(task)
        assert res.ok and res.verdict == "reachable_deadlock"
        assert res.expect_matches is True
        assert res.detail["certificate"] == "CRT005"
        assert res.detail["errors"] == 0
        assert "CRT005" in res.detail["diagnostics"]
        assert res.detail["rules_run"] >= 10

    def test_lint_task_message_level(self):
        # fig1 exposes an algorithm, so force message-level via a scenario
        # that only has messages -- none exist, so check the algorithm branch
        # is preferred and the verdict is the static one
        task = CampaignTask.make("lint", "fig1", expect="undecided")
        res = execute_task(task)
        assert res.ok and res.verdict == "undecided"
        assert res.detail["certificate"] is None

    def test_lint_rejects_bundle_without_lintable_target(self):
        from repro.campaign.scenarios import ScenarioBundle
        from repro.campaign.tasks import _run_lint

        with pytest.raises(ValueError, match="neither an algorithm nor messages"):
            _run_lint(ScenarioBundle(), {})

    def test_lint_task_message_only_scenario(self):
        # debug-sleep exposes just a single one-channel message: the spec
        # dependency graph is trivially acyclic
        res = execute_task(CampaignTask.make("lint", "debug-sleep", seconds=0))
        assert res.ok and res.verdict == "deadlock_free"
        assert res.detail["certificate"] == "CRT001"

    def test_specs_include_lint_tasks(self):
        quick = build_spec("quick")
        assert any(t.kind == "lint" for t in quick)
        battery = build_spec("paper-battery")
        lint_tasks = [t for t in battery if t.kind == "lint"]
        assert len(lint_tasks) >= 9
        # the acyclic fig1 sub-scenario rides along as a zero-state search
        assert any(
            t.kind == "reachability" and t.scenario == "fig1" and "subset" in t.params_dict()
            for t in battery
        )

    @pytest.mark.parametrize(
        "task",
        [t for t in build_spec("paper-battery") if t.kind == "lint"],
        ids=lambda t: t.name,
    )
    def test_battery_lint_tasks_meet_expectations(self, task):
        res = execute_task(task)
        assert res.ok, res.error
        assert res.expect_matches is True, (res.verdict, task.expect)
