"""Adaptive routing extension tests (Duato's setting, Section 2/7 context)."""

import pytest

from repro.cdg.adaptive import build_adaptive_cdg, duato_certificate
from repro.cdg.analysis import is_acyclic
from repro.routing.adaptive import FullyAdaptiveMesh, duato_escape_mesh
from repro.routing.base import INJECT, RoutingError
from repro.sim import MessageSpec, SimConfig, Simulator
from repro.sim.traffic import uniform_random_traffic
from repro.topology import mesh


@pytest.fixture(scope="module")
def mesh1vc():
    return mesh((3, 3))


@pytest.fixture(scope="module")
def mesh2vc():
    return mesh((3, 3), vcs=2)


class TestCandidates:
    def test_all_minimal_directions_offered(self, mesh1vc):
        fn = FullyAdaptiveMesh(mesh1vc, 2)
        cands = fn.candidates(INJECT, (0, 0), (2, 2))
        dsts = {c.dst for c in cands}
        assert dsts == {(1, 0), (0, 1)}

    def test_single_direction_when_aligned(self, mesh1vc):
        fn = FullyAdaptiveMesh(mesh1vc, 2)
        cands = fn.candidates(INJECT, (0, 0), (0, 2))
        assert [c.dst for c in cands] == [(0, 1)]

    def test_route_returns_first_candidate(self, mesh1vc):
        fn = FullyAdaptiveMesh(mesh1vc, 2)
        assert fn.route(INJECT, (0, 0), (2, 2)) is fn.candidates(INJECT, (0, 0), (2, 2))[0]

    def test_no_candidates_at_destination(self, mesh1vc):
        fn = FullyAdaptiveMesh(mesh1vc, 2)
        with pytest.raises(RoutingError):
            fn.candidates(INJECT, (1, 1), (1, 1))

    def test_escape_candidate_is_last(self, mesh2vc):
        fn = duato_escape_mesh(mesh2vc, 2)
        cands = fn.candidates(INJECT, (0, 0), (2, 2))
        assert cands[-1].vc == 0  # the escape channel
        assert all(c.vc == 1 for c in cands[:-1])


class TestAdaptiveCDG:
    def test_fully_adaptive_cdg_cyclic(self, mesh1vc):
        cdg = build_adaptive_cdg(FullyAdaptiveMesh(mesh1vc, 2))
        assert not is_acyclic(cdg)

    def test_duato_certificate(self, mesh2vc):
        cert = duato_certificate(duato_escape_mesh(mesh2vc, 2))
        assert not cert.full_cdg_acyclic  # cycles exist in the full CDG ...
        assert cert.escape_cdg_acyclic  # ... but the escape layer is clean
        assert cert.escape_connected
        assert cert.deadlock_free

    def test_certificate_requires_escape(self, mesh1vc):
        with pytest.raises(ValueError, match="escape"):
            duato_certificate(FullyAdaptiveMesh(mesh1vc, 2))


class TestAdaptiveSimulation:
    def test_single_adaptive_message_delivered(self, mesh1vc):
        fn = FullyAdaptiveMesh(mesh1vc, 2)
        res = Simulator(mesh1vc, fn, [MessageSpec(0, (0, 0), (2, 2), length=4)]).run()
        assert res.completed
        assert res.messages[0].latency() == 4 + 4 - 1

    def test_adaptive_avoids_blocked_channel(self, mesh1vc):
        """With the preferred direction held, the header takes the other."""
        fn = FullyAdaptiveMesh(mesh1vc, 2)
        # blocker parks a 30-flit message on (0,0)->(1,0), the probe's
        # preferred (x-first) candidate
        blocker = MessageSpec(0, (0, 0), (2, 0), length=30)
        probe = MessageSpec(1, (0, 0), (1, 1), length=2, inject_time=2)
        res = Simulator(mesh1vc, fn, [blocker, probe], config=SimConfig(max_cycles=200)).run()
        # the probe must not wait for the blocker: it routes via (0,1)
        assert res.messages[1].status.name == "DELIVERED"
        assert res.messages[1].latency() <= 5

    def test_or_knot_deadlock_detected(self):
        """Adaptive OR deadlock: both VC alternatives of every link held.

        A 4-ring with two VCs per link and an adaptive function offering
        both VCs of the clockwise link; two long messages per source fill
        both layers and form a knot (every candidate of every message is
        held by another blocked message).
        """
        from repro.routing.adaptive import AdaptiveRoutingFunction
        from repro.topology import ring

        n = 4
        net = ring(n, vcs=2)

        class AdaptiveRing(AdaptiveRoutingFunction):
            def candidates(self, in_channel, node, dest):
                return self.network.channels_between(node, (node + 1) % n)

            def name(self):
                return "adaptive-ring"

        specs = [
            MessageSpec(2 * i + j, i, (i + 3) % n, length=6)
            for i in range(n)
            for j in range(2)
        ]
        res = Simulator(
            net, AdaptiveRing(net), specs, config=SimConfig(max_cycles=500)
        ).run()
        assert res.deadlocked
        assert res.deadlock.kind == "wait-for-cycle"  # knot found, not quiescence
        assert len(res.deadlock.message_ids) >= 4

    def test_or_semantics_not_fooled_by_single_blocked_alternative(self):
        """Two messages blocked on each other's VC0 but with VC1 free must
        NOT be reported as deadlocked."""
        from repro.routing.adaptive import AdaptiveRoutingFunction
        from repro.topology import ring

        n = 4
        net = ring(n, vcs=2)

        class AdaptiveRing(AdaptiveRoutingFunction):
            def candidates(self, in_channel, node, dest):
                return self.network.channels_between(node, (node + 1) % n)

        specs = [
            MessageSpec(i, i, (i + 2) % n, length=6) for i in range(n)
        ]  # only one message per source: the second VC layer stays free
        res = Simulator(
            net, AdaptiveRing(net), specs, config=SimConfig(max_cycles=500)
        ).run()
        assert not res.deadlocked
        assert res.completed

    def test_duato_escape_delivers_heavy_traffic(self, mesh2vc):
        fn = duato_escape_mesh(mesh2vc, 2)
        specs = uniform_random_traffic(mesh2vc, rate=0.3, cycles=40, length=4, seed=9)
        res = Simulator(mesh2vc, fn, specs, config=SimConfig(max_cycles=20_000)).run()
        assert not res.deadlocked
        assert res.delivered == res.total

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_duato_escape_never_deadlocks(self, mesh2vc, seed):
        fn = duato_escape_mesh(mesh2vc, 2)
        specs = uniform_random_traffic(mesh2vc, rate=0.5, cycles=30, length=5, seed=seed)
        res = Simulator(mesh2vc, fn, specs, config=SimConfig(max_cycles=30_000)).run()
        assert not res.deadlocked
        assert res.delivered == res.total
