"""Lin-McKinley-Ni flow model tests (Section 2's sufficiency-only technique)."""


from repro.cdg.flow_model import certification_gap, deadlock_immune_channels
from repro.core.cyclic_dependency import build_cyclic_dependency_network
from repro.routing import RoutingAlgorithm, clockwise_ring, dimension_order_mesh
from repro.topology import mesh, ring


def test_mesh_dor_fully_certified():
    net = mesh((4, 4))
    alg = RoutingAlgorithm(dimension_order_mesh(net, 2))
    res = deadlock_immune_channels(alg)
    assert res.certifies_deadlock_freedom
    assert res.uncertified == set()
    assert len(res.immune) > 0


def test_ring_cycle_uncertified():
    net = ring(5)
    alg = RoutingAlgorithm(clockwise_ring(net, 5))
    res = deadlock_immune_channels(alg)
    assert not res.certifies_deadlock_freedom
    # the whole ring is one cycle: nothing is immune
    assert res.immune == set()
    assert len(res.uncertified) == 5


def test_fig1_flow_model_stalls_on_the_ring():
    """The paper's Section 2 point: the flow model cannot certify Figure 1
    even though Theorem 1 proves it deadlock-free."""
    cdn = build_cyclic_dependency_network()
    res = deadlock_immune_channels(cdn.algorithm)
    assert not res.certifies_deadlock_freedom
    ring_ids = {c.cid for c in cdn.cycle_channels}
    uncertified_ids = {c.cid for c in res.uncertified}
    # every ring channel is uncertified (no starting point inside the cycle)
    assert ring_ids <= uncertified_ids
    # channels that cannot reach the ring -- the hub's delivery links -- ARE
    # certified: the induction works outward from genuine sinks
    immune_labels = {c.label for c in res.immune}
    assert "hub->D1" in immune_labels
    assert "hub->Src" in immune_labels
    assert len(res.immune) > 0


def test_induction_matches_reachability_characterisation():
    """Immune == cannot reach a CDG cycle (cross-check on Figure 1)."""
    cdn = build_cyclic_dependency_network()
    alg = cdn.algorithm
    res = deadlock_immune_channels(alg)
    gap = certification_gap(alg)
    assert res.uncertified == gap


def test_summary_shape():
    net = mesh((3, 3))
    alg = RoutingAlgorithm(dimension_order_mesh(net, 2))
    s = deadlock_immune_channels(alg).summary()
    assert s["certified"] is True
    assert s["uncertified"] == 0
    assert s["channels"] == s["immune"]
