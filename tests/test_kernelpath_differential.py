"""Differential pin: the kernel search core is bit-identical to its peers.

The compiled :class:`~repro.analysis.kernelpath.KernelEngine` runs the
whole BFS as one fused expand/arbitrate/dedup/deadlock-test loop (numba /
C backend when available, interpreted numpy otherwise).  These tests
assert four-way equivalence against the reference, fast and vector
engines on paper-battery scenarios and randomly generated small specs:
identical ``deadlock_reachable`` verdicts, identical ``states_explored``
counts (symmetry reduction on and off), identical
:class:`SearchLimitExceeded` behaviour, and witnesses equal step-for-step
that replay to a genuine deadlock under the *reference* dynamics.

The kernel has no per-spec width limit below ``MAX_KERNEL_MSGS``
messages, so this suite also pins specs with more than 62 channels --
formerly vector-engine fallbacks -- as bit-identical on the kernel *and*
(since shared-channel mask compression) on the vector engine, plus a
13-message spec whose packed state key overflows int64 (the vector
engine's multi-word byte keys, the kernel's raw-row hash table).

The suite never requires numba: the interpreted tier is the correctness
floor and runs everywhere.  Tests for a specific accelerated tier skip
cleanly when that tier is unavailable.
"""

from __future__ import annotations

from contextlib import contextmanager

import pytest
from hypothesis import given, settings, strategies as st

import repro.analysis.kernelpath as kernelpath_mod
import repro.analysis.vectorpath as vectorpath_mod
from repro.analysis.fastpath import engine_for
from repro.analysis.frontier import frontier_search
from repro.analysis.kernelpath import (
    COUNTERS,
    HAVE_NUMBA,
    MAX_KERNEL_MSGS,
    KernelEngine,
    kernel_available,
    kernel_engine_for,
    resolve_backend,
)
from repro.analysis.reachability import (
    AUTO_COUNTERS,
    SearchLimitExceeded,
    Witness,
    resolve_engine,
    search_deadlock,
)
from repro.analysis.state import CheckerMessage, SystemSpec
from repro.analysis.vectorpath import WideSpecFallbackWarning
from repro.campaign.scenarios import build_scenario

ENGINES = ("reference", "fast", "vector", "kernel")

_HAVE_CC = kernelpath_mod._load_cc_lib() is not None

requires_numba = pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
requires_cc = pytest.mark.skipif(not _HAVE_CC, reason="no working C compiler")


@pytest.fixture(autouse=True)
def _certificates_off(monkeypatch):
    """These tests pin BFS-engine equivalence; the static-certificate
    pre-pass would decide several battery specs with zero search states and
    mask the comparison."""
    monkeypatch.setenv("REPRO_STATIC_CERTIFICATES", "off")


def _battery_specs() -> list[tuple[str, SystemSpec]]:
    """Small paper-battery scenarios spanning both verdicts."""
    fig1 = build_scenario("fig1", {}).messages
    gen1 = build_scenario("gen", {"m": 1}).messages
    overlap = build_scenario(
        "theorem2-overlap", {"ring_n": 6, "entries": (0, 3), "run_lens": (4, 4)}
    ).messages
    return [
        ("fig1-b0", SystemSpec.uniform(fig1, budget=0)),  # unreachable
        ("fig1-b1", SystemSpec.uniform(fig1, budget=1)),  # deadlock
        ("gen1-b0", SystemSpec.uniform(gen1, budget=0)),
        ("gen1-b1", SystemSpec.uniform(gen1, budget=1)),
        ("thm2-overlap-b0", SystemSpec.uniform(overlap, budget=0)),
    ]


BATTERY = _battery_specs()


def _ring_spec(ring_n: int, entries: tuple[int, ...], run_lens: tuple[int, ...],
               budget: int) -> SystemSpec:
    msgs = build_scenario(
        "theorem2-overlap",
        {"ring_n": ring_n, "entries": entries, "run_lens": run_lens},
    ).messages
    return SystemSpec.uniform(msgs, budget=budget)


def _assert_valid_witness(spec: SystemSpec, wit: Witness) -> None:
    """Replay the witness through the *reference* successor relation."""
    cur = spec.initial_state()
    for actions, nxt in zip(wit.steps, wit.states):
        assert (nxt, actions) in spec.successors(cur), (cur, actions)
        cur = nxt
    dead = spec.deadlocked_set(cur)
    assert dead, "witness does not end in a deadlock"
    assert dead == wit.deadlocked


def _four_way(spec: SystemSpec, **kw):
    return {eng: search_deadlock(spec, engine=eng, **kw) for eng in ENGINES}


# ----------------------------------------------------------------------
# battery four-way differential
# ----------------------------------------------------------------------
@pytest.mark.parametrize("label,spec", BATTERY, ids=[b[0] for b in BATTERY])
@pytest.mark.parametrize("symmetry", [False, True], ids=["nosym", "sym"])
def test_battery_verdicts_and_counts(label, spec, symmetry):
    res = _four_way(spec, find_witness=False, symmetry_reduction=symmetry)
    ref = res["reference"]
    for eng in ("fast", "vector", "kernel"):
        assert res[eng].deadlock_reachable == ref.deadlock_reachable, eng
        assert res[eng].states_explored == ref.states_explored, eng


@pytest.mark.parametrize("label,spec", BATTERY, ids=[b[0] for b in BATTERY])
def test_battery_witness_equality_and_replay(label, spec):
    res = _four_way(spec)
    ref = res["reference"]
    for eng in ("fast", "vector", "kernel"):
        got = res[eng]
        assert got.deadlock_reachable == ref.deadlock_reachable, eng
        assert got.states_explored == ref.states_explored, eng
        if not ref.deadlock_reachable:
            assert got.witness is None and ref.witness is None
            continue
        assert got.witness is not None and ref.witness is not None
        assert got.witness.steps == ref.witness.steps, eng
        assert got.witness.states == ref.witness.states, eng
        assert got.witness.deadlocked == ref.witness.deadlocked, eng
        _assert_valid_witness(spec, got.witness)


@pytest.mark.parametrize("cap", [2, 10, 50])
def test_state_cap_is_engine_independent(cap):
    """SearchLimitExceeded parity: all four engines raise at the same count."""
    spec = BATTERY[0][1]
    outcomes = {}
    for eng in ENGINES:
        try:
            res = search_deadlock(
                spec, engine=eng, find_witness=False, max_states=cap
            )
            outcomes[eng] = res.states_explored
        except SearchLimitExceeded:
            outcomes[eng] = "raised"
    for eng in ("fast", "vector", "kernel"):
        assert outcomes[eng] == outcomes["reference"], eng


def test_env_var_selects_kernel(monkeypatch):
    """REPRO_SEARCH_ENGINE=kernel is the same switch as engine="kernel"."""
    spec = BATTERY[1][1]
    explicit = search_deadlock(spec, engine="kernel", find_witness=False)
    monkeypatch.setenv("REPRO_SEARCH_ENGINE", "kernel")
    via_env = search_deadlock(spec, find_witness=False)
    assert via_env.deadlock_reachable == explicit.deadlock_reachable
    assert via_env.states_explored == explicit.states_explored


# ----------------------------------------------------------------------
# wide specs: > 62 channels, formerly vector-engine fallbacks
# ----------------------------------------------------------------------
WIDE_RINGS = [
    # (label, ring_n, entries, run_lens): num_bits 69..83, all > 62
    ("ring70", 70, (0, 35), (40, 40)),
    ("ring66", 66, (0, 22, 44), (25, 25, 25)),
]


@pytest.mark.parametrize(
    "label,ring_n,entries,run_lens", WIDE_RINGS, ids=[w[0] for w in WIDE_RINGS]
)
@pytest.mark.parametrize("budget", [0, 1], ids=["b0", "b1"])
def test_wide_channel_specs_bit_identical(label, ring_n, entries, run_lens, budget):
    """>62-channel specs run on every optimized engine bit-identically to
    the reference oracle (kernel: multi-word occupancy; vector:
    shared-channel mask compression)."""
    spec = _ring_spec(ring_n, entries, run_lens, budget)
    assert engine_for(spec).num_bits > 62
    ref = search_deadlock(spec, engine="reference", find_witness=False)
    for eng in ("fast", "vector", "kernel"):
        got = search_deadlock(spec, engine=eng, find_witness=False)
        assert got.deadlock_reachable == ref.deadlock_reachable, eng
        assert got.states_explored == ref.states_explored, eng


def test_wide_channel_witnesses_bit_identical():
    spec = _ring_spec(70, (0, 35), (40, 40), budget=0)
    ref = search_deadlock(spec, engine="reference")
    assert ref.deadlock_reachable and ref.witness is not None
    for eng in ("fast", "vector", "kernel"):
        got = search_deadlock(spec, engine=eng)
        assert got.witness is not None
        assert got.witness.steps == ref.witness.steps, eng
        assert got.witness.states == ref.witness.states, eng
        assert got.witness.deadlocked == ref.witness.deadlocked, eng
        _assert_valid_witness(spec, got.witness)


def test_wide_channel_spec_no_vector_fallback():
    """Shared-channel mask compression lifted the 62-channel limit: a
    >62-channel spec whose *shared* channels fit must run on the wave
    machine, not fall back."""
    spec = _ring_spec(70, (0, 35), (40, 40), budget=0)
    veng = vectorpath_mod.VectorEngine(spec, fast=engine_for(spec))
    assert engine_for(spec).num_bits > 62
    assert veng.vectorizable
    assert veng.num_bits_eff <= 62
    before = vectorpath_mod.COUNTERS["vectorpath.fallback.searches"]
    veng.search()
    assert vectorpath_mod.COUNTERS["vectorpath.fallback.searches"] == before


def test_wide_key_spec_cap_parity():
    """A 13-message spec whose packed state key overflows int64 (wide
    byte-string keys on the vector engine, raw-row hash table on the
    kernel) hits a state cap identically on all four engines.

    The full search space is tractable only for the fast/kernel cores,
    so the differential here is the cap behaviour, with the vector
    engine's wave machine forced on so the wide-key store really runs.
    The reference engine sits this one out: its per-state joint-action
    enumeration is exponential in the 13 simultaneous movers, so it
    cannot reach even a 50-state cap in test time (its equivalence is
    pinned on small specs by the hypothesis differential below).
    """
    spec = _ring_spec(13, tuple(range(13)), (4,) * 13, budget=0)
    veng = vectorpath_mod.VectorEngine(spec, fast=engine_for(spec))
    assert veng.vectorizable and veng._wide_keys
    with _forced_wide():
        for eng in ("fast", "vector", "kernel"):
            with pytest.raises(SearchLimitExceeded, match="2000"):
                search_deadlock(
                    spec, engine=eng, find_witness=False, max_states=2000
                )


# ----------------------------------------------------------------------
# fallback behaviour: structured warning + counters
# ----------------------------------------------------------------------
def test_kernel_fallback_warns_with_size_requirement(monkeypatch):
    """A spec over MAX_KERNEL_MSGS falls back loudly: a structured
    WideSpecFallbackWarning carrying the spec's size, plus counters.

    Shrinking the limit stands in for a 65-message spec, which the
    fallback's own fast engine could not search in test time anyway.
    """
    monkeypatch.setattr(kernelpath_mod, "MAX_KERNEL_MSGS", 2)
    spec = BATTERY[0][1]  # fig1: 4 messages
    keng = KernelEngine(spec, fast=engine_for(spec))
    assert not keng.kernelizable
    before = COUNTERS["kernelpath.fallback.searches"]
    with pytest.warns(WideSpecFallbackWarning) as rec:
        got = keng.search()
    assert COUNTERS["kernelpath.fallback.searches"] == before + 1
    warning = rec[0].message
    assert warning.engine == "kernel"
    assert warning.n == 4
    assert warning.max_msgs == 2
    assert "4" in str(warning) and "kernel" in str(warning)
    # the fallback result is the fast engine's, bit for bit
    assert got == engine_for(spec).search()
    # witness fallback warns too
    with pytest.warns(WideSpecFallbackWarning):
        wit = keng.search_witness()
    assert wit == engine_for(spec).search_witness()


def test_search_jobs_refuses_kernel_engine():
    """jobs>1 + kernel: loud refusal (warning + counter), serial result."""
    spec = BATTERY[0][1]
    serial = engine_for(spec).search()
    before = COUNTERS["kernelpath.fallback.jobs"]
    with pytest.warns(RuntimeWarning, match="does not compose"):
        par = frontier_search(spec, jobs=2, engine="kernel")
    assert par == serial
    assert COUNTERS["kernelpath.fallback.jobs"] == before + 1
    assert frontier_search(spec, jobs=1, engine="kernel") == serial


def test_search_deadlock_jobs_with_kernel_warns():
    spec = BATTERY[0][1]
    serial = search_deadlock(spec, engine="fast", find_witness=False)
    with pytest.warns(RuntimeWarning, match="does not compose"):
        res = search_deadlock(
            spec, engine="kernel", find_witness=False, jobs=2
        )
    assert res.states_explored == serial.states_explored


# ----------------------------------------------------------------------
# backend tiers
# ----------------------------------------------------------------------
def test_resolve_backend_auto_never_fails():
    """auto always resolves to *something*; python is the floor."""
    assert resolve_backend("auto") in ("numba", "cc", "python")
    assert resolve_backend("python") == "python"
    assert resolve_backend(None) in ("numba", "cc", "python")


def test_resolve_backend_rejects_unknown():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        resolve_backend("fortran")


def test_resolve_backend_unavailable_tier_raises(monkeypatch):
    if not HAVE_NUMBA:
        with pytest.raises(RuntimeError, match="numba"):
            resolve_backend("numba")
    monkeypatch.setattr(kernelpath_mod, "_load_cc_lib", lambda: None)
    with pytest.raises(RuntimeError, match="no C compiler"):
        resolve_backend("cc")


def test_python_tier_matches_fast(monkeypatch):
    """Pin the interpreted tier explicitly -- the correctness floor that
    runs with no compiler and no numba."""
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "python")
    kernelpath_mod.clear_caches()
    try:
        spec = BATTERY[1][1]
        keng = kernel_engine_for(spec)
        before = COUNTERS["kernelpath.searches.python"]
        got = keng.search()
        assert keng.last_backend == "python"
        assert COUNTERS["kernelpath.searches.python"] == before + 1
        assert got == engine_for(spec).search()
    finally:
        kernelpath_mod.clear_caches()


@requires_cc
def test_cc_tier_matches_fast(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "cc")
    kernelpath_mod.clear_caches()
    try:
        spec = BATTERY[1][1]
        keng = kernel_engine_for(spec)
        before = COUNTERS["kernelpath.searches.cc"]
        got = keng.search()
        assert keng.last_backend == "cc"
        assert COUNTERS["kernelpath.searches.cc"] == before + 1
        assert got == engine_for(spec).search()
        # witness path too: the C kernel returns the parent chain
        ref = search_deadlock(spec, engine="fast")
        wit = search_deadlock(spec, engine="kernel")
        assert wit.witness is not None and ref.witness is not None
        assert wit.witness.steps == ref.witness.steps
    finally:
        kernelpath_mod.clear_caches()


@requires_numba
def test_numba_tier_matches_fast(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numba")
    kernelpath_mod.clear_caches()
    try:
        spec = BATTERY[1][1]
        keng = kernel_engine_for(spec)
        got = keng.search()
        assert keng.last_backend == "numba"
        assert got == engine_for(spec).search()
    finally:
        kernelpath_mod.clear_caches()


# ----------------------------------------------------------------------
# auto engine selection
# ----------------------------------------------------------------------
def test_resolve_engine_auto_prefers_kernel_when_accelerated():
    spec = BATTERY[0][1]
    before = dict(AUTO_COUNTERS)
    resolved = resolve_engine("auto", spec)
    if kernel_available():
        assert resolved == "kernel"
        assert (
            AUTO_COUNTERS["search.engine.auto.kernel"]
            == before["search.engine.auto.kernel"] + 1
        )
    else:
        assert resolved in ("vector", "fast")


def test_resolve_engine_auto_without_kernel(monkeypatch):
    """auto degrades kernel -> vector -> fast as tiers disappear."""
    spec = BATTERY[0][1]
    monkeypatch.setattr(
        "repro.analysis.reachability._kernel_available", lambda: False
    )
    before = dict(AUTO_COUNTERS)
    assert resolve_engine("auto", spec) == "vector"
    assert (
        AUTO_COUNTERS["search.engine.auto.vector"]
        == before["search.engine.auto.vector"] + 1
    )
    # an unvectorizable spec (too many messages) lands on fast
    msgs = tuple(
        CheckerMessage(path=(i % 3,), length=1, tag=f"M{i}")
        for i in range(vectorpath_mod.MAX_VECTOR_MSGS + 1)
    )
    wide = SystemSpec.uniform(msgs, budget=0)
    assert resolve_engine("auto", wide) == "fast"
    assert (
        AUTO_COUNTERS["search.engine.auto.fast"]
        == before["search.engine.auto.fast"] + 1
    )


def test_auto_engine_env_and_explicit_agree(monkeypatch):
    spec = BATTERY[1][1]
    explicit = search_deadlock(spec, engine="auto", find_witness=False)
    monkeypatch.setenv("REPRO_SEARCH_ENGINE", "auto")
    via_env = search_deadlock(spec, find_witness=False)
    assert via_env.deadlock_reachable == explicit.deadlock_reachable
    assert via_env.states_explored == explicit.states_explored
    # and auto is bit-identical to every pinned engine
    ref = search_deadlock(spec, engine="reference", find_witness=False)
    assert explicit.states_explored == ref.states_explored


# ----------------------------------------------------------------------
# integration: classify/delay/campaign plumbing
# ----------------------------------------------------------------------
def test_classify_and_delay_thread_kernel_engine():
    """The engine knob changes execution only: classify/delay results are
    identical under the kernel engine."""
    from repro.analysis.classify import classify_configuration
    from repro.analysis.delay import min_delay_to_deadlock

    msgs = build_scenario("fig1", {}).messages
    by_engine = {}
    for eng in ("fast", "kernel"):
        reachable, cls_res = classify_configuration(msgs, engine=eng)
        dly = min_delay_to_deadlock(msgs, max_delay=2, engine=eng)
        by_engine[eng] = (
            reachable,
            cls_res.states_explored,
            dly.min_delay,
            {k: r.states_explored for k, r in dly.results.items()},
        )
    assert by_engine["kernel"] == by_engine["fast"]


def test_execute_task_engine_knob_not_in_hash():
    """engine is an execution knob: task identity (and thus the cache key)
    must not depend on it, while results must not differ either."""
    from repro.campaign.specs import build_spec
    from repro.campaign.tasks import execute_task

    task = next(t for t in build_spec("paper-battery") if t.kind == "reachability")
    fast = execute_task(task, engine="fast")
    for eng in ("kernel", "auto"):
        got = execute_task(task, engine=eng)
        assert got.task_hash == fast.task_hash, eng
        assert got.detail.get("states_explored") == fast.detail.get(
            "states_explored"
        ), eng


def test_kernel_counters_move():
    """A kernel search records which tier ran it."""
    spec = BATTERY[0][1]
    before = dict(COUNTERS)
    KernelEngine(spec, fast=engine_for(spec)).search()
    ran = sum(
        COUNTERS[k] - before[k]
        for k in (
            "kernelpath.searches.numba",
            "kernelpath.searches.cc",
            "kernelpath.searches.python",
        )
    )
    assert ran == 1


# ----------------------------------------------------------------------
# randomly generated small specs (four-way)
# ----------------------------------------------------------------------
@st.composite
def small_specs(draw) -> SystemSpec:
    num_channels = draw(st.integers(min_value=2, max_value=5))
    n_msgs = draw(st.integers(min_value=1, max_value=3))
    messages = []
    budgets = []
    for mi in range(n_msgs):
        plen = draw(st.integers(min_value=1, max_value=min(3, num_channels)))
        path = tuple(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=num_channels - 1),
                    min_size=plen,
                    max_size=plen,
                    unique=True,
                )
            )
        )
        length = draw(st.integers(min_value=1, max_value=3))
        messages.append(CheckerMessage(path=path, length=length, tag=f"M{mi}"))
        budgets.append(draw(st.integers(min_value=0, max_value=2)))
    return SystemSpec(messages=tuple(messages), budgets=tuple(budgets))


@contextmanager
def _forced_wide():
    """Drive the vector engine's wave machine on tiny specs too, so the
    hypothesis cases compare all four *real* cores, not vector's narrow
    prologue."""
    old = (vectorpath_mod.MIN_VECTOR_FRONTIER, vectorpath_mod.MAX_DRAIN_ROWS)
    vectorpath_mod.MIN_VECTOR_FRONTIER = 1
    vectorpath_mod.MAX_DRAIN_ROWS = 2
    try:
        yield
    finally:
        vectorpath_mod.MIN_VECTOR_FRONTIER, vectorpath_mod.MAX_DRAIN_ROWS = old


@settings(max_examples=25, deadline=None)
@given(spec=small_specs(), symmetry=st.booleans())
def test_random_specs_four_way_counts(spec, symmetry):
    res = {}
    with _forced_wide():
        for eng in ENGINES:
            try:
                got = search_deadlock(
                    spec,
                    engine=eng,
                    find_witness=False,
                    symmetry_reduction=symmetry,
                    max_states=60_000,
                )
                res[eng] = (got.deadlock_reachable, got.states_explored)
            except SearchLimitExceeded:
                res[eng] = "raised"
    for eng in ("fast", "vector", "kernel"):
        assert res[eng] == res["reference"], eng


@settings(max_examples=15, deadline=None)
@given(spec=small_specs())
def test_random_specs_four_way_witnesses(spec):
    with _forced_wide():
        ref = search_deadlock(spec, engine="reference", max_states=60_000)
        for eng in ("fast", "vector", "kernel"):
            got = search_deadlock(spec, engine=eng, max_states=60_000)
            assert got.deadlock_reachable == ref.deadlock_reachable, eng
            assert got.states_explored == ref.states_explored, eng
            if ref.deadlock_reachable:
                assert got.witness is not None and ref.witness is not None
                assert got.witness.steps == ref.witness.steps, eng
                assert got.witness.states == ref.witness.states, eng
                _assert_valid_witness(spec, got.witness)
