"""Differential testing: engine vs checker on randomized scenarios.

The abstract checker and the flit-level engine were written independently
against the same semantics; these tests drive both with randomized message
sets over randomized topologies and require bit-for-bit agreement on
(injected, consumed) counters every cycle under the shared deterministic
policy, plus verdict agreement on deadlock.
"""

import random

import pytest

from repro.analysis import CheckerMessage, SystemSpec, search_deadlock
from repro.routing import RoutingAlgorithm, clockwise_ring, dimension_order_mesh
from repro.sim import MessageSpec, SimConfig, Simulator
from repro.topology import mesh, ring


from repro.sim.arbitration import ArbitrationPolicy


class LowestIdArbitration(ArbitrationPolicy):
    """Deterministic tie-break by message id (no request-age memory).

    The engine's FIFO default remembers *when* each message first requested
    a channel, which a memoryless checker policy cannot mimic; for lockstep
    comparison both sides use lowest-id-wins instead.
    """

    def choose(self, channel, requesters, cycle):
        return min(requesters, key=lambda m: m.mid)


def eager(succs):
    """Deterministic adversary: everything moves as early as possible,
    lowest message id wins ties -- the checker-side mirror of
    :class:`LowestIdArbitration`."""

    def key(sa):
        s, _ = sa
        return tuple((m[0], m[2]) for m in s)

    return max(succs, key=key)[0]


def random_ring_scenario(rng):
    n = rng.randint(4, 9)
    net = ring(n)
    fn = clockwise_ring(net, n)
    alg = RoutingAlgorithm(fn)
    k = rng.randint(2, 4)
    specs = []
    for mid in range(k):
        src = rng.randrange(n)
        hops = rng.randint(1, n - 1)
        specs.append(
            MessageSpec(mid, src, (src + hops) % n, length=rng.randint(1, 5))
        )
    return net, fn, alg, specs


def random_mesh_scenario(rng):
    net = mesh((3, 3))
    fn = dimension_order_mesh(net, 2)
    alg = RoutingAlgorithm(fn)
    nodes = net.nodes
    k = rng.randint(2, 4)
    specs = []
    for mid in range(k):
        src, dst = rng.sample(nodes, 2)
        specs.append(MessageSpec(mid, src, dst, length=rng.randint(1, 5)))
    return net, fn, alg, specs


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("maker", [random_ring_scenario, random_mesh_scenario])
def test_lockstep_equivalence(seed, maker):
    rng = random.Random(seed)
    net, fn, alg, specs = maker(rng)
    cmsgs = [
        CheckerMessage.from_channels(
            alg.path(s.src, s.dst), s.length, tag=f"m{s.mid}"
        )
        for s in specs
    ]
    spec = SystemSpec.uniform(cmsgs)
    sim = Simulator(
        net,
        fn,
        specs,
        config=SimConfig(max_cycles=400),
        arbitration=LowestIdArbitration(),
    )

    state = spec.initial_state()
    for t in range(80):
        succs = spec.successors(state)
        state = eager([(s, a) for s, a in succs])
        sim.step()
        for i in range(len(specs)):
            h, inj, cons, _b = state[i]
            m = sim.messages[i]
            assert m.flits_injected == inj, f"seed={seed} t={t} msg{i} injected"
            assert m.flits_consumed == cons, f"seed={seed} t={t} msg{i} consumed"
        if all(spec.is_done(state, i) for i in range(len(specs))):
            break

    engine_dead = spec.deadlocked_set(state)
    checker_says = bool(engine_dead)
    # and the final occupancy maps to the same channels
    occ = spec.occupied_channels(state)
    for cid, owner in occ.items():
        ch = net.channel(cid)
        assert sim.channel_owner(ch) == owner, f"seed={seed} channel {cid}"


@pytest.mark.parametrize("seed", range(10))
def test_deadlock_verdict_agreement(seed):
    """Engine deadlock under the eager schedule implies checker reachability;
    checker unreachability implies the engine run completes."""
    rng = random.Random(1000 + seed)
    net, fn, alg, specs = random_ring_scenario(rng)
    cmsgs = [
        CheckerMessage.from_channels(alg.path(s.src, s.dst), s.length, tag=f"m{s.mid}")
        for s in specs
    ]
    verdict = search_deadlock(
        SystemSpec.uniform(cmsgs), find_witness=False, max_states=4_000_000
    )
    res = Simulator(net, fn, specs, config=SimConfig(max_cycles=2000)).run()
    if res.deadlocked:
        assert verdict.deadlock_reachable
    if not verdict.deadlock_reachable:
        assert res.completed
