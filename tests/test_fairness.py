"""Fairness / starvation tests (paper Assumption 5).

Assumption 5 requires arbitration to prevent starvation.  The FIFO default
satisfies it; the adversarial policy -- used deliberately to construct
deadlocks -- does not, and the wait metrics make the difference visible.
"""

from repro.routing import clockwise_ring
from repro.sim import (
    AdversarialArbitration,
    FifoArbitration,
    MessageSpec,
    SimConfig,
    Simulator,
)
from repro.topology import ring


def hot_channel_scenario(n_contenders: int = 6, length: int = 4):
    """Many messages all needing channel 0->1 of a ring."""
    return [
        MessageSpec(i, 0, 2, length=length, inject_time=0, tag=f"m{i}")
        for i in range(n_contenders)
    ]


def test_fifo_bounds_waiting():
    net = ring(6)
    specs = hot_channel_scenario()
    res = Simulator(net, clockwise_ring(net, 6), specs, arbitration=FifoArbitration()).run()
    assert res.completed
    # with FIFO, service order is arrival order: the k-th message waits
    # about k * length cycles, never more than the whole backlog
    backlog = len(specs) * (4 + 1)
    for m in res.messages.values():
        assert m.max_consecutive_wait <= backlog


def test_fifo_serves_in_arrival_order():
    net = ring(6)
    specs = hot_channel_scenario(4)
    res = Simulator(net, clockwise_ring(net, 6), specs, arbitration=FifoArbitration()).run()
    starts = {m.mid: m.inject_cycle for m in res.messages.values()}
    # all requested at cycle 0; FIFO tie-break is by mid, so injection
    # cycles are monotone in message id
    order = [starts[i] for i in range(4)]
    assert order == sorted(order)


def test_adversarial_policy_can_starve():
    """Preferring later messages indefinitely postpones the unpreferred one."""
    net = ring(6)
    # a stream of preferred messages plus one unpreferred victim
    specs = [
        MessageSpec(i, 0, 2, length=4, inject_time=i * 2, tag="vip") for i in range(8)
    ]
    specs.append(MessageSpec(99, 0, 3, length=2, inject_time=0, tag="victim"))
    arb = AdversarialArbitration(prefer=["vip"])
    res = Simulator(
        net, clockwise_ring(net, 6), specs, arbitration=arb,
        config=SimConfig(max_cycles=4000),
    ).run()
    assert res.completed  # the stream is finite, so the victim finishes...
    victim = res.messages[99]
    vip_waits = max(
        m.max_consecutive_wait for m in res.messages.values() if m.spec.tag == "vip"
    )
    # ...but only after out-waiting every preferred message
    assert victim.inject_cycle > max(
        m.inject_cycle for m in res.messages.values() if m.spec.tag == "vip"
    )
    assert victim.spec.inject_time == 0


def test_wait_metrics_zero_when_uncontended():
    net = ring(6)
    res = Simulator(net, clockwise_ring(net, 6), [MessageSpec(0, 0, 3, length=4)]).run()
    m = res.messages[0]
    assert m.wait_cycles == 0
    assert m.max_consecutive_wait == 0
