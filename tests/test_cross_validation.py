"""Checker vs engine cross-validation.

The abstract state model and the flit-level engine implement the same
semantics; these tests hold them together:

* deterministic trajectories match cycle-for-cycle on shared scenarios;
* every checker deadlock witness replays to a real engine deadlock;
* engine deadlocks imply checker reachability.
"""

import pytest

from repro.analysis import SystemSpec, search_deadlock
from repro.analysis.schedules import replay_witness
from repro.analysis.state import CheckerMessage
from repro.core.cyclic_dependency import build_cyclic_dependency_network
from repro.core.generalized import build_generalized
from repro.core.two_message import build_two_message_config
from repro.core.within_cycle import theorem2_default
from repro.routing import RoutingAlgorithm, clockwise_ring
from repro.sim import MessageSpec, Simulator
from repro.topology import ring


def checker_trajectory(spec, choose):
    """Follow a deterministic policy `choose` through the successor relation."""
    state = spec.initial_state()
    trace = [state]
    for _ in range(200):
        succs = spec.successors(state)
        state = choose(state, succs)
        trace.append(state)
        if all(spec.is_done(state, i) for i in range(len(spec.messages))):
            break
    return trace


def eager(state, succs):
    """Inject and advance everything as early as possible; lowest id wins ties."""
    # prefer the successor where the vector of per-message progress is max,
    # comparing message 0 first (lowest id priority on conflicts)
    def key(sa):
        s, _ = sa
        return tuple((m[0], m[2]) for m in s)

    return max(succs, key=key)[0]


class TestDeterministicEquivalence:
    @pytest.mark.parametrize(
        "starts,length",
        [((0, 0), 3), ((0, 2), 2), ((0, 1), 4)],
    )
    def test_ring_two_messages_match_engine(self, starts, length):
        """Eager checker trajectory matches the FIFO engine on a ring."""
        n = 8
        net = ring(n)
        fn = clockwise_ring(net, n)
        alg = RoutingAlgorithm(fn)
        hops = 4
        srcs = [starts[0], starts[1]]
        paths = [alg.path(s, (s + hops) % n) for s in srcs]
        cmsgs = [
            CheckerMessage.from_channels(p, length, tag=f"m{i}")
            for i, p in enumerate(paths)
        ]
        spec = SystemSpec.uniform(cmsgs)
        trace = checker_trajectory(spec, eager)

        specs = [
            MessageSpec(i, srcs[i], (srcs[i] + hops) % n, length=length)
            for i in range(2)
        ]
        sim = Simulator(net, fn, specs)
        for t, state in enumerate(trace[1:]):
            sim.step()
            for i, (h, inj, cons, _b) in enumerate(state):
                m = sim.messages[i]
                assert m.flits_injected == inj, f"t={t} msg{i} inj"
                assert m.flits_consumed == cons, f"t={t} msg{i} cons"

    def test_engine_deadlock_implies_checker_reachable(self):
        n = 6
        net = ring(n)
        fn = clockwise_ring(net, n)
        alg = RoutingAlgorithm(fn)
        specs = [MessageSpec(i, i, (i + 3) % n, length=3) for i in range(n)]
        res = Simulator(net, fn, specs).run()
        assert res.deadlocked
        cmsgs = [
            CheckerMessage.from_channels(alg.path(s.src, s.dst), s.length, tag=f"m{s.mid}")
            for s in specs
        ]
        chk = search_deadlock(SystemSpec.uniform(cmsgs), find_witness=False)
        assert chk.deadlock_reachable


class TestWitnessReplay:
    def test_two_message_witness_replays(self):
        c = build_two_message_config()
        res = search_deadlock(SystemSpec.uniform(c.checker_messages()))
        assert res.deadlock_reachable
        sim = replay_witness(res.witness, c.network, c.routing, c.message_pairs)
        assert sim.deadlocked

    def test_theorem2_witness_replays(self):
        c = theorem2_default()
        res = search_deadlock(SystemSpec.uniform(c.checker_messages()))
        assert res.deadlock_reachable
        sim = replay_witness(res.witness, c.network, c.routing, c.message_pairs)
        assert sim.deadlocked

    def test_generalized_delay_witness_replays(self):
        c = build_generalized(1)
        res = search_deadlock(SystemSpec.uniform(c.checker_messages(), budget=1))
        assert res.deadlock_reachable
        sim = replay_witness(res.witness, c.network, c.routing, c.message_pairs)
        assert sim.deadlocked

    def test_fig1_delay_witness_replays(self):
        cdn = build_cyclic_dependency_network()
        msgs = cdn.checker_messages()
        res = search_deadlock(SystemSpec.uniform(msgs, budget=1))
        assert res.deadlock_reachable  # Fig 1 deadlocks with 1 cycle of delay
        sim = replay_witness(
            res.witness, cdn.network, cdn.routing, list(cdn.message_pairs.values())
        )
        assert sim.deadlocked

    def test_witness_to_schedule_requires_endpoints(self):
        from repro.analysis.schedules import witness_to_schedule

        c = build_two_message_config()
        res = search_deadlock(SystemSpec.uniform(c.checker_messages()))
        with pytest.raises(ValueError, match="endpoints"):
            witness_to_schedule(res.witness)
