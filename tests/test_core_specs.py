"""Parametric shared-cycle builder tests."""

import pytest

from repro.core.specs import CycleMessageSpec, build_shared_cycle


def test_spec_validation():
    with pytest.raises(ValueError):
        CycleMessageSpec(approach_len=0, hold_len=2)
    with pytest.raises(ValueError):
        CycleMessageSpec(approach_len=1, hold_len=0)


def test_needs_two_messages():
    with pytest.raises(ValueError, match="at least two"):
        build_shared_cycle([CycleMessageSpec(approach_len=1, hold_len=2)])


@pytest.fixture
def basic():
    return build_shared_cycle(
        [
            CycleMessageSpec(approach_len=2, hold_len=3, label="A"),
            CycleMessageSpec(approach_len=3, hold_len=4, label="B"),
        ]
    )


def test_ring_size_is_sum_of_holds(basic):
    assert len(basic.cycle_channels) == 7


def test_shared_channel_first_on_every_path(basic):
    alg = basic.algorithm
    for src, dst in basic.message_pairs:
        assert alg.path(src, dst)[0] is basic.shared_channel


def test_approach_lengths(basic):
    alg = basic.algorithm
    ring_ids = {c.cid for c in basic.cycle_channels}
    for (src, dst), spec in zip(basic.message_pairs, basic.specs):
        path = alg.path(src, dst)
        first_ring = next(i for i, c in enumerate(path) if c.cid in ring_ids)
        assert first_ring - 1 == spec.approach_len


def test_blocking_structure(basic):
    """Message i's path ends one node past message i+1's entry."""
    alg = basic.algorithm
    n = len(basic.message_pairs)
    for i in range(n):
        nxt = (i + 1) % n
        entry_next = basic.cycle_channels[basic.entry_positions[nxt]]
        path = alg.path(*basic.message_pairs[i])
        assert path[-1].cid == entry_next.cid


def test_in_cycle_path_length(basic):
    alg = basic.algorithm
    ring_ids = {c.cid for c in basic.cycle_channels}
    for (src, dst), spec in zip(basic.message_pairs, basic.specs):
        path = alg.path(src, dst)
        assert sum(1 for c in path if c.cid in ring_ids) == spec.hold_len + 1


def test_min_lengths(basic):
    assert basic.min_lengths() == [3, 4]


def test_checker_messages_default_and_custom(basic):
    msgs = basic.checker_messages()
    assert [m.length for m in msgs] == [3, 4]
    msgs2 = basic.checker_messages(lengths=[5, 6])
    assert [m.length for m in msgs2] == [5, 6]
    with pytest.raises(ValueError):
        basic.checker_messages(lengths=[1])


def test_labels_autofilled():
    c = build_shared_cycle(
        [CycleMessageSpec(approach_len=1, hold_len=2)] * 2
    )
    assert [s.label for s in c.specs] == ["M1", "M2"]


def test_non_shared_message_gets_own_source():
    c = build_shared_cycle(
        [
            CycleMessageSpec(approach_len=2, hold_len=3, label="A"),
            CycleMessageSpec(approach_len=1, hold_len=3, uses_shared=False, label="E"),
            CycleMessageSpec(approach_len=3, hold_len=3, label="B"),
        ]
    )
    srcs = [p[0] for p in c.message_pairs]
    assert srcs[0] == "Src" and srcs[2] == "Src"
    assert srcs[1] == "S2"
    alg = c.algorithm
    assert c.shared_channel not in alg.path(*c.message_pairs[1])


def test_approach_chains_are_private(basic):
    """No channel outside the ring and cs is shared between messages."""
    alg = basic.algorithm
    ring_ids = {c.cid for c in basic.cycle_channels}
    seen: dict[int, int] = {}
    for i, (src, dst) in enumerate(basic.message_pairs):
        for c in alg.path(src, dst):
            if c.cid in ring_ids or c is basic.shared_channel:
                continue
            assert seen.setdefault(c.cid, i) == i
