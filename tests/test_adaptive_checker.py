"""Adaptive exhaustive checker tests (Section 7 extension)."""

import pytest

from repro.analysis.adaptive_state import (
    AdaptiveMessage,
    AdaptiveSystem,
    search_adaptive_deadlock,
)
from repro.analysis.reachability import SearchLimitExceeded
from repro.routing.adaptive import AdaptiveRoutingFunction, FullyAdaptiveMesh
from repro.topology import mesh, ring


class AdaptiveRing(AdaptiveRoutingFunction):
    """Either VC of the clockwise link of a ring."""

    def __init__(self, network, n):
        super().__init__(network)
        self.n = n

    def candidates(self, in_channel, node, dest):
        return self.network.channels_between(node, (node + 1) % self.n)

    def name(self):
        return f"adaptive-ring{self.n}"


class TestBasics:
    def test_message_validation(self):
        with pytest.raises(ValueError):
            AdaptiveMessage("A", "A", 2)
        with pytest.raises(ValueError):
            AdaptiveMessage("A", "B", 0)

    def test_single_message_never_deadlocks(self):
        net = mesh((3, 3))
        fn = FullyAdaptiveMesh(net, 2)
        res = search_adaptive_deadlock(fn, [AdaptiveMessage((0, 0), (2, 2), 3)])
        assert not res.deadlock_reachable
        assert res.states_explored > 1

    def test_occupancy_tracks_taken_path(self):
        net = ring(4, vcs=2)
        fn = AdaptiveRing(net, 4)
        system = AdaptiveSystem(fn, [AdaptiveMessage(0, 2, 2, tag="a")])
        c0 = net.channels_between(0, 1)[0]
        c1 = net.channels_between(1, 2)[0]
        state = (((c0.cid, c1.cid), 2, 0, 0),)
        occ = system.occupied(state)
        assert occ == {c0.cid: 0, c1.cid: 0}


class TestDeadlockVerdicts:
    def test_adaptive_ring_overload_deadlock_reachable(self):
        """Both VC layers can be filled: the knot is reachable."""
        net = ring(3, vcs=2)
        fn = AdaptiveRing(net, 3)
        msgs = [
            AdaptiveMessage(i, (i + 2) % 3, 2, tag=f"m{i}{j}")
            for i in range(3)
            for j in range(2)
        ]
        res = search_adaptive_deadlock(fn, msgs, max_states=400_000)
        assert res.deadlock_reachable
        assert len(res.deadlocked_tags) >= 3

    def test_single_layer_load_is_safe(self):
        """With one message per source the second VC layer always offers an
        escape: no schedule deadlocks (exhaustively verified)."""
        net = ring(3, vcs=2)
        fn = AdaptiveRing(net, 3)
        msgs = [AdaptiveMessage(i, (i + 2) % 3, 2, tag=f"m{i}") for i in range(3)]
        res = search_adaptive_deadlock(fn, msgs, max_states=400_000)
        assert not res.deadlock_reachable

    def test_agrees_with_oblivious_checker_on_degenerate_case(self):
        """Single-candidate adaptive == oblivious: verdicts must coincide."""
        from repro.analysis import CheckerMessage, SystemSpec, search_deadlock
        from repro.routing import RoutingAlgorithm, clockwise_ring

        n = 4
        net = ring(n)  # one VC: the adaptive ring degenerates to oblivious
        fn = AdaptiveRing(net, n)
        msgs = [AdaptiveMessage(i, (i + 3) % n, 3, tag=f"m{i}") for i in range(n)]
        # (single-candidate adaptive: state space stays small)
        adaptive = search_adaptive_deadlock(fn, msgs, max_states=400_000)

        alg = RoutingAlgorithm(clockwise_ring(net, n))
        omsgs = [
            CheckerMessage.from_channels(alg.path(i, (i + 3) % n), 3, tag=f"m{i}")
            for i in range(n)
        ]
        oblivious = search_deadlock(SystemSpec.uniform(omsgs), find_witness=False)
        assert adaptive.deadlock_reachable == oblivious.deadlock_reachable is True

    def test_budget_search_terminates(self):
        """A small stall budget keeps the search finite and sound."""
        net = ring(3, vcs=2)
        fn = AdaptiveRing(net, 3)
        msgs = [AdaptiveMessage(i, (i + 2) % 3, 2, tag=f"m{i}") for i in range(3)]
        res = search_adaptive_deadlock(fn, msgs, budget=1, max_states=400_000)
        assert not res.deadlock_reachable  # single layer: still safe


class TestGuards:
    def test_state_cap(self):
        net = ring(3, vcs=2)
        fn = AdaptiveRing(net, 3)
        msgs = [
            AdaptiveMessage(i, (i + 2) % 3, 2, tag=f"m{i}{j}")
            for i in range(3)
            for j in range(2)
        ]
        with pytest.raises(SearchLimitExceeded):
            search_adaptive_deadlock(fn, msgs, max_states=50)
