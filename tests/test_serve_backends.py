"""CacheBackend conformance: dir / memory LRU / sqlite / tiered behave alike."""

import json
import os

import pytest

from repro.campaign.cache import (
    CacheBackend,
    MemoryLRUCache,
    ResultCache,
    SqliteCache,
    TieredCache,
    make_backend,
    schema_salt,
)
from repro.campaign.tasks import CampaignTask, TaskResult

TASK = CampaignTask.make(
    "reachability", "fig2-pair", d1=2, d2=1, hold=2, expect="deadlock"
)

BACKENDS = ("dir", "memory", "sqlite", "tiered")


def _result(task=TASK, **kw):
    base = dict(
        task_hash=task.task_hash,
        name=task.name,
        kind=task.kind,
        scenario=task.scenario,
        params=task.params_dict(),
        verdict="deadlock",
        detail={"states_explored": 123},
    )
    base.update(kw)
    return TaskResult(**base)


def _backend(kind, tmp_path):
    if kind == "dir":
        return ResultCache(tmp_path / "dir")
    if kind == "memory":
        return MemoryLRUCache(8)
    if kind == "sqlite":
        return SqliteCache(tmp_path / "cache.db")
    return TieredCache(MemoryLRUCache(8), ResultCache(tmp_path / "cold"))


@pytest.mark.parametrize("kind", BACKENDS)
def test_satisfies_protocol(kind, tmp_path):
    assert isinstance(_backend(kind, tmp_path), CacheBackend)


@pytest.mark.parametrize("kind", BACKENDS)
def test_miss_put_hit_roundtrip(kind, tmp_path):
    cache = _backend(kind, tmp_path)
    assert cache.get(TASK) is None
    cache.put(TASK, _result())
    assert len(cache) == 1
    hit = cache.get(TASK)
    assert hit is not None
    assert hit.verdict == "deadlock"
    assert hit.source == "cache"
    assert hit.detail["states_explored"] == 123
    assert cache.stats.hits == 1


@pytest.mark.parametrize("kind", BACKENDS)
def test_hits_are_independent_objects(kind, tmp_path):
    """Two gets must never share one mutable TaskResult (the runner
    rewrites source/expect on hits)."""
    cache = _backend(kind, tmp_path)
    cache.put(TASK, _result())
    a, b = cache.get(TASK), cache.get(TASK)
    a.source = "mutated"
    a.detail["states_explored"] = -1
    assert b.source == "cache"
    assert b.detail["states_explored"] == 123


@pytest.mark.parametrize("kind", BACKENDS)
def test_failed_results_are_not_cached(kind, tmp_path):
    cache = _backend(kind, tmp_path)
    cache.put(TASK, _result(ok=False, verdict="error", error="boom"))
    assert len(cache) == 0
    assert cache.get(TASK) is None


@pytest.mark.parametrize("kind", BACKENDS)
def test_salt_mismatch_is_stale_not_hit(kind, tmp_path):
    cache = _backend(kind, tmp_path)
    cache.put(TASK, _result())
    cache.salt = "campaign-v0"  # simulate a schema bump
    if kind == "tiered":
        cache.hot.salt = cache.cold.salt = "campaign-v0"
    assert cache.get(TASK) is None
    assert cache.stats.hits == 0


@pytest.mark.parametrize("kind", BACKENDS)
def test_clear_and_expectation_rehydration(kind, tmp_path):
    cache = _backend(kind, tmp_path)
    cache.put(TASK, _result(expect=None))
    hit = cache.get(TASK)
    assert hit.expect == "deadlock"  # the *current* task's expectation
    assert cache.clear() >= 1
    assert len(cache) == 0
    assert cache.get(TASK) is None


@pytest.mark.parametrize("kind", BACKENDS)
def test_integrity_healthy_after_writes(kind, tmp_path):
    cache = _backend(kind, tmp_path)
    for hold in (2, 3, 4):
        task = CampaignTask.make("reachability", "fig2-pair", d1=1, d2=1, hold=hold)
        cache.put(task, _result(task))
    report = cache.integrity()
    assert report.entries == 3
    assert report.corrupt == 0 and report.stale_salt == 0
    assert report.healthy
    assert report.salt == schema_salt()


def test_lru_evicts_oldest():
    cache = MemoryLRUCache(2)
    tasks = [
        CampaignTask.make("reachability", "fig2-pair", d1=1, d2=1, hold=h)
        for h in (2, 3, 4)
    ]
    for t in tasks:
        cache.put(t, _result(t))
    assert len(cache) == 2
    assert cache.evictions == 1
    assert cache.get(tasks[0]) is None  # oldest fell out
    assert cache.get(tasks[2]) is not None


def test_lru_get_refreshes_recency():
    cache = MemoryLRUCache(2)
    t1, t2, t3 = (
        CampaignTask.make("reachability", "fig2-pair", d1=1, d2=1, hold=h)
        for h in (2, 3, 4)
    )
    cache.put(t1, _result(t1))
    cache.put(t2, _result(t2))
    assert cache.get(t1) is not None  # t1 is now most-recent
    cache.put(t3, _result(t3))  # evicts t2, not t1
    assert cache.get(t1) is not None
    assert cache.get(t2) is None


def test_sqlite_persists_across_instances(tmp_path):
    path = tmp_path / "cache.db"
    first = SqliteCache(path)
    first.put(TASK, _result())
    first.close()
    second = SqliteCache(path)
    hit = second.get(TASK)
    assert hit is not None and hit.verdict == "deadlock"
    second.close()


def test_sqlite_shared_between_instances(tmp_path):
    path = tmp_path / "cache.db"
    writer, reader = SqliteCache(path), SqliteCache(path)
    writer.put(TASK, _result())
    assert reader.get(TASK) is not None
    writer.close()
    reader.close()


def test_sqlite_corrupt_row_is_stale(tmp_path):
    cache = SqliteCache(tmp_path / "cache.db")
    cache.put(TASK, _result())
    with cache._conn:
        cache._conn.execute(
            "UPDATE entries SET entry = '{broken' WHERE task_hash = ?",
            (TASK.task_hash,),
        )
    assert cache.get(TASK) is None
    assert cache.stats.stale == 1
    report = cache.integrity()
    assert report.corrupt == 1 and not report.healthy
    cache.close()


def test_dir_corrupt_file_visible_in_integrity(tmp_path):
    cache = ResultCache(tmp_path / "c")
    cache.put(TASK, _result())
    (path,) = list((tmp_path / "c").glob("*/*.json"))
    path.write_text("{not json", encoding="utf-8")
    report = cache.integrity()
    assert report.entries == 1 and report.corrupt == 1
    assert not report.healthy


def test_dir_stale_salt_visible_in_integrity(tmp_path):
    old = ResultCache(tmp_path / "c", salt="campaign-v0")
    old.put(TASK, _result())
    fresh = ResultCache(tmp_path / "c")
    report = fresh.integrity()
    assert report.stale_salt == 1 and report.corrupt == 0
    assert not report.healthy


def test_memory_self_heals_corrupt_entry():
    cache = MemoryLRUCache(4)
    cache.put(TASK, _result())
    cache._entries[TASK.task_hash] = "{broken"
    assert cache.get(TASK) is None
    assert cache.stats.stale == 1
    assert len(cache) == 0  # the bad entry was dropped


def test_tiered_promotes_cold_hits(tmp_path):
    hot = MemoryLRUCache(8)
    cold = ResultCache(tmp_path / "cold")
    cold.put(TASK, _result())
    tiered = TieredCache(hot, cold)
    assert len(hot) == 0
    assert tiered.get(TASK) is not None
    assert len(hot) == 1  # promoted
    hot_hits_before = hot.stats.hits
    assert tiered.get(TASK) is not None
    assert hot.stats.hits == hot_hits_before + 1  # served by the hot tier


def test_tiered_put_writes_through(tmp_path):
    hot = MemoryLRUCache(8)
    cold = ResultCache(tmp_path / "cold")
    tiered = TieredCache(hot, cold)
    tiered.put(TASK, _result())
    assert len(hot) == 1 and len(cold) == 1
    assert tiered.stats.writes == 1


def test_tiered_rejects_salt_mismatch(tmp_path):
    with pytest.raises(ValueError, match="salt mismatch"):
        TieredCache(
            MemoryLRUCache(2, salt="campaign-v0"), ResultCache(tmp_path / "c")
        )


# ----------------------------------------------------------------------
# crash-safe directory writes
# ----------------------------------------------------------------------
def test_put_leaves_no_temp_files(tmp_path):
    cache = ResultCache(tmp_path / "c")
    for hold in range(2, 8):
        task = CampaignTask.make("reachability", "fig2-pair", d1=1, d2=1, hold=hold)
        cache.put(task, _result(task))
    assert list((tmp_path / "c").glob("**/*.tmp")) == []
    assert len(cache) == 6


def test_put_crash_publishes_nothing(tmp_path, monkeypatch):
    """A crash before the atomic rename must leave neither a truncated
    entry nor an orphan temp file."""
    cache = ResultCache(tmp_path / "c")

    def exploding_replace(src, dst):
        raise OSError("simulated crash at publish time")

    monkeypatch.setattr(os, "replace", exploding_replace)
    with pytest.raises(OSError, match="simulated crash"):
        cache.put(TASK, _result())
    monkeypatch.undo()
    assert list((tmp_path / "c").glob("**/*.tmp")) == []
    assert len(cache) == 0
    assert cache.get(TASK) is None


def test_clear_sweeps_orphan_tmp_files(tmp_path):
    cache = ResultCache(tmp_path / "c")
    cache.put(TASK, _result())
    orphan = (tmp_path / "c" / TASK.task_hash[:2]) / ".deadbeef-orphan.tmp"
    orphan.write_text("half-written", encoding="utf-8")
    cache.clear()
    assert not orphan.exists()


# ----------------------------------------------------------------------
# factory
# ----------------------------------------------------------------------
def test_make_backend_parsing(tmp_path):
    assert isinstance(make_backend(f"dir:{tmp_path / 'a'}"), ResultCache)
    assert isinstance(make_backend(str(tmp_path / "b")), ResultCache)
    assert isinstance(make_backend(f"sqlite:{tmp_path / 'c.db'}"), SqliteCache)
    assert isinstance(make_backend("memory"), MemoryLRUCache)
    lru = make_backend("memory:7")
    assert isinstance(lru, MemoryLRUCache) and lru.capacity == 7
    fallback = make_backend(None, default_dir=str(tmp_path / "d"))
    assert isinstance(fallback, ResultCache)
    assert fallback.root == tmp_path / "d"


def test_make_backend_rejects_bad_specs():
    with pytest.raises(ValueError, match="sqlite backend needs a path"):
        make_backend("sqlite:")
    with pytest.raises(ValueError, match="capacity must be an integer"):
        make_backend("memory:lots")
    with pytest.raises(ValueError, match="dir backend needs a path"):
        make_backend("dir:")


def test_backends_store_identical_entry_shape(tmp_path):
    """All backends persist the same entry schema (salt + task + result),
    so a future migration tool can move entries between them."""
    dir_cache = ResultCache(tmp_path / "c")
    sql_cache = SqliteCache(tmp_path / "cache.db")
    dir_cache.put(TASK, _result())
    sql_cache.put(TASK, _result())
    (path,) = list((tmp_path / "c").glob("*/*.json"))
    dir_entry = json.loads(path.read_text(encoding="utf-8"))
    (row,) = sql_cache._conn.execute("SELECT entry FROM entries").fetchall()
    sql_entry = json.loads(row[0])
    assert set(dir_entry) == set(sql_entry)
    assert dir_entry["schema"] == sql_entry["schema"] == schema_salt()
    assert dir_entry["result"]["verdict"] == sql_entry["result"]["verdict"]
    sql_cache.close()
