"""Engine behaviour across the buffer-depth continuum.

The paper's introduction places wormhole routing on a continuum with
buffered wormhole and virtual cut-through: deeper per-channel buffers mean
a blocked message occupies fewer channels.  These tests pin that behaviour
down quantitatively.
"""

import pytest

from repro.routing import clockwise_ring
from repro.sim import MessageSpec, SimConfig, Simulator
from repro.topology import ring


def run_blocked_probe(depth: int, *, blocker_len: int = 40, probe_len: int = 6):
    """A probe message jams behind a long blocker; count channels it holds."""
    n = 10
    net = ring(n)
    fn = clockwise_ring(net, n)
    specs = [
        MessageSpec(0, 5, 9, length=blocker_len),  # blocker: holds 5->6 onward
        MessageSpec(1, 0, 7, length=probe_len, inject_time=1),
    ]
    sim = Simulator(net, fn, specs, config=SimConfig(buffer_depth=depth, max_cycles=40))
    for _ in range(20):
        sim.step()
    probe = sim.messages[1]
    return len(probe.acquired), sum(
        len(sim.queue_of(c).queue) for c in probe.acquired
    )


def test_deeper_buffers_mean_fewer_channels_held():
    held_1, flits_1 = run_blocked_probe(1)
    held_3, flits_3 = run_blocked_probe(3)
    assert held_1 > held_3
    # flits in network bounded by capacity of held channels
    assert flits_1 <= held_1 * 1
    assert flits_3 <= held_3 * 3


def test_virtual_cut_through_regime():
    """Depth >= message length: a blocked message collapses into one queue."""
    held, flits = run_blocked_probe(6, probe_len=6)
    # the whole 6-flit probe fits into its leading (blocked) channel's queue
    assert held == 1
    assert flits == 6


@pytest.mark.parametrize("depth", [1, 2, 4])
def test_unobstructed_latency_independent_of_depth(depth):
    """Wormhole pipelining: buffer depth does not change no-load latency."""
    n = 8
    net = ring(n)
    res = Simulator(
        net,
        clockwise_ring(net, n),
        [MessageSpec(0, 0, 5, length=4)],
        config=SimConfig(buffer_depth=depth),
    ).run()
    assert res.completed
    assert res.messages[0].latency() == 5 + 4 - 1


def test_queue_capacity_never_exceeded():
    n = 6
    net = ring(n)
    specs = [MessageSpec(i, i, (i + 2) % n, length=7) for i in range(n)]
    sim = Simulator(net, clockwise_ring(net, n), specs, config=SimConfig(buffer_depth=2))
    for _ in range(30):
        sim.step()
        for q in sim._queues.values():
            assert len(q.queue) <= 2
            if q.queue:
                assert q.owner is not None


def test_flits_stay_in_order():
    """Flit indices arrive at the destination strictly in order."""
    n = 6
    net = ring(n)
    fn = clockwise_ring(net, n)
    consumed: list[int] = []

    def trace(cycle, kind, data):
        if kind in ("arrive", "consume"):
            consumed.append(cycle)

    sim = Simulator(
        net,
        fn,
        [MessageSpec(0, 0, 4, length=5)],
        config=SimConfig(buffer_depth=2),
        trace=trace,
    )
    res = sim.run()
    assert res.completed
    assert consumed == sorted(consumed)
    assert len(consumed) == 5  # one event per flit


def test_release_order_is_tail_first():
    """Channels release strictly from the back of the acquired list."""
    n = 8
    net = ring(n)
    fn = clockwise_ring(net, n)
    released: list[int] = []

    def trace(cycle, kind, data):
        if kind == "release":
            released.append(data["channel"])

    sim = Simulator(net, fn, [MessageSpec(0, 0, 6, length=2)], trace=trace)
    res = sim.run()
    assert res.completed
    # ring channels 0..5 in path order; releases must follow path order
    assert released == sorted(released)
