"""MicroBatcher: window batching, in-flight dedup, cache fast path."""

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.campaign.cache import MemoryLRUCache
from repro.campaign.tasks import CampaignTask
from repro.serve.batcher import (
    SOURCE_CACHE,
    SOURCE_INFLIGHT,
    SOURCE_LIVE,
    MicroBatcher,
)


def _task(tag, seconds=0.0):
    """Distinct cheap tasks via the debug-sleep scenario (tag only
    differentiates the content hash)."""
    return CampaignTask.make(
        "reachability", "debug-sleep", seconds=seconds, tag=str(tag)
    )


@pytest.fixture()
def executor():
    pool = ThreadPoolExecutor(max_workers=1)
    yield pool
    pool.shutdown(wait=False, cancel_futures=True)


def test_window_collects_concurrent_misses_into_one_batch(executor):
    async def run():
        batcher = MicroBatcher(
            cache=MemoryLRUCache(64), window=0.05, executor=executor
        )
        results = await asyncio.gather(
            *(batcher.submit(_task(i)) for i in range(4))
        )
        return batcher, results

    batcher, results = asyncio.run(run())
    assert batcher.stats.batches == 1
    assert batcher.stats.batched_tasks == 4
    assert batcher.stats.executed_live == 4
    assert all(source == SOURCE_LIVE for _, source in results)
    assert all(result.ok for result, _ in results)


def test_identical_concurrent_submits_execute_exactly_once(executor):
    async def run():
        batcher = MicroBatcher(
            cache=MemoryLRUCache(64), window=0.02, executor=executor
        )
        task = _task("shared", seconds=0.1)
        results = await asyncio.gather(*(batcher.submit(task) for _ in range(6)))
        return batcher, results

    batcher, results = asyncio.run(run())
    sources = [source for _, source in results]
    assert sources.count(SOURCE_LIVE) == 1
    assert sources.count(SOURCE_INFLIGHT) == 5
    assert batcher.stats.executed_live == 1  # the dedup guarantee
    verdicts = {result.verdict for result, _ in results}
    assert verdicts == {"unreachable"}
    assert batcher.inflight == 0


def test_cache_hit_answers_without_waiting_the_window(executor):
    async def run():
        batcher = MicroBatcher(
            cache=MemoryLRUCache(64), window=0.5, executor=executor
        )
        task = _task("warm")
        await batcher.submit(task)  # cold: pays the window + execution
        t0 = time.perf_counter()
        result, source = await batcher.submit(task)
        return batcher, source, time.perf_counter() - t0, result

    batcher, source, elapsed, result = asyncio.run(run())
    assert source == SOURCE_CACHE
    assert elapsed < 0.25  # far below the 0.5s window: never queued
    assert result.source == "cache"
    assert batcher.stats.cache_hits == 1


def test_task_failures_are_results_not_exceptions(executor, tmp_path):
    """A failing task resolves every waiter with ok=False (the campaign
    contract) rather than raising."""
    token_dir = tmp_path / "tokens"
    token_dir.mkdir()

    async def run():
        batcher = MicroBatcher(
            cache=MemoryLRUCache(64), window=0.01, executor=executor
        )
        task = CampaignTask.make(
            "reachability",
            "debug-flaky",
            token_dir=str(token_dir),
            fail_times=99,
        )
        result, source = await batcher.submit(task)
        return batcher, result, source

    batcher, result, source = asyncio.run(run())
    assert source == SOURCE_LIVE
    assert not result.ok
    assert "flaky failure" in (result.error or "")
    assert batcher.stats.failures == 1


def test_infra_failure_rejects_every_waiter(executor):
    async def run():
        batcher = MicroBatcher(
            cache=MemoryLRUCache(64), window=0.02, executor=executor
        )
        batcher._run_batch = lambda batch: (_ for _ in ()).throw(
            RuntimeError("executor died")
        )
        waits = [
            asyncio.ensure_future(batcher.submit(_task(f"boom{i}")))
            for i in range(3)
        ]
        outcomes = await asyncio.gather(*waits, return_exceptions=True)
        return batcher, outcomes

    batcher, outcomes = asyncio.run(run())
    assert all(isinstance(o, RuntimeError) for o in outcomes)
    assert batcher.inflight == 0  # nothing leaks for future submits


def test_failed_results_are_not_cached(executor, tmp_path):
    """ok=False never enters the cache, so the next submit retries live."""
    token_dir = tmp_path / "tokens"
    token_dir.mkdir()
    cache = MemoryLRUCache(64)

    async def run():
        batcher = MicroBatcher(cache=cache, window=0.01, executor=executor)
        task = CampaignTask.make(
            "reachability",
            "debug-flaky",
            token_dir=str(token_dir),
            fail_times=1,
        )
        first, _ = await batcher.submit(task)
        second, source = await batcher.submit(task)  # attempt #2 succeeds
        return first, second, source

    first, second, source = asyncio.run(run())
    assert not first.ok
    assert second.ok and source == SOURCE_LIVE
    assert len(cache) == 1  # only the success was stored


def test_window_must_be_nonnegative(executor):
    with pytest.raises(ValueError, match="window must be >= 0"):
        MicroBatcher(cache=None, window=-0.1, executor=executor)
