"""Structural validation tests."""

import pytest

from repro.topology import Network, NetworkValidationError, check_network, check_strongly_connected, ring
from repro.topology.validate import check_no_dangling, check_unique_vcs


def test_strongly_connected_ok():
    check_strongly_connected(ring(4))


def test_disconnected_detected():
    net = Network()
    net.add_channel("A", "B")
    net.add_channel("C", "D")
    with pytest.raises(NetworkValidationError, match="not strongly connected"):
        check_strongly_connected(net)


def test_one_way_pair_not_strong():
    net = Network()
    net.add_channel("A", "B")
    with pytest.raises(NetworkValidationError):
        check_strongly_connected(net)


def test_empty_network_rejected():
    with pytest.raises(NetworkValidationError):
        check_strongly_connected(Network())


def test_dangling_node_detected():
    net = Network()
    net.add_channel("A", "B")
    net.add_channel("B", "A")
    net.add_node("C")
    with pytest.raises(NetworkValidationError, match="no outgoing"):
        check_no_dangling(net)


def test_duplicate_vc_detected():
    net = Network()
    net.add_channel("A", "B", vc=0)
    net.add_channel("A", "B", vc=0)
    with pytest.raises(NetworkValidationError, match="duplicate VC"):
        check_unique_vcs(net)


def test_check_network_full_suite_passes_on_ring():
    check_network(ring(5, bidirectional=True))


def test_check_network_requires_two_nodes():
    net = Network()
    net.add_node("A")
    with pytest.raises(NetworkValidationError, match="two nodes"):
        check_network(net)


def test_check_network_can_skip_strong_connectivity():
    net = Network()
    net.add_channel("A", "B")
    net.add_channel("B", "A")
    net.add_channel("B", "C")
    net.add_channel("C", "B")
    # strongly connected actually; break it:
    net2 = Network()
    net2.add_channel("A", "B")
    net2.add_channel("B", "A")
    net2.add_channel("A", "C")
    net2.add_channel("C", "A")
    check_network(net2)  # fine
