"""Theorem 2/3/4/5 and Section 6 tests on the core constructions."""

import pytest

from repro.analysis import SystemSpec, classify_configuration, search_deadlock
from repro.analysis.delay import min_delay_to_deadlock
from repro.core.conditions import TheoremFiveInput, evaluate_conditions, theorem5_predicts_unreachable
from repro.core.generalized import build_generalized, generalized_messages
from repro.core.specs import CycleMessageSpec
from repro.core.three_message import FIG3_PANELS, build_three_message_config
from repro.core.two_message import build_two_message_config
from repro.core.within_cycle import OverlapSpec, build_overlapping_ring, theorem2_default


class TestTheorem4:
    """Two messages sharing a channel outside the cycle always deadlock."""

    def test_default_config_deadlocks(self):
        c = build_two_message_config()
        res = search_deadlock(SystemSpec.uniform(c.checker_messages()))
        assert res.deadlock_reachable

    @pytest.mark.parametrize("d1,d2", [(1, 1), (2, 2), (3, 1), (1, 4)])
    def test_universal_over_approaches(self, d1, d2):
        c = build_two_message_config(approach_1=d1, approach_2=d2)
        res = search_deadlock(
            SystemSpec.uniform(c.checker_messages()), find_witness=False
        )
        assert res.deadlock_reachable

    def test_longer_approach_injected_first_in_min_witness(self):
        c = build_two_message_config(approach_1=4, approach_2=1)
        res = search_deadlock(SystemSpec.uniform(c.checker_messages()))
        first = None
        for actions in res.witness.steps:
            for i, act in enumerate(actions):
                if act == "try":
                    first = res.witness.spec.messages[i].tag
                    break
            if first:
                break
        assert first == "M1"


class TestTheorem2:
    """Shared channels within the cycle always yield a reachable deadlock."""

    def test_default_overlap_deadlocks(self):
        c = theorem2_default()
        res = search_deadlock(SystemSpec.uniform(c.checker_messages()), find_witness=False)
        assert res.deadlock_reachable

    def test_two_message_deep_overlap(self):
        c = build_overlapping_ring(
            10,
            [OverlapSpec(entry_pos=0, run_len=7), OverlapSpec(entry_pos=5, run_len=7)],
        )
        res = search_deadlock(SystemSpec.uniform(c.checker_messages()), find_witness=False)
        assert res.deadlock_reachable

    def test_uncovered_ring_rejected(self):
        # entry 3 -> entry 0 gap of 5 exceeds the run of 3: cycle cannot close
        with pytest.raises(ValueError, match="close|cover"):
            build_overlapping_ring(
                8,
                [OverlapSpec(entry_pos=0, run_len=3), OverlapSpec(entry_pos=3, run_len=3)],
            )

    def test_full_ring_run_rejected(self):
        with pytest.raises(ValueError, match="run_len"):
            build_overlapping_ring(
                6,
                [OverlapSpec(entry_pos=0, run_len=6), OverlapSpec(entry_pos=3, run_len=4)],
            )

    def test_non_closing_cycle_rejected(self):
        with pytest.raises(ValueError, match="close"):
            build_overlapping_ring(
                8,
                [OverlapSpec(entry_pos=0, run_len=2), OverlapSpec(entry_pos=4, run_len=6)],
            )


class TestSection6:
    def test_gen1_is_fig1_geometry(self):
        c = build_generalized(1)
        assert [s.approach_len for s in c.specs] == [2, 3, 2, 3]
        assert [s.hold_len for s in c.specs] == [3, 4, 3, 4]
        assert len(c.cycle_channels) == 14

    @pytest.mark.parametrize("m,expected", [(1, 1), (2, 2)])
    def test_min_delay_grows(self, m, expected):
        res = min_delay_to_deadlock(generalized_messages(m), max_delay=6)
        assert res.min_delay == expected
        assert res.deadlock_free_under_synchrony

    def test_negative_m_rejected(self):
        with pytest.raises(ValueError):
            build_generalized(-1)


class TestTheorem5Conditions:
    def test_panels_match_paper(self):
        """Condition profile and search classification per Figure 3 panel."""
        for panel, params in FIG3_PANELS.items():
            predicted = theorem5_predicts_unreachable(list(params.specs))
            assert predicted == params.expected_unreachable, panel

    @pytest.mark.parametrize("panel", ["c", "d", "e", "f"])
    def test_deadlock_panels_reach_deadlock(self, panel):
        c = build_three_message_config(FIG3_PANELS[panel])
        reachable, _ = classify_configuration(c.checker_messages(), copy_depth=1)
        assert reachable

    @pytest.mark.parametrize("panel", ["a", "b"])
    def test_unreachable_panels_stay_unreachable(self, panel):
        c = build_three_message_config(FIG3_PANELS[panel])
        reachable, _ = classify_configuration(c.checker_messages(), copy_depth=1)
        assert not reachable

    def test_condition_report_structure(self):
        params = FIG3_PANELS["f"]
        report = evaluate_conditions(TheoremFiveInput.from_specs(list(params.specs)))
        assert set(report.conditions) == set(range(1, 9))
        assert report.failed() == [6, 8]

    def test_from_specs_requires_three_shared(self):
        with pytest.raises(ValueError):
            TheoremFiveInput.from_specs(
                [CycleMessageSpec(approach_len=1, hold_len=1)] * 2
            )

    def test_condition3_fails_on_tied_distances(self):
        specs = [
            CycleMessageSpec(approach_len=2, hold_len=3),
            CycleMessageSpec(approach_len=2, hold_len=3),
            CycleMessageSpec(approach_len=3, hold_len=4),
        ]
        report = evaluate_conditions(TheoremFiveInput.from_specs(specs))
        assert 3 in report.failed()

    def test_extras_change_condition8(self):
        """An interposed message between M3 and M2 can break condition 8."""
        base = [
            CycleMessageSpec(approach_len=4, hold_len=5, label="Ma"),
            CycleMessageSpec(approach_len=2, hold_len=4, label="Mc"),
            CycleMessageSpec(approach_len=3, hold_len=3, label="Mb"),
        ]
        assert evaluate_conditions(TheoremFiveInput.from_specs(base)).conditions[8]
        with_extra = [
            base[0],
            base[1],
            CycleMessageSpec(approach_len=2, hold_len=6, uses_shared=False, label="E"),
            base[2],
        ]
        assert not evaluate_conditions(
            TheoremFiveInput.from_specs(with_extra)
        ).conditions[8]
