"""Lint rule registry and per-rule behaviour on crafted targets."""

import json

import pytest

from repro.analysis.state import CheckerMessage
from repro.campaign.scenarios import build_scenario
from repro.lint import (
    DEADLOCK_FREE,
    REACHABLE_DEADLOCK,
    Diagnostic,
    LintReport,
    Rule,
    all_rules,
    get_rule,
    jsonable,
    lint_algorithm,
    lint_messages,
)
from repro.lint.rules import register_rule
from repro.routing import RoutingAlgorithm, TableRouting, clockwise_ring
from repro.routing.base import RoutingFunction
from repro.topology import Network, ring


def msg(path, length, tag=""):
    return CheckerMessage(path=tuple(path), length=length, tag=tag)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_codes_unique_and_well_formed(self):
        rules = all_rules()
        codes = [r.code for r in rules]
        assert len(codes) == len(set(codes))
        families = {"TOP", "RTE", "PRP", "CDG", "CRT"}
        for r in rules:
            assert r.code[:3] in families, r.code
            assert r.severity in ("info", "warning", "error")
            assert r.paper_ref
            # exactly the CRT family carries certificates
            assert r.certificate == r.code.startswith("CRT")

    def test_get_rule(self):
        assert get_rule("CDG001").code == "CDG001"
        with pytest.raises(KeyError, match="unknown lint rule"):
            get_rule("NOPE99")

    def test_duplicate_registration_rejected(self):
        existing = all_rules()[0]
        with pytest.raises(ValueError, match="duplicate rule code"):
            register_rule(
                Rule(
                    code=existing.code,
                    title="clone",
                    severity="info",
                    paper_ref="-",
                    check=lambda ctx: [],
                )
            )


# ----------------------------------------------------------------------
# diagnostics / report plumbing
# ----------------------------------------------------------------------
class TestDiagnostics:
    def test_severity_validated(self):
        with pytest.raises(ValueError, match="severity"):
            Diagnostic(code="X", severity="fatal", message="boom")

    def test_certificate_validated(self):
        with pytest.raises(ValueError, match="certificate"):
            Diagnostic(code="X", severity="info", message="m", certificate="MAYBE")

    def test_report_verdicts_and_exit_code(self):
        rep = LintReport(target="t")
        assert rep.verdict == "undecided" and rep.exit_code == 0
        assert rep.max_severity is None
        rep.diagnostics.append(Diagnostic(code="A", severity="warning", message="w"))
        assert rep.exit_code == 0 and rep.max_severity == "warning"
        rep.diagnostics.append(Diagnostic(code="B", severity="error", message="e"))
        assert rep.exit_code == 1 and rep.max_severity == "error"
        rep.diagnostics.append(
            Diagnostic(
                code="CRT001", severity="info", message="c", certificate=DEADLOCK_FREE
            )
        )
        assert rep.verdict == "deadlock_free"
        assert rep.certificate_diagnostic.code == "CRT001"

    def test_jsonable_lowers_rich_evidence(self):
        net = ring(3)
        ch = net.channels[0]
        value = {
            ("a", "b"): [ch, msg([0, 1], 2, "M")],
            "nested": {"set": {2, 1}},
        }
        low = jsonable(value)
        assert low["('a', 'b')"][0] == {"cid": ch.cid, "name": ch.short()}
        assert low["('a', 'b')"][1] == {"path": [0, 1], "length": 2, "tag": "M"}
        assert low["nested"]["set"] == [1, 2]
        json.dumps(low)  # must be plain JSON

    def test_report_to_json_is_serialisable(self):
        net = ring(4)
        rep = lint_algorithm(RoutingAlgorithm(clockwise_ring(net, 4)))
        payload = json.loads(json.dumps(rep.to_json()))
        assert payload["verdict"] == "reachable_deadlock"
        assert payload["certificate"] == REACHABLE_DEADLOCK
        assert payload["certificate_code"] == "CRT005"
        assert payload["rules_run"] == [r.code for r in all_rules()]

    def test_render_mentions_codes_and_certificate(self):
        net = ring(4)
        rep = lint_algorithm(RoutingAlgorithm(clockwise_ring(net, 4)))
        out = rep.render(verbose=True)
        assert "CRT005" in out and "certificate: REACHABLE_DEADLOCK" in out
        assert "verdict=reachable_deadlock" in out


# ----------------------------------------------------------------------
# TOP rules on crafted networks
# ----------------------------------------------------------------------
def _table_alg(net, node_paths):
    return RoutingAlgorithm(TableRouting.from_node_paths(net, node_paths))


class TestTopologyRules:
    def test_top001_dangling_nodes(self):
        net = ring(3)
        net.add_channel(0, 99)  # 99 becomes sink-only
        alg = _table_alg(net, {(0, 1): [0, 1]})
        rep = lint_algorithm(alg, pairs=[(0, 1)])
        codes = {d.code for d in rep.diagnostics}
        assert "TOP001" in codes
        (diag,) = [d for d in rep.diagnostics if d.code == "TOP001"]
        assert diag.severity == "warning"
        assert 99 in diag.evidence["sink_only"]
        assert "TOP003" in codes  # no longer strongly connected either

    def test_top002_duplicate_vc_is_error(self):
        net = Network("dup")
        net.add_channel("A", "B", vc=0)
        net.add_channel("A", "B", vc=0)  # builder bug: same link, same VC
        net.add_channel("B", "A", vc=0)
        alg = _table_alg(net, {("A", "B"): ["A", "B"]})
        rep = lint_algorithm(alg, pairs=[("A", "B")])
        (diag,) = [d for d in rep.diagnostics if d.code == "TOP002"]
        assert diag.severity == "error"
        assert rep.exit_code == 1
        assert diag.evidence["duplicates"][0]["link"] == "A->B"

    def test_clean_mesh_has_no_topology_findings(self):
        rep = lint_algorithm(
            build_scenario("baseline-cdg", {"algorithm": "dor", "dims": [3, 3]}).algorithm
        )
        codes = {d.code for d in rep.diagnostics}
        assert not codes & {"TOP001", "TOP002", "TOP003"}


# ----------------------------------------------------------------------
# RTE rules
# ----------------------------------------------------------------------
class _PingPong(RoutingFunction):
    """Broken oblivious function: bounces between two nodes forever."""

    def __init__(self, network, fwd, back):
        super().__init__(network)
        self._fwd, self._back = fwd, back

    def route(self, in_channel, node, dest):
        return self._fwd if node == self._fwd.src else self._back

    def name(self):
        return "ping-pong"


class TestRoutingRules:
    def test_rte001_undefined_route(self):
        net = ring(3)
        alg = _table_alg(net, {(0, 1): [0, 1]})
        rep = lint_algorithm(alg, pairs=[(0, 1), (0, 2)])
        (diag,) = [d for d in rep.diagnostics if d.code == "RTE001"]
        assert diag.severity == "error" and rep.exit_code == 1
        assert diag.evidence["pairs"][0]["pair"] == (0, 2)

    def test_rte002_broken_route_suppresses_certificates(self):
        net = Network("pp")
        fwd = net.add_channel(0, 1)
        back = net.add_channel(1, 0)
        net.add_channel(1, 2)
        alg = RoutingAlgorithm(_PingPong(net, fwd, back))
        rep = lint_algorithm(alg, pairs=[(0, 2)])
        (diag,) = [d for d in rep.diagnostics if d.code == "RTE002"]
        assert diag.severity == "error"
        assert diag.evidence["pairs"][0]["kind"] == "revisit"
        # a structurally broken table must never be certified either way
        assert rep.certificate is None
        assert not any(d.code.startswith("CRT") for d in rep.diagnostics)
        # ... but the certificate rules still count as having run
        assert "CRT001" in rep.rules_run

    def test_fig1_structural_findings(self):
        """The Figure 1 construction: nonminimal, ICI, both closures broken."""
        rep = lint_algorithm(build_scenario("fig1", {}).algorithm)
        codes = {d.code for d in rep.diagnostics}
        assert {"RTE003", "PRP001", "PRP002", "PRP004", "CDG001"} <= codes
        assert rep.verdict == "undecided"  # the paper's whole point
        assert rep.exit_code == 0  # structural facts, not errors
        (rte3,) = [d for d in rep.diagnostics if d.code == "RTE003"]
        assert rte3.evidence["max_slack"] >= 1


# ----------------------------------------------------------------------
# CDG rules
# ----------------------------------------------------------------------
class TestCdgRules:
    def test_cdg001_reports_cycles(self):
        net = ring(4)
        rep = lint_algorithm(RoutingAlgorithm(clockwise_ring(net, 4)))
        (diag,) = [d for d in rep.diagnostics if d.code == "CDG001"]
        assert diag.evidence["num_cycles"] == 1
        assert not diag.evidence["truncated"]
        assert len(diag.evidence["shortest_cycle"]) == 4

    def test_cdg001_absent_on_acyclic(self):
        rep = lint_algorithm(
            build_scenario("baseline-cdg", {"algorithm": "dor", "dims": [3, 3]}).algorithm
        )
        assert not any(d.code == "CDG001" for d in rep.diagnostics)

    def test_cdg002_truncation_reported(self):
        net = ring(4)
        rep = lint_algorithm(RoutingAlgorithm(clockwise_ring(net, 4)), max_cycles=0)
        (diag,) = [d for d in rep.diagnostics if d.code == "CDG002"]
        assert diag.severity == "warning"
        assert diag.evidence["max_cycles"] == 0
        # truncation is loud, and CDG001 reports the enumerated prefix as such
        (cdg1,) = [d for d in rep.diagnostics if d.code == "CDG001"]
        assert cdg1.evidence["truncated"] is True
        assert "+" in cdg1.message
        # a REACHABLE certificate may still be issued: existence only needs
        # one good cycle, so truncation never weakens it
        assert rep.verdict == "reachable_deadlock"


# ----------------------------------------------------------------------
# certificate exclusivity + spec-level lint
# ----------------------------------------------------------------------
class TestEngineBehaviour:
    def test_at_most_one_certificate_diagnostic(self):
        for params in ({"algorithm": "dor", "dims": [3, 3]}, {"algorithm": "clockwise", "n": 5}):
            rep = lint_algorithm(build_scenario("baseline-cdg", params).algorithm)
            certs = [d for d in rep.diagnostics if d.certificate is not None]
            assert len(certs) == 1

    def test_lint_messages_deadlock_free(self):
        rep = lint_messages([msg([0, 1], 3, "a"), msg([2, 3], 3, "b")])
        assert rep.verdict == "deadlock_free"
        assert rep.certificate_diagnostic.code == "CRT001"
        (spc,) = [d for d in rep.diagnostics if d.code == "SPC001"]
        assert spc.evidence["acyclic"] is True
        assert spc.evidence["messages"] == 2

    def test_lint_messages_reachable(self):
        rep = lint_messages([msg([0, 1, 2], 2, "a"), msg([2, 3, 0], 2, "b")])
        assert rep.verdict == "reachable_deadlock"
        diag = rep.certificate_diagnostic
        assert diag.code == "CRT005"
        replay = diag.evidence["deadlock_messages"]
        assert sorted(m.tag for m in replay) == ["a", "b"]

    def test_lint_messages_undecided_on_fig1(self):
        """Figure 1 at face value: cyclic but *unreachable* -- no certificate."""
        rep = lint_messages(build_scenario("fig1", {}).messages)
        assert rep.verdict == "undecided"
        (spc,) = [d for d in rep.diagnostics if d.code == "SPC001"]
        assert spc.evidence["acyclic"] is False
