"""Traffic generator and statistics tests."""

import pytest

from repro.sim.injection import InjectionSchedule, StallSchedule
from repro.sim.message import MessageSpec
from repro.sim.stats import SimStats
from repro.sim.traffic import (
    hotspot_traffic,
    permutation_traffic,
    transpose_traffic,
    uniform_random_traffic,
)
from repro.topology import mesh, ring


class TestTraffic:
    def test_uniform_rate_scaling(self):
        net = mesh((4, 4))
        low = uniform_random_traffic(net, rate=0.05, cycles=200, seed=1)
        high = uniform_random_traffic(net, rate=0.4, cycles=200, seed=1)
        assert len(high) > len(low) > 0

    def test_uniform_no_self_messages(self):
        net = ring(5)
        for s in uniform_random_traffic(net, rate=0.5, cycles=50, seed=2):
            assert s.src != s.dst

    def test_uniform_deterministic_by_seed(self):
        net = ring(5)
        a = uniform_random_traffic(net, rate=0.3, cycles=30, seed=7)
        b = uniform_random_traffic(net, rate=0.3, cycles=30, seed=7)
        assert [(s.src, s.dst, s.inject_time) for s in a] == [
            (s.src, s.dst, s.inject_time) for s in b
        ]

    def test_transpose_targets(self):
        net = mesh((3, 3))
        for s in transpose_traffic(net, rate=0.5, cycles=20, seed=3):
            assert s.dst == (s.src[1], s.src[0])

    def test_transpose_requires_2d(self):
        net = ring(5)
        with pytest.raises(ValueError):
            transpose_traffic(net, rate=0.5, cycles=5)

    def test_hotspot_bias(self):
        net = mesh((4, 4))
        specs = hotspot_traffic(
            net, rate=0.3, cycles=300, hotspot=(0, 0), hotspot_fraction=0.5, seed=4
        )
        frac = sum(1 for s in specs if s.dst == (0, 0)) / len(specs)
        assert frac > 0.3

    def test_permutation_is_derangement(self):
        net = mesh((3, 3))
        specs = permutation_traffic(net, seed=5)
        assert len(specs) == 9
        assert all(s.src != s.dst for s in specs)
        dsts = [s.dst for s in specs]
        assert len(set(dsts)) == 9  # a permutation

    def test_bad_rate_rejected(self):
        net = ring(5)
        with pytest.raises(ValueError):
            uniform_random_traffic(net, rate=1.5, cycles=10)

    def test_unique_mids(self):
        net = mesh((3, 3))
        specs = uniform_random_traffic(net, rate=0.4, cycles=50, seed=6)
        mids = [s.mid for s in specs]
        assert len(set(mids)) == len(mids)


class TestInjectionSchedule:
    def test_add_assigns_ids(self):
        sched = InjectionSchedule()
        a = sched.add("A", "B", length=3)
        b = sched.add("B", "C", length=2, at=4, tag="M2")
        assert (a.mid, b.mid) == (0, 1)
        assert len(sched) == 2
        assert list(sched)[1].tag == "M2"

    def test_extend_rejects_duplicates(self):
        sched = InjectionSchedule()
        sched.add("A", "B", length=1)
        with pytest.raises(ValueError):
            sched.extend([MessageSpec(0, "X", "Y", length=1)])


class TestStallSchedule:
    def test_stalled_lookup(self):
        s = StallSchedule({3: [5, 6, 9]})
        assert s.stalled(3, 5) and s.stalled(3, 9)
        assert not s.stalled(3, 7)
        assert not s.stalled(4, 5)
        assert s.total_budget(3) == 3

    def test_delay_window(self):
        s = StallSchedule.delay_window(1, start=10, count=3)
        assert [s.stalled(1, t) for t in range(9, 14)] == [False, True, True, True, False]

    def test_merged(self):
        a = StallSchedule({1: [1]})
        b = StallSchedule({1: [2], 2: [3]})
        m = a.merged(b)
        assert m.stalled(1, 1) and m.stalled(1, 2) and m.stalled(2, 3)


class TestMessageSpecValidation:
    def test_src_eq_dst_rejected(self):
        with pytest.raises(ValueError):
            MessageSpec(0, "A", "A", length=2)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            MessageSpec(0, "A", "B", length=0)

    def test_negative_inject_rejected(self):
        with pytest.raises(ValueError):
            MessageSpec(0, "A", "B", length=1, inject_time=-1)

    def test_display(self):
        assert MessageSpec(3, "A", "B", length=1).display() == "m3"
        assert MessageSpec(3, "A", "B", length=1, tag="M1").display() == "M1"


class TestStats:
    def test_summary_empty(self):
        s = SimStats()
        out = s.summary()
        assert out["delivered_messages"] == 0

    def test_throughput(self):
        s = SimStats()
        s.cycles = 100
        s.delivered_flits = 250
        assert s.throughput_flits_per_cycle() == 2.5
