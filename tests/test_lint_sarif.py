"""SARIF 2.1.0 export: structure, rule metadata, and the --sarif flag."""

import json

import pytest

from repro.campaign.scenarios import build_scenario
from repro.cli import main
from repro.lint import lint_algorithm, lint_messages, sarif_log
from repro.lint.sarif import LEVELS, SARIF_SCHEMA, SARIF_VERSION, _rule_entry


@pytest.fixture(scope="module")
def ring_report():
    return lint_algorithm(build_scenario("ring-cycle", {"n": 4}).algorithm)


@pytest.fixture(scope="module")
def fig1_report():
    return lint_algorithm(build_scenario("fig1", {}).algorithm)


class TestSarifLog:
    def test_top_level_structure(self, ring_report):
        log = sarif_log([ring_report])
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert log["$schema"] == SARIF_SCHEMA
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert run["results"]

    def test_one_result_per_diagnostic(self, ring_report, fig1_report):
        reports = [ring_report, fig1_report]
        log = sarif_log(reports)
        (run,) = log["runs"]
        assert len(run["results"]) == sum(
            len(r.diagnostics) for r in reports
        )
        targets = {res["properties"]["target"] for res in run["results"]}
        assert targets == {ring_report.target, fig1_report.target}

    def test_rules_cover_every_emitted_code(self, ring_report, fig1_report):
        log = sarif_log([ring_report, fig1_report])
        (run,) = log["runs"]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        result_ids = {r["ruleId"] for r in run["results"]}
        assert result_ids == rule_ids

    def test_levels_follow_severity(self, fig1_report):
        log = sarif_log([fig1_report])
        (run,) = log["runs"]
        by_code = {d.code: d for d in fig1_report.diagnostics}
        for res in run["results"]:
            assert res["level"] == LEVELS[by_code[res["ruleId"]].severity]

    def test_certificate_rule_metadata(self, ring_report):
        log = sarif_log([ring_report])
        (run,) = log["runs"]
        rules = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
        crt = rules["CRT005"]
        assert crt["helpUri"] == "docs/LINT.md#crt005"
        assert crt["properties"]["certificate"] is True
        assert crt["defaultConfiguration"]["level"] == "note"
        assert "Theorem 2" in crt["properties"]["paperRef"]

    def test_crt008_rule_entry_registered(self):
        entry = _rule_entry("CRT008", "docs/LINT.md")
        assert entry["helpUri"] == "docs/LINT.md#crt008"
        assert entry["properties"]["certificate"] is True
        assert "Duato" in entry["properties"]["paperRef"]

    def test_spec_level_code_synthesized(self):
        bundle = build_scenario("fig1", {})
        report = lint_messages(bundle.messages)
        log = sarif_log([report])
        (run,) = log["runs"]
        rules = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
        assert "SPC001" in rules or run["results"] == []

    def test_evidence_is_json_lowered(self, ring_report):
        log = sarif_log([ring_report])
        json.dumps(log)  # must not raise on Channel/CheckerMessage objects


class TestSarifCli:
    def test_sarif_flag_writes_log(self, tmp_path, capsys):
        out = tmp_path / "lint.sarif"
        assert (
            main(
                ["lint", "ring-cycle", "--params", '{"n": 4}', "--sarif", str(out)]
            )
            == 0
        )
        log = json.loads(out.read_text())
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        assert any(r["ruleId"] == "CRT005" for r in run["results"])
        assert str(out) in capsys.readouterr().err

    def test_sarif_with_all_targets(self, tmp_path, capsys):
        out = tmp_path / "battery.sarif"
        assert (
            main(["lint", "--all", "--spec", "quick", "--sarif", str(out)]) == 0
        )
        log = json.loads(out.read_text())
        (run,) = log["runs"]
        targets = {r["properties"]["target"] for r in run["results"]}
        assert len(targets) >= 3
        # exit-code criterion matches the SARIF error count
        assert all(r["level"] != "error" for r in run["results"])
