"""Figure 1 / Theorem 1 tests -- the paper's central result."""

import pytest

from repro.analysis import SystemSpec, search_deadlock
from repro.analysis.state import CheckerMessage
from repro.cdg import build_cdg, dally_seitz_numbering, find_cycles, is_acyclic
from repro.core.cyclic_dependency import (
    FIG1_MESSAGES,
    RING_ORDER,
    build_cyclic_dependency_network,
)
from repro.routing.properties import (
    is_coherent,
    is_connected,
    is_input_channel_independent,
    is_minimal,
    is_suffix_closed,
)
from repro.topology import check_strongly_connected


@pytest.fixture(scope="module")
def cdn():
    return build_cyclic_dependency_network()


class TestConstruction:
    def test_strongly_connected(self, cdn):
        check_strongly_connected(cdn.network)

    def test_ring_has_14_channels(self, cdn):
        assert len(cdn.cycle_channels) == 14
        assert len(RING_ORDER) == 14

    def test_exception_paths_follow_the_prose(self, cdn):
        alg = cdn.algorithm
        # M1: Src cs N* A1 P1 D4 X1 P2 D1
        p = alg.path("Src", "D1")
        nodes = ["Src"] + [c.dst for c in p]
        assert nodes == ["Src", "N*", "A1", "P1", "D4", "X1", "P2", "D1"]
        # M2 passes through D1 before D2
        p2 = alg.path("Src", "D2")
        n2 = [c.dst for c in p2]
        assert "D1" in n2 and n2[-1] == "D2"
        # M3 through D2, M4 through D3
        assert "D2" in [c.dst for c in alg.path("Src", "D3")]
        assert "D3" in [c.dst for c in alg.path("Src", "D4")]

    def test_hold_counts_match_theorem1(self, cdn):
        """M1/M3 hold 3 ring channels, M2/M4 hold 4 (Theorem 1's counts)."""
        alg = cdn.algorithm
        ring_ids = {c.cid for c in cdn.cycle_channels}
        for tag, expect in [("M1", 4), ("M2", 5), ("M3", 4), ("M4", 5)]:
            path = alg.path(*cdn.message_pairs[tag])
            in_ring = sum(1 for c in path if c.cid in ring_ids)
            # uses expect ring channels; holds expect-1 (blocked at the last)
            assert in_ring == expect, tag
            assert FIG1_MESSAGES[tag]["min_length"] == expect - 1

    def test_approach_counts_match_theorem1(self, cdn):
        """M1/M3 use 2 channels from cs to the cycle, M2/M4 use 3."""
        alg = cdn.algorithm
        ring_ids = {c.cid for c in cdn.cycle_channels}
        for tag, expect in [("M1", 2), ("M2", 3), ("M3", 2), ("M4", 3)]:
            path = alg.path(*cdn.message_pairs[tag])
            assert path[0] is cdn.shared_channel
            first_ring = next(i for i, c in enumerate(path) if c.cid in ring_ids)
            assert first_ring - 1 == expect, tag

    def test_all_pairs_covered(self, cdn):
        assert cdn.routing.covers_all_pairs()

    def test_hub_relay_for_ordinary_pairs(self, cdn):
        alg = cdn.algorithm
        assert alg.hops("P3", "D1") == 2
        assert alg.hops("N*", "X4") == 1
        assert alg.hops("Src", "X1") == 2  # not an exception pair


class TestRoutingFunctionForm:
    def test_connected_but_none_of_the_corollary_forms(self, cdn):
        alg = cdn.algorithm
        # include hub-relay pairs so the input-channel dependence at N*
        # (cs vs other in-channels toward the same D_i) is in the domain
        pairs = list(cdn.message_pairs.values()) + [
            ("P3", "D1"), ("X1", "D2"), ("N*", "D3"), ("Src", "X1")
        ]
        assert is_connected(alg, pairs)
        assert not is_minimal(alg, pairs)
        assert not is_suffix_closed(alg, pairs)
        assert not is_coherent(alg, pairs)
        assert not is_input_channel_independent(alg, pairs)


class TestCDG:
    def test_exactly_one_cycle_of_length_14(self, cdn):
        cdg = build_cdg(cdn.algorithm)
        assert not is_acyclic(cdg)
        enum = find_cycles(cdg)
        assert not enum.truncated
        assert len(enum.cycles) == 1
        assert len(enum.cycles[0]) == 14
        assert {c.cid for c in enum.cycles[0]} == {c.cid for c in cdn.cycle_channels}

    def test_no_dally_seitz_certificate_exists(self, cdn):
        with pytest.raises(ValueError, match="cyclic"):
            dally_seitz_numbering(build_cdg(cdn.algorithm))


class TestTheorem1:
    """The headline result: the cycle is unreachable under synchrony."""

    def test_no_deadlock_minimum_lengths(self, cdn):
        res = search_deadlock(SystemSpec.uniform(cdn.checker_messages(), budget=0))
        assert res.is_false_resource_cycle

    def test_no_deadlock_longer_messages(self, cdn):
        msgs = [
            CheckerMessage(m.path, m.length + 2, m.tag) for m in cdn.checker_messages()
        ]
        res = search_deadlock(SystemSpec.uniform(msgs, budget=0))
        assert res.is_false_resource_cycle

    def test_no_deadlock_with_extra_copies(self, cdn):
        """Theorem 1's 'more than four messages' case."""
        msgs = cdn.checker_messages()
        extra = msgs + [
            CheckerMessage(msgs[1].path, msgs[1].length, "M2copy"),
            CheckerMessage(msgs[3].path, msgs[3].length, "M4copy"),
        ]
        res = search_deadlock(
            SystemSpec.uniform(extra, budget=0), max_states=12_000_000, find_witness=False
        )
        assert res.is_false_resource_cycle

    def test_deadlock_with_one_cycle_of_delay(self, cdn):
        """Section 6's observation: a single cycle of router delay suffices."""
        res = search_deadlock(SystemSpec.uniform(cdn.checker_messages(), budget=1))
        assert res.deadlock_reachable
