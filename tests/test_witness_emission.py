"""Constructive certificate witnesses: zero-search emission and replay.

ISSUE acceptance criterion: with certificates on, a certificate-decided
reachable scenario run with ``find_witness=True`` explores *zero* BFS
states yet still returns a concrete witness that (a) validates step by
step against the checker's transition relation and (b) replays through
the flit-level simulator to a real deadlock.
"""

from repro import obs
from repro.analysis.classify import classify_cycle
from repro.analysis.reachability import search_deadlock
from repro.analysis.schedules import witness_to_schedule
from repro.analysis.state import CheckerMessage, SystemSpec
from repro.campaign.scenarios import build_scenario
from repro.cdg.analysis import find_cycles
from repro.cdg.build import build_cdg
from repro.lint import (
    CERT_COUNTERS,
    certificate_witness,
    lint_algorithm,
    replay_certificate_witness,
    spec_certificate,
    validate_witness,
)
from repro.obs.core import Telemetry
from repro.routing import RoutingAlgorithm, clockwise_ring
from repro.topology import ring


def msg(path, length, tag=""):
    return CheckerMessage(path=tuple(path), length=length, tag=tag)


def _ring_spec():
    return SystemSpec.uniform([msg([0, 1, 2], 2, "a"), msg([2, 3, 0], 2, "b")])


THEOREM2 = {"ring_n": 6, "entries": [0, 2, 4], "run_lens": [3, 3, 3]}


def _src_dst_for(spec, network):
    chan = {c.cid: c for c in network.channels}
    return [
        (chan[m.path[0]].src, chan[m.path[-1]].dst) for m in spec.messages
    ]


class TestZeroSearchWitness:
    def test_witness_constructed_without_search(self):
        res = search_deadlock(_ring_spec(), find_witness=True, certificates="on")
        assert res.deadlock_reachable and res.states_explored == 0
        assert res.certificate == "CRT005"
        assert res.witness is not None and res.witness.deadlocked
        assert validate_witness(res.witness)

    def test_constructed_witness_matches_bfs_verdict(self):
        bfs = search_deadlock(_ring_spec(), find_witness=True, certificates="off")
        assert bfs.deadlock_reachable and bfs.states_explored > 0
        cert = search_deadlock(_ring_spec(), find_witness=True, certificates="on")
        assert cert.deadlock_reachable
        # both witnesses end in a genuine wait-for cycle
        assert validate_witness(bfs.witness) and validate_witness(cert.witness)

    def test_emission_bumps_counters(self):
        before = CERT_COUNTERS["lint.certificate.witness_emitted"]
        res = search_deadlock(_ring_spec(), find_witness=True, certificates="on")
        assert res.witness is not None
        assert CERT_COUNTERS["lint.certificate.witness_emitted"] == before + 1

    def test_fastpath_counted_in_telemetry(self):
        tel = Telemetry()
        with obs.scope(tel):
            res = search_deadlock(
                _ring_spec(), find_witness=True, certificates="on"
            )
        assert res.states_explored == 0
        assert tel.counters.get("search.certificate_short_circuits") == 1
        assert tel.counters.get("lint.certificate.witness_emitted") == 1

    def test_non_constructive_certificate_returns_none(self):
        # fig2-pair is decided by CRT007 (shared-channel theorem), which has
        # no constructive schedule: witness mode must fall back to the BFS
        bundle = build_scenario("fig2-pair", {"d1": 3, "d2": 1, "hold": 3})
        diag = lint_algorithm(bundle.algorithm).certificate_diagnostic
        assert diag.code == "CRT007"


class TestAcceptanceReplay:
    """The end-to-end criterion: certificate witness replays on the sim."""

    def test_theorem2_witness_replays_to_deadlock(self):
        bundle = build_scenario("theorem2-overlap", THEOREM2)
        spec = SystemSpec.uniform(bundle.messages)
        res = search_deadlock(spec, find_witness=True, certificates="on")
        assert res.deadlock_reachable and res.states_explored == 0
        assert res.certificate == "CRT005" and res.witness is not None
        assert validate_witness(res.witness)

        net = bundle.algorithm.network
        src_dst = _src_dst_for(res.witness.spec, net)
        before = CERT_COUNTERS["lint.certificate.replay.pass"]
        assert replay_certificate_witness(
            res.witness, net, bundle.algorithm.fn, src_dst
        )
        assert CERT_COUNTERS["lint.certificate.replay.pass"] == before + 1

    def test_classify_witness_replays_to_deadlock(self):
        net = ring(4)
        alg = RoutingAlgorithm(clockwise_ring(net, 4))
        (cycle,) = find_cycles(build_cdg(alg)).cycles
        cls = classify_cycle(alg, cycle, certificates="on")
        wit = cls.witness_result.witness
        assert wit is not None
        src_dst = _src_dst_for(wit.spec, net)
        assert replay_certificate_witness(wit, net, alg.fn, src_dst)


class TestClassifyWitnessAttachment:
    def test_classify_attaches_zero_search_witness(self):
        net = ring(4)
        alg = RoutingAlgorithm(clockwise_ring(net, 4))
        (cycle,) = find_cycles(build_cdg(alg)).cycles
        cls = classify_cycle(alg, cycle, certificates="on")
        assert cls.deadlock_reachable and cls.certificate == "CRT005"
        assert cls.scenarios_tested == 0
        assert cls.witness_result is not None
        assert cls.witness_result.states_explored == 0
        assert cls.witness_result.witness is not None
        assert validate_witness(cls.witness_result.witness)


class TestScheduleHorizon:
    def test_never_injected_messages_wait_past_horizon(self):
        """Non-member messages must not contend with the scripted prefix."""
        spec = SystemSpec.uniform(
            [
                msg([0, 1, 2], 2, "a"),
                msg([2, 3, 0], 2, "b"),
                msg([4], 1, "bystander"),
            ]
        )
        res = search_deadlock(spec, find_witness=True, certificates="off")
        assert res.deadlock_reachable and res.witness is not None
        sched = witness_to_schedule(
            res.witness, src_dst=[(0, 2), (2, 0), (4, 5)]
        )
        horizon = len(res.witness.steps)
        injected = {
            i
            for t, acts in enumerate(res.witness.steps)
            for i, a in enumerate(acts)
            if a == "try"
        }
        for s in sched.specs:
            if s.mid not in injected:
                assert s.inject_time == horizon


class TestCertificateWitnessAPI:
    def test_standalone_path_builds_spec(self):
        cert = spec_certificate(_ring_spec())
        assert cert is not None and cert.code == "CRT005"
        wit = certificate_witness(cert)
        assert wit is not None and validate_witness(wit)

    def test_deadlock_free_certificate_yields_no_witness(self):
        spec = SystemSpec.uniform([msg([0, 1], 1, "solo")])
        cert = spec_certificate(spec)
        assert cert is not None and not cert.deadlock_reachable
        assert certificate_witness(cert) is None

    def test_evidence_free_certificate_declines(self):
        from repro.lint.certificates import Certificate

        # a CRT005-shaped certificate with no usable evidence: the builder
        # must decline rather than guess
        bogus = Certificate(
            code="CRT005", verdict="REACHABLE_DEADLOCK", rationale="no evidence"
        )
        assert certificate_witness(bogus) is None

    def test_inconsistent_tiling_counted_as_failure(self):
        from repro.lint import build_crt005_witness

        spec = _ring_spec()
        before = CERT_COUNTERS["lint.certificate.witness_failed"]
        # held lengths that do not sum to the cycle length: reject + count
        assert (
            build_crt005_witness(spec, [0, 1], [0, 2], [2, 1], [0, 1, 2, 3])
            is None
        )
        assert CERT_COUNTERS["lint.certificate.witness_failed"] == before + 1
