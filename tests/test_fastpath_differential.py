"""Differential pin: the fast search core is bit-identical to the oracle.

The table-driven :class:`~repro.analysis.fastpath.FastEngine` and the
frontier-parallel BFS replace the reference search on the hot path, but the
reference implementation stays in the tree as a cross-checking oracle
(``engine="reference"`` / ``REPRO_SEARCH_ENGINE``).  These tests assert the
strongest form of equivalence on paper-battery scenarios and on randomly
generated small specs: identical ``deadlock_reachable`` verdicts, identical
``states_explored`` counts (symmetry reduction on and off), identical
:class:`SearchLimitExceeded` behaviour, and witnesses that are equal
step-for-step and replay to a genuine deadlock under the *reference*
dynamics.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.fastpath import FastEngine, engine_for
from repro.analysis.frontier import frontier_search
from repro.analysis.reachability import (
    SearchLimitExceeded,
    Witness,
    search_deadlock,
)
from repro.analysis.state import CheckerMessage, SystemSpec
from repro.campaign.scenarios import build_scenario


@pytest.fixture(autouse=True)
def _certificates_off(monkeypatch):
    """These tests pin BFS-engine equivalence; the static-certificate
    pre-pass would decide several battery specs with zero search states and
    mask the comparison."""
    monkeypatch.setenv("REPRO_STATIC_CERTIFICATES", "off")


def _battery_specs() -> list[tuple[str, SystemSpec]]:
    """Small paper-battery scenarios spanning both verdicts."""
    fig1 = build_scenario("fig1", {}).messages
    gen1 = build_scenario("gen", {"m": 1}).messages
    overlap = build_scenario(
        "theorem2-overlap", {"ring_n": 6, "entries": (0, 3), "run_lens": (4, 4)}
    ).messages
    return [
        ("fig1-b0", SystemSpec.uniform(fig1, budget=0)),  # unreachable
        ("fig1-b1", SystemSpec.uniform(fig1, budget=1)),  # deadlock
        ("gen1-b0", SystemSpec.uniform(gen1, budget=0)),
        ("gen1-b1", SystemSpec.uniform(gen1, budget=1)),
        ("thm2-overlap-b0", SystemSpec.uniform(overlap, budget=0)),
    ]


BATTERY = _battery_specs()


def _assert_valid_witness(spec: SystemSpec, wit: Witness) -> None:
    """Replay the witness through the *reference* successor relation."""
    cur = spec.initial_state()
    for actions, nxt in zip(wit.steps, wit.states):
        assert (nxt, actions) in spec.successors(cur), (cur, actions)
        cur = nxt
    dead = spec.deadlocked_set(cur)
    assert dead, "witness does not end in a deadlock"
    assert dead == wit.deadlocked


@pytest.mark.parametrize("label,spec", BATTERY, ids=[b[0] for b in BATTERY])
@pytest.mark.parametrize("symmetry", [False, True], ids=["nosym", "sym"])
def test_battery_verdicts_and_counts(label, spec, symmetry):
    ref = search_deadlock(
        spec, engine="reference", find_witness=False, symmetry_reduction=symmetry
    )
    fast = search_deadlock(
        spec, engine="fast", find_witness=False, symmetry_reduction=symmetry
    )
    assert fast.deadlock_reachable == ref.deadlock_reachable
    assert fast.states_explored == ref.states_explored


@pytest.mark.parametrize("label,spec", BATTERY, ids=[b[0] for b in BATTERY])
def test_battery_witness_equality_and_replay(label, spec):
    ref = search_deadlock(spec, engine="reference")
    fast = search_deadlock(spec, engine="fast")
    assert fast.deadlock_reachable == ref.deadlock_reachable
    assert fast.states_explored == ref.states_explored
    if not ref.deadlock_reachable:
        assert fast.witness is None and ref.witness is None
        return
    assert fast.witness is not None and ref.witness is not None
    assert fast.witness.steps == ref.witness.steps
    assert fast.witness.states == ref.witness.states
    assert fast.witness.deadlocked == ref.witness.deadlocked
    _assert_valid_witness(spec, fast.witness)


@pytest.mark.parametrize("label,spec", BATTERY, ids=[b[0] for b in BATTERY])
@pytest.mark.parametrize("symmetry", [False, True], ids=["nosym", "sym"])
def test_frontier_parallel_matches_serial(label, spec, symmetry, monkeypatch):
    # small frontier threshold so these small searches actually cross the
    # process pool instead of staying on the in-process path
    import repro.analysis.frontier as frontier_mod

    monkeypatch.setattr(frontier_mod, "MIN_PARALLEL_FRONTIER", 8)
    serial = engine_for(spec).search(symmetry_reduction=symmetry)
    par = frontier_search(
        spec, jobs=2, symmetry_reduction=symmetry, chunk_size=16
    )
    assert par == serial
    jobs = search_deadlock(spec, find_witness=False, symmetry_reduction=symmetry, jobs=2)
    assert (jobs.deadlock_reachable, jobs.states_explored) == serial


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_state_cap_is_engine_independent(engine):
    spec = BATTERY[0][1]
    with pytest.raises(SearchLimitExceeded):
        search_deadlock(spec, engine=engine, find_witness=False, max_states=10)


def test_search_jobs_cap_matches_serial(monkeypatch):
    import repro.analysis.frontier as frontier_mod

    monkeypatch.setattr(frontier_mod, "MIN_PARALLEL_FRONTIER", 8)
    spec = BATTERY[0][1]
    with pytest.raises(SearchLimitExceeded):
        frontier_search(spec, jobs=2, max_states=10, chunk_size=16)


# ----------------------------------------------------------------------
# randomly generated small specs
# ----------------------------------------------------------------------
@st.composite
def small_specs(draw) -> SystemSpec:
    num_channels = draw(st.integers(min_value=2, max_value=5))
    n_msgs = draw(st.integers(min_value=1, max_value=3))
    messages = []
    budgets = []
    for mi in range(n_msgs):
        plen = draw(st.integers(min_value=1, max_value=min(3, num_channels)))
        path = tuple(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=num_channels - 1),
                    min_size=plen,
                    max_size=plen,
                    unique=True,
                )
            )
        )
        length = draw(st.integers(min_value=1, max_value=3))
        messages.append(CheckerMessage(path=path, length=length, tag=f"M{mi}"))
        budgets.append(draw(st.integers(min_value=0, max_value=2)))
    return SystemSpec(messages=tuple(messages), budgets=tuple(budgets))


@settings(max_examples=30, deadline=None)
@given(spec=small_specs(), symmetry=st.booleans())
def test_random_specs_verdict_counts(spec, symmetry):
    ref = search_deadlock(
        spec,
        engine="reference",
        find_witness=False,
        symmetry_reduction=symmetry,
        max_states=60_000,
    )
    fast = search_deadlock(
        spec,
        engine="fast",
        find_witness=False,
        symmetry_reduction=symmetry,
        max_states=60_000,
    )
    assert fast.deadlock_reachable == ref.deadlock_reachable
    assert fast.states_explored == ref.states_explored


@settings(max_examples=20, deadline=None)
@given(spec=small_specs())
def test_random_specs_witnesses(spec):
    ref = search_deadlock(spec, engine="reference", max_states=60_000)
    fast = search_deadlock(spec, engine="fast", max_states=60_000)
    assert fast.deadlock_reachable == ref.deadlock_reachable
    assert fast.states_explored == ref.states_explored
    if ref.deadlock_reachable:
        assert fast.witness is not None and ref.witness is not None
        assert fast.witness.steps == ref.witness.steps
        assert fast.witness.states == ref.witness.states
        _assert_valid_witness(spec, fast.witness)


@settings(max_examples=15, deadline=None)
@given(spec=small_specs())
def test_random_specs_successor_contract(spec):
    """Engine expansion == reference successors deduplicated by next state."""
    eng = FastEngine(spec)
    state = spec.initial_state()
    for _ in range(4):  # a short reference walk from the root
        ref_pairs = []
        seen = set()
        for nxt, actions in spec.successors(state):
            if nxt not in seen:
                seen.add(nxt)
                ref_pairs.append((nxt, actions))
        fast_triples = eng.successors_full(state)
        assert [(s, a) for s, a, _ in fast_triples] == ref_pairs
        for nxt, _a, dead in fast_triples:
            assert dead == spec.deadlocked_set(nxt)
        if not ref_pairs:
            break
        state = ref_pairs[0][0]
