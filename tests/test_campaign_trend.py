"""campaign trend: per-task wall-time and states_explored diffs."""

import pytest

from repro.campaign.ledger import RunLedger
from repro.campaign.tasks import TaskResult
from repro.campaign.trend import TrendLine, compare_ledgers


def result(task_hash, wall, *, states=None, ok=True, name=None):
    detail = {} if states is None else {"states_explored": states}
    return TaskResult(
        task_hash=task_hash,
        name=name or f"task-{task_hash}",
        kind="reachability",
        scenario="fig1",
        params={},
        verdict="unreachable",
        detail=detail,
        ok=ok,
        wall_time=wall,
    )


def write_ledger(path, results):
    with RunLedger(path) as ledger:
        for res in results:
            ledger.record(res)
    return path


class TestWallTrend:
    def test_regression_and_improvement(self, tmp_path):
        old = write_ledger(tmp_path / "old.jsonl", [
            result("a", 1.0), result("b", 1.0), result("c", 1.0),
        ])
        new = write_ledger(tmp_path / "new.jsonl", [
            result("a", 2.0), result("b", 0.4), result("c", 1.05),
        ])
        report = compare_ledgers(old, new, threshold=1.5, min_seconds=0.05)
        assert [ln.task_hash for ln in report.regressions] == ["a"]
        assert [ln.task_hash for ln in report.improvements] == ["b"]
        assert not report.ok

    def test_noise_floor_shields_tiny_tasks(self, tmp_path):
        old = write_ledger(tmp_path / "old.jsonl", [result("a", 0.001)])
        new = write_ledger(tmp_path / "new.jsonl", [result("a", 0.01)])
        report = compare_ledgers(old, new, threshold=1.5, min_seconds=0.05)
        assert report.ok and not report.regressions

    def test_threshold_validation(self, tmp_path):
        path = write_ledger(tmp_path / "l.jsonl", [result("a", 1.0)])
        with pytest.raises(ValueError, match="threshold"):
            compare_ledgers(path, path, threshold=1.0)


class TestStatesTrend:
    def test_states_growth_fails_even_under_noise_floor(self, tmp_path):
        # wall time unchanged and tiny -- but the search did more work,
        # which is deterministic, so no noise floor applies
        old = write_ledger(tmp_path / "old.jsonl", [result("a", 0.001, states=100)])
        new = write_ledger(tmp_path / "new.jsonl", [result("a", 0.001, states=150)])
        report = compare_ledgers(old, new)
        assert [ln.task_hash for ln in report.states_regressions] == ["a"]
        assert not report.regressions  # wall time is fine
        assert not report.ok
        assert report.summary_rows()["states regressions"] == 1

    def test_equal_or_fewer_states_pass(self, tmp_path):
        old = write_ledger(tmp_path / "old.jsonl", [
            result("a", 0.1, states=100), result("b", 0.1, states=100),
        ])
        new = write_ledger(tmp_path / "new.jsonl", [
            result("a", 0.1, states=100), result("b", 0.1, states=60),
        ])
        report = compare_ledgers(old, new)
        assert report.ok and not report.states_regressions

    def test_states_threshold_tolerates_bounded_growth(self, tmp_path):
        old = write_ledger(tmp_path / "old.jsonl", [result("a", 0.1, states=100)])
        new = write_ledger(tmp_path / "new.jsonl", [result("a", 0.1, states=110)])
        assert not compare_ledgers(old, new).ok
        assert compare_ledgers(old, new, states_threshold=1.2).ok

    def test_missing_states_on_either_side_is_not_compared(self, tmp_path):
        # non-search kinds (and pre-telemetry ledgers) have no state count
        old = write_ledger(tmp_path / "old.jsonl", [
            result("a", 0.1), result("b", 0.1, states=50),
        ])
        new = write_ledger(tmp_path / "new.jsonl", [
            result("a", 0.1, states=999), result("b", 0.1),
        ])
        report = compare_ledgers(old, new)
        assert report.ok
        assert all(ln.states_ratio is None for ln in report.compared)

    def test_zero_to_some_states_is_infinite_regression(self, tmp_path):
        # a certificate short-circuit (0 states) that starts searching
        old = write_ledger(tmp_path / "old.jsonl", [result("a", 0.1, states=0)])
        new = write_ledger(tmp_path / "new.jsonl", [result("a", 0.1, states=7)])
        report = compare_ledgers(old, new)
        assert report.states_regressions[0].states_ratio == float("inf")
        assert report.states_regressions[0].row()["states ratio"] == "inf"

    def test_states_threshold_validation(self, tmp_path):
        path = write_ledger(tmp_path / "l.jsonl", [result("a", 1.0)])
        with pytest.raises(ValueError, match="states_threshold"):
            compare_ledgers(path, path, states_threshold=0.9)

    def test_row_includes_states_columns_only_when_present(self):
        with_states = TrendLine("h", "t", 1.0, 1.0, old_states=10, new_states=20)
        assert with_states.row()["states ratio"] == 2.0
        without = TrendLine("h", "t", 1.0, 1.0)
        assert "states ratio" not in without.row()


class TestTrendCli:
    def test_cli_reports_states_regressions_and_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        old = write_ledger(tmp_path / "old.jsonl", [result("a", 0.1, states=100)])
        new = write_ledger(tmp_path / "new.jsonl", [result("a", 0.1, states=200)])
        rc = main(["campaign", "trend", str(old), str(new)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "search-work regressions" in out
        assert "states regressions : 1" in out.replace("  ", " ").replace("  ", " ") or \
            "states regressions" in out

        rc = main([
            "campaign", "trend", str(old), str(new), "--states-threshold", "2.0",
        ])
        assert rc == 0

    def test_cli_rejects_bad_states_threshold(self, tmp_path, capsys):
        from repro.cli import main

        path = write_ledger(tmp_path / "l.jsonl", [result("a", 1.0)])
        rc = main([
            "campaign", "trend", str(path), str(path), "--states-threshold", "0.5",
        ])
        assert rc == 2
        assert "states_threshold" in capsys.readouterr().err
