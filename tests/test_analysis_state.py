"""Checker state-model tests: occupancy, transitions, deadlock detection."""

import pytest

from repro.analysis.state import CheckerMessage, SystemSpec


def linear_message(start, k, length, tag="m", base=0):
    """A message over channel ids base+start .. base+start+k-1."""
    return CheckerMessage(path=tuple(range(base + start, base + start + k)), length=length, tag=tag)


class TestCheckerMessage:
    def test_validation(self):
        with pytest.raises(ValueError):
            CheckerMessage(path=(), length=1)
        with pytest.raises(ValueError):
            CheckerMessage(path=(1, 2), length=0)
        with pytest.raises(ValueError, match="revisits"):
            CheckerMessage(path=(1, 2, 1), length=1)

    def test_k(self):
        assert CheckerMessage(path=(5, 6, 7), length=2).k == 3


class TestOccupancy:
    def test_initial_empty(self):
        spec = SystemSpec.uniform([linear_message(0, 4, 2)])
        assert spec.occupied_channels(spec.initial_state()) == {}

    def test_train_occupancy_growing(self):
        spec = SystemSpec.uniform([linear_message(0, 5, 3)])
        # h=3, inj=3, cons=0: flits occupy channels 0,1,2
        state = ((3, 3, 0, 0),)
        assert set(spec.occupied_channels(state)) == {0, 1, 2}

    def test_train_occupancy_sliding(self):
        spec = SystemSpec.uniform([linear_message(0, 5, 2)])
        # h=4, inj=2 (all injected), cons=0: occupies channels 2,3
        state = ((4, 2, 0, 0),)
        assert set(spec.occupied_channels(state)) == {2, 3}

    def test_draining_occupancy(self):
        spec = SystemSpec.uniform([linear_message(0, 4, 3)])
        # arrived (h=k+1=5), 1 consumed, 3 injected: 2 flits in last channels
        state = ((5, 3, 1, 0),)
        assert set(spec.occupied_channels(state)) == {2, 3}

    def test_done_occupies_nothing(self):
        spec = SystemSpec.uniform([linear_message(0, 4, 2)])
        state = ((5, 2, 2, 0),)
        assert spec.occupied_channels(state) == {}


class TestSuccessors:
    def test_single_message_advances_to_delivery(self):
        msg = linear_message(0, 3, 2)
        spec = SystemSpec.uniform([msg])
        state = spec.initial_state()
        # adversary may always wait; follow the always-advance branch
        for _ in range(3 + 2 + 2):
            succs = spec.successors(state)
            advancing = [s for s, acts in succs if s != state]
            if not advancing:
                break
            # pick the branch where the message moved furthest
            state = max(advancing, key=lambda s: (s[0][0], s[0][2]))
        assert spec.is_done(state, 0)

    def test_wait_self_loop_exists(self):
        spec = SystemSpec.uniform([linear_message(0, 3, 2)])
        init = spec.initial_state()
        assert any(s == init for s, _ in spec.successors(init))

    def test_stall_consumes_budget(self):
        spec = SystemSpec.uniform([linear_message(0, 3, 2)], budget=1)
        state = ((1, 1, 0, 1),)
        stalled = [s for s, acts in spec.successors(state) if acts[0] == "stall"]
        assert stalled and stalled[0][0] == (1, 1, 0, 0)

    def test_no_stall_without_budget(self):
        spec = SystemSpec.uniform([linear_message(0, 3, 2)], budget=0)
        state = ((1, 1, 0, 0),)
        assert all(acts[0] != "stall" for _, acts in spec.successors(state))

    def test_arbitration_branches_over_winners(self):
        # two messages whose first channel is the same
        a = CheckerMessage(path=(0, 1), length=1, tag="a")
        b = CheckerMessage(path=(0, 2), length=1, tag="b")
        spec = SystemSpec(messages=(a, b), budgets=(0, 0))
        init = spec.initial_state()
        wins = set()
        for s, acts in spec.successors(init):
            if acts[0] == "try" and acts[1] == "lose":
                wins.add("a")
            if acts[1] == "try" and acts[0] == "lose":
                wins.add("b")
        assert wins == {"a", "b"}

    def test_pipelined_handoff_same_cycle(self):
        """B can take channel 0 in the same cycle A's tail vacates it."""
        a = CheckerMessage(path=(0, 1, 2, 3), length=2, tag="a")
        b = CheckerMessage(path=(0, 1, 2, 3), length=2, tag="b")
        spec = SystemSpec(messages=(a, b), budgets=(0, 0))
        # A's tail is in channel 0 (h=2, inj=2): advancing A frees channel 0
        state = ((2, 2, 0, 0), (0, 0, 0, 0))
        succ_states = [s for s, acts in spec.successors(state)]
        # some successor has B injected (h=1) while A advanced (h=3)
        assert any(s[0][0] == 3 and s[1][0] == 1 for s in succ_states)

    def test_blocked_message_frozen(self):
        a = CheckerMessage(path=(0, 1, 2), length=3, tag="a")
        b = CheckerMessage(path=(5, 1, 6), length=1, tag="b")
        spec = SystemSpec(messages=(a, b), budgets=(0, 0))
        # a occupies channels 0,1 (h=2,f=2); b header in 5 wants channel 1
        state = ((2, 2, 0, 0), (1, 1, 0, 0))
        for s, acts in spec.successors(state):
            assert acts[1] in ("freeze", "adv")  # adv only if a's move freed 1
            if acts[1] == "freeze":
                assert s[1] == (1, 1, 0, 0)


class TestDeadlockDetection:
    def test_two_cycle_detected(self):
        # a holds 0 wants 1; b holds 1 wants 0
        a = CheckerMessage(path=(0, 1), length=1, tag="a")
        b = CheckerMessage(path=(1, 0), length=1, tag="b")
        spec = SystemSpec(messages=(a, b), budgets=(0, 0))
        state = ((1, 1, 0, 0), (1, 1, 0, 0))
        assert spec.deadlocked_set(state) == (0, 1)

    def test_chain_without_cycle_not_deadlock(self):
        a = CheckerMessage(path=(0, 1), length=1, tag="a")
        b = CheckerMessage(path=(1, 2), length=1, tag="b")
        spec = SystemSpec(messages=(a, b), budgets=(0, 0))
        state = ((1, 1, 0, 0), (1, 1, 0, 0))
        assert spec.deadlocked_set(state) == ()

    def test_draining_blocker_is_not_deadlock(self):
        # b waits on a channel held by a message that has arrived (draining)
        a = CheckerMessage(path=(0, 1), length=3, tag="a")
        b = CheckerMessage(path=(3, 1, 4), length=1, tag="b")
        spec = SystemSpec(messages=(a, b), budgets=(0, 0))
        # a: h=3 (=k+1: arrived), inj=3, cons=1 -> still holds channels 0,1
        state = ((3, 3, 1, 0), (1, 1, 0, 0))
        assert spec.deadlocked_set(state) == ()

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            SystemSpec(messages=(linear_message(0, 2, 1),), budgets=(-1,))
        with pytest.raises(ValueError):
            SystemSpec(messages=(linear_message(0, 2, 1),), budgets=(0, 0))
