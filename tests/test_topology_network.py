"""Network multigraph unit tests."""

import pytest

from repro.topology import Network


@pytest.fixture
def triangle():
    net = Network("tri")
    net.add_channel("A", "B", label="ab")
    net.add_channel("B", "C", label="bc")
    net.add_channel("C", "A", label="ca")
    return net


def test_nodes_and_channels_counts(triangle):
    assert triangle.num_nodes == 3
    assert triangle.num_channels == 3
    assert set(triangle.nodes) == {"A", "B", "C"}


def test_channel_lookup_by_label_and_cid(triangle):
    ab = triangle.channel_by_label("ab")
    assert ab.src == "A" and ab.dst == "B"
    assert triangle.channel(ab.cid) is ab


def test_unknown_label_raises(triangle):
    with pytest.raises(KeyError, match="nope"):
        triangle.channel_by_label("nope")


def test_duplicate_label_rejected():
    net = Network()
    net.add_channel("A", "B", label="x")
    with pytest.raises(ValueError, match="duplicate"):
        net.add_channel("B", "A", label="x")


def test_self_loop_rejected():
    net = Network()
    with pytest.raises(ValueError, match="self-loop"):
        net.add_channel("A", "A")


def test_multigraph_parallel_channels():
    net = Network()
    c0 = net.add_channel("A", "B", vc=0)
    c1 = net.add_channel("A", "B", vc=1)
    assert c0 != c1
    assert net.channels_between("A", "B") == [c0, c1]


def test_in_out_adjacency(triangle):
    assert [c.label for c in triangle.channels_out("A")] == ["ab"]
    assert [c.label for c in triangle.channels_in("A")] == ["ca"]
    assert triangle.neighbors_out("A") == ["B"]
    assert triangle.degree_out("A") == 1


def test_contains_node_and_channel(triangle):
    ab = triangle.channel_by_label("ab")
    assert "A" in triangle
    assert ab in triangle
    assert "Z" not in triangle


def test_add_bidirectional():
    net = Network()
    fwd, rev = net.add_bidirectional("A", "B", label="link")
    assert fwd.src == "A" and rev.src == "B"
    assert net.channel_by_label("link+") is fwd
    assert net.channel_by_label("link-") is rev


def test_distances_and_cache_invalidation(triangle):
    assert triangle.distance("A", "C") == 2
    triangle.invalidate_caches()
    triangle.add_channel("A", "C", label="shortcut")
    triangle.invalidate_caches()
    assert triangle.distance("A", "C") == 1


def test_to_networkx_roundtrip(triangle):
    g = triangle.to_networkx()
    assert g.number_of_nodes() == 3
    assert g.number_of_edges() == 3
    # channel objects ride along on edges
    datas = [d["channel"].label for _, _, d in g.edges(data=True)]
    assert sorted(datas) == ["ab", "bc", "ca"]


def test_node_digraph_collapses_parallels():
    net = Network()
    net.add_channel("A", "B", vc=0)
    net.add_channel("A", "B", vc=1)
    g = net.node_digraph()
    assert g.number_of_edges() == 1
