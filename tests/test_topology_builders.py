"""Topology builder tests."""


import pytest

from repro.topology import (
    check_strongly_connected,
    from_edges,
    hypercube,
    mesh,
    ring,
    star,
    torus,
)


class TestRing:
    def test_unidirectional_counts(self):
        net = ring(5)
        assert net.num_nodes == 5
        assert net.num_channels == 5

    def test_bidirectional_counts(self):
        net = ring(5, bidirectional=True)
        assert net.num_channels == 10

    def test_virtual_channels(self):
        net = ring(4, vcs=2)
        assert net.num_channels == 8
        assert len(net.channels_between(0, 1)) == 2

    def test_strongly_connected(self):
        check_strongly_connected(ring(6))

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            ring(2)


class TestMesh:
    def test_2d_counts(self):
        net = mesh((3, 4))
        assert net.num_nodes == 12
        # bidirectional links: 2 * (2*4 + 3*3) = 34
        assert net.num_channels == 2 * (2 * 4 + 3 * 3)

    def test_3d_nodes_are_coordinates(self):
        net = mesh((2, 2, 2))
        assert (0, 1, 1) in net
        assert net.num_nodes == 8

    def test_no_wraparound(self):
        net = mesh((3, 3))
        assert net.channels_between((2, 0), (0, 0)) == []

    def test_strongly_connected(self):
        check_strongly_connected(mesh((3, 3)))

    def test_degenerate_dim_rejected(self):
        with pytest.raises(ValueError):
            mesh((1, 3))


class TestTorus:
    def test_wraparound_present(self):
        net = torus((4, 4), vcs=2)
        assert len(net.channels_between((3, 0), (0, 0))) == 2

    def test_channel_count(self):
        net = torus((4, 4), vcs=2)
        # 2 dims * 16 nodes * 2 directions * 2 vcs
        assert net.num_channels == 2 * 16 * 2 * 2

    def test_strongly_connected(self):
        check_strongly_connected(torus((3, 3), vcs=1))


class TestHypercube:
    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_counts(self, d):
        net = hypercube(d)
        assert net.num_nodes == 2**d
        assert net.num_channels == d * 2**d  # d*2^(d-1) links, 2 dirs

    def test_neighbors_differ_by_one_bit(self):
        net = hypercube(3)
        for ch in net.channels:
            assert bin(ch.src ^ ch.dst).count("1") == 1

    def test_strongly_connected(self):
        check_strongly_connected(hypercube(3))


class TestStar:
    def test_hub_links(self):
        net = star("hub", ["a", "b", "c"])
        assert net.num_channels == 6
        assert net.channels_between("hub", "a")
        assert net.channels_between("a", "hub")

    def test_unidirectional(self):
        net = star("hub", ["a"], bidirectional=False)
        assert net.num_channels == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            star("hub", [])


class TestFromEdges:
    def test_basic(self):
        net = from_edges([("A", "B"), ("B", "A")])
        assert net.num_channels == 2

    def test_bidirectional_flag(self):
        net = from_edges([("A", "B")], bidirectional=True)
        assert net.num_channels == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            from_edges([])


def test_all_builders_label_channels_uniquely():
    for net in (ring(5), mesh((3, 3)), torus((3, 3)), hypercube(3)):
        labels = [c.label for c in net.channels]
        assert all(lbl is not None for lbl in labels)
        assert len(set(labels)) == len(labels), net.name
