"""Section 7 extension tests: four messages, multiple shared channels."""

import pytest

from repro.core.multi_message import (
    predicted_unreachable,
    split_shared_fig1,
)
from repro.core.specs import CycleMessageSpec, build_shared_cycle


def specs_from(params):
    return [
        CycleMessageSpec(approach_len=d, hold_len=h, label=f"S{i}")
        for i, (d, h) in enumerate(params)
    ]


class TestPredictor:
    def test_fig1_predicted_unreachable(self):
        assert predicted_unreachable(specs_from([(2, 3), (3, 4), (2, 3), (3, 4)]))

    def test_hold_le_approach_predicts_deadlock(self):
        assert not predicted_unreachable(specs_from([(3, 2), (3, 4), (2, 3), (3, 4)]))

    def test_feasible_schedule_predicts_deadlock(self):
        # two-message configuration with a feasible consecutive schedule
        assert not predicted_unreachable(specs_from([(3, 4), (2, 4)]))

    def test_rejects_non_shared(self):
        specs = specs_from([(2, 3), (3, 4)])
        specs.append(
            CycleMessageSpec(approach_len=1, hold_len=2, uses_shared=False, label="E")
        )
        with pytest.raises(ValueError, match="all-shared"):
            predicted_unreachable(specs)


class TestSplitShared:
    def test_builder_creates_two_shared_channels(self):
        c = split_shared_fig1((0, 1, 0, 1))
        assert len(c.shared_channels) == 2
        assert c.shared_channels[0].label == "cs"
        assert c.shared_channels[1].label == "cs1"
        # group-1 messages start at Src1 and use cs1, not cs
        alg = c.algorithm
        p2 = alg.path(*c.message_pairs[1])
        assert p2[0] is c.shared_channels[1]
        assert c.shared_channels[0] not in p2

    def test_single_group_matches_original(self):
        c = split_shared_fig1((0, 0, 0, 0))
        assert len(c.shared_channels) == 1
        assert all(
            c.algorithm.path(*pair)[0] is c.shared_channels[0]
            for pair in c.message_pairs
        )

    def test_bad_group_count(self):
        with pytest.raises(ValueError):
            split_shared_fig1((0, 1))

    def test_2plus2_split_deadlocks(self):
        """With only two messages per shared channel, Theorem 4 logic bites."""
        from repro.analysis import SystemSpec, search_deadlock

        c = split_shared_fig1((0, 1, 0, 1))
        res = search_deadlock(
            SystemSpec.uniform(c.checker_messages()), find_witness=False
        )
        assert res.deadlock_reachable

    def test_3plus1_split_deadlocks(self):
        from repro.analysis import SystemSpec, search_deadlock

        c = split_shared_fig1((0, 0, 0, 1))
        res = search_deadlock(
            SystemSpec.uniform(c.checker_messages()), find_witness=False
        )
        assert res.deadlock_reachable


class TestSpecValidation:
    def test_negative_group_rejected(self):
        with pytest.raises(ValueError):
            CycleMessageSpec(approach_len=1, hold_len=2, shared_group=-1)

    def test_groups_do_not_collide_in_network(self):
        c = build_shared_cycle(
            [
                CycleMessageSpec(approach_len=2, hold_len=3, shared_group=0),
                CycleMessageSpec(approach_len=2, hold_len=3, shared_group=1),
                CycleMessageSpec(approach_len=2, hold_len=3, shared_group=2),
            ]
        )
        assert len(c.shared_channels) == 3
        srcs = {p[0] for p in c.message_pairs}
        assert srcs == {"Src", "Src1", "Src2"}
