"""Reachability search tests."""

import pytest

from repro.analysis import SearchLimitExceeded, SystemSpec, search_deadlock
from repro.analysis.state import CheckerMessage


def msg(path, length, tag=""):
    return CheckerMessage(path=tuple(path), length=length, tag=tag)


class TestSearch:
    def test_head_on_ring_deadlocks(self):
        # two messages traversing a 4-ring in opposite phases
        a = msg([0, 1, 2], 2, "a")
        b = msg([2, 3, 0], 2, "b")
        res = search_deadlock(SystemSpec.uniform([a, b]))
        assert res.deadlock_reachable
        assert res.witness is not None
        assert res.witness.deadlocked == (0, 1)

    def test_disjoint_paths_never_deadlock(self):
        a = msg([0, 1], 3, "a")
        b = msg([2, 3], 3, "b")
        res = search_deadlock(SystemSpec.uniform([a, b]))
        assert not res.deadlock_reachable
        assert res.is_false_resource_cycle

    def test_single_message_never_deadlocks(self):
        res = search_deadlock(SystemSpec.uniform([msg([0, 1, 2, 3], 5)]))
        assert not res.deadlock_reachable

    def test_witness_is_minimal_length(self):
        a = msg([0, 1, 2], 2, "a")
        b = msg([2, 3, 0], 2, "b")
        res = search_deadlock(SystemSpec.uniform([a, b]))
        # both inject at t=0, hold two channels each by t=1, deadlock visible
        # at the state after cycle 2 at the latest
        assert res.witness.num_cycles <= 3

    def test_witness_states_consistent(self):
        a = msg([0, 1, 2], 2, "a")
        b = msg([2, 3, 0], 2, "b")
        res = search_deadlock(SystemSpec.uniform([a, b]))
        w = res.witness
        assert len(w.states) == len(w.steps)
        # replaying the actions through successors reproduces each state
        spec = w.spec
        cur = spec.initial_state()
        for expected in w.states:
            succs = {s for s, _ in spec.successors(cur)}
            assert expected in succs
            cur = expected
        assert spec.deadlocked_set(cur)

    def test_state_cap_raises(self):
        # certificates off: these disjoint-path messages are statically
        # deadlock-free, and a decided verdict would skip the BFS (and its
        # cap) entirely -- this test exercises the cap machinery itself
        msgs = [msg([i * 10 + j for j in range(5)], 3, f"m{i}") for i in range(3)]
        with pytest.raises(SearchLimitExceeded):
            search_deadlock(SystemSpec.uniform(msgs), max_states=5, certificates="off")

    def test_budget_monotonicity(self):
        """More stall budget can only help the adversary."""
        from repro.core.generalized import generalized_messages

        msgs = generalized_messages(1)
        r0 = search_deadlock(SystemSpec.uniform(msgs, budget=0), find_witness=False)
        r1 = search_deadlock(SystemSpec.uniform(msgs, budget=1), find_witness=False)
        assert not r0.deadlock_reachable
        assert r1.deadlock_reachable

    def test_no_witness_mode(self):
        a = msg([0, 1, 2], 2, "a")
        b = msg([2, 3, 0], 2, "b")
        res = search_deadlock(SystemSpec.uniform([a, b]), find_witness=False)
        assert res.deadlock_reachable and res.witness is None

    def test_symmetry_reduction_preserves_verdict(self):
        """Identical message copies: reduced search agrees, explores less."""
        from repro.core.cyclic_dependency import build_cyclic_dependency_network

        cdn = build_cyclic_dependency_network()
        msgs = cdn.checker_messages()
        extra = msgs + [CheckerMessage(msgs[1].path, msgs[1].length, "M2c")]
        plain = search_deadlock(
            SystemSpec.uniform(extra),
            max_states=12_000_000,
            find_witness=False,
            symmetry_reduction=False,
        )
        reduced = search_deadlock(
            SystemSpec.uniform(extra),
            max_states=12_000_000,
            find_witness=False,
            symmetry_reduction=True,
        )
        assert plain.deadlock_reachable == reduced.deadlock_reachable
        assert reduced.states_explored < plain.states_explored

    def test_symmetry_reduction_noop_without_duplicates(self):
        a = msg([0, 1, 2], 2, "a")
        b = msg([2, 3, 0], 2, "b")
        plain = search_deadlock(
            SystemSpec.uniform([a, b]), find_witness=False, symmetry_reduction=False
        )
        reduced = search_deadlock(
            SystemSpec.uniform([a, b]), find_witness=False, symmetry_reduction=True
        )
        assert plain.states_explored == reduced.states_explored

    def test_symmetric_deadlock_still_found(self):
        """Two identical head-on messages: reduction must not lose the bug."""
        a = msg([0, 1, 2], 2, "a")
        b = msg([2, 3, 0], 2, "b")
        twin_a = msg([0, 1, 2], 2, "a2")
        res = search_deadlock(
            SystemSpec.uniform([a, b, twin_a]),
            find_witness=False,
            symmetry_reduction=True,
        )
        assert res.deadlock_reachable

    def test_witness_render_mentions_tags(self):
        a = msg([0, 1, 2], 2, "alpha")
        b = msg([2, 3, 0], 2, "beta")
        res = search_deadlock(SystemSpec.uniform([a, b]))
        out = res.witness.render()
        assert "alpha" in out and "beta" in out
