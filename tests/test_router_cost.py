"""Chien router cost model tests (the intro's complexity claim, measured)."""


from repro.core.cyclic_dependency import build_cyclic_dependency_network
from repro.sim.router_cost import RouterCostModel, network_cost, router_cost
from repro.topology import mesh, ring, torus


def test_mesh_corner_vs_center():
    net = mesh((4, 4))
    corner = router_cost(net, (0, 0))
    center = router_cost(net, (1, 1))
    assert center.in_ports > corner.in_ports
    assert center.cycle_time >= corner.cycle_time


def test_vcs_increase_cycle_time():
    slim = network_cost(torus((4, 4), vcs=1))
    fat = network_cost(torus((4, 4), vcs=4))
    assert fat.cycle_time > slim.cycle_time
    assert fat.per_node[0].max_vcs == 4


def test_adaptive_selection_costs():
    net = mesh((4, 4))
    obl = router_cost(net, (1, 1), candidate_width=1)
    ada = router_cost(net, (1, 1), candidate_width=4)
    assert ada.cycle_time > obl.cycle_time


def test_fig1_hub_is_the_bottleneck():
    """The Figure 1 construction concentrates everything at N*: its router
    is far larger than any spoke's -- the honest hardware cost of the
    paper's example (and of the intro's simplicity claim cutting both ways)."""
    cdn = build_cyclic_dependency_network()
    cost = network_cost(cdn.network)
    assert str(cost.bottleneck.node) == "N*"
    spoke = router_cost(cdn.network, "X1")
    assert cost.bottleneck.crossbar_points > 10 * spoke.crossbar_points


def test_mesh_cheaper_than_fig1_hub():
    mesh_cost = network_cost(mesh((5, 5)))
    fig1_cost = network_cost(build_cyclic_dependency_network().network)
    assert mesh_cost.cycle_time < fig1_cost.cycle_time


def test_custom_model_constants():
    net = ring(4)
    slow = RouterCostModel(t_decode=100.0)
    assert router_cost(net, 0, model=slow).cycle_time > 100.0


def test_summary_shape():
    s = network_cost(ring(5)).summary()
    assert s["routers"] == 5
    assert s["network cycle time"] > 0
