"""Property-based round-trip tests for TableRouting compilation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import RoutingAlgorithm, TableRouting
from repro.routing.table import PathTableError
from repro.topology import Network, ring


@st.composite
def ring_path_tables(draw):
    """A ring network plus a set of non-conflicting clockwise paths.

    Clockwise ring paths can never violate the C x N -> C functionality
    requirement (the out-channel at a node is determined by the node), so
    every drawn table must compile and round-trip.
    """
    n = draw(st.integers(4, 9))
    net = ring(n)
    k = draw(st.integers(1, 6))
    pairs = set()
    node_paths = {}
    for _ in range(k):
        src = draw(st.integers(0, n - 1))
        hops = draw(st.integers(1, n - 1))
        dst = (src + hops) % n
        if (src, dst) in pairs:
            continue
        pairs.add((src, dst))
        node_paths[(src, dst)] = [(src + j) % n for j in range(hops + 1)]
    return net, node_paths


@given(ring_path_tables())
@settings(max_examples=50, deadline=None)
def test_compile_round_trip(data):
    net, node_paths = data
    if not node_paths:
        return
    tr = TableRouting.from_node_paths(net, node_paths)
    alg = RoutingAlgorithm(tr)
    for (src, dst), nodes in node_paths.items():
        path = alg.path(src, dst)
        assert [path[0].src] + [c.dst for c in path] == nodes
        assert tr.table_path(src, dst) == tuple(path)
    assert set(tr.defined_pairs()) == set(node_paths)


@given(ring_path_tables())
@settings(max_examples=30, deadline=None)
def test_compiled_function_is_input_channel_independent_on_rings(data):
    """Clockwise-only path sets behave as N x N -> C."""
    from repro.routing.properties import is_input_channel_independent

    net, node_paths = data
    if not node_paths:
        return
    tr = TableRouting.from_node_paths(net, node_paths)
    alg = RoutingAlgorithm(tr)
    assert is_input_channel_independent(alg)


def test_conflicting_table_always_rejected():
    """Divergent continuations after a shared channel must never compile."""
    net = Network()
    sa = net.add_channel("S", "A", label="sa")
    ab = net.add_channel("A", "B", label="ab")
    ac = net.add_channel("A", "C", label="ac")
    bd = net.add_channel("B", "D", label="bd")
    cd = net.add_channel("C", "D", label="cd")
    try:
        TableRouting(
            net,
            {("S", "D"): [sa, ab, bd], ("Q", "D"): [sa, ac, cd]},
            check=False,
        )
        raise AssertionError("conflicting table compiled")
    except PathTableError:
        pass
