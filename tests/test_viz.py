"""Visualization (DOT / timeline) tests."""

from repro.analysis import SystemSpec, search_deadlock
from repro.cdg import build_cdg, find_cycles
from repro.core.two_message import build_two_message_config
from repro.routing import RoutingAlgorithm, clockwise_ring
from repro.sim import MessageSpec, Simulator
from repro.topology import ring
from repro.viz import cdg_to_dot, network_to_dot, occupancy_snapshot, witness_timeline


def test_network_to_dot_structure():
    net = ring(4)
    dot = network_to_dot(net)
    assert dot.startswith("digraph")
    assert dot.rstrip().endswith("}")
    assert dot.count("->") == 4
    assert '"0" -> "1"' in dot


def test_network_to_dot_highlight():
    net = ring(4)
    hot = net.channels[:2]
    dot = network_to_dot(net, highlight=hot)
    assert dot.count('color="red"') == 2


def test_cdg_to_dot_cycle_marked():
    net = ring(4)
    alg = RoutingAlgorithm(clockwise_ring(net, 4))
    cdg = build_cdg(alg)
    cycle = find_cycles(cdg).cycles[0]
    dot = cdg_to_dot(cdg, cycle=cycle)
    assert dot.count("penwidth=2.0") == len(cycle)


def test_dot_escapes_quotes():
    from repro.topology import Network

    net = Network('weird"name')
    net.add_channel("a", "b")
    dot = network_to_dot(net)
    assert r"\"" in dot


def test_witness_timeline_glyphs():
    cfg = build_two_message_config()
    res = search_deadlock(SystemSpec.uniform(cfg.checker_messages()))
    out = witness_timeline(res.witness)
    assert "M1" in out and "M2" in out
    assert "I" in out  # injection glyph
    assert ">" in out  # advance glyph
    assert "legend:" in out
    # deadlocked messages are starred
    assert "*" in out


def test_occupancy_snapshot():
    net = ring(6)
    sim = Simulator(net, clockwise_ring(net, 6), [MessageSpec(0, 0, 4, length=8)])
    for _ in range(3):
        sim.step()
    out = occupancy_snapshot(sim)
    assert "owner=m0" in out
    assert "cycle 3" in out


def test_occupancy_snapshot_empty():
    net = ring(6)
    sim = Simulator(net, clockwise_ring(net, 6), [])
    out = occupancy_snapshot(sim)
    assert "all channels free" in out
