"""Property checker tests (Definitions 7-9 and the Corollary 1 form)."""

import pytest

from repro.routing import (
    RoutingAlgorithm,
    TableRouting,
    analyze_properties,
    clockwise_ring,
    dimension_order_mesh,
    is_coherent,
    is_connected,
    is_input_channel_independent,
    is_minimal,
    is_prefix_closed,
    is_suffix_closed,
    never_revisits_nodes,
)
from repro.routing.properties import minimality_slack
from repro.topology import Network, mesh, ring


@pytest.fixture
def dor_alg():
    net = mesh((3, 3))
    return RoutingAlgorithm(dimension_order_mesh(net, 2))


def test_dor_has_all_good_properties(dor_alg):
    props = analyze_properties(dor_alg)
    assert props.connected
    assert props.minimal
    assert props.prefix_closed
    assert props.suffix_closed
    assert props.coherent
    assert props.input_channel_independent
    assert props.node_revisit_free


def test_ring_properties():
    net = ring(5)
    alg = RoutingAlgorithm(clockwise_ring(net, 5))
    assert is_connected(alg)
    assert is_minimal(alg)  # unidirectional ring: the only path is shortest
    assert is_suffix_closed(alg)
    assert is_prefix_closed(alg)
    assert is_coherent(alg)
    assert is_input_channel_independent(alg)


@pytest.fixture
def detour_net():
    """S -> A -> B (direct) plus a longer S -> C -> A path for contrast."""
    net = Network()
    for a, b in [("S", "A"), ("A", "B"), ("S", "C"), ("C", "A"), ("B", "S")]:
        net.add_channel(a, b, label=f"{a}{b}")
    return net


def test_nonminimal_detected(detour_net):
    tr = TableRouting.from_node_paths(
        detour_net, {("S", "A"): ["S", "C", "A"], ("S", "B"): ["S", "A", "B"]}
    )
    alg = RoutingAlgorithm(tr)
    assert not is_minimal(alg)
    slack = minimality_slack(alg)
    assert slack[("S", "A")] == 1
    assert slack[("S", "B")] == 0


def test_prefix_closure_violation(detour_net):
    # S->B goes via A, but S->A takes the detour: prefix differs
    tr = TableRouting.from_node_paths(
        detour_net, {("S", "B"): ["S", "A", "B"], ("S", "A"): ["S", "C", "A"]}
    )
    alg = RoutingAlgorithm(tr)
    assert not is_prefix_closed(alg)


def test_prefix_closure_undefined_partial_counts_as_violation(detour_net):
    tr = TableRouting.from_node_paths(detour_net, {("S", "B"): ["S", "A", "B"]})
    alg = RoutingAlgorithm(tr)
    assert not is_prefix_closed(alg)  # (S, A) partial path undefined


def test_suffix_closure_violation():
    net = Network()
    for a, b in [("S", "A"), ("A", "B"), ("A", "C"), ("C", "B"), ("B", "S")]:
        net.add_channel(a, b, label=f"{a}{b}")
    # S->B goes S,A,B but A->B (as a source) goes A,C,B
    tr = TableRouting.from_node_paths(
        net, {("S", "B"): ["S", "A", "B"], ("A", "B"): ["A", "C", "B"]}
    )
    alg = RoutingAlgorithm(tr)
    assert not is_suffix_closed(alg)
    assert not is_coherent(alg)


def test_node_revisit_breaks_coherence():
    net = Network()
    for a, b in [("S", "A"), ("A", "C"), ("C", "A"), ("A", "B"), ("B", "S")]:
        net.add_channel(a, b, label=f"{a}{b}")
    tr = TableRouting.from_node_paths(net, {("S", "B"): ["S", "A", "C", "A", "B"]})
    alg = RoutingAlgorithm(tr)
    assert not never_revisits_nodes(alg)
    assert not is_coherent(alg)


def test_input_channel_dependence_detected():
    """Two in-channels at one node route to the same dest differently."""
    net = Network()
    for a, b in [("X", "A"), ("Y", "A"), ("A", "B"), ("A", "C"), ("C", "B"),
                 ("B", "X"), ("B", "Y")]:
        net.add_channel(a, b, label=f"{a}{b}")
    tr = TableRouting.from_node_paths(
        net, {("X", "B"): ["X", "A", "B"], ("Y", "B"): ["Y", "A", "C", "B"]}
    )
    alg = RoutingAlgorithm(tr)
    assert not is_input_channel_independent(alg)


def test_connected_false_for_partial_table(detour_net):
    tr = TableRouting.from_node_paths(detour_net, {("S", "B"): ["S", "A", "B"]})
    alg = RoutingAlgorithm(tr)
    # over the full node-pair domain the table is not connected
    nodes = detour_net.nodes
    pairs = [(s, d) for s in nodes for d in nodes if s != d]
    assert not is_connected(alg, pairs)
    # over its own domain it is
    assert is_connected(alg)


def _count_try_path(alg, run):
    """Number of try_path calls ``run(alg)`` makes, with a cold path cache."""
    alg.clear_cache()
    calls = 0
    original = alg.try_path

    def counting(src, dst):
        nonlocal calls
        calls += 1
        return original(src, dst)

    alg.try_path = counting
    try:
        run(alg)
    finally:
        del alg.try_path
    return calls


def test_analyze_properties_shares_one_scan():
    """One PropertyScan serves every checker: no per-property recomputation."""
    from repro.routing.properties import PropertyScan

    net = mesh((3, 3))

    def fresh():
        return RoutingAlgorithm(dimension_order_mesh(net, 2))

    combined = _count_try_path(fresh(), analyze_properties)

    def separate(alg):
        for check in (
            is_connected,
            is_minimal,
            is_prefix_closed,
            is_suffix_closed,
            is_coherent,
            is_input_channel_independent,
        ):
            check(alg)

    separately = _count_try_path(fresh(), separate)
    assert combined < separately

    # and repeated property reads on one scan never touch the algorithm again
    alg = fresh()
    scan = PropertyScan(alg)
    scan.properties()
    repeat = _count_try_path(alg, lambda a: (scan.properties(), scan.properties()))
    assert repeat == 0
