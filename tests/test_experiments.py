"""Experiment driver integration tests (fast configurations)."""


from repro.experiments import render_kv, render_table
from repro.experiments.fig2 import run_fig2_experiment
from repro.experiments.generalization import run_generalization_experiment
from repro.experiments.theorem2 import run_corollary_baselines, run_theorem2_experiment
from repro.experiments.theorem3 import run_theorem3_experiment
from repro.experiments.traffic import run_ring_deadlock_probe, run_traffic_experiment


class TestRendering:
    def test_render_table_alignment(self):
        out = render_table(
            [{"a": 1, "bb": "x"}, {"a": 22, "bb": "yyy"}], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_table_empty(self):
        assert "(no rows)" in render_table([])

    def test_render_table_floats(self):
        out = render_table([{"v": 3.14159}])
        assert "3.14" in out

    def test_render_kv(self):
        out = render_kv({"alpha": 1, "b": "two"}, title="K")
        assert "alpha" in out and "two" in out


class TestFig1Driver:
    def test_full_battery(self):
        from repro.experiments.fig1 import run_fig1_experiment

        res = run_fig1_experiment(max_delay=2, with_copies=False)
        assert res.unreachable_at_sync
        assert res.unreachable_longer_messages
        assert not res.analytic_feasible
        assert res.min_delay_to_deadlock == 1
        assert res.replay_deadlocked
        assert not res.flow_model_certifies
        rows = res.summary_rows()
        assert all(r["paper"] == r["measured"] for r in rows if r["check"] != "deadlock reachable with extra copies")


class TestFig2Driver:
    def test_small_sweep(self):
        res = run_fig2_experiment(approach_range=(1, 2), hold_range=(2, 3))
        assert res.default_deadlocks
        assert res.all_sweep_deadlock
        assert res.replay_deadlocked
        assert res.matches_paper


class TestTheorem2Driver:
    def test_all_overlap_configs_deadlock(self):
        res = run_theorem2_experiment()
        assert res.all_deadlock
        assert len(res.overlap_rows) == 4

    def test_corollary_baseline_rows(self):
        rows = run_corollary_baselines()
        assert rows[0]["classification"] == "deadlock"
        names = [r["algorithm"] for r in rows]
        assert any("DOR" in n for n in names)
        assert any("torus" in n for n in names)


class TestTheorem3Driver:
    def test_quick(self):
        res = run_theorem3_experiment(
            num_messages=2, approach_range=(1, 2), hold_range=(2, 3), limit=10
        )
        assert res.theorem_holds
        assert res.fig1_certified_nonminimal


class TestGeneralizationDriver:
    def test_m1_only(self):
        res = run_generalization_experiment(params=(1,), max_delay=3)
        assert res.profile == {1: 1}
        assert res.deadlock_free_under_synchrony
        assert res.rows()[0]["m"] == 1


class TestTrafficDriver:
    def test_light_load_points(self):
        pts = run_traffic_experiment(rates=(0.02,), mesh_dims=(4, 4), cycles=60)
        assert len(pts) == 3
        for p in pts:
            assert not p.deadlocked
            assert p.delivered == p.total

    def test_ring_probe_deadlocks(self):
        probe = run_ring_deadlock_probe(n=6, rate=0.2, cycles=100, length=8)
        assert probe.deadlocked
