"""Arbitration policy tests."""

import pytest

from repro.routing import clockwise_ring
from repro.sim import (
    AdversarialArbitration,
    FifoArbitration,
    MessageSpec,
    RandomArbitration,
    RoundRobinArbitration,
    Simulator,
)
from repro.sim.message import MessageState
from repro.topology import Network, ring


def _mk(mid, tag="", first_request=None):
    m = MessageState(spec=MessageSpec(mid, "A", "B", length=2, tag=tag))
    if first_request is not None:
        m.first_request_cycle[0] = first_request
    return m


@pytest.fixture
def chan():
    net = Network()
    return net.add_channel("A", "B")


def test_fifo_prefers_longest_waiter(chan):
    a = _mk(0, first_request=5)
    b = _mk(1, first_request=2)
    assert FifoArbitration().choose(chan, [a, b], 10) is b


def test_fifo_tie_breaks_by_mid(chan):
    a = _mk(0, first_request=2)
    b = _mk(1, first_request=2)
    assert FifoArbitration().choose(chan, [a, b], 10) is a


def test_round_robin_rotates(chan):
    rr = RoundRobinArbitration()
    msgs = [_mk(i) for i in range(3)]
    w1 = rr.choose(chan, msgs, 0)
    w2 = rr.choose(chan, msgs, 1)
    assert w1 is not w2


def test_random_is_seeded(chan):
    msgs = [_mk(i) for i in range(5)]
    seq1 = [RandomArbitration(seed=9).choose(chan, msgs, t).mid for t in range(10)]
    seq2 = [RandomArbitration(seed=9).choose(chan, msgs, t).mid for t in range(10)]
    assert seq1 == seq2


def test_adversarial_prefers_tagged(chan):
    a = _mk(0, tag="boring", first_request=0)
    b = _mk(1, tag="M2", first_request=9)
    arb = AdversarialArbitration(prefer=["M2", "M1"])
    assert arb.choose(chan, [a, b], 10) is b


def test_adversarial_falls_back_to_fifo(chan):
    a = _mk(0, first_request=5)
    b = _mk(1, first_request=2)
    arb = AdversarialArbitration(prefer=["Mx"])
    assert arb.choose(chan, [a, b], 10) is b


def test_fifo_starvation_freedom_end_to_end():
    """Under FIFO, all contenders on a shared channel eventually deliver."""
    net = ring(6)
    fn = clockwise_ring(net, 6)
    # many short messages all needing channel 0->1
    specs = [MessageSpec(i, 0, 3, length=2, inject_time=0) for i in range(8)]
    res = Simulator(net, fn, specs, arbitration=FifoArbitration()).run()
    assert res.completed


def test_engine_rejects_foreign_winner():
    class Broken(FifoArbitration):
        def choose(self, channel, requesters, cycle):
            return _mk(99)

    net = ring(4)
    fn = clockwise_ring(net, 4)
    specs = [MessageSpec(0, 0, 2, length=2), MessageSpec(1, 0, 3, length=2)]
    sim = Simulator(net, fn, specs, arbitration=Broken())
    with pytest.raises(RuntimeError, match="non-requester"):
        sim.run()
