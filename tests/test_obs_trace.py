"""Trace context, histogram properties, schema v2, and the tail follower.

Property-based round trips pin the carrier formats (header <-> carrier <->
event fields) and the histogram merge law: merged quantiles are bounded
by the input quantiles, so cross-process aggregation can never invent
latency that no worker observed.
"""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

import repro.obs as obs
from repro.obs import (
    Histogram,
    Telemetry,
    TraceContext,
    extract_traceparent,
    format_traceparent,
    new_context,
    parse_traceparent,
    validate_event,
    validate_stream,
)
from repro.obs.tail import TailLine, follow, format_event
from repro.obs.trace import new_span_id, new_trace_id

hex32 = st.text(alphabet="0123456789abcdef", min_size=32, max_size=32)
hex16 = st.text(alphabet="0123456789abcdef", min_size=16, max_size=16)


# ----------------------------------------------------------------------
# trace context carriers
# ----------------------------------------------------------------------
class TestTraceContext:
    @given(trace_id=hex32, span_id=hex16)
    @settings(max_examples=60, deadline=None)
    def test_header_round_trip(self, trace_id, span_id):
        ctx = TraceContext(trace_id, span_id)
        header = format_traceparent(ctx)
        assert parse_traceparent(header) == ctx
        assert extract_traceparent(header) == ctx

    @given(trace_id=hex32, span_id=hex16)
    @settings(max_examples=30, deadline=None)
    def test_env_round_trip(self, trace_id, span_id):
        import os

        prev = os.environ.pop(obs.TRACE_ENV, None)
        ctx = TraceContext(trace_id, span_id)
        obs.inject_env(ctx)
        try:
            assert obs.extract_env() == ctx
        finally:
            os.environ.pop(obs.TRACE_ENV, None)
            if prev is not None:
                os.environ[obs.TRACE_ENV] = prev

    @given(junk=st.text(max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_extract_is_lenient_parse_is_strict(self, junk):
        """Arbitrary junk never crashes extract; parse raises unless the
        string happens to be a well-formed traceparent."""
        ctx = extract_traceparent(junk)
        if ctx is None:
            with pytest.raises(ValueError):
                parse_traceparent(junk)
        else:
            assert format_traceparent(ctx).startswith(f"00-{ctx.trace_id}")

    def test_extract_rejects_malformed_quietly(self):
        for bad in (None, "", "00-zz-xx-01", "01-" + "0" * 32, "00-short-01"):
            assert extract_traceparent(bad) is None

    def test_context_validates_field_shapes(self):
        with pytest.raises(ValueError):
            TraceContext("nothex", "0" * 16)
        with pytest.raises(ValueError):
            TraceContext("0" * 32, "0" * 8)

    def test_child_keeps_trace_changes_span(self):
        ctx = new_context()
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id

    def test_ids_are_well_formed_and_distinct(self):
        assert new_trace_id() != new_trace_id()
        assert len(new_trace_id()) == 32 and len(new_span_id()) == 16


# ----------------------------------------------------------------------
# carrier <-> event fields: what the collector actually stamps
# ----------------------------------------------------------------------
class TestTraceStamping:
    def _record(self, tel):
        events = []
        tel.add_sink(events.append)
        return events

    def test_every_event_carries_the_trace_field(self):
        tel = Telemetry()
        events = self._record(tel)
        tel.incr("c")
        with tel.span("outer"):
            tel.incr("c")
        assert all("trace" in e for e in events)

    def test_span_events_join_the_activated_remote_context(self):
        tel = Telemetry()
        events = self._record(tel)
        ctx = new_context()
        with tel.activate(ctx):
            with tel.span("serve.request"):
                pass
        starts = [e for e in events if e["kind"] == "span_start"]
        assert starts[0]["trace"] == ctx.trace_id
        assert starts[0]["psid"] == ctx.span_id

    def test_local_spans_opened_after_activation_win(self):
        """Nested spans parent to their local enclosing span, not to the
        remote context -- only the anchor-level span joins remotely."""
        tel = Telemetry()
        events = self._record(tel)
        ctx = new_context()
        with tel.activate(ctx):
            with tel.span("outer") as outer:
                with tel.span("inner"):
                    pass
        starts = {e["name"]: e for e in events if e["kind"] == "span_start"}
        assert starts["outer"]["psid"] == ctx.span_id
        assert starts["inner"]["psid"] == outer.sid
        assert starts["inner"]["trace"] == ctx.trace_id

    def test_activation_beats_the_enclosing_span(self):
        """The campaign serial path: per-task activation inside the long
        campaign.run span must re-parent to the task's remote context."""
        tel = Telemetry()
        events = self._record(tel)
        remote = new_context()
        with tel.span("campaign.run"):
            with tel.activate(remote):
                with tel.span("campaign.task"):
                    pass
        starts = {e["name"]: e for e in events if e["kind"] == "span_start"}
        assert starts["campaign.task"]["trace"] == remote.trace_id
        assert starts["campaign.task"]["psid"] == remote.span_id
        assert starts["campaign.run"]["trace"] != remote.trace_id

    def test_activate_none_is_a_no_op(self):
        tel = Telemetry()
        with tel.activate(None):
            assert tel.current_context() is None

    def test_current_context_reflects_remote_then_local(self):
        tel = Telemetry()
        ctx = new_context()
        with tel.activate(ctx):
            assert tel.current_context() == ctx
            with tel.span("s") as span:
                assert tel.current_context() == span.context()
        assert tel.current_context() is None


# ----------------------------------------------------------------------
# histogram algebra
# ----------------------------------------------------------------------
values = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def _fill(samples):
    h = Histogram()
    for v in samples:
        h.observe(v)
    return h


class TestHistogramProperties:
    @given(a=st.lists(values, min_size=1), b=st.lists(values, min_size=1))
    @settings(max_examples=60, deadline=None)
    def test_merge_quantiles_bounded_by_inputs(self, a, b):
        """merge(A, B) quantiles lie within [min, max] of the input
        quantiles' bucket range -- merging never invents observations."""
        ha, hb = _fill(a), _fill(b)
        merged = _fill(a).merge(_fill(b))
        assert merged.count == ha.count + hb.count
        assert merged.sum == pytest.approx(ha.sum + hb.sum)
        assert merged.min == min(ha.min, hb.min)
        assert merged.max == max(ha.max, hb.max)
        for q in (0.5, 0.95, 0.99, 1.0):
            lo = min(ha.quantile(q), hb.quantile(q))
            hi = max(ha.quantile(q), hb.quantile(q))
            assert lo <= merged.quantile(q) <= hi

    @given(samples=st.lists(values, min_size=1))
    @settings(max_examples=60, deadline=None)
    def test_quantile_brackets_true_rank_value(self, samples):
        """The bucketed quantile is an upper bound within one power-of-two
        bucket of the exact order statistic."""
        h = _fill(samples)
        ordered = sorted(samples)
        for q in (0.5, 0.95, 0.99):
            exact = ordered[math.ceil(q * len(ordered)) - 1]
            got = h.quantile(q)
            assert got >= exact or got == pytest.approx(h.max)
            assert got <= max(2 * exact, h.max)

    @given(samples=st.lists(values, min_size=1))
    @settings(max_examples=40, deadline=None)
    def test_json_round_trip_preserves_everything(self, samples):
        h = _fill(samples)
        back = Histogram.from_json(json.loads(json.dumps(h.to_json())))
        assert back.counts == h.counts
        assert back.count == h.count
        assert back.quantile(0.95) == h.quantile(0.95)
        # to_json rounds sum to 6 decimals; the mean inherits that error
        assert back.mean() == pytest.approx(h.mean(), abs=1e-6)

    def test_merge_is_mean_exact(self):
        h = _fill([1.0, 2.0]).merge(_fill([3.0]))
        assert h.mean() == pytest.approx(2.0)

    def test_empty_histogram_quantile_is_nan(self):
        assert math.isnan(Histogram().quantile(0.99))
        assert math.isnan(Histogram().mean())

    def test_from_json_rejects_wrong_bucket_count(self):
        with pytest.raises(ValueError, match="buckets"):
            Histogram.from_json({"counts": [1, 2, 3], "count": 6, "sum": 1.0})

    def test_overflow_bucket_reports_tracked_max(self):
        h = _fill([float(2**30)])
        assert h.quantile(0.99) == float(2**30)


# ----------------------------------------------------------------------
# schema v2 accepts recorded v1 streams
# ----------------------------------------------------------------------
class TestSchemaCompat:
    def _v1(self, kind, name, **extra):
        base = {
            "v": 1, "t": 1.0, "kind": kind, "name": name,
            "span": None, "parent": None, "attrs": {},
        }
        base.update(extra)
        return base

    def test_v1_stream_without_trace_fields_validates(self):
        stream = [
            self._v1("counter", "search.calls", value=1),
            self._v1("gauge", "subscribers", value=0),
            self._v1("span_start", "campaign.run", span=1),
            self._v1("span_end", "campaign.run", span=1, dur_s=0.5),
        ]
        assert validate_stream(stream) == []

    def test_v1_rejects_the_v2_only_hist_kind(self):
        errors = validate_event(self._v1("hist", "latency_s", value=0.5))
        assert any("hist" in e for e in errors)

    def test_v2_span_requires_trace_and_sid(self):
        event = {
            "v": 2, "t": 1.0, "kind": "span_start", "name": "s",
            "span": 1, "parent": None, "attrs": {},
        }
        errors = validate_event(event)
        assert errors  # missing trace/sid
        event.update(trace="0" * 32, sid="1" * 16, psid=None)
        assert validate_event(event) == []

    def test_v2_trace_must_be_32_hex_or_null(self):
        event = {
            "v": 2, "t": 1.0, "kind": "counter", "name": "c", "value": 1,
            "span": None, "parent": None, "attrs": {}, "trace": "xyz",
        }
        assert validate_event(event)

    def test_recorded_v1_file_summarizes_cleanly(self, tmp_path):
        """A pre-upgrade recording (no trace/sid fields anywhere) still
        validates and aggregates under the v2 reader."""
        from repro.obs.report import summarize

        path = tmp_path / "v1.jsonl"
        stream = [
            self._v1("run_start", "campaign"),
            self._v1("counter", "search.calls", value=3),
            self._v1("span_start", "search", span=1),
            self._v1("span_end", "search", span=1, dur_s=0.25),
            self._v1("run_end", "campaign"),
        ]
        path.write_text("".join(json.dumps(e) + "\n" for e in stream))
        report = summarize(path)
        assert report.schema_valid
        assert report.counters["search.calls"] == 3
        assert report.traces == []


# ----------------------------------------------------------------------
# live emission is always v2-valid
# ----------------------------------------------------------------------
def test_live_histogram_events_validate():
    tel = Telemetry()
    events = []
    tel.add_sink(events.append)
    tel.observe("latency_s", 0.125, endpoint="/v1/search")
    with tel.span("s"):
        tel.observe("width", 17)
    assert [e for e in events if e["kind"] == "hist"]
    for event in events:
        assert validate_event(event) == []


# ----------------------------------------------------------------------
# tail follower
# ----------------------------------------------------------------------
class TestTailFollower:
    def _drain(self, path, writes, rollup_every_s=1e9):
        """Run follow() against scripted file writes; no real sleeping."""
        ticks = {"n": 0}

        def fake_sleep(_s):
            ticks["n"] += 1
            if ticks["n"] > 50:  # safety: scripted runs finish well before
                raise AssertionError("follower stalled")

        state = {"i": 0}

        def stop():
            if state["i"] < len(writes):
                text = writes[state["i"]]
                if text is not None:  # None: leave the file alone this tick
                    path.write_text(text)
                state["i"] += 1
                return False
            return True

        return list(
            follow(
                path,
                poll_s=0.0,
                rollup_every_s=rollup_every_s,
                stop=stop,
                _sleep=fake_sleep,
            )
        )

    def _event_line(self, name="search.calls", value=1):
        return json.dumps(
            {
                "v": 2, "t": 1.0, "kind": "counter", "name": name,
                "value": value, "attrs": {}, "trace": None,
            }
        )

    def test_yields_events_then_stops(self, tmp_path):
        path = tmp_path / "events.jsonl"
        lines = self._drain(path, [self._event_line() + "\n"])
        kinds = [ln.kind for ln in lines]
        assert "event" in kinds
        assert all(isinstance(ln, TailLine) for ln in lines)

    def test_waits_for_missing_file(self, tmp_path):
        path = tmp_path / "later.jsonl"
        lines = self._drain(path, [None, self._event_line() + "\n"])
        assert any("waiting" in ln.text for ln in lines if ln.kind == "info")
        assert any(ln.kind == "event" for ln in lines)

    def test_truncation_reopens_from_top(self, tmp_path):
        path = tmp_path / "events.jsonl"
        long = (self._event_line() + "\n") * 3
        short = self._event_line(name="after.truncate") + "\n"
        lines = self._drain(path, [long, short])
        assert any("truncated" in ln.text for ln in lines if ln.kind == "info")
        assert any("after.truncate" in ln.text for ln in lines)

    def test_partial_trailing_line_is_buffered_not_dropped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        whole = self._event_line(name="one") + "\n"
        half = self._event_line(name="two")
        lines = self._drain(path, [whole + half[:20], whole + half + "\n"])
        assert sum(1 for ln in lines if ln.kind == "event") == 2
        assert not any("unparseable" in ln.text for ln in lines)

    def test_rollup_lines_appear_on_schedule(self, tmp_path):
        path = tmp_path / "events.jsonl"
        lines = self._drain(
            path, [self._event_line() + "\n"], rollup_every_s=0.0
        )
        rollups = [ln for ln in lines if ln.kind == "rollup"]
        assert rollups and "events=1" in rollups[0].text

    def test_format_event_shows_trace_prefix(self):
        text = format_event(
            {
                "v": 2, "t": 0.0, "kind": "span_end", "name": "serve.request",
                "dur_s": 0.25, "trace": "abcdef0123456789" * 2,
                "attrs": {"endpoint": "/v1/search"},
            }
        )
        assert "abcdef01" in text and "serve.request" in text


# ----------------------------------------------------------------------
# read_events named defects (satellite: no tracebacks for bad files)
# ----------------------------------------------------------------------
class TestEventStreamDefects:
    def test_missing_file_names_the_defect(self, tmp_path):
        from repro.obs.report import EventStreamError, read_events

        with pytest.raises(EventStreamError, match="not found"):
            read_events(tmp_path / "nope.jsonl")

    def test_empty_file_names_the_defect(self, tmp_path):
        from repro.obs.report import EventStreamError, read_events

        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(EventStreamError, match="empty"):
            read_events(path)

    def test_directory_names_the_defect(self, tmp_path):
        from repro.obs.report import EventStreamError, read_events

        with pytest.raises(EventStreamError):
            read_events(tmp_path)

    def test_cli_report_exits_2_with_message(self, tmp_path, capsys):
        from repro.cli import main

        assert main(
            ["telemetry", "report", str(tmp_path / "missing.jsonl")]
        ) == 2
        err = capsys.readouterr().err
        assert "telemetry report:" in err and "not found" in err

    def test_cli_trace_exits_2_with_message(self, tmp_path, capsys):
        from repro.cli import main

        assert main(
            ["telemetry", "trace", str(tmp_path / "missing.jsonl")]
        ) == 2
        assert "telemetry trace:" in capsys.readouterr().err
