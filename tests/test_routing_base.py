"""RoutingAlgorithm / routing-function protocol tests."""

import pytest

from repro.routing import INJECT, RoutingAlgorithm, RoutingError, clockwise_ring
from repro.routing.base import RoutingFunction, _InjectSentinel
from repro.topology import Network, ring


def test_inject_sentinel_is_singleton():
    assert _InjectSentinel() is INJECT


def test_path_iterates_routing_function():
    net = ring(5)
    alg = RoutingAlgorithm(clockwise_ring(net, 5))
    path = alg.path(0, 3)
    assert [c.src for c in path] == [0, 1, 2]
    assert path[-1].dst == 3


def test_path_rejects_same_endpoints():
    net = ring(5)
    alg = RoutingAlgorithm(clockwise_ring(net, 5))
    with pytest.raises(RoutingError, match="itself"):
        alg.path(2, 2)


def test_path_caching_returns_same_object():
    net = ring(5)
    alg = RoutingAlgorithm(clockwise_ring(net, 5))
    assert alg.path(0, 2) is alg.path(0, 2)
    alg.clear_cache()
    assert alg.path(0, 2) == alg.path(0, 2)


class _BouncingFn(RoutingFunction):
    """Pathological function that ping-pongs between two channels."""

    def __init__(self, network, a, b):
        super().__init__(network)
        self.a, self.b = a, b

    def route(self, in_channel, node, dest):
        return self.a if node == self.a.src else self.b


def test_divergent_function_detected():
    net = Network()
    ab = net.add_channel("A", "B")
    ba = net.add_channel("B", "A")
    net.add_channel("A", "C")
    net.add_channel("C", "A")
    alg = RoutingAlgorithm(_BouncingFn(net, ab, ba))
    with pytest.raises(RoutingError, match="revisits channel"):
        alg.path("A", "C")


class _WrongSourceFn(RoutingFunction):
    def route(self, in_channel, node, dest):
        # returns a channel that does not start at `node`
        return self.network.channels_out("B")[0]


def test_inconsistent_output_channel_detected():
    net = Network()
    net.add_channel("A", "B")
    net.add_channel("B", "A")
    alg = RoutingAlgorithm(_WrongSourceFn(net))
    with pytest.raises(RoutingError, match="source is not"):
        alg.path("A", "B")


def test_try_path_returns_none_on_error():
    net = ring(4)
    alg = RoutingAlgorithm(clockwise_ring(net, 4))
    assert alg.try_path(0, 0) is None
    assert alg.try_path(0, 2) is not None


def test_all_pairs_paths_complete():
    net = ring(4)
    alg = RoutingAlgorithm(clockwise_ring(net, 4))
    paths = alg.all_pairs_paths()
    assert len(paths) == 12
    assert all(p for p in paths.values())


def test_hops():
    net = ring(6)
    alg = RoutingAlgorithm(clockwise_ring(net, 6))
    assert alg.hops(0, 5) == 5
    assert alg.hops(5, 0) == 1
