"""Deadlock detection tests."""


from repro.routing import clockwise_ring
from repro.sim import MessageSpec, SimConfig, Simulator, build_wait_for_graph, detect_deadlock
from repro.sim.injection import StallSchedule
from repro.topology import ring


def ring_overload_specs(n=6, length=8):
    return [MessageSpec(i, i, (i + 3) % n, length=length) for i in range(n)]


def test_classic_ring_deadlock_detected():
    net = ring(6)
    res = Simulator(net, clockwise_ring(net, 6), ring_overload_specs()).run()
    assert res.deadlocked
    assert res.deadlock.kind == "wait-for-cycle"
    assert len(res.deadlock.message_ids) >= 2


def test_wait_for_graph_shape_at_deadlock():
    net = ring(6)
    sim = Simulator(net, clockwise_ring(net, 6), ring_overload_specs())
    while detect_deadlock(sim) is None:
        sim.step()
    g = build_wait_for_graph(sim)
    # every deadlocked message waits on exactly one channel -> out-degree 1
    report = detect_deadlock(sim)
    for mid in report.message_ids:
        assert g.out_degree(mid) == 1


def test_no_deadlock_on_light_ring():
    net = ring(6)
    specs = [MessageSpec(0, 0, 3, length=4), MessageSpec(1, 3, 0, length=4, inject_time=20)]
    res = Simulator(net, clockwise_ring(net, 6), specs).run()
    assert not res.deadlocked and res.completed


def test_stop_on_deadlock_false_continues_to_cap():
    net = ring(6)
    res = Simulator(
        net,
        clockwise_ring(net, 6),
        ring_overload_specs(),
        config=SimConfig(max_cycles=100, stop_on_deadlock=False, quiescence_window=10_000),
    ).run()
    assert res.deadlocked  # still reported
    assert res.cycles == 100


def test_quiescence_detector_catches_full_stall():
    """A message stalled forever trips the quiescence net, not the WFG."""
    net = ring(6)
    specs = [MessageSpec(0, 0, 3, length=4)]
    stalls = StallSchedule({0: range(1, 100_000)})
    res = Simulator(
        net,
        clockwise_ring(net, 6),
        specs,
        config=SimConfig(max_cycles=5_000, quiescence_window=32),
        stalls=stalls,
    ).run()
    assert res.deadlocked
    assert res.deadlock.kind == "quiescence"


def test_pending_future_injection_is_not_quiescence():
    net = ring(6)
    specs = [MessageSpec(0, 0, 3, length=2, inject_time=500)]
    res = Simulator(
        net,
        clockwise_ring(net, 6),
        specs,
        config=SimConfig(max_cycles=2_000, quiescence_window=32),
    ).run()
    assert res.completed


def test_deadlock_report_str():
    net = ring(6)
    res = Simulator(net, clockwise_ring(net, 6), ring_overload_specs()).run()
    s = str(res.deadlock)
    assert "deadlock" in s and "cycle" in s
