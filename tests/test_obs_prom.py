"""Prometheus text exposition: rendering, the strict checker, both ways.

The checker is the CI metrics-smoke oracle, so it gets its own negative
tests -- a checker that accepts anything would let a malformed /metrics
endpoint ship.
"""

import math

import pytest

from repro.obs import (
    HISTOGRAM_BOUNDS,
    Telemetry,
    check_exposition,
    render_prometheus,
)
from repro.obs.prom import parse_samples


@pytest.fixture()
def tel():
    t = Telemetry()
    t.incr("search.calls", 3)
    t.gauge("serve.events.subscribers", 2)
    for v in (0.001, 0.002, 0.004, 0.5, 3.0):
        t.observe("serve.request.latency_s", v)
    with t.span("serve.request"):
        pass
    return t


class TestRender:
    def test_render_passes_the_strict_checker(self, tel):
        text = render_prometheus(tel)
        assert check_exposition(text) == []

    def test_counter_gauge_histogram_summary_all_present(self, tel):
        samples = parse_samples(render_prometheus(tel))
        assert samples["repro_search_calls_total"][""] == 3
        assert samples["repro_serve_events_subscribers"][""] == 2
        assert "repro_serve_request_latency_s_bucket" in samples
        assert samples["repro_serve_request_seconds_count"][""] == 1

    def test_histogram_buckets_are_cumulative_and_correct(self, tel):
        """The acceptance-criteria invariant: cumulative bucket counts
        reconstruct exactly what was observed."""
        samples = parse_samples(render_prometheus(tel))
        buckets = samples["repro_serve_request_latency_s_bucket"]
        assert buckets['{le="+Inf"}'] == 5
        assert (
            buckets['{le="+Inf"}']
            == samples["repro_serve_request_latency_s_count"][""]
        )
        # cumulative counts are monotone over le-ordered bounds
        def label(bound):
            text = str(int(bound)) if float(bound).is_integer() else repr(bound)
            return f'{{le="{text}"}}'

        ordered = [
            buckets[label(b)] for b in HISTOGRAM_BOUNDS if label(b) in buckets
        ]
        assert len(ordered) == len(HISTOGRAM_BOUNDS)
        assert ordered == sorted(ordered)
        # 0.001 and 0.002 fit under 2^-8; 0.004 spills into the 2^-7 bucket
        assert buckets['{le="0.00390625"}'] == 2
        assert buckets['{le="0.0078125"}'] == 3
        assert samples["repro_serve_request_latency_s_sum"][""] == (
            pytest.approx(3.507)
        )

    def test_empty_registry_renders_empty(self):
        text = render_prometheus(Telemetry())
        assert text == ""
        assert check_exposition(text) == []

    def test_metric_names_are_sanitised(self):
        t = Telemetry()
        t.incr("fastpath.phase.expand_s", 1.5)
        samples = parse_samples(render_prometheus(t))
        assert "repro_fastpath_phase_expand_s_total" in samples


class TestChecker:
    def test_rejects_sample_without_type(self):
        assert check_exposition("repro_x_total 1\n")

    def test_rejects_duplicate_series(self):
        text = (
            "# HELP repro_x_total h\n# TYPE repro_x_total counter\n"
            "repro_x_total 1\nrepro_x_total 2\n"
        )
        assert any("duplicate" in e for e in check_exposition(text))

    def test_rejects_non_cumulative_buckets(self):
        text = (
            "# HELP repro_h h\n# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="2"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 4\nrepro_h_count 5\n"
        )
        assert any("monoton" in e or "cumulative" in e
                   for e in check_exposition(text))

    def test_rejects_inf_bucket_count_mismatch(self):
        text = (
            "# HELP repro_h h\n# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 2\n'
            'repro_h_bucket{le="+Inf"} 2\n'
            "repro_h_sum 1\nrepro_h_count 3\n"
        )
        assert check_exposition(text)

    def test_rejects_histogram_missing_sum_or_count(self):
        text = (
            "# HELP repro_h h\n# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 1\n'
        )
        assert check_exposition(text)

    def test_rejects_unparseable_value(self):
        text = (
            "# HELP repro_x g\n# TYPE repro_x gauge\n"
            "repro_x banana\n"
        )
        assert check_exposition(text)

    def test_accepts_special_float_values(self):
        text = (
            "# HELP repro_x g\n# TYPE repro_x gauge\n"
            "repro_x +Inf\n"
        )
        assert check_exposition(text) == []

    def test_parse_samples_handles_special_values(self):
        got = parse_samples("repro_x +Inf\nrepro_y NaN\n")
        assert got["repro_x"][""] == math.inf
        assert math.isnan(got["repro_y"][""])
