"""ASCII chart and channel-utilization stats tests."""


from repro.routing import clockwise_ring
from repro.sim import MessageSpec, SimConfig, Simulator
from repro.topology import ring
from repro.viz import ascii_chart, bar_chart


class TestAsciiChart:
    def test_empty(self):
        assert ascii_chart([]) == "(no data)"

    def test_monotone_series_shape(self):
        pts = [(m, m) for m in range(1, 6)]
        out = ascii_chart(pts, x_label="m", y_label="delay")
        lines = out.splitlines()
        assert lines[0].startswith("delay")
        assert lines[-1].strip().startswith("m:")
        # 5 markers plotted
        assert sum(line.count("*") for line in lines) == 5
        # monotone: marker column increases with row from bottom to top
        cols = {}
        for r, line in enumerate(lines[1:-2]):
            if "*" in line:
                cols[r] = line.index("*")
        rows_sorted = sorted(cols)
        assert all(
            cols[a] > cols[b] for a, b in zip(rows_sorted, rows_sorted[1:])
        )

    def test_degenerate_constant_series(self):
        out = ascii_chart([(0, 5), (1, 5), (2, 5)])
        assert out.count("*") == 3

    def test_bar_chart(self):
        out = bar_chart({"ring0": 0.9, "ring1": 0.3})
        lines = out.splitlines()
        assert lines[0].count("#") > lines[1].count("#")
        assert bar_chart({}) == "(no data)"


class TestUtilizationStats:
    def _run(self, track):
        net = ring(6)
        sim = Simulator(
            net,
            clockwise_ring(net, 6),
            [MessageSpec(0, 0, 3, length=6)],
            config=SimConfig(track_utilization=track),
        )
        return sim.run()

    def test_untracked_by_default(self):
        res = self._run(False)
        assert res.stats.channel_busy_cycles == {}
        assert res.stats.channel_utilization(0) == 0.0

    def test_tracked_utilization(self):
        res = self._run(True)
        stats = res.stats
        assert stats.channel_busy_cycles  # something was busy
        # channel 0 (first hop) is busy while all 6 flits stream through
        assert stats.channel_utilization(0) > 0
        assert all(0.0 <= u <= 1.0 for _, u in stats.hottest_channels(10))

    def test_hottest_ordering(self):
        res = self._run(True)
        hot = res.stats.hottest_channels(3)
        utils = [u for _, u in hot]
        assert utils == sorted(utils, reverse=True)
