"""CLI: the search / classify / telemetry subcommands."""

import json

import pytest

from repro.cli import main


class TestSearchCommand:
    def test_fig1_synchronous_is_unreachable(self, capsys):
        assert main(["search", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "verdict         : unreachable" in out
        assert "states explored : 2336" in out

    def test_budget_one_deadlocks_with_witness(self, capsys):
        assert main(["search", "fig1", "--budget", "1", "--witness"]) == 0
        out = capsys.readouterr().out
        assert "verdict         : deadlock" in out
        assert "deadlock witness over" in out

    def test_certificate_fast_path_surfaced_in_text(self, capsys):
        # M1+M3 alone have an acyclic dependency graph: CRT001 certifies
        # deadlock freedom without exploring a single state
        argv = ["search", "fig1", "--params", '{"subset": ["M1", "M3"]}',
                "--budget", "1"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "decided by static certificate CRT001 (search skipped)" in out
        assert "states explored : 0" in out

    def test_certificate_fast_path_in_json(self, capsys):
        argv = ["search", "fig1", "--params", '{"subset": ["M1", "M3"]}',
                "--budget", "1", "--json"]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["certificate"] == "CRT001"
        assert payload["states_explored"] == 0
        assert payload["deadlock_reachable"] is False
        assert payload["verdict"] == "unreachable"

    def test_json_payload_fields(self, capsys):
        assert main(["search", "fig1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "unreachable"
        assert payload["states_explored"] == 2336
        assert payload["witness_cycles"] is None

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["search", "no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bad_params_exit_2(self, capsys):
        assert main(["search", "fig1", "--params", "{notjson"]) == 2
        assert "not valid JSON" in capsys.readouterr().err
        assert main(["search", "fig1", "--params", "[1]"]) == 2
        assert "JSON object" in capsys.readouterr().err


class TestClassifyCommand:
    def test_cycle_mode_certificate(self, capsys):
        assert main(["classify", "ring-cycle", "--params", '{"n": 4}']) == 0
        out = capsys.readouterr().out
        assert "cycle classification" in out
        assert "verdict" in out and "deadlock" in out
        assert "decided by static certificate CRT005 (search skipped)" in out
        assert "scenarios tested : 0" in out

    def test_cycle_mode_json(self, capsys):
        argv = ["classify", "ring-cycle", "--params", '{"n": 4}', "--json"]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "cycle"
        assert payload["certificate"] == "CRT005"
        assert payload["scenarios_tested"] == 0
        assert payload["deadlock_reachable"] is True

    def test_configuration_mode(self, capsys):
        assert main(["classify", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "configuration classification" in out
        assert "verdict         : unreachable" in out

    def test_configuration_mode_json(self, capsys):
        assert main(["classify", "fig1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "configuration"
        assert payload["deadlock_reachable"] is False


class TestTelemetrySession:
    def test_search_telemetry_flag_writes_events(self, tmp_path, capsys):
        from repro.obs import validate_stream
        from repro.obs.report import read_events

        events = tmp_path / "events.jsonl"
        snap = tmp_path / "snap.json"
        argv = ["search", "fig1", "--telemetry", str(events),
                "--telemetry-snapshot", str(snap)]
        assert main(argv) == 0
        capsys.readouterr()
        stream, bad = read_events(events)
        assert bad == 0 and validate_stream(stream) == []
        kinds = [e["kind"] for e in stream]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        ends = [e for e in stream if e["kind"] == "span_end"]
        assert "search.deadlock" in {e["name"] for e in ends}
        search_end = [e for e in ends if e["name"] == "search.deadlock"][0]
        assert search_end["attrs"]["states_explored"] == 2336
        assert search_end["attrs"]["verdict"] == "deadlock-free"
        assert search_end["parent"] is not None  # nested under the CLI span
        snapshot = json.loads(snap.read_text())
        assert snapshot["counters"]["search.states_explored"] == 2336

    def test_session_resets_gate(self, tmp_path, capsys):
        import repro.obs as obs

        assert main(["search", "fig1", "--telemetry",
                     str(tmp_path / "e.jsonl")]) == 0
        capsys.readouterr()
        assert obs._active is None
        assert not obs.enabled()


class TestTelemetryReportCommand:
    def _events_file(self, tmp_path):
        from repro.obs import JsonlExporter, Telemetry

        path = tmp_path / "events.jsonl"
        tel = Telemetry()
        with JsonlExporter(path) as exporter:
            tel.add_sink(exporter)
            with tel.span("work"):
                tel.incr("n", 2)
        return path

    def test_report_text_and_json(self, tmp_path, capsys):
        path = self._events_file(tmp_path)
        assert main(["telemetry", "report", str(path)]) == 0
        assert "telemetry report" in capsys.readouterr().out
        assert main(["telemetry", "report", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"] == {"n": 2}

    def test_strict_fails_on_corrupt_stream(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 1, "kind": "zap"}\nnot json\n')
        assert main(["telemetry", "report", str(path)]) == 0
        capsys.readouterr()
        assert main(["telemetry", "report", str(path), "--strict"]) == 1

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["telemetry", "report", str(tmp_path / "nope.jsonl")]) == 2
        assert "telemetry report" in capsys.readouterr().err


@pytest.fixture(autouse=True)
def _reset_obs():
    import repro.obs as obs

    yield
    obs.reset()
