"""Result cache: hit/miss/stale paths, accounting, clearing."""

import json

from repro.campaign.cache import ResultCache, schema_salt
from repro.campaign.tasks import CampaignTask, TaskResult, execute_task

TASK = CampaignTask.make(
    "reachability", "fig2-pair", d1=2, d2=1, hold=2, expect="deadlock"
)


def _result(task=TASK, **kw):
    base = dict(
        task_hash=task.task_hash,
        name=task.name,
        kind=task.kind,
        scenario=task.scenario,
        params=task.params_dict(),
        verdict="deadlock",
        detail={"states_explored": 123},
    )
    base.update(kw)
    return TaskResult(**base)


def test_miss_then_put_then_hit(tmp_path):
    cache = ResultCache(tmp_path / "c")
    assert cache.get(TASK) is None
    assert cache.stats.misses == 1

    cache.put(TASK, _result())
    assert len(cache) == 1
    hit = cache.get(TASK)
    assert hit is not None
    assert hit.verdict == "deadlock"
    assert hit.source == "cache"
    assert hit.detail["states_explored"] == 123
    assert cache.stats.hits == 1 and cache.stats.writes == 1


def test_schema_salt_mismatch_is_stale_not_hit(tmp_path):
    old = ResultCache(tmp_path / "c", salt="campaign-v0")
    old.put(TASK, _result())
    fresh = ResultCache(tmp_path / "c")  # current schema_salt()
    assert fresh.salt == schema_salt() != "campaign-v0"
    assert fresh.get(TASK) is None
    assert fresh.stats.stale == 1 and fresh.stats.misses == 0


def test_corrupt_entry_is_stale_never_fatal(tmp_path):
    cache = ResultCache(tmp_path / "c")
    cache.put(TASK, _result())
    (path,) = list((tmp_path / "c").glob("*/*.json"))
    path.write_text("{not json", encoding="utf-8")
    assert cache.get(TASK) is None
    assert cache.stats.stale == 1


def test_failed_results_are_not_cached(tmp_path):
    cache = ResultCache(tmp_path / "c")
    cache.put(TASK, _result(ok=False, verdict="error", error="boom"))
    assert len(cache) == 0
    assert cache.get(TASK) is None  # a failure must re-run, not replay


def test_hit_carries_current_expectation(tmp_path):
    """`expect` is advisory run metadata, not part of the cached verdict."""
    cache = ResultCache(tmp_path / "c")
    cache.put(TASK, _result(expect=None))
    hit = cache.get(TASK)
    assert hit.expect == "deadlock"  # TASK's current expectation
    assert hit.expect_matches is True


def test_entry_keyed_by_content_hash(tmp_path):
    cache = ResultCache(tmp_path / "c")
    res = execute_task(TASK)
    cache.put(TASK, res)
    (path,) = list((tmp_path / "c").glob("*/*.json"))
    assert path.stem == TASK.task_hash
    entry = json.loads(path.read_text(encoding="utf-8"))
    assert entry["schema"] == schema_salt()
    assert entry["task"]["scenario"] == "fig2-pair"

    other = CampaignTask.make("reachability", "fig2-pair", d1=2, d2=1, hold=3)
    assert cache.get(other) is None  # different params -> different key


def test_clear_removes_everything(tmp_path):
    cache = ResultCache(tmp_path / "c")
    for hold in (2, 3, 4):
        task = CampaignTask.make("reachability", "fig2-pair", d1=1, d2=1, hold=hold)
        cache.put(task, _result(task))
    assert len(cache) == 3
    assert cache.clear() == 3
    assert len(cache) == 0
