"""Gap-filling tests for smaller branches across modules."""

import pytest

from repro.core.conditions import TheoremFiveInput
from repro.core.specs import CycleMessageSpec
from repro.sim.message import MessageSpec, MessageState


class TestConditionsInput:
    def test_extras_before_first_shared_wrap_to_last(self):
        """A non-shared message listed before any shared one sits, cyclically,
        after the last shared message."""
        specs = [
            CycleMessageSpec(approach_len=1, hold_len=2, uses_shared=False, label="E"),
            CycleMessageSpec(approach_len=4, hold_len=5, label="Ma"),
            CycleMessageSpec(approach_len=2, hold_len=4, label="Mc"),
            CycleMessageSpec(approach_len=3, hold_len=4, label="Mb"),
        ]
        inp = TheoremFiveInput.from_specs(specs)
        assert inp.extras_after[2][0].label == "E"

    def test_immediately_precedes_blocked_by_extra(self):
        specs = [
            CycleMessageSpec(approach_len=4, hold_len=5, label="Ma"),
            CycleMessageSpec(approach_len=1, hold_len=2, uses_shared=False, label="E"),
            CycleMessageSpec(approach_len=2, hold_len=4, label="Mc"),
            CycleMessageSpec(approach_len=3, hold_len=4, label="Mb"),
        ]
        inp = TheoremFiveInput.from_specs(specs)
        assert not inp.immediately_precedes(0, 1)  # E sits between
        assert inp.immediately_precedes(1, 2)

    def test_shared_between_wraps(self):
        specs = [
            CycleMessageSpec(approach_len=4, hold_len=5, label="Ma"),
            CycleMessageSpec(approach_len=2, hold_len=4, label="Mc"),
            CycleMessageSpec(approach_len=3, hold_len=4, label="Mb"),
        ]
        inp = TheoremFiveInput.from_specs(specs)
        assert inp.shared_between(2, 1) == (0,)
        assert inp.shared_between(0, 1) == ()


class TestMessageState:
    def test_latency_none_before_done(self):
        m = MessageState(spec=MessageSpec(0, "A", "B", length=2))
        assert m.latency() is None

    def test_leading_channel_none_initially(self):
        m = MessageState(spec=MessageSpec(0, "A", "B", length=2))
        assert m.leading_channel is None
        assert not m.in_network
        assert m.flits_in_network == 0


class TestScriptedArbitrationDivergence:
    def test_missing_winner_raises(self):
        from repro.analysis.schedules import ScriptedArbitration
        from repro.topology import Network

        net = Network()
        ch = net.add_channel("A", "B")
        a = MessageState(spec=MessageSpec(0, "A", "B", length=1))
        b = MessageState(spec=MessageSpec(1, "A", "B", length=1))
        arb = ScriptedArbitration({(5, ch.cid): 99})
        with pytest.raises(RuntimeError, match="divergence"):
            arb.choose(ch, [a, b], 5)

    def test_unscripted_falls_back_to_fifo(self):
        from repro.analysis.schedules import ScriptedArbitration
        from repro.topology import Network

        net = Network()
        ch = net.add_channel("A", "B")
        a = MessageState(spec=MessageSpec(0, "A", "B", length=1))
        b = MessageState(spec=MessageSpec(1, "A", "B", length=1))
        a.first_request_cycle[ch.cid] = 3
        b.first_request_cycle[ch.cid] = 1
        arb = ScriptedArbitration({})
        assert arb.choose(ch, [a, b], 5) is b


class TestDelayResult:
    def test_profile_rows_render(self):
        from repro.experiments.generalization import GeneralizationResult

        res = GeneralizationResult(profile={1: 1, 2: None})
        rows = res.rows()
        assert rows[0]["min delay to deadlock"] == 1
        assert rows[1]["min delay to deadlock"] == ">max"
        assert not res.strictly_increasing

    def test_delay_result_flags(self):
        from repro.analysis.delay import min_delay_to_deadlock
        from repro.analysis.state import CheckerMessage

        # two disjoint messages: never deadlock at any budget
        msgs = [
            CheckerMessage(path=(0, 1), length=2, tag="a"),
            CheckerMessage(path=(5, 6), length=2, tag="b"),
        ]
        res = min_delay_to_deadlock(msgs, max_delay=2)
        assert res.min_delay is None
        assert res.deadlock_free_under_synchrony
        assert res.max_delay_tested == 2
