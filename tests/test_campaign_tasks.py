"""Task model: content hashing, normalisation, serialisation, execution."""

import json
import subprocess
import sys

import pytest

from repro.campaign.tasks import SCHEMA_VERSION, CampaignTask, TaskResult, execute_task


def test_hash_independent_of_param_ordering():
    a = CampaignTask(kind="reachability", scenario="fig2-pair",
                     params=(("d1", 3), ("d2", 1), ("hold", 3)))
    b = CampaignTask(kind="reachability", scenario="fig2-pair",
                     params=(("hold", 3), ("d2", 1), ("d1", 3)))
    assert a == b
    assert a.task_hash == b.task_hash
    assert hash(a) == hash(b)


def test_hash_stable_across_process_restarts():
    """The content hash is a pure function of the canonical JSON.

    Pinned to a literal so any drift (field renames, canonicalisation
    changes) fails loudly -- the on-disk cache depends on this stability.
    A fresh interpreter recomputes the same digest (no per-process hash
    randomisation leaks in).
    """
    task = CampaignTask.make("reachability", "fig1", budget=0)
    assert (
        task.canonical_json()
        == '{"kind":"reachability","params":{"budget":0},"scenario":"fig1"}'
    )
    assert task.task_hash == (
        "993e8082e87200f349145561dd9e40189762f320da4d4bb3fb54142a24c7c2c1"
    )
    code = (
        "from repro.campaign.tasks import CampaignTask;"
        "print(CampaignTask.make('reachability', 'fig1', budget=0).task_hash)"
    )
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, check=True
    )
    assert out.stdout.strip() == task.task_hash


def test_params_normalised_to_hashable_tuples():
    task = CampaignTask.make("classify", "shared-cycle",
                             approaches=[2, 3, 1], holds=(4, 4, 4))
    assert task.params_dict()["approaches"] == (2, 3, 1)
    hash(task)  # tuples throughout -> hashable
    json.loads(task.canonical_json())  # and canonically JSON-able


def test_expect_excluded_from_identity():
    plain = CampaignTask.make("reachability", "fig1")
    expecting = CampaignTask.make("reachability", "fig1", expect="unreachable")
    assert plain == expecting
    assert plain.task_hash == expecting.task_hash


def test_rejects_unknown_kind_and_duplicate_keys():
    with pytest.raises(ValueError, match="unknown analysis kind"):
        CampaignTask(kind="frobnicate", scenario="fig1")
    with pytest.raises(ValueError, match="duplicate parameter"):
        CampaignTask(kind="reachability", scenario="fig1",
                     params=(("m", 1), ("m", 2)))


def test_json_round_trip():
    task = CampaignTask.make(
        "min_delay", "gen", m=2, max_delay=5, expect="delta=2"
    )
    clone = CampaignTask.from_json(task.to_json())
    assert clone == task
    assert clone.task_hash == task.task_hash
    assert clone.expect == "delta=2"


def test_execute_reachability_fig2_deadlocks():
    task = CampaignTask.make(
        "reachability", "fig2-pair", d1=3, d2=1, hold=3, expect="deadlock"
    )
    res = execute_task(task)
    assert res.ok and res.verdict == "deadlock"
    assert res.detail["states_explored"] > 0
    assert res.expect_matches is True
    assert res.task_hash == task.task_hash


def test_execute_captures_task_errors():
    res = execute_task(CampaignTask.make("classify", "fig3-panel", panel="z"))
    assert not res.ok
    assert res.verdict == "error"
    assert "KeyError" in res.error


def test_execute_unknown_scenario_is_captured():
    res = execute_task(CampaignTask.make("reachability", "no-such-scenario"))
    assert not res.ok and "unknown scenario" in res.error


def test_result_round_trip_and_schema_version():
    res = execute_task(CampaignTask.make("cdg", "baseline-cdg",
                                         algorithm="dor", dims=(3, 3)))
    assert res.verdict == "acyclic" and res.detail["numbering_valid"]
    clone = TaskResult.from_json(json.loads(json.dumps(res.to_json())))
    assert clone.verdict == res.verdict
    assert clone.detail["acyclic"] is True
    assert isinstance(SCHEMA_VERSION, int)


def test_parse_shard_accepts_valid_selectors():
    from repro.campaign.tasks import parse_shard

    assert parse_shard("1/4") == (1, 4)
    assert parse_shard("4/4") == (4, 4)
    assert parse_shard(" 2 / 3 ") == (2, 3)


def test_parse_shard_rejects_bad_selectors():
    from repro.campaign.tasks import parse_shard

    with pytest.raises(ValueError, match="1-based"):
        parse_shard("0/4")
    with pytest.raises(ValueError, match="exceeds shard count"):
        parse_shard("5/4")
    with pytest.raises(ValueError, match="two integers"):
        parse_shard("x/4")
    with pytest.raises(ValueError, match="positive integer"):
        parse_shard("1/0")
    with pytest.raises(ValueError, match="positive integer"):
        parse_shard("1/-2")
    with pytest.raises(ValueError, match="look like 'i/n'"):
        parse_shard("1-4")


def test_shard_tasks_partition_is_disjoint_and_complete():
    from repro.campaign.tasks import shard_tasks

    tasks = [
        CampaignTask.make("reachability", "fig2-pair", d1=1, d2=1, hold=h)
        for h in range(2, 12)
    ]
    shards = [shard_tasks(tasks, index, 3) for index in (1, 2, 3)]
    merged = [t.task_hash for shard in shards for t in shard]
    assert sorted(merged) == sorted(t.task_hash for t in tasks)
    assert len(set(merged)) == len(tasks)


# ----------------------------------------------------------------------
# v5 task kinds: adaptive exhaustive search + witness/replay cross-check
# ----------------------------------------------------------------------
class TestAdaptiveKind:
    def test_escape_mesh_unreachable(self):
        task = CampaignTask.make(
            "adaptive", "adaptive-mesh",
            routing="escape", dims=[2, 2], msgs=2, expect="unreachable",
        )
        res = execute_task(task)
        assert res.ok and res.verdict == "unreachable"
        assert res.expect_matches is True
        # the search confirms what CRT008 certifies (default mode: on)
        assert res.detail["certificate"] == "CRT008"
        assert res.detail["states_explored"] == 0

    def test_full_mesh_four_corners_deadlocks(self):
        task = CampaignTask.make(
            "adaptive", "adaptive-mesh",
            routing="full", dims=[2, 2], msgs=4, expect="deadlock",
        )
        res = execute_task(task)
        assert res.ok and res.verdict == "deadlock"
        assert set(res.detail["deadlocked_tags"]) == {"c0", "c1", "c2", "c3"}
        assert res.detail["certificate"] is None

    def test_non_adaptive_scenario_is_captured(self):
        res = execute_task(CampaignTask.make("adaptive", "fig1"))
        assert not res.ok and res.verdict == "error"
        assert "adaptive routing function" in res.error


class TestCrossCheckKind:
    def test_theorem2_certificate_witness_replays(self):
        task = CampaignTask.make(
            "cross_check", "theorem2-overlap",
            ring_n=6, entries=[0, 2, 4], run_lens=[3, 3, 3], expect="deadlock",
        )
        res = execute_task(task)
        assert res.ok and res.verdict == "deadlock"
        assert res.detail["witness_valid"] is True
        assert res.detail["replay_deadlocked"] is True

    def test_bfs_witness_also_replays(self, monkeypatch):
        # with certificates off the witness comes from the BFS; the
        # validation + replay pipeline must accept it identically
        monkeypatch.setenv("REPRO_STATIC_CERTIFICATES", "off")
        task = CampaignTask.make(
            "cross_check", "fig2-pair", d1=3, d2=1, hold=3, expect="deadlock"
        )
        res = execute_task(task)
        assert res.ok and res.verdict == "deadlock"
        assert res.detail["states_explored"] > 0
        assert res.detail["witness_valid"] is True
        assert res.detail["replay_deadlocked"] is True

    def test_scenario_without_messages_is_captured(self):
        res = execute_task(
            CampaignTask.make(
                "cross_check", "adaptive-mesh",
                routing="full", dims=[2, 2], msgs=4,
            )
        )
        assert not res.ok and "messages" in res.error
