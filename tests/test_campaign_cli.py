"""CLI: campaign run/status/clean and the sweep commands' runner flags."""

import pytest

from repro.campaign import build_spec, spec_names
from repro.cli import build_parser, main


def test_parser_lists_campaign():
    text = build_parser().format_help()
    assert "campaign" in text


def test_campaign_requires_subcommand():
    with pytest.raises(SystemExit):
        main(["campaign"])


def test_specs_registered():
    assert "paper-battery" in spec_names()
    assert "quick" in spec_names()
    assert len(build_spec("paper-battery")) > 100
    assert build_spec("paper-battery", limit=8) == build_spec("paper-battery")[:8]
    with pytest.raises(KeyError, match="unknown campaign spec"):
        build_spec("nope")


def test_campaign_run_quick_then_cached(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    argv = ["campaign", "run", "--spec", "quick", "--limit", "4",
            "--jobs", "1", "--cache-dir", cache_dir, "--no-progress"]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "live runs            : 4" in cold
    assert "matches expectations : True" in cold

    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "cache hits           : 4" in warm
    assert "live runs            : 0" in warm

    ledger = tmp_path / "cache" / "ledgers" / "quick.jsonl"
    assert ledger.exists()
    from repro.campaign import read_ledger

    results, summaries = read_ledger(ledger)
    assert len(results) == 8 and len(summaries) == 2  # both runs appended


def test_campaign_status_and_clean(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["campaign", "run", "--spec", "quick", "--limit", "2",
                 "--jobs", "1", "--cache-dir", cache_dir, "--no-progress"]) == 0
    capsys.readouterr()

    assert main(["campaign", "status", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "cached results : 2" in out
    assert "quick.jsonl" in out

    assert main(["campaign", "clean", "--cache-dir", cache_dir, "--ledgers"]) == 0
    out = capsys.readouterr().out
    assert "removed 2 cached results" in out
    assert main(["campaign", "status", "--cache-dir", cache_dir]) == 0
    assert "cached results : 0" in capsys.readouterr().out


def test_campaign_run_no_cache_flag(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    argv = ["campaign", "run", "--spec", "quick", "--limit", "2", "--jobs", "1",
            "--cache-dir", cache_dir, "--no-cache", "--no-progress"]
    assert main(argv) == 0
    assert main(argv) == 0  # second run is live again: nothing was cached
    assert "live runs            : 2" in capsys.readouterr().out
    assert not (tmp_path / "cache").glob("*/*.json") or \
        not list((tmp_path / "cache").glob("*/*.json"))


def test_gen_routes_through_campaign(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["gen", "--max-m", "1", "--jobs", "2",
                 "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "strictly increasing: True" in out
    assert len(list((tmp_path / "cache").glob("*/*.json"))) == 1  # memoised


def test_theorem3_routes_through_campaign(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    argv = ["theorem3", "--limit", "6", "--jobs", "2", "--cache-dir", cache_dir]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "theorem3_holds          : True" in out
    assert len(list((tmp_path / "cache").glob("*/*.json"))) == 6

    assert main(argv) == 0  # warm: same verdicts from cache
    assert "theorem3_holds          : True" in capsys.readouterr().out


def test_fig3_sweep_flags_parse():
    args = build_parser().parse_args(
        ["fig3", "--sweep", "5", "--jobs", "3", "--cache-dir", "/tmp/x"]
    )
    assert args.sweep == 5 and args.jobs == 3 and args.cache_dir == "/tmp/x"


def test_adapter_fig3_sweep_agreement(tmp_path):
    """The campaign-backed sweep reproduces run_condition_sweep's verdicts."""
    from repro.campaign.adapters import fig3_sweep_via_campaign
    from repro.experiments.fig3 import run_condition_sweep

    direct = run_condition_sweep(samples=4)
    via = fig3_sweep_via_campaign(4, jobs=1, cache_dir=str(tmp_path / "c"))
    assert via.total == direct.total == 4
    assert via.agree == direct.agree
    assert via.disagreements == direct.disagreements


def test_campaign_status_json_reports_backend_integrity(tmp_path, capsys):
    import json

    cache_dir = str(tmp_path / "cache")
    assert main(["campaign", "run", "--spec", "quick", "--limit", "3",
                 "--jobs", "1", "--cache-dir", cache_dir, "--no-progress"]) == 0
    capsys.readouterr()

    assert main(["campaign", "status", "--cache-dir", cache_dir, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    (backend,) = payload["backends"]
    assert backend["backend"] == "ResultCache"
    assert backend["entries"] == 3
    assert backend["integrity"]["healthy"] is True
    assert backend["integrity"]["corrupt"] == 0
    assert payload["merged"] == {"distinct_tasks": 3, "ok": 3, "failed": 0}

    # corrupt one entry on disk: exit code flips and the scan reports it
    (victim,) = sorted((tmp_path / "cache").glob("*/*.json"))[:1]
    victim.write_text("{broken", encoding="utf-8")
    assert main(["campaign", "status", "--cache-dir", cache_dir, "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["backends"][0]["integrity"]["corrupt"] == 1
    assert payload["backends"][0]["integrity"]["healthy"] is False


def test_campaign_status_extra_backend_and_run_backend_flag(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    db = str(tmp_path / "shared.db")
    assert main(["campaign", "run", "--spec", "quick", "--limit", "2",
                 "--jobs", "1", "--cache-dir", cache_dir,
                 "--cache-backend", f"sqlite:{db}", "--no-progress"]) == 0
    capsys.readouterr()

    assert main(["campaign", "status", "--cache-dir", cache_dir,
                 "--cache-backend", f"sqlite:{db}", "--json"]) == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    (backend,) = payload["backends"]
    assert backend["backend"] == "SqliteCache"
    assert backend["entries"] == 2

    assert main(["campaign", "status", "--cache-dir", cache_dir,
                 "--cache-backend", "sqlite:"]) == 2
    assert "sqlite backend needs a path" in capsys.readouterr().err
