"""Channel dependency graph tests."""

import pytest

from repro.cdg import (
    build_cdg,
    cycle_summary,
    cycles_through_channel,
    dally_seitz_numbering,
    find_cycles,
    is_acyclic,
    verify_numbering,
)
from repro.cdg.build import edge_pairs
from repro.routing import RoutingAlgorithm, clockwise_ring, dimension_order_mesh
from repro.topology import mesh, ring


@pytest.fixture
def ring_alg():
    net = ring(4)
    return RoutingAlgorithm(clockwise_ring(net, 4))


@pytest.fixture
def mesh_alg():
    net = mesh((3, 3))
    return RoutingAlgorithm(dimension_order_mesh(net, 2))


def test_ring_cdg_is_single_cycle(ring_alg):
    cdg = build_cdg(ring_alg)
    assert cdg.number_of_nodes() == 4
    assert cdg.number_of_edges() == 4
    assert not is_acyclic(cdg)
    enum = find_cycles(cdg)
    assert len(enum) == 1 and not enum.truncated
    assert len(enum.cycles[0]) == 4


def test_mesh_dor_cdg_acyclic(mesh_alg):
    cdg = build_cdg(mesh_alg)
    assert is_acyclic(cdg)
    assert find_cycles(cdg).cycles == []


def test_every_used_channel_is_a_vertex(mesh_alg):
    cdg = build_cdg(mesh_alg)
    used = set()
    for s, d in [(s, d) for s in mesh_alg.network.nodes for d in mesh_alg.network.nodes if s != d]:
        used.update(mesh_alg.path(s, d))
    assert set(cdg.nodes) == used


def test_edge_pairs_annotation(ring_alg):
    cdg = build_cdg(ring_alg)
    c0 = ring_alg.network.channel_by_label("cw0")
    c1 = ring_alg.network.channel_by_label("cw1")
    pairs = edge_pairs(cdg, c0, c1)
    # every pair routing through channel 0 then 1: sources 0 (or 3..),
    # destinations beyond node 1
    assert (0, 2) in pairs
    assert all(p[0] in (0, 1, 2, 3) for p in pairs)


def test_edge_pairs_missing_edge_raises(ring_alg):
    cdg = build_cdg(ring_alg)
    c0 = ring_alg.network.channel_by_label("cw0")
    with pytest.raises(KeyError):
        edge_pairs(cdg, c0, c0)


def test_numbering_certificate_mesh(mesh_alg):
    cdg = build_cdg(mesh_alg)
    numbering = dally_seitz_numbering(cdg)
    assert verify_numbering(cdg, numbering)


def test_numbering_rejects_cyclic(ring_alg):
    cdg = build_cdg(ring_alg)
    with pytest.raises(ValueError, match="cyclic"):
        dally_seitz_numbering(cdg)


def test_verify_numbering_rejects_bad(mesh_alg):
    cdg = build_cdg(mesh_alg)
    numbering = dally_seitz_numbering(cdg)
    some_edge = next(iter(cdg.edges()))
    bad = dict(numbering)
    bad[some_edge[0]], bad[some_edge[1]] = bad[some_edge[1]], bad[some_edge[0]]
    assert not verify_numbering(cdg, bad)
    assert not verify_numbering(cdg, {})  # missing channels


def test_cycles_through_channel(ring_alg):
    cdg = build_cdg(ring_alg)
    c0 = ring_alg.network.channel_by_label("cw0")
    assert len(cycles_through_channel(cdg, c0)) == 1


def test_cycle_summary_shape(ring_alg):
    s = cycle_summary(build_cdg(ring_alg))
    assert s["acyclic"] is False
    assert s["num_cycles"] == 1
    assert s["cycle_lengths"] == [4]
    assert s["enumeration_truncated"] is False


def test_truncation_flag():
    # a dense CDG with many cycles: bidirectional ring all-pairs shortest...
    # simplest: cap at 0 effectively -> use max_cycles=1 on ring gives 1, not truncated;
    # build a two-cycle CDG by two rings sharing... use vcs=2 unidirectional ring with
    # a routing over vc0 only -- single cycle; instead test the cap logic directly:
    net = ring(4)
    alg = RoutingAlgorithm(clockwise_ring(net, 4))
    enum = find_cycles(build_cdg(alg), max_cycles=1)
    assert len(enum) == 1 and enum.truncated
