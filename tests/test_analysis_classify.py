"""Cycle classification (classify_cycle / classify_configuration) tests."""

import pytest

from repro.analysis.classify import (
    _cycle_runs,
    classify_configuration,
    classify_cycle,
    enumerate_tilings,
    messages_for_cycle,
)
from repro.cdg import build_cdg, find_cycles
from repro.core.cyclic_dependency import build_cyclic_dependency_network
from repro.routing import RoutingAlgorithm, clockwise_ring
from repro.topology import ring


@pytest.fixture(scope="module")
def ring_setup():
    net = ring(4)
    alg = RoutingAlgorithm(clockwise_ring(net, 4))
    cdg = build_cdg(alg)
    cycle = find_cycles(cdg).cycles[0]
    return alg, cycle


class TestCycleRuns:
    def test_full_run(self, ring_setup):
        alg, cycle = ring_setup
        path = alg.path(0, 3)
        runs = _cycle_runs(cycle, path)
        assert len(runs) == 1
        assert runs[0][1] == 3

    def test_empty_path_returns_empty(self, ring_setup):
        _alg, cycle = ring_setup
        assert _cycle_runs(cycle, []) == []

    def test_non_cycle_channels_skipped(self):
        """Approach channels of Fig. 1 do not contribute runs."""
        cdn = build_cyclic_dependency_network()
        alg = cdn.algorithm
        path = alg.path(*cdn.message_pairs["M1"])
        runs = _cycle_runs(tuple(cdn.cycle_channels), path)
        assert len(runs) == 1
        assert runs[0] == (0, 4)  # M1 enters at ring position 0, uses 4 channels


class TestMessagesForCycle:
    def test_all_pairs_intersect_ring_cycle(self, ring_setup):
        alg, cycle = ring_setup
        cands = messages_for_cycle(alg, cycle)
        assert len(cands) == 12  # every ordered pair crosses the ring


class TestEnumerateTilings:
    def test_ring_has_tilings(self, ring_setup):
        alg, cycle = ring_setup
        cands = messages_for_cycle(alg, cycle)
        tilings = enumerate_tilings(cycle, cands)
        assert tilings
        for t in tilings:
            assert sum(t.held_lengths) == len(cycle)
            assert len(set(t.pairs)) == len(t.pairs)

    def test_empty_candidates(self, ring_setup):
        _alg, cycle = ring_setup
        assert enumerate_tilings(cycle, {}) == []


class TestClassifyCycle:
    def test_ring_cycle_is_reachable_deadlock(self, ring_setup):
        alg, cycle = ring_setup
        cls = classify_cycle(alg, cycle, length_slack=0, extra_copies=1)
        assert cls.deadlock_reachable
        assert not cls.is_false_resource_cycle
        assert cls.tilings_tested >= 1

    def test_fig1_cycle_is_false_resource_cycle(self):
        cdn = build_cyclic_dependency_network()
        alg = cdn.algorithm
        cdg = build_cdg(alg)
        cycle = find_cycles(cdg).cycles[0]
        cls = classify_cycle(
            alg,
            cycle,
            pairs=list(cdn.message_pairs.values()),
            length_slack=0,
            extra_copies=1,
        )
        assert cls.is_false_resource_cycle
        assert cls.scenarios_tested >= 1


class TestClassifyConfiguration:
    def test_copy_augmentation_finds_interposed_deadlock(self):
        """Panel (c)'s deadlock needs an interposed copy; base alone does not."""
        from repro.analysis import SystemSpec, search_deadlock
        from repro.core.three_message import FIG3_PANELS, build_three_message_config

        c = build_three_message_config(FIG3_PANELS["c"])
        base = search_deadlock(
            SystemSpec.uniform(c.checker_messages()), find_witness=False
        )
        assert not base.deadlock_reachable
        reachable, _ = classify_configuration(c.checker_messages(), copy_depth=1)
        assert reachable

    def test_zero_copy_depth_is_plain_search(self):
        from repro.core.two_message import build_two_message_config

        c = build_two_message_config()
        reachable, res = classify_configuration(c.checker_messages(), copy_depth=0)
        assert reachable
        assert res.deadlock_reachable
