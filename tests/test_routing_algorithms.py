"""Baseline routing algorithm tests: DOR, e-cube, dateline torus, ring, turn model."""

import itertools

import pytest

from repro.routing import (
    RoutingAlgorithm,
    RoutingError,
    clockwise_ring,
    dateline_torus,
    dimension_order_mesh,
    ecube_hypercube,
    negative_first_mesh,
    north_last_mesh,
    west_first_mesh,
)
from repro.topology import hypercube, mesh, ring, torus


class TestDOR:
    @pytest.fixture
    def alg(self):
        net = mesh((4, 4))
        return RoutingAlgorithm(dimension_order_mesh(net, 2))

    def test_x_before_y(self, alg):
        path = alg.path((0, 0), (3, 2))
        moves = [(c.dst[0] - c.src[0], c.dst[1] - c.src[1]) for c in path]
        # all x-moves precede all y-moves
        first_y = next(i for i, m in enumerate(moves) if m[1] != 0)
        assert all(m[1] == 0 for m in moves[:first_y])
        assert all(m[0] == 0 for m in moves[first_y:])

    def test_minimal_everywhere(self, alg):
        for s, d in itertools.product(alg.network.nodes, repeat=2):
            if s != d:
                assert alg.hops(s, d) == sum(abs(a - b) for a, b in zip(s, d))

    def test_negative_direction(self, alg):
        path = alg.path((3, 3), (0, 0))
        assert path[0].dst == (2, 3)

    def test_wrong_node_type_raises(self):
        net = mesh((3, 3))
        fn = dimension_order_mesh(net, 2)
        with pytest.raises(RoutingError, match="coordinate-tuple"):
            fn.route(None, "A", "B")


class TestECube:
    def test_lowest_bit_first(self):
        net = hypercube(3)
        alg = RoutingAlgorithm(ecube_hypercube(net, 3))
        path = alg.path(0b000, 0b111)
        assert [c.dst for c in path] == [0b001, 0b011, 0b111]

    def test_minimal(self):
        net = hypercube(4)
        alg = RoutingAlgorithm(ecube_hypercube(net, 4))
        for s, d in itertools.product(range(16), repeat=2):
            if s != d:
                assert alg.hops(s, d) == bin(s ^ d).count("1")


class TestDatelineTorus:
    @pytest.fixture
    def alg(self):
        net = torus((4, 4), vcs=2)
        return RoutingAlgorithm(dateline_torus(net, (4, 4)))

    def test_always_plus_direction(self, alg):
        path = alg.path((3, 0), (1, 0))
        xs = [c.src[0] for c in path] + [path[-1].dst[0]]
        assert xs == [3, 0, 1]  # wraps through the dateline

    def test_vc_switch_at_dateline(self, alg):
        path = alg.path((2, 0), (1, 0))
        vcs = [c.vc for c in path]
        # starts on VC1 (wrap ahead), ends on VC0 (wrap behind)
        assert vcs[0] == 1 and vcs[-1] == 0

    def test_no_wrap_uses_vc0(self, alg):
        path = alg.path((0, 0), (2, 0))
        assert all(c.vc == 0 for c in path)

    def test_connected_all_pairs(self, alg):
        for s, d in itertools.product(alg.network.nodes, repeat=2):
            if s != d:
                assert alg.try_path(s, d) is not None


class TestRing:
    def test_clockwise_only(self):
        net = ring(6)
        alg = RoutingAlgorithm(clockwise_ring(net, 6))
        assert alg.hops(0, 5) == 5
        assert alg.hops(1, 0) == 5


class TestTurnModel:
    @pytest.fixture
    def net(self):
        return mesh((5, 5))

    @pytest.mark.parametrize(
        "factory", [west_first_mesh, north_last_mesh, negative_first_mesh]
    )
    def test_minimal_and_connected(self, net, factory):
        alg = RoutingAlgorithm(factory(net))
        for s, d in itertools.product(net.nodes, repeat=2):
            if s != d:
                assert alg.hops(s, d) == sum(abs(a - b) for a, b in zip(s, d))

    def test_west_first_goes_west_first(self, net):
        alg = RoutingAlgorithm(west_first_mesh(net))
        path = alg.path((3, 1), (1, 3))
        assert path[0].dst == (2, 1)  # west hop first
        # once a non-west hop happens, no further west hops
        moves = [(c.dst[0] - c.src[0]) for c in path]
        last_west = max(i for i, m in enumerate(moves) if m < 0)
        assert all(m >= 0 for m in moves[last_west + 1 :])

    def test_north_last_defers_north(self, net):
        alg = RoutingAlgorithm(north_last_mesh(net))
        path = alg.path((1, 1), (3, 3))
        moves = [(c.dst[0] - c.src[0], c.dst[1] - c.src[1]) for c in path]
        first_north = next(i for i, m in enumerate(moves) if m[1] > 0)
        assert all(m[1] > 0 for m in moves[first_north:])

    def test_negative_first_order(self, net):
        alg = RoutingAlgorithm(negative_first_mesh(net))
        path = alg.path((3, 3), (1, 4))
        moves = [(c.dst[0] - c.src[0], c.dst[1] - c.src[1]) for c in path]
        first_pos = next(i for i, m in enumerate(moves) if m[0] > 0 or m[1] > 0)
        assert all(m[0] < 0 or m[1] < 0 for m in moves[:first_pos])

    def test_unknown_policy_rejected(self, net):
        from repro.routing.turn_model import _TurnModelMesh

        with pytest.raises(ValueError, match="unknown"):
            _TurnModelMesh(net, "east-last")
