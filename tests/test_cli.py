"""CLI smoke tests (fast subcommands only)."""

import pytest

from repro.cli import build_parser, main


def test_parser_lists_all_commands():
    parser = build_parser()
    text = parser.format_help()
    for cmd in ("fig1", "fig2", "fig3", "theorem2", "theorem3", "gen", "traffic", "dot"):
        assert cmd in text


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_dot_fig1_network(capsys):
    assert main(["dot", "fig1-network"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph")
    assert '"cs"' in out or "Src" in out


def test_dot_fig1_cdg(capsys):
    assert main(["dot", "fig1-cdg"]) == 0
    out = capsys.readouterr().out
    assert 'color="red"' in out  # the 14-channel cycle is highlighted


def test_gen_m1(capsys):
    assert main(["gen", "--max-m", "1"]) == 0
    out = capsys.readouterr().out
    assert "Gen(m)" in out or "min delay" in out


def test_theorem3_quick(capsys):
    assert main(["theorem3", "--limit", "6"]) == 0
    out = capsys.readouterr().out
    assert "theorem3_holds" in out


def test_traffic_tiny(capsys):
    assert main(["traffic", "--rates", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "positive control" in out
