"""Channel model unit tests."""


from repro.topology import Network
from repro.topology.channels import Channel


def test_channel_identity_by_cid():
    a = Channel(cid=0, src="A", dst="B")
    b = Channel(cid=0, src="X", dst="Y")
    c = Channel(cid=1, src="A", dst="B")
    assert a == b  # equality is by cid only
    assert a != c
    assert hash(a) == hash(b)


def test_channel_endpoints_and_short():
    ch = Channel(cid=3, src="A", dst="B", vc=2)
    assert ch.endpoints == ("A", "B")
    assert ch.short() == "A->B#2"
    labelled = Channel(cid=4, src="A", dst="B", label="cs")
    assert labelled.short() == "cs"


def test_channel_vc_default_zero():
    ch = Channel(cid=0, src=1, dst=2)
    assert ch.vc == 0
    assert ch.short() == "1->2"


def test_channels_usable_as_graph_nodes():
    net = Network()
    c1 = net.add_channel("A", "B")
    c2 = net.add_channel("B", "A")
    seen = {c1: "x", c2: "y"}
    assert seen[c1] == "x" and seen[c2] == "y"


def test_channel_repr_contains_endpoints():
    ch = Channel(cid=7, src="P1", dst="D4", label="ring0")
    assert "P1" in repr(ch) and "D4" in repr(ch)
