"""Serve observability: /metrics, trace propagation end to end, /v1/events
hardening, and the zero-cost-when-disabled engine profiling gate.

The e2e test is the PR's acceptance bar: a traced `repro client` call
through serve -> batcher -> campaign worker leaves one connected span
tree under a single trace id, reassembled from the event stream alone.
"""

import threading
import time

import pytest

import repro.obs as obs
from repro.cli import main
from repro.obs import JsonlExporter, check_exposition
from repro.obs.prom import parse_samples
from repro.obs.report import build_span_tree, read_events, trace_ids
from repro.serve import ReproServer, ServeClient, ServeConfig, ServeError


@pytest.fixture()
def server(tmp_path):
    srv = ReproServer(
        ServeConfig(
            port=0,
            cache_backend=f"sqlite:{tmp_path / 'serve.db'}",
            window=0.01,
        )
    )
    thread = threading.Thread(target=srv.run, daemon=True)
    thread.start()
    assert srv.wait_ready(15), "server did not come up"
    yield srv
    srv.shutdown()
    thread.join(10)


@pytest.fixture()
def client(server):
    return ServeClient(server.url, timeout=120)


# ----------------------------------------------------------------------
# GET /metrics
# ----------------------------------------------------------------------
class TestMetricsEndpoint:
    def test_scrape_passes_the_strict_checker(self, client):
        client.search("fig1").raise_for_status()
        text = client.metrics()
        assert check_exposition(text) == []

    def test_request_latency_histogram_counts_requests(self, client):
        for _ in range(3):
            client.search("fig1").raise_for_status()
        samples = parse_samples(client.metrics())
        buckets = {
            name: series
            for name, series in samples.items()
            if name == "repro_serve_request_latency_s_bucket"
        }
        assert buckets, "latency histogram missing from /metrics"
        series = buckets["repro_serve_request_latency_s_bucket"]
        inf = [v for labels, v in series.items() if 'le="+Inf"' in labels]
        count = samples["repro_serve_request_latency_s_count"]
        assert sum(inf) == sum(count.values()) >= 3

    def test_search_counter_appears(self, client):
        client.search("fig1").raise_for_status()
        samples = parse_samples(client.metrics())
        assert samples["repro_serve_requests_total"][""] >= 1

    def test_client_cli_metrics_subcommand(self, server, capsys):
        assert main(
            ["client", "--url", server.url, "metrics"]
        ) == 0
        out = capsys.readouterr().out
        assert check_exposition(out) == []

    def test_metrics_503_when_telemetry_disabled(self, tmp_path):
        srv = ReproServer(
            ServeConfig(
                port=0,
                cache_backend=f"sqlite:{tmp_path / 'nt.db'}",
                telemetry=False,
            )
        )
        thread = threading.Thread(target=srv.run, daemon=True)
        thread.start()
        assert srv.wait_ready(15)
        try:
            with pytest.raises(ServeError) as exc:
                ServeClient(srv.url).metrics()
            assert exc.value.status == 503
        finally:
            srv.shutdown()
            thread.join(10)

    def test_metrics_listed_in_endpoint_directory(self, server):
        resp = ServeClient(server.url)._request("GET", "/")
        assert any(
            "/metrics" in e for e in resp.payload.get("endpoints", [])
        )


# ----------------------------------------------------------------------
# /v1/events hardening
# ----------------------------------------------------------------------
class TestEventsHardening:
    def test_negative_max_events_is_400(self, server):
        resp = ServeClient(server.url)._request(
            "GET", "/v1/events?max_events=-1"
        )
        assert resp.status == 400
        assert "max_events" in resp.payload.get("error", "")

    def test_negative_timeout_is_400(self, server):
        resp = ServeClient(server.url)._request(
            "GET", "/v1/events?timeout=-5"
        )
        assert resp.status == 400

    def test_nan_timeout_is_400(self, server):
        resp = ServeClient(server.url)._request(
            "GET", "/v1/events?timeout=nan"
        )
        assert resp.status == 400

    def test_subscriber_gauge_decrements_on_disconnect(self, server, client):
        """Gauge symmetry: every subscribe is matched by an unsubscribe,
        even when the client (not the server) ends the stream."""
        tel = obs.get()
        assert tel is not None
        client.events(max_events=1, timeout=2.0)  # generates >= 1 event
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if tel.gauges.get("serve.events.subscribers") == 0:
                break
            time.sleep(0.05)
        assert tel.gauges.get("serve.events.subscribers") == 0


# ----------------------------------------------------------------------
# end-to-end trace propagation (the acceptance criterion)
# ----------------------------------------------------------------------
class TestTracePropagation:
    def test_client_serve_campaign_share_one_rooted_trace(
        self, server, client, tmp_path
    ):
        tel = obs.get()
        assert tel is not None, "serve installs the process collector"
        events_path = tmp_path / "events.jsonl"
        with JsonlExporter(events_path) as exporter:
            tel.add_sink(exporter)
            try:
                with tel.span("repro.client") as root:
                    trace_id = root.context().trace_id
                    client.search("fig1").raise_for_status()
            finally:
                tel.remove_sink(exporter)

        events, _ = read_events(events_path)
        ours = [e for e in events if e.get("trace") == trace_id]
        names = {e["name"] for e in ours if e["kind"] == "span_start"}
        # every layer contributed a span to the one trace
        assert "repro.client" in names
        assert "serve.request" in names
        assert "campaign.task" in names

        roots = build_span_tree(events, trace_id)
        assert len(roots) == 1, "trace must form a single rooted tree"
        assert roots[0].name == "repro.client"
        tree_names = {node.name for node in roots[0].walk()}
        assert {"repro.client", "serve.request", "campaign.task"} <= tree_names

        # parentage is exact: serve.request hangs off the client root,
        # campaign.task off serve.request
        by_name = {n.name: n for n in roots[0].walk()}
        assert by_name["serve.request"].psid == roots[0].sid
        assert by_name["campaign.task"].psid == by_name["serve.request"].sid

    def test_cli_telemetry_trace_renders_the_tree(
        self, server, client, tmp_path, capsys
    ):
        tel = obs.get()
        events_path = tmp_path / "events.jsonl"
        with JsonlExporter(events_path) as exporter:
            tel.add_sink(exporter)
            try:
                with tel.span("repro.client") as root:
                    trace_id = root.context().trace_id
                    client.search("fig1").raise_for_status()
            finally:
                tel.remove_sink(exporter)

        assert main(["telemetry", "trace", str(events_path), trace_id]) == 0
        out = capsys.readouterr().out
        assert trace_id in out
        assert "repro.client" in out
        assert "serve.request" in out
        assert "campaign.task" in out

        # listing mode names the trace when no id is given
        assert main(["telemetry", "trace", str(events_path)]) == 0
        assert trace_id in capsys.readouterr().out

    def test_headerless_requests_get_distinct_fresh_traces(
        self, server, client, tmp_path
    ):
        tel = obs.get()
        events_path = tmp_path / "events.jsonl"
        with JsonlExporter(events_path) as exporter:
            tel.add_sink(exporter)
            try:
                # no enclosing span: the client sends no trace header
                client.search("fig1").raise_for_status()
                client.lint("fig1").raise_for_status()
            finally:
                tel.remove_sink(exporter)
        events, _ = read_events(events_path)
        serve_traces = {
            e["trace"]
            for e in events
            if e["kind"] == "span_start" and e["name"] == "serve.request"
        }
        assert len(serve_traces) == 2
        ids = trace_ids(events)
        for trace in serve_traces:
            assert ids.get(trace, 0) >= 1


# ----------------------------------------------------------------------
# engine phase profiling: present when enabled, absent when not
# ----------------------------------------------------------------------
class TestEnginePhaseGate:
    def _spec(self):
        from repro.analysis.state import CheckerMessage, SystemSpec

        return SystemSpec.uniform(
            [
                CheckerMessage(path=(0, 1, 2), length=2, tag="a"),
                CheckerMessage(path=(2, 3, 0), length=2, tag="b"),
            ]
        )

    def test_phases_and_width_histogram_recorded_when_enabled(self):
        from repro.analysis.reachability import search_deadlock
        from repro.obs import Telemetry

        tel = Telemetry()
        with obs.scope(tel):
            res = search_deadlock(
                self._spec(), engine="fast", certificates="off",
                find_witness=False,
            )
        assert res.states_explored > 0
        phase_counters = [
            n for n in tel.counters if n.startswith("fastpath.phase.")
        ]
        assert phase_counters, "phase timers missing under telemetry"
        assert "search.level.width" in tel.histograms
        width = tel.histograms["search.level.width"]
        assert width.count > 0
        assert "search.states_per_sec" in tel.histograms

    def test_witness_search_times_the_recovery_phase(self):
        from repro.analysis.reachability import search_deadlock
        from repro.obs import Telemetry

        tel = Telemetry()
        with obs.scope(tel):
            res = search_deadlock(
                self._spec(), engine="fast", certificates="off",
                find_witness=True,
            )
        assert res.witness is not None
        assert "fastpath.phase.expand_s" in tel.counters
        assert "fastpath.phase.witness_s" in tel.counters

    def test_no_profiling_state_accumulates_when_disabled(self):
        from repro.analysis.fastpath import peek_engine
        from repro.analysis.reachability import search_deadlock

        spec = self._spec()
        assert obs.get() is None, "telemetry must be off outside scope"
        res = search_deadlock(spec, engine="fast", certificates="off")
        assert res.states_explored > 0
        engine = peek_engine(spec)
        assert engine is not None
        assert engine.phase_seconds == {}
        assert engine.last_level_widths == []
