"""End-to-end serve API: byte-identity, caching, dedup, errors, fleet."""

import threading
import time

import pytest

from repro.cli import main
from repro.obs import EVENT_KINDS, validate_event
from repro.serve import (
    ReproServer,
    ServeClient,
    ServeConfig,
    ShardCoordinator,
    run_worker,
)


@pytest.fixture()
def server(tmp_path):
    srv = ReproServer(
        ServeConfig(
            port=0,
            cache_backend=f"sqlite:{tmp_path / 'serve.db'}",
            window=0.01,
        )
    )
    thread = threading.Thread(target=srv.run, daemon=True)
    thread.start()
    assert srv.wait_ready(15), "server did not come up"
    yield srv
    srv.shutdown()
    thread.join(10)


@pytest.fixture()
def client(server):
    return ServeClient(server.url, timeout=120)


# ----------------------------------------------------------------------
# byte-identity with the CLI
# ----------------------------------------------------------------------
def test_cold_search_is_byte_identical_to_cli_json(client, capsys):
    assert main(["search", "fig1", "--json"]) == 0
    cli_out = capsys.readouterr().out

    resp = client.search("fig1").raise_for_status()
    assert resp.source == "live"
    assert resp.body.decode("utf-8") == cli_out
    assert resp.task_hash and len(resp.task_hash) == 64


def test_client_cli_matches_search_json(server, capsys):
    assert main(["search", "fig1", "--json"]) == 0
    local = capsys.readouterr().out
    assert main(["client", "--url", server.url, "search", "fig1"]) == 0
    remote = capsys.readouterr().out
    assert remote == local


def test_search_with_params_round_trips(client, capsys):
    argv = ["search", "fig2-pair", "--params", '{"d1": 2, "d2": 1, "hold": 2}',
            "--json"]
    assert main(argv) == 0
    cli_out = capsys.readouterr().out
    resp = client.search("fig2-pair", {"d1": 2, "d2": 1, "hold": 2})
    resp.raise_for_status()
    assert resp.body.decode("utf-8") == cli_out
    assert resp.payload["verdict"] == "deadlock"


# ----------------------------------------------------------------------
# caching
# ----------------------------------------------------------------------
def test_repeat_query_is_a_fast_cache_hit(client):
    cold = client.search("fig1").raise_for_status()
    t0 = time.perf_counter()
    warm = client.search("fig1").raise_for_status()
    elapsed = time.perf_counter() - t0
    assert warm.source == "cache"
    assert warm.body == cold.body  # verdict payload is source-independent
    assert elapsed < 0.25  # round trip, answered without execution

    status = client.status().raise_for_status().payload
    assert status["cache"]["hit_rate"] > 0
    assert status["batcher"]["cache_hits"] >= 1


def test_cache_is_tiered_memory_over_sqlite(client):
    client.search("fig1").raise_for_status()
    status = client.status().raise_for_status().payload
    cache = status["cache"]
    assert cache["tiered"] is True
    assert cache["hot"]["backend"] == "MemoryLRUCache"
    assert cache["cold"]["backend"] == "SqliteCache"
    assert cache["cold"]["integrity"]["healthy"] is True
    assert cache["cold"]["entries"] >= 1


def test_concurrent_identical_cold_queries_execute_once(server, client):
    before = client.status().raise_for_status().payload["batcher"]["executed_live"]
    params = {"seconds": 0.3, "tag": "dedup-probe"}
    bodies, sources, errors = [], [], []

    def query():
        try:
            resp = ServeClient(server.url, timeout=120).search(
                "debug-sleep", params
            ).raise_for_status()
            bodies.append(resp.body)
            sources.append(resp.source)
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    workers = [threading.Thread(target=query) for _ in range(8)]
    for w in workers:
        w.start()
    for w in workers:
        w.join(timeout=60)
    assert errors == []
    assert len(set(bodies)) == 1  # everyone got the same verdict bytes
    after = client.status().raise_for_status().payload["batcher"]["executed_live"]
    assert after - before == 1  # the task ran exactly once
    assert sources.count("live") <= 1
    assert all(s in ("live", "inflight", "cache") for s in sources)


# ----------------------------------------------------------------------
# other task endpoints
# ----------------------------------------------------------------------
def test_classify_endpoint(client):
    resp = client.classify("ring-cycle", {"n": 4}).raise_for_status()
    assert resp.payload["mode"] in ("cycle", "configuration")
    assert resp.payload["verdict"] in ("deadlock", "unreachable")
    assert resp.payload["deadlock_reachable"] in (True, False)


def test_lint_endpoint(client):
    resp = client.lint("fig1").raise_for_status()
    assert "verdict" in resp.payload
    assert isinstance(resp.payload["rules_run"], int)
    assert isinstance(resp.payload["diagnostics"], list)


def test_campaign_endpoint_runs_a_spec(client):
    resp = client.campaign("quick", limit=3).raise_for_status()
    assert resp.payload["total"] == 3
    assert resp.payload["failed"] == 0
    assert resp.payload["request_errors"] == 0

    again = client.campaign("quick", limit=3).raise_for_status()
    assert again.payload["from_cache"] == 3  # second run fully cached


# ----------------------------------------------------------------------
# request validation
# ----------------------------------------------------------------------
def test_unknown_scenario_is_400_with_registry(client):
    resp = client.search("no-such-scenario")
    assert resp.status == 400
    assert "unknown scenario" in resp.payload["error"]
    assert "fig1" in resp.payload["registered"]


def test_bad_params_and_knobs_are_400(server):
    c = ServeClient(server.url)
    assert c._request(
        "POST", "/v1/search", {"scenario": "fig1", "params": [1, 2]}
    ).status == 400
    assert c._request(
        "POST", "/v1/search", {"scenario": "fig1", "budget": "lots"}
    ).status == 400


def test_unknown_endpoint_is_404_with_directory(server):
    resp = ServeClient(server.url)._request("GET", "/v1/nope")
    assert resp.status == 404
    assert any("/v1/search" in e for e in resp.payload["endpoints"])


def test_wrong_method_is_405(server):
    resp = ServeClient(server.url)._request("GET", "/v1/search")
    assert resp.status == 405


def test_campaign_shard_validation_propagates(client):
    resp = client.campaign("quick", shard="0/2")
    assert resp.status == 400
    assert "1-based" in resp.payload["error"]
    assert client.campaign("no-such-spec").status == 400


# ----------------------------------------------------------------------
# telemetry events
# ----------------------------------------------------------------------
def test_events_stream_is_schema_valid(server, client):
    events = []
    done = threading.Event()

    def subscribe():
        events.extend(client.events(max_events=6, timeout=8.0))
        done.set()

    t = threading.Thread(target=subscribe, daemon=True)
    t.start()
    time.sleep(0.3)  # let the subscription attach
    client.search("fig3-panel", {"panel": "a"})
    done.wait(timeout=15)
    assert events, "no telemetry events streamed"
    for event in events:
        assert validate_event(event) == []
        assert event["kind"] in EVENT_KINDS
    names = {e["name"] for e in events}
    assert names & {"serve.request", "serve.requests", "serve.events.subscribe",
                    "campaign.run", "campaign.task", "campaign.tasks"}


def test_status_reports_serve_spans(server, client):
    client.search("fig1").raise_for_status()
    tel = server._tel
    assert tel is not None
    assert tel.counters.get("serve.requests", 0) >= 1
    assert "serve.request" in tel.span_stats


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------
def test_coordinator_disabled_is_503(server):
    resp = ServeClient(server.url)._request("GET", "/v1/coordinator/status")
    assert resp.status == 503
    assert "--shards" in resp.payload["error"]


@pytest.fixture()
def fleet_server(tmp_path):
    srv = ReproServer(
        ServeConfig(
            port=0,
            cache_backend=f"dir:{tmp_path / 'shared-cache'}",
            window=0.01,
            spec="quick",
            shards=2,
            ledger=str(tmp_path / "merged.jsonl"),
        )
    )
    thread = threading.Thread(target=srv.run, daemon=True)
    thread.start()
    assert srv.wait_ready(15)
    yield srv
    srv.shutdown()
    thread.join(10)


def test_fleet_round_trip_covers_the_spec(fleet_server, tmp_path):
    out1 = run_worker(fleet_server.url, worker_id="w1", limit=6)
    out2 = run_worker(fleet_server.url, worker_id="w2", limit=6)
    shards = {out1["assignment"]["shard"], out2["assignment"]["shard"]}
    assert shards == {"1/2", "2/2"}  # least-loaded assignment covers both
    assert out1["summary"]["failed"] == out2["summary"]["failed"] == 0

    c = ServeClient(fleet_server.url)
    status = c.coordinator_status().raise_for_status().payload
    assert status["unassigned_shards"] == []
    assert status["distinct_tasks"] == 6  # shards are disjoint and complete
    assert status["failed"] == 0
    assert (tmp_path / "merged.jsonl").exists()

    # re-registering is idempotent (crash-restart safe)
    again = c.register("w1").raise_for_status().payload
    assert again["shard"] == out1["assignment"]["shard"]


def test_report_rejects_schema_drift(fleet_server):
    c = ServeClient(fleet_server.url)
    c.register("drifter").raise_for_status()
    from repro.campaign.tasks import CampaignTask, TaskResult

    task = CampaignTask.make("reachability", "fig1")
    result = TaskResult(
        task_hash="f" * 64, name="bogus", kind="reachability",
        scenario="fig1", params={}, verdict="unreachable",
    )
    resp = c.report(
        "drifter", [{"task": task.to_json(), "result": result.to_json()}]
    )
    assert resp.status == 400
    assert "hash mismatch" in resp.payload["error"]

    unregistered = c.report("ghost", [])
    assert unregistered.status == 400
    assert "register first" in unregistered.payload["error"]


def test_coordinator_unit_merges_into_cache(tmp_path):
    from repro.campaign.cache import MemoryLRUCache
    from repro.campaign.tasks import CampaignTask, execute_task

    cache = MemoryLRUCache(16)
    coord = ShardCoordinator(spec="quick", shards=1, cache=cache)
    coord.register("solo")
    task = CampaignTask.make("reachability", "debug-sleep", tag="coord")
    result = execute_task(task)
    receipt = coord.report(
        "solo", [{"task": task.to_json(), "result": result.to_json()}]
    )
    assert receipt["merged"] == 1
    assert cache.get(task) is not None  # live success written through
    assert coord.status()["ok"] == 1
    coord.close()
