"""Certificate soundness: static verdicts cross-checked against the search.

The acceptance bar for the static fast-path: wherever the linter issues a
certificate, the search/classify oracle (run with ``certificates="off"``)
must agree, and every REACHABLE_DEADLOCK certificate must carry a concrete
message set that the search engine confirms deadlocks.  Dally--Seitz-acyclic
scenarios must be decided with *zero* BFS states explored.
"""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.classify import classify_cycle
from repro.analysis.reachability import search_deadlock
from repro.analysis.state import CheckerMessage, SystemSpec
from repro.campaign.scenarios import build_scenario
from repro.cdg.analysis import find_cycles
from repro.cdg.build import build_cdg
from repro.lint import (
    ENV_VAR,
    CertificateMismatch,
    certificates_mode,
    cycle_runs,
    enumerate_tilings,
    lint_algorithm,
    spec_certificate,
)
from repro.routing import RoutingAlgorithm, clockwise_ring
from repro.routing.paths import first_occurrence_prefix, suffix_from
from repro.topology import ring


def msg(path, length, tag=""):
    return CheckerMessage(path=tuple(path), length=length, tag=tag)


def _ring_spec():
    return SystemSpec.uniform([msg([0, 1, 2], 2, "a"), msg([2, 3, 0], 2, "b")])


# ----------------------------------------------------------------------
# registry-wide cross-check (ISSUE acceptance criterion)
# ----------------------------------------------------------------------
#: every campaign-registry scenario family, with the certificate the linter
#: is expected to issue (pinned empirically; None = honestly undecided)
REGISTRY_MATRIX = [
    ("fig1", {}, None),
    ("fig2-pair", {"d1": 3, "d2": 1, "hold": 3}, "CRT007"),
    ("fig3-panel", {"panel": "a"}, None),
    ("shared-cycle", {"approaches": [1, 2, 3], "holds": [2, 2, 2]}, None),
    ("minimal-config", {"approaches": [1, 1, 1], "holds": [1, 1, 1]}, None),
    (
        "theorem2-overlap",
        {"ring_n": 6, "entries": [0, 2, 4], "run_lens": [3, 3, 3]},
        "CRT005",
    ),
    ("gen", {"m": 1}, None),
    ("gen", {"m": 2}, None),
    ("baseline-cdg", {"algorithm": "dor", "dims": [3, 3]}, "CRT001"),
    ("baseline-cdg", {"algorithm": "west-first", "dims": [3, 3]}, "CRT001"),
    ("baseline-cdg", {"algorithm": "ecube", "d": 3}, "CRT001"),
    ("baseline-cdg", {"algorithm": "dateline", "dims": [4, 4]}, "CRT001"),
    ("baseline-cdg", {"algorithm": "clockwise", "n": 5}, "CRT005"),
    ("ring-cycle", {"n": 4}, "CRT005"),
    ("traffic", {"algorithm": "dor", "dims": [2, 2], "cycles": 20}, "CRT001"),
]

_IDS = [
    f"{name}-{i}" for i, (name, _p, _c) in enumerate(REGISTRY_MATRIX)
]


@pytest.mark.parametrize("name,params,expected_code", REGISTRY_MATRIX, ids=_IDS)
def test_registry_certificate_matrix(name, params, expected_code):
    """Each scenario family gets exactly the pinned static verdict."""
    bundle = build_scenario(name, params)
    report = lint_algorithm(bundle.algorithm)
    diag = report.certificate_diagnostic
    assert (None if diag is None else diag.code) == expected_code


@pytest.mark.parametrize("name,params,expected_code", REGISTRY_MATRIX, ids=_IDS)
def test_registry_certificates_agree_with_search(name, params, expected_code):
    """Static certificates replay through the search oracle and agree."""
    bundle = build_scenario(name, params)
    report = lint_algorithm(bundle.algorithm)
    diag = report.certificate_diagnostic

    if diag is not None and report.verdict == "deadlock_free":
        # independent replay of the Dally-Seitz evidence: the numbering
        # strictly increases along every CDG edge
        cdg = build_cdg(bundle.algorithm)
        assert nx.is_directed_acyclic_graph(cdg)
        numbering = diag.evidence["numbering"]
        assert len(numbering) == cdg.number_of_nodes()
        for u, v in cdg.edges:
            assert numbering[u.short()] < numbering[v.short()]
    elif diag is not None:
        # the certificate's concrete deadlock configuration must really
        # deadlock under the exhaustive search
        replay = diag.evidence["deadlock_messages"]
        res = search_deadlock(
            SystemSpec.uniform(list(replay), budget=4),
            find_witness=False,
            certificates="off",
            max_states=5_000_000,
        )
        assert res.deadlock_reachable

    # spec-level certificates (the search fast-path) against the raw search
    if bundle.messages:
        for budget in (0, 1):
            spec = SystemSpec.uniform(bundle.messages, budget=budget)
            cert = spec_certificate(spec)
            if cert is None:
                continue
            res = search_deadlock(
                spec, find_witness=False, certificates="off", max_states=5_000_000
            )
            assert res.deadlock_reachable == cert.deadlock_reachable, (
                name,
                budget,
                cert.code,
            )


# ----------------------------------------------------------------------
# zero-state fast path (ISSUE acceptance criterion)
# ----------------------------------------------------------------------
class TestSearchFastPath:
    def test_acyclic_spec_decided_with_zero_states(self):
        bundle = build_scenario("fig1", {"subset": ["M1", "M3"]})
        res = search_deadlock(SystemSpec.uniform(bundle.messages), certificates="on")
        assert not res.deadlock_reachable
        assert res.states_explored == 0
        assert res.certificate == "CRT001"

    def test_reachable_spec_decided_without_search_in_verdict_mode(self):
        res = search_deadlock(_ring_spec(), find_witness=False, certificates="on")
        assert res.deadlock_reachable
        assert res.states_explored == 0 and res.witness is None
        assert res.certificate == "CRT005"

    def test_witness_mode_emits_constructive_witness(self):
        """CRT005 now *constructs* the witness: zero BFS states explored."""
        from repro.lint import validate_witness

        res = search_deadlock(_ring_spec(), find_witness=True, certificates="on")
        assert res.deadlock_reachable
        assert res.witness is not None and res.states_explored == 0
        assert res.certificate == "CRT005"
        assert validate_witness(res.witness)

    def test_mode_off_disables_annotation(self):
        res = search_deadlock(_ring_spec(), find_witness=False, certificates="off")
        assert res.deadlock_reachable and res.states_explored > 0
        assert res.certificate is None

    def test_check_mode_runs_search_and_agrees(self):
        res = search_deadlock(_ring_spec(), find_witness=False, certificates="check")
        assert res.deadlock_reachable and res.states_explored > 0
        assert res.certificate == "CRT005"

    def test_check_mode_raises_on_bogus_certificate(self, monkeypatch):
        import repro.lint.certificates as certs

        fake = certs.Certificate(
            code="CRT001", verdict="DEADLOCK_FREE", rationale="bogus"
        )
        monkeypatch.setattr(certs, "spec_certificate", lambda spec, **kw: fake)
        with pytest.raises(CertificateMismatch, match="CRT001"):
            search_deadlock(_ring_spec(), find_witness=False, certificates="check")

    def test_env_var_gates_the_fast_path(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "off")
        res = search_deadlock(_ring_spec(), find_witness=False)
        assert res.certificate is None and res.states_explored > 0
        monkeypatch.setenv(ENV_VAR, "on")
        res = search_deadlock(_ring_spec(), find_witness=False)
        assert res.certificate == "CRT005" and res.states_explored == 0


class TestClassifyFastPath:
    @pytest.fixture
    def ring_cycle(self):
        net = ring(4)
        alg = RoutingAlgorithm(clockwise_ring(net, 4))
        (cycle,) = find_cycles(build_cdg(alg)).cycles
        return alg, cycle

    def test_certificate_skips_scenarios(self, ring_cycle):
        alg, cycle = ring_cycle
        cls = classify_cycle(alg, cycle, certificates="on")
        assert cls.deadlock_reachable
        assert cls.scenarios_tested == 0
        assert cls.certificate == "CRT005"
        assert any("static certificate" in n for n in cls.notes)

    def test_off_mode_searches_and_agrees(self, ring_cycle):
        alg, cycle = ring_cycle
        cls = classify_cycle(alg, cycle, certificates="off")
        assert cls.deadlock_reachable
        assert cls.scenarios_tested >= 1 and cls.certificate is None

    def test_check_mode_annotates_after_searching(self, ring_cycle):
        alg, cycle = ring_cycle
        cls = classify_cycle(alg, cycle, certificates="check")
        assert cls.deadlock_reachable
        assert cls.scenarios_tested >= 1 and cls.certificate == "CRT005"

    def test_fig1_cycle_never_certified(self):
        """The paper's false resource cycle must stay search-decided."""
        alg = build_scenario("fig1", {}).algorithm
        cycles = find_cycles(build_cdg(alg)).cycles
        for cycle in cycles:
            cls = classify_cycle(alg, cycle, certificates="on")
            if not cls.deadlock_reachable:
                assert cls.certificate is None
                assert cls.scenarios_tested >= 1


# ----------------------------------------------------------------------
# mode parsing
# ----------------------------------------------------------------------
class TestModeParsing:
    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert certificates_mode() == "on"

    def test_env_and_override(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "off")
        assert certificates_mode() == "off"
        assert certificates_mode("check") == "check"  # parameter beats env

    def test_invalid_values_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="certificates mode"):
            certificates_mode("sometimes")
        monkeypatch.setenv(ENV_VAR, "weird")
        with pytest.raises(ValueError, match="certificates mode"):
            certificates_mode()


# ----------------------------------------------------------------------
# tiling primitives
# ----------------------------------------------------------------------
class TestTilingPrimitives:
    def test_cycle_runs_offset_entry(self):
        cyc = (10, 11, 12, 13)
        assert cycle_runs(cyc, (7, 11, 12)) == [(1, 2)]
        assert cycle_runs(cyc, (7, 8)) == []
        assert cycle_runs(cyc, ()) == []

    def test_enumerate_tilings_exact_cover(self):
        # runs overshoot the held segment by one: the successor's first
        # channel must lie strictly inside the predecessor's run
        cands = {"a": [(0, 3)], "b": [(2, 3)]}
        tilings = enumerate_tilings(4, cands)
        assert len(tilings) == 1
        (t,) = tilings
        assert set(t.members) == {"a", "b"}
        assert t.held_lengths == [2, 2]

    def test_enumerate_tilings_rejects_unblockable_members(self):
        # exact-cover runs with nowhere to be blocked: not a Definition-6
        # configuration (each member must wait *inside* its own run)
        assert enumerate_tilings(4, {"a": [(0, 2)], "b": [(2, 2)]}) == []

    def test_enumerate_tilings_cap(self):
        # many single-slot candidates: the cap bounds the explosion
        cands = {i: [(p, 2) for p in range(4)] for i in range(8)}
        tilings = enumerate_tilings(4, cands, max_tilings=5)
        assert len(tilings) == 5


# ----------------------------------------------------------------------
# evidence replay: diagnostics carry facts that re-verify independently
# ----------------------------------------------------------------------
class TestEvidenceReplay:
    def test_closure_violations_replay(self):
        """Every reported (s, d, w) triple really violates Def. 7/8."""
        alg = build_scenario("fig1", {}).algorithm
        report = lint_algorithm(alg)
        replayed = 0
        for diag in report.diagnostics:
            if diag.code not in ("PRP001", "PRP002"):
                continue
            for item in diag.evidence["violations"]:
                (s, d), w = item["pair"], item["via"]
                full = alg.try_path(s, d)
                assert full is not None
                if diag.code == "PRP001":
                    part, own = first_occurrence_prefix(full, w), alg.try_path(s, w)
                else:
                    part, own = suffix_from(full, w), alg.try_path(w, d)
                if item["reason"] == "partial path undefined":
                    assert own is None
                else:
                    assert own is not None and tuple(own) != tuple(part)
                replayed += 1
        assert replayed > 0

    def test_crt005_members_really_tile_the_cycle(self):
        bundle = build_scenario(
            "theorem2-overlap",
            {"ring_n": 6, "entries": [0, 2, 4], "run_lens": [3, 3, 3]},
        )
        diag = lint_algorithm(bundle.algorithm).certificate_diagnostic
        assert diag.code == "CRT005"
        cycle = [ch.cid for ch in diag.evidence["cycle"]]
        held = diag.evidence["held_lengths"]
        assert sum(held) == len(cycle)
        for m, start, h in zip(
            diag.evidence["deadlock_messages"],
            diag.evidence["starts"],
            held,
        ):
            # the message's path really contains its held run of the cycle
            idx = m.path.index(cycle[start])
            n = len(cycle)
            assert [cycle[(start + k) % n] for k in range(h)] == list(
                m.path[idx : idx + h]
            )
            assert m.length >= h


# ----------------------------------------------------------------------
# hypothesis: random specs and geometries never get a wrong certificate
# ----------------------------------------------------------------------
@st.composite
def small_specs(draw) -> SystemSpec:
    num_channels = draw(st.integers(min_value=2, max_value=5))
    n_msgs = draw(st.integers(min_value=1, max_value=3))
    messages, budgets = [], []
    for mi in range(n_msgs):
        plen = draw(st.integers(min_value=1, max_value=min(3, num_channels)))
        path = tuple(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=num_channels - 1),
                    min_size=plen,
                    max_size=plen,
                    unique=True,
                )
            )
        )
        messages.append(msg(path, draw(st.integers(min_value=1, max_value=3)), f"M{mi}"))
        budgets.append(draw(st.integers(min_value=0, max_value=2)))
    return SystemSpec(messages=tuple(messages), budgets=tuple(budgets))


@settings(max_examples=40, deadline=None)
@given(spec=small_specs())
def test_random_spec_certificates_sound(spec):
    cert = spec_certificate(spec)
    if cert is None:
        return
    res = search_deadlock(
        spec, find_witness=False, certificates="off", max_states=200_000
    )
    assert res.deadlock_reachable == cert.deadlock_reachable


@settings(max_examples=15, deadline=None)
@given(
    geometry=st.lists(
        st.tuples(st.integers(1, 3), st.integers(1, 3)), min_size=2, max_size=3
    )
)
def test_random_shared_cycle_certificates_sound(geometry):
    """Random Theorem 3/4 geometries: any certificate replays to a deadlock."""
    try:
        bundle = build_scenario(
            "shared-cycle",
            {"approaches": [a for a, _ in geometry], "holds": [h for _, h in geometry]},
        )
    except ValueError:
        return  # builder rejects degenerate geometries (walk spans the ring)
    report = lint_algorithm(bundle.algorithm)
    diag = report.certificate_diagnostic
    if diag is None or report.verdict != "reachable_deadlock":
        return
    replay = diag.evidence["deadlock_messages"]
    res = search_deadlock(
        SystemSpec.uniform(list(replay), budget=4),
        find_witness=False,
        certificates="off",
        max_states=2_000_000,
    )
    assert res.deadlock_reachable
