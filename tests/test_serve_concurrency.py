"""Cache backends under concurrency: racing threads and processes.

The serve event loop, its batch executor thread, and (for sqlite/dir)
whole worker fleets share one backend; these tests hammer get/put from
many threads per backend and from multiple processes for the two
durable stores.
"""

import threading
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.campaign.cache import (
    MemoryLRUCache,
    ResultCache,
    SqliteCache,
    TieredCache,
    make_backend,
)
from repro.campaign.tasks import CampaignTask, TaskResult

THREADS = 8
TASKS_PER_THREAD = 12


def _task(i):
    return CampaignTask.make("reachability", "fig2-pair", d1=1, d2=1, hold=i + 2)


def _result(task):
    return TaskResult(
        task_hash=task.task_hash,
        name=task.name,
        kind=task.kind,
        scenario=task.scenario,
        params=task.params_dict(),
        verdict="deadlock",
        detail={"states_explored": 7},
    )


def _backend(kind, tmp_path):
    if kind == "dir":
        return ResultCache(tmp_path / "dir")
    if kind == "memory":
        return MemoryLRUCache(256)
    if kind == "sqlite":
        return SqliteCache(tmp_path / "cache.db")
    return TieredCache(MemoryLRUCache(256), ResultCache(tmp_path / "cold"))


@pytest.mark.parametrize("kind", ("dir", "memory", "sqlite", "tiered"))
def test_threads_racing_get_put(kind, tmp_path):
    """N threads all put+get the same task set; every get that returns
    must return a well-formed cached result, and no call may raise."""
    cache = _backend(kind, tmp_path)
    tasks = [_task(i) for i in range(TASKS_PER_THREAD)]
    errors = []
    barrier = threading.Barrier(THREADS)

    def hammer():
        try:
            barrier.wait(timeout=10)
            for task in tasks:
                cache.put(task, _result(task))
                hit = cache.get(task)
                # a racing clear/evict could miss, but a returned hit
                # must be intact
                if hit is not None:
                    assert hit.verdict == "deadlock"
                    assert hit.source == "cache"
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    workers = [threading.Thread(target=hammer) for _ in range(THREADS)]
    for w in workers:
        w.start()
    for w in workers:
        w.join(timeout=60)
    assert errors == []
    assert len(cache) == TASKS_PER_THREAD
    for task in tasks:
        hit = cache.get(task)
        assert hit is not None and hit.detail["states_explored"] == 7


def _process_hammer(spec: str, n: int) -> int:
    """Module-level worker (must pickle): put+get n tasks, count hits."""
    cache = make_backend(spec)
    hits = 0
    for i in range(n):
        task = _task(i)
        cache.put(task, _result(task))
        if cache.get(task) is not None:
            hits += 1
    close = getattr(cache, "close", None)
    if callable(close):
        close()
    return hits


@pytest.mark.parametrize("scheme", ("dir", "sqlite"))
def test_processes_racing_get_put(scheme, tmp_path):
    """The durable backends are shared across real processes (shards,
    CI runners): racing writers must corrupt nothing."""
    if scheme == "dir":
        spec = f"dir:{tmp_path / 'shared'}"
    else:
        spec = f"sqlite:{tmp_path / 'shared.db'}"
    try:
        pool = ProcessPoolExecutor(max_workers=3)
    except Exception:  # pragma: no cover - sandbox without process support
        pytest.skip("process pools unavailable in this environment")
    with pool:
        futures = [pool.submit(_process_hammer, spec, TASKS_PER_THREAD) for _ in range(3)]
        counts = [f.result(timeout=120) for f in futures]
    assert all(c == TASKS_PER_THREAD for c in counts)

    merged = make_backend(spec)
    assert len(merged) == TASKS_PER_THREAD
    report = merged.integrity()
    assert report.entries == TASKS_PER_THREAD
    assert report.healthy, report.to_json()
    for i in range(TASKS_PER_THREAD):
        assert merged.get(_task(i)) is not None


def test_sqlite_instance_shared_between_threads(tmp_path):
    """One SqliteCache instance is documented as thread-safe (the serve
    loop and its executor thread share one)."""
    cache = SqliteCache(tmp_path / "cache.db")
    errors = []

    def worker(offset):
        try:
            for i in range(offset, offset + 6):
                task = _task(i)
                cache.put(task, _result(task))
                assert cache.get(task) is not None
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    workers = [threading.Thread(target=worker, args=(k * 6,)) for k in range(4)]
    for w in workers:
        w.start()
    for w in workers:
        w.join(timeout=60)
    assert errors == []
    assert len(cache) == 24
    cache.close()
