"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import SystemSpec, search_deadlock
from repro.analysis.state import CheckerMessage
from repro.core.specs import CycleMessageSpec, build_shared_cycle
from repro.core.theory import analytic_schedule_feasible
from repro.routing import RoutingAlgorithm, clockwise_ring, dimension_order_mesh
from repro.routing.paths import path_is_contiguous, path_nodes
from repro.sim import MessageSpec, SimConfig, Simulator
from repro.topology import mesh, ring

# module-level strategies ----------------------------------------------------

coords = st.tuples(st.integers(0, 3), st.integers(0, 3))
_MESH = mesh((4, 4))
_DOR = RoutingAlgorithm(dimension_order_mesh(_MESH, 2))


@given(src=coords, dst=coords)
def test_dor_paths_always_valid(src, dst):
    if src == dst:
        return
    path = _DOR.path(src, dst)
    assert path_is_contiguous(path)
    nodes = path_nodes(path)
    assert nodes[0] == src and nodes[-1] == dst
    assert len(set(c.cid for c in path)) == len(path)
    # minimal
    assert len(path) == sum(abs(a - b) for a, b in zip(src, dst))


@given(
    n=st.integers(3, 10),
    src=st.integers(0, 9),
    hops=st.integers(1, 9),
    length=st.integers(1, 8),
)
@settings(max_examples=40, deadline=None)
def test_single_ring_message_always_delivered(n, src, hops, length):
    """A lone wormhole message always arrives with the closed-form latency."""
    src %= n
    hops = 1 + hops % (n - 1)
    net = ring(n)
    spec = MessageSpec(0, src, (src + hops) % n, length=length)
    res = Simulator(net, clockwise_ring(net, n), [spec]).run()
    assert res.completed
    assert res.messages[0].latency() == hops + length - 1


@given(
    seed=st.integers(0, 10_000),
    rate=st.floats(0.01, 0.25),
    depth=st.integers(1, 3),
)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_mesh_dor_never_deadlocks(seed, rate, depth):
    """Conservation + deadlock freedom for DOR under random traffic."""
    from repro.sim.traffic import uniform_random_traffic

    net = mesh((3, 3))
    fn = dimension_order_mesh(net, 2)
    specs = uniform_random_traffic(net, rate=rate, cycles=25, length=3, seed=seed)
    res = Simulator(
        net, fn, specs, config=SimConfig(max_cycles=10_000, buffer_depth=depth)
    ).run()
    assert not res.deadlocked
    assert res.delivered == res.total
    # flit conservation: every injected flit is consumed
    assert all(
        m.flits_injected == m.flits_consumed == m.spec.length
        for m in res.messages.values()
    )


@given(
    holds=st.lists(st.integers(2, 4), min_size=2, max_size=3),
    approaches=st.lists(st.integers(1, 3), min_size=3, max_size=3),
    budget=st.integers(0, 1),
)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_checker_invariants_along_reachable_states(holds, approaches, budget):
    """Exhaustively walk a small scenario checking state invariants."""
    k = len(holds)
    specs = [
        CycleMessageSpec(approach_len=approaches[i], hold_len=holds[i], label=f"S{i}")
        for i in range(k)
    ]
    try:
        c = build_shared_cycle(specs)
    except ValueError:
        return  # degenerate geometry rejected by the builder
    spec = SystemSpec.uniform(c.checker_messages(), budget=budget)
    seen = {spec.initial_state()}
    frontier = [spec.initial_state()]
    explored = 0
    while frontier and explored < 400:
        state = frontier.pop()
        explored += 1
        # invariants: occupancy never double-books a channel (asserted
        # inside occupied_channels); per message f <= min(h, k) and
        # budgets never negative
        occ = spec.occupied_channels(state)
        for i, (h, inj, cons, bud) in enumerate(state):
            m = spec.messages[i]
            assert 0 <= cons <= inj <= m.length
            assert 0 <= h <= m.k + 1
            assert inj - cons <= max(0, min(h, m.k))
            assert bud >= 0
        for nxt, _acts in spec.successors(state):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)


@given(
    d=st.lists(st.integers(1, 4), min_size=2, max_size=2),
    h=st.lists(st.integers(2, 4), min_size=2, max_size=2),
)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_analytic_feasible_implies_search_reachable(d, h):
    """Soundness of the closed-form Theorem 1 model vs the ground truth."""
    specs = [
        CycleMessageSpec(approach_len=d[i], hold_len=h[i], label=f"S{i}")
        for i in range(2)
    ]
    try:
        c = build_shared_cycle(specs)
    except ValueError:
        return
    if analytic_schedule_feasible(specs).feasible:
        res = search_deadlock(
            SystemSpec.uniform(c.checker_messages()), find_witness=False
        )
        assert res.deadlock_reachable


@given(lengths=st.lists(st.integers(1, 6), min_size=2, max_size=4))
@settings(max_examples=20, deadline=None)
def test_disjoint_messages_never_deadlock(lengths):
    """Messages with pairwise-disjoint paths can never form a wait cycle."""
    msgs = [
        CheckerMessage(path=tuple(range(i * 10, i * 10 + 3)), length=ln, tag=f"m{i}")
        for i, ln in enumerate(lengths)
    ]
    res = search_deadlock(SystemSpec.uniform(msgs), find_witness=False)
    assert not res.deadlock_reachable
