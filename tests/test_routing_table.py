"""TableRouting compilation and consistency tests."""

import pytest

from repro.routing import INJECT, RoutingAlgorithm, RoutingError, TableRouting
from repro.routing.table import PathTableError
from repro.topology import Network


@pytest.fixture
def diamond():
    """A -> B -> D and A -> C -> D."""
    net = Network("diamond")
    net.add_channel("A", "B", label="ab")
    net.add_channel("B", "D", label="bd")
    net.add_channel("A", "C", label="ac")
    net.add_channel("C", "D", label="cd")
    return net


def test_basic_compile_and_route(diamond):
    ab, bd = diamond.channel_by_label("ab"), diamond.channel_by_label("bd")
    tr = TableRouting(diamond, {("A", "D"): [ab, bd]})
    assert tr.route(INJECT, "A", "D") is ab
    assert tr.route(ab, "B", "D") is bd


def test_undefined_pair_raises(diamond):
    ab, bd = diamond.channel_by_label("ab"), diamond.channel_by_label("bd")
    tr = TableRouting(diamond, {("A", "D"): [ab, bd]})
    with pytest.raises(RoutingError, match="no route"):
        tr.route(INJECT, "B", "A")


def test_malformed_path_rejected(diamond):
    ab = diamond.channel_by_label("ab")
    cd = diamond.channel_by_label("cd")
    # ab ends at B but cd starts at C: not contiguous
    with pytest.raises(ValueError, match="chain"):
        TableRouting(diamond, {("A", "D"): [ab, cd]})


def test_divergence_after_same_channel_rejected():
    net = Network()
    sa = net.add_channel("S", "A", label="sa")
    ab = net.add_channel("A", "B", label="ab")
    ac = net.add_channel("A", "C", label="ac")
    bd = net.add_channel("B", "D", label="bd")
    cd = net.add_channel("C", "D", label="cd")
    dd2 = net.add_channel("D", "E", label="de")
    # both pairs route through `sa` toward destination D... second hop differs
    with pytest.raises(PathTableError, match="not expressible"):
        TableRouting(
            net,
            {
                ("S", "D"): [sa, ab, bd],
                ("X", "D"): [sa, ac, cd],  # same in-channel sa, same dest D, diverges
            },
            check=False,  # skip path validation (X is not sa.src) to hit the compile check
        )


def test_input_channel_dependence_allowed():
    """Same node, same destination, different input channels -> different outputs.

    This is the crucial degree of freedom the paper's Figure 1 network uses.
    """
    net = Network()
    xa = net.add_channel("X", "A", label="xa")
    ya = net.add_channel("Y", "A", label="ya")
    ab = net.add_channel("A", "B", label="ab")
    ac = net.add_channel("A", "C", label="ac")
    cb = net.add_channel("C", "B", label="cb")
    tr = TableRouting(net, {("X", "B"): [xa, ab], ("Y", "B"): [ya, ac, cb]})
    assert tr.route(xa, "A", "B") is ab
    assert tr.route(ya, "A", "B") is ac


def test_from_node_paths(diamond):
    tr = TableRouting.from_node_paths(diamond, {("A", "D"): ["A", "B", "D"]})
    assert tr.table_path("A", "D")[0].label == "ab"


def test_from_node_paths_missing_channel(diamond):
    with pytest.raises(PathTableError, match="no channel"):
        TableRouting.from_node_paths(diamond, {("A", "D"): ["A", "D"]})


def test_from_node_paths_bad_endpoints(diamond):
    with pytest.raises(PathTableError, match="start/end"):
        TableRouting.from_node_paths(diamond, {("A", "D"): ["B", "D"]})


def test_defined_pairs_and_coverage(diamond):
    tr = TableRouting.from_node_paths(diamond, {("A", "D"): ["A", "B", "D"]})
    assert tr.defined_pairs() == [("A", "D")]
    assert not tr.covers_all_pairs()


def test_algorithm_path_matches_table(diamond):
    tr = TableRouting.from_node_paths(diamond, {("A", "D"): ["A", "C", "D"]})
    alg = RoutingAlgorithm(tr)
    assert [c.label for c in alg.path("A", "D")] == ["ac", "cd"]
