"""Path helper tests."""

import pytest

from repro.routing.paths import (
    first_occurrence_prefix,
    path_is_contiguous,
    path_nodes,
    suffix_from,
    validate_path,
)
from repro.topology import Network


@pytest.fixture
def net():
    n = Network()
    for a, b in [("A", "B"), ("B", "C"), ("C", "D"), ("C", "A"), ("A", "C")]:
        n.add_channel(a, b, label=f"{a}{b}")
    return n


def chans(net, *labels):
    return [net.channel_by_label(lbl) for lbl in labels]


def test_contiguity(net):
    assert path_is_contiguous(chans(net, "AB", "BC", "CD"))
    assert not path_is_contiguous(chans(net, "AB", "CD"))


def test_path_nodes(net):
    assert path_nodes(chans(net, "AB", "BC", "CD")) == ["A", "B", "C", "D"]
    assert path_nodes([]) == []


def test_validate_ok(net):
    validate_path(net, chans(net, "AB", "BC", "CD"), "A", "D")


def test_validate_wrong_endpoints(net):
    with pytest.raises(ValueError, match="starts"):
        validate_path(net, chans(net, "AB", "BC"), "B", "C")
    with pytest.raises(ValueError, match="ends"):
        validate_path(net, chans(net, "AB", "BC"), "A", "D")


def test_validate_empty(net):
    with pytest.raises(ValueError, match="empty"):
        validate_path(net, [], "A", "B")


def test_validate_channel_revisit_rejected(net):
    # A -> B -> C -> A -> B reuses AB
    path = chans(net, "AB", "BC", "CA", "AB")
    with pytest.raises(ValueError, match="revisits a channel"):
        validate_path(net, path, "A", "B")


def test_validate_node_revisit_policy(net):
    # A -> C -> A visits A twice but uses distinct channels... then to B
    path = chans(net, "AC", "CA", "AB")
    validate_path(net, path, "A", "B")  # allowed by default
    with pytest.raises(ValueError, match="revisits a node"):
        validate_path(net, path, "A", "B", allow_node_revisit=False)


def test_validate_foreign_channel(net):
    other = Network()
    foreign = other.add_channel("A", "B")
    with pytest.raises(ValueError, match="does not belong"):
        validate_path(net, [foreign], "A", "B")


def test_prefix_and_suffix(net):
    path = chans(net, "AB", "BC", "CD")
    assert [c.label for c in first_occurrence_prefix(path, "C")] == ["AB", "BC"]
    assert [c.label for c in suffix_from(path, "C")] == ["CD"]
    # the source itself
    assert first_occurrence_prefix(path, "A") == ()
    assert [c.label for c in suffix_from(path, "A")] == ["AB", "BC", "CD"]


def test_prefix_first_occurrence_semantics(net):
    # A -> C -> A -> B : first occurrence of C is after one hop
    path = chans(net, "AC", "CA", "AB")
    assert [c.label for c in first_occurrence_prefix(path, "C")] == ["AC"]
    assert [c.label for c in suffix_from(path, "C")] == ["CA", "AB"]


def test_prefix_missing_node(net):
    with pytest.raises(ValueError, match="not on the path"):
        first_occurrence_prefix(chans(net, "AB"), "Z")
