"""Analytic timing model (Theorem 1) and Theorem 3 minimal-routing tests."""

import pytest

from repro.core.cyclic_dependency import FIG1_MESSAGES
from repro.core.minimal_search import fig1_nonminimality_certificate, sweep_minimal_configs
from repro.core.specs import CycleMessageSpec
from repro.core.theory import (
    analytic_schedule_feasible,
    earliest_blocking_analysis,
)


def fig1_cycle_specs():
    return [
        CycleMessageSpec(
            approach_len=len(info["approach"]) + 1,
            hold_len=info["min_length"],
            label=tag,
        )
        for tag, info in FIG1_MESSAGES.items()
    ]


class TestAnalyticModel:
    def test_fig1_infeasible(self):
        """Theorem 1's core claim, in closed form."""
        res = analytic_schedule_feasible(fig1_cycle_specs())
        assert not res.feasible

    def test_two_message_feasible(self):
        specs = [
            CycleMessageSpec(approach_len=3, hold_len=4, label="M1"),
            CycleMessageSpec(approach_len=2, hold_len=4, label="M2"),
        ]
        res = analytic_schedule_feasible(specs)
        assert res.feasible
        # the schedule injects M1 (longer approach) first
        assert res.schedule["M1"] < res.schedule["M2"]

    def test_analytic_soundness_vs_search(self):
        """Analytic-feasible implies exhaustively-reachable (soundness)."""
        from repro.analysis import SystemSpec, search_deadlock
        from repro.core.specs import build_shared_cycle

        import itertools

        count = 0
        for ds in itertools.product((1, 2, 3), repeat=2):
            for hs in itertools.product((2, 3), repeat=2):
                specs = [
                    CycleMessageSpec(approach_len=d, hold_len=h, label=f"S{i}")
                    for i, (d, h) in enumerate(zip(ds, hs))
                ]
                if analytic_schedule_feasible(specs).feasible:
                    c = build_shared_cycle(specs)
                    r = search_deadlock(
                        SystemSpec.uniform(c.checker_messages()), find_witness=False
                    )
                    assert r.deadlock_reachable, (ds, hs)
                    count += 1
        assert count > 0  # the sweep exercised real cases

    def test_rejects_non_shared(self):
        specs = [
            CycleMessageSpec(approach_len=1, hold_len=2),
            CycleMessageSpec(approach_len=1, hold_len=2, uses_shared=False),
        ]
        with pytest.raises(ValueError, match="all-shared"):
            analytic_schedule_feasible(specs)

    def test_narrative_mentions_the_fig1_asymmetry(self):
        lines = earliest_blocking_analysis(fig1_cycle_specs())
        text = "\n".join(lines)
        # M2 must be injected before M1; M4 before M3 (Theorem 1's prose)
        assert "M2 must be injected before M1" in text
        assert "M4 must be injected before M3" in text
        assert "M3 may follow M2" in text
        assert "M1 may follow M4" in text


class TestTheorem3:
    def test_fig1_certified_nonminimal(self):
        slack = fig1_nonminimality_certificate()
        assert len(slack) == 4
        assert all(v > 0 for v in slack.values())

    def test_sweep_no_minimal_unreachable(self):
        """Theorem 3 over a small family: minimal AND unreachable never co-occur."""
        res = sweep_minimal_configs(
            num_messages=2,
            approach_range=(1, 2),
            hold_range=(1, 2, 3),
        )
        assert not res.any_violation
        summary = res.summary()
        assert summary["theorem3_holds"]
        # degenerate geometries (hold spanning the ring) are skipped
        assert summary["configs"] == 16

    def test_sweep_limit(self):
        res = sweep_minimal_configs(
            num_messages=2, approach_range=(1, 2), hold_range=(2, 3), limit=5
        )
        assert len(res.records) == 5
