"""Switching-technique continuum tests (wormhole / SAF / VCT -- paper Sec. 1)."""

import pytest

from repro.routing import clockwise_ring
from repro.sim import MessageSpec, SimConfig, Simulator
from repro.topology import ring


def run_single(config: SimConfig, *, hops=4, length=5, n=8):
    net = ring(n)
    sim = Simulator(
        net, clockwise_ring(net, n), [MessageSpec(0, 0, hops, length=length)], config=config
    )
    res = sim.run()
    assert res.completed
    return res.messages[0].latency()


class TestStoreAndForward:
    def test_latency_scales_with_hops_times_length(self):
        lat_wh = run_single(SimConfig(), hops=4, length=5)
        lat_sf = run_single(SimConfig.store_and_forward(5), hops=4, length=5)
        assert lat_wh == 4 + 5 - 1
        # SAF buffers the whole message at every hop: ~hops * length
        assert lat_sf >= 4 * 5
        assert lat_sf > lat_wh

    def test_distance_sensitivity(self):
        """The paper: wormhole latency is distance-insensitive, SAF's is not."""
        wh = [run_single(SimConfig(), hops=h, length=6) for h in (2, 6)]
        sf = [run_single(SimConfig.store_and_forward(6), hops=h, length=6) for h in (2, 6)]
        assert wh[1] - wh[0] == 4  # one cycle per extra hop
        assert sf[1] - sf[0] >= 4 * 4  # ~length cycles per extra hop

    def test_rejects_undersized_buffers(self):
        net = ring(4)
        with pytest.raises(ValueError, match="buffer_depth"):
            Simulator(
                net,
                clockwise_ring(net, 4),
                [MessageSpec(0, 0, 2, length=5)],
                config=SimConfig(buffer_depth=2, switching="store_and_forward"),
            )

    def test_message_occupies_one_channel_at_a_time(self):
        """A SAF message in steady state holds at most two channels
        (draining the old queue into the new one)."""
        n = 8
        net = ring(n)
        sim = Simulator(
            net,
            clockwise_ring(net, n),
            [MessageSpec(0, 0, 5, length=4)],
            config=SimConfig.store_and_forward(4),
        )
        max_held = 0
        for _ in range(60):
            sim.step()
            max_held = max(max_held, len(sim.messages[0].acquired))
        assert max_held <= 2


class TestVirtualCutThrough:
    def test_unobstructed_latency_matches_wormhole(self):
        lat_wh = run_single(SimConfig(), hops=5, length=4)
        lat_vct = run_single(SimConfig.virtual_cut_through(4), hops=5, length=4)
        assert lat_vct == lat_wh  # VCT only differs under blocking

    def test_config_validation(self):
        with pytest.raises(ValueError, match="switching"):
            SimConfig(switching="carrier-pigeon")


class TestBlockedFootprint:
    def test_vct_blocked_message_frees_the_path_behind(self):
        """Under VCT a blocked message sits in one queue; under wormhole it
        sprawls -- the paper's motivation for the buffer/latency tradeoff."""
        n = 10
        specs = [
            MessageSpec(0, 5, 9, length=40),  # blocker
            MessageSpec(1, 0, 7, length=5, inject_time=1),
        ]
        held = {}
        for name, cfg in [
            ("wormhole", SimConfig()),
            ("vct", SimConfig.virtual_cut_through(40)),
        ]:
            net = ring(n)
            sim = Simulator(net, clockwise_ring(net, n), specs, config=cfg)
            for _ in range(25):
                sim.step()
            held[name] = len(sim.messages[1].acquired)
        assert held["vct"] < held["wormhole"]
