"""Section 7 extensions: beyond three messages, beyond one shared channel.

The paper's conclusion sketches two follow-ups:

1. *"These results could be extended to the case of four messages and
   beyond."*  :func:`predicted_unreachable` is a generalized predictor for
   any number of all-shared messages, combining the calibrated structural
   requirement (every message holds more ring channels than its approach
   length -- the generalisation of conditions 4-6) with the closed-form
   consecutive-schedule feasibility test of
   :func:`repro.core.theory.analytic_schedule_feasible` (the
   generalisation of conditions 1, 7, 8).  The four-message experiment
   measures its agreement against the exhaustive search.

2. *"Conditions could also be derived when there are multiple shared
   channels for the same cycle"*, together with the conclusion's claim
   that *"any such unreachable configuration ... must have at least three
   messages that share a channel"*.
   :func:`split_shared_fig1` rebuilds the Figure 1 geometry with its four
   messages split across two shared channels (two per channel); by the
   claim, the cycle must then be a reachable deadlock -- the experiment
   verifies it, and verifies that a 3+1 split (three messages still
   sharing one channel) can remain unreachable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.analysis.classify import classify_configuration
from repro.core.specs import CycleMessageSpec, SharedCycleConstruction, build_shared_cycle
from repro.core.theory import analytic_schedule_feasible


def predicted_unreachable(specs: Sequence[CycleMessageSpec]) -> bool:
    """Generalized unreachability predictor for all-shared cycles.

    ``True`` iff (a) every message must hold more ring channels than its
    approach length (so parking any message outside the cycle starves the
    shared channel instead of helping), and (b) no consecutive-``cs``
    schedule -- over all injection orders and gaps -- meets every
    Definition-6 blocking deadline.

    For three messages this coincides with the calibrated Theorem 5
    conditions on the 250-configuration dataset; for four and more it is a
    *conjecture* the four-message experiment tests against the exhaustive
    search (agreement rate reported, disagreements printed).
    """
    specs = list(specs)
    if any(not s.uses_shared for s in specs):
        raise ValueError("predictor covers all-shared configurations only")
    if any(s.hold_len <= s.approach_len for s in specs):
        return False
    return not analytic_schedule_feasible(specs).feasible


@dataclass
class FourMessageSweep:
    """Agreement stats between the predictor and the exhaustive search."""

    total: int = 0
    agree: int = 0
    unreachable_found: int = 0
    disagreements: list[dict] = field(default_factory=list)

    @property
    def rate(self) -> float:
        return self.agree / self.total if self.total else 1.0


def run_four_message_sweep(
    *,
    samples: int = 25,
    seed: int = 23,
    d_range: tuple[int, int] = (1, 4),
    h_range: tuple[int, int] = (2, 5),
    max_states: int = 30_000_000,
) -> FourMessageSweep:
    """Random four-all-shared configurations: predictor vs ground truth.

    Ground truth is :func:`classify_configuration` (search with interposed
    copies).  Includes the Figure 1 parameter point explicitly so the sweep
    always contains at least one unreachable instance.
    """
    rng = random.Random(seed)
    sweep = FourMessageSweep()
    cases: list[tuple[tuple[int, ...], tuple[int, ...]]] = [
        ((2, 3, 2, 3), (3, 4, 3, 4)),  # Figure 1
    ]
    seen = set(cases)
    while len(cases) < samples:
        ds = tuple(rng.randint(*d_range) for _ in range(4))
        hs = tuple(rng.randint(*h_range) for _ in range(4))
        if (ds, hs) in seen:
            continue
        seen.add((ds, hs))
        cases.append((ds, hs))
    for ds, hs in cases:
        specs = [
            CycleMessageSpec(approach_len=d, hold_len=h, label=f"S{i}")
            for i, (d, h) in enumerate(zip(ds, hs))
        ]
        try:
            c = build_shared_cycle(specs, name="four-sweep")
        except ValueError:
            continue
        predicted = predicted_unreachable(specs)
        reachable, _ = classify_configuration(
            c.checker_messages(), copy_depth=1, max_states=max_states
        )
        sweep.total += 1
        if not reachable:
            sweep.unreachable_found += 1
        if predicted == (not reachable):
            sweep.agree += 1
        else:
            sweep.disagreements.append(
                {
                    "d": ds,
                    "h": hs,
                    "search": "unreachable" if not reachable else "deadlock",
                    "predictor": "unreachable" if predicted else "deadlock",
                }
            )
    return sweep


# ----------------------------------------------------------------------
# multiple shared channels
# ----------------------------------------------------------------------

def split_shared_fig1(groups: Sequence[int] = (0, 1, 0, 1)) -> SharedCycleConstruction:
    """Figure 1 geometry with its four messages split over shared channels.

    ``groups[i]`` assigns message ``M(i+1)`` to shared channel ``cs<g>``.
    ``(0, 0, 0, 0)`` is the original construction; ``(0, 1, 0, 1)`` puts
    two messages on each of two shared channels.
    """
    if len(groups) != 4:
        raise ValueError("exactly four group assignments required")
    base = [(2, 3), (3, 4), (2, 3), (3, 4)]
    return build_shared_cycle(
        [
            CycleMessageSpec(
                approach_len=d, hold_len=h, label=f"M{i + 1}", shared_group=g
            )
            for i, ((d, h), g) in enumerate(zip(base, groups))
        ],
        name=f"fig1-split{''.join(map(str, groups))}",
    )


@dataclass
class SplitSharedResult:
    """Classification of Figure 1 under every shared-channel split."""

    rows: list[dict] = field(default_factory=list)

    @property
    def claim_holds(self) -> bool:
        """The conclusion's claim: unreachable needs >= 3 on one channel."""
        for row in self.rows:
            if row["max sharing"] < 3 and row["classification"] == "unreachable":
                return False
        return True


def run_split_shared_experiment(*, max_states: int = 30_000_000) -> SplitSharedResult:
    """Classify Figure 1 under 4+0 / 3+1 / 2+2 shared-channel splits."""
    result = SplitSharedResult()
    for groups in [(0, 0, 0, 0), (0, 0, 0, 1), (0, 1, 0, 1)]:
        c = split_shared_fig1(groups)
        reachable, res = classify_configuration(
            c.checker_messages(), copy_depth=1, max_states=max_states
        )
        counts = [groups.count(g) for g in sorted(set(groups))]
        result.rows.append(
            {
                "split": "+".join(map(str, counts)),
                "max sharing": max(counts),
                "classification": "deadlock" if reachable else "unreachable",
                "states": res.states_explored,
            }
        )
    return result
