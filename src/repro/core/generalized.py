"""Section 6: the generalised family ``Gen(m)``.

Figure 1 is deadlock-free only under tight synchrony: delaying the right
messages a couple of cycles in flight completes the cycle.  Section 6
scales the construction so deadlock needs at least ~``m`` cycles of
adversarial delay, for any chosen ``m`` -- discharging the synchrony
assumption.

The scaling keeps the two load-bearing features the paper names:

1. every message uses more channels inside the cycle than between the
   shared channel and the cycle (``hold_i > d_i``), so blocking a message
   outside the cycle just stalls ``cs`` and helps nobody; and
2. the odd messages (M1, M3) use *fewer* approach channels than the even
   ones (M2, M4) -- and the generalisation grows that gap: after an odd
   message releases ``cs``, the even message that must block it needs
   ``m`` more cycles to reach the blocking channel than the odd message
   needs to sail past it, so some message must be delayed ~``m`` cycles.

Parameters (matching the paper's comparison sentence, which identifies
Figure 1 as the ``m = 1`` member):

====  ==============  =================
      odd (M1, M3)    even (M2, M4)
====  ==============  =================
d     ``2``           ``2 + m``
hold  ``3``           ``2 + 2m``
L     ``3``           ``2 + 2m``
====  ==============  =================

``Gen(1)`` is exactly the Figure 1 geometry (sparse form, without the hub
relay, which plays no role in the cycle analysis).  The even holds must
outgrow the even approaches (``2 + 2m`` vs ``2 + m``): a uniform ``+m``
scaling lets the adversary inject both even messages first and absorb the
growing approach gap inside the growing ``cs`` serialisation delay, capping
the required stall at a constant -- measured, not hypothetical (see git
history of this module).  With this scaling the exhaustive search measures
Δ*(m) = m exactly for m = 1..4 (EXPERIMENTS.md), reproducing the paper's
"delayed at least m clock cycles" claim.
"""

from __future__ import annotations

from repro.analysis.state import CheckerMessage
from repro.core.specs import CycleMessageSpec, SharedCycleConstruction, build_shared_cycle


def build_generalized(m: int) -> SharedCycleConstruction:
    """The ``Gen(m)`` network; ``m = 1`` reproduces the Figure 1 geometry."""
    if m < 0:
        raise ValueError("m must be >= 0")
    return build_shared_cycle(
        [
            CycleMessageSpec(approach_len=2, hold_len=3, label="M1"),
            CycleMessageSpec(approach_len=2 + m, hold_len=2 + 2 * m, label="M2"),
            CycleMessageSpec(approach_len=2, hold_len=3, label="M3"),
            CycleMessageSpec(approach_len=2 + m, hold_len=2 + 2 * m, label="M4"),
        ],
        name=f"gen({m})",
    )


def generalized_messages(m: int) -> list[CheckerMessage]:
    """Checker messages of ``Gen(m)`` at the minimum adequate lengths."""
    return build_generalized(m).checker_messages()
