"""Parametric shared-channel cycle constructions.

Every custom network in the paper -- Figure 1, Figure 2, the six Figure 3
panels and the Section 6 generalisation -- has the same skeleton:

* a unidirectional ring of channels (the dependency cycle);
* ``r`` messages; message ``i`` enters the ring at entry node ``E_i``,
  holds the ``hold_i`` ring channels up to the next message's entry, and is
  destined for the node *one past* ``E_{i+1}`` -- so the first ring channel
  of message ``i+1`` is exactly the channel message ``i`` blocks on
  (Definition 6), and message ``i`` routes *through* the destination of
  message ``i-1``;
* messages that use the shared channel ``cs = (Src -> N*)`` then traverse a
  private approach chain of ``approach_len_i`` channels from ``N*`` to
  ``E_i``; messages that do not use ``cs`` (Figure 3(f)'s fourth message)
  get their own source and approach chain.

:func:`build_shared_cycle` realises a parameter list as a concrete network
plus a :class:`~repro.routing.table.TableRouting`, and exposes the
checker-ready message paths.  The figure modules are thin wrappers choosing
parameters.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.analysis.state import CheckerMessage
from repro.routing.base import RoutingAlgorithm
from repro.routing.table import TableRouting
from repro.topology.channels import Channel, NodeId
from repro.topology.network import Network


@dataclass(frozen=True)
class CycleMessageSpec:
    """Geometry of one message in a shared-channel cycle construction.

    ``approach_len``: channels from the shared channel's head (``N*``) --
    or from the message's private source when ``uses_shared`` is false --
    to the cycle entry node.  This is the paper's ``d_i``.

    ``hold_len``: ring channels the message must hold in the deadlock
    configuration (ring distance from its entry to the next entry).  The
    message's in-cycle path is ``hold_len + 1`` channels; the paper's
    ``c_i`` (distance from cycle entry to destination) equals
    ``hold_len + 1``.

    ``uses_shared``: whether the message routes through a shared channel.

    ``shared_group``: which shared channel the message uses.  Group 0 is
    the paper's single ``cs``; constructions exercising the conclusion's
    "at least three messages must share a channel" claim split the cycle
    messages across several shared channels (``cs0``, ``cs1``, ...), each
    with its own source node.
    """

    approach_len: int
    hold_len: int
    uses_shared: bool = True
    label: str = ""
    shared_group: int = 0

    def __post_init__(self) -> None:
        if self.approach_len < 1:
            raise ValueError("approach_len must be >= 1")
        if self.hold_len < 1:
            raise ValueError("hold_len must be >= 1")
        if self.shared_group < 0:
            raise ValueError("shared_group must be >= 0")


@dataclass
class SharedCycleConstruction:
    """A realised construction: network, routing, and analysis handles."""

    network: Network
    routing: TableRouting
    cycle_channels: list[Channel]  # ring order
    shared_channel: Channel | None  # group 0's cs (None if nothing shared)
    message_pairs: list[tuple[NodeId, NodeId]]  # (src, dst) per message
    specs: list[CycleMessageSpec]
    entry_positions: list[int] = field(default_factory=list)
    shared_channels: dict[int, Channel] = field(default_factory=dict)  # group -> cs

    @property
    def algorithm(self) -> RoutingAlgorithm:
        return RoutingAlgorithm(self.routing)

    def min_lengths(self) -> list[int]:
        """Minimum flit counts for the deadlock configuration (hold_len each)."""
        return [s.hold_len for s in self.specs]

    def checker_messages(
        self, lengths: Sequence[int] | None = None
    ) -> list[CheckerMessage]:
        """Checker-ready messages; default lengths are the minima.

        The paper argues (Section 4) that single-flit buffers and minimum
        message lengths are the adversary's best case; callers can pass
        longer lengths to probe that claim.
        """
        alg = self.algorithm
        if lengths is None:
            lengths = self.min_lengths()
        if len(lengths) != len(self.message_pairs):
            raise ValueError("one length per message required")
        out: list[CheckerMessage] = []
        for (src, dst), spec, length in zip(self.message_pairs, self.specs, lengths):
            path = alg.path(src, dst)
            out.append(
                CheckerMessage.from_channels(
                    path, length=length, tag=spec.label or f"{src}->{dst}"
                )
            )
        return out


def build_shared_cycle(
    specs: Sequence[CycleMessageSpec],
    *,
    name: str = "shared-cycle",
) -> SharedCycleConstruction:
    """Realise a list of :class:`CycleMessageSpec` as a concrete network.

    Messages are in cycle order: message ``i`` blocks on the entry channel
    of message ``(i + 1) % r``.  At least two messages are required.
    """
    specs = list(specs)
    if len(specs) < 2:
        raise ValueError("a dependency cycle needs at least two messages")
    for i, s in enumerate(specs):
        if not s.label:
            specs[i] = dataclasses.replace(s, label=f"M{i + 1}")

    net = Network(name)
    n_ring = sum(s.hold_len for s in specs)
    ring_nodes = [f"R{j}" for j in range(n_ring)]
    for node in ring_nodes:
        net.add_node(node)
    ring_channels = [
        net.add_channel(ring_nodes[j], ring_nodes[(j + 1) % n_ring], label=f"ring{j}")
        for j in range(n_ring)
    ]

    groups = sorted({s.shared_group for s in specs if s.uses_shared})
    shared_channels: dict[int, Channel] = {}
    for g in groups:
        src_name = "Src" if g == 0 else f"Src{g}"
        hub_name = "N*" if g == 0 else f"N*{g}"
        net.add_node(src_name)
        net.add_node(hub_name)
        shared_channels[g] = net.add_channel(
            src_name, hub_name, label="cs" if g == 0 else f"cs{g}"
        )
    shared: Channel | None = shared_channels.get(0) or (
        next(iter(shared_channels.values())) if shared_channels else None
    )

    entry_positions: list[int] = []
    pos = 0
    for s in specs:
        entry_positions.append(pos)
        pos += s.hold_len

    pairs: list[tuple[NodeId, NodeId]] = []
    node_paths: dict[tuple[NodeId, NodeId], list[NodeId]] = {}
    for i, s in enumerate(specs):
        entry = ring_nodes[entry_positions[i]]
        next_entry_pos = entry_positions[(i + 1) % len(specs)]
        dest = ring_nodes[(next_entry_pos + 1) % n_ring]
        # approach chain
        if s.uses_shared:
            src = "Src" if s.shared_group == 0 else f"Src{s.shared_group}"
            hub = "N*" if s.shared_group == 0 else f"N*{s.shared_group}"
            chain: list[NodeId] = [src, hub]
            start: NodeId = hub
        else:
            src = f"S{i + 1}"
            net.add_node(src)
            chain = [src]
            start = src
        hops_needed = s.approach_len  # channels from `start` to entry
        prev = start
        for j in range(hops_needed - 1):
            mid: NodeId = f"A{i + 1}.{j + 1}"
            net.add_node(mid)
            net.add_channel(prev, mid, label=f"ap{i + 1}.{j + 1}")
            chain.append(mid)
            prev = mid
        net.add_channel(prev, entry, label=f"ap{i + 1}.in")
        chain.append(entry)
        # ring section: entry .. dest (hold_len + 1 channels)
        p = entry_positions[i]
        for _ in range(s.hold_len + 1):
            p = (p + 1) % n_ring
            chain.append(ring_nodes[p])
        if chain[-1] != dest:
            raise AssertionError("ring walk did not land on the destination")
        if dest in chain[:-1]:
            # The walk would pass through its own destination, where the
            # message is consumed (Assumption 2) -- the intended longer path
            # cannot exist under destination-based routing.  Such degenerate
            # geometries (a message's ring walk spanning the whole ring)
            # are rejected rather than silently mis-built.
            raise ValueError(
                f"message {s.label}: path passes through its own destination "
                f"{dest!r}; hold lengths span the entire ring"
            )
        pairs.append((src, dest))
        node_paths[(src, dest)] = chain

    routing = TableRouting.from_node_paths(net, node_paths, name=name)
    return SharedCycleConstruction(
        network=net,
        routing=routing,
        cycle_channels=ring_channels,
        shared_channel=shared,
        message_pairs=pairs,
        specs=specs,
        entry_positions=entry_positions,
        shared_channels=shared_channels,
    )
