"""Theorem 2: shared channels *within* the cycle always yield deadlock.

Theorem 2's configurations have messages whose in-cycle paths overlap, so
the channel both messages need is itself a cycle channel.  Each message
here originates at its own source next to the ring (no shared approach
channel at all, or equivalently the sharing happens inside the ring), which
is exactly the hypothesis of the theorem: "all the messages in the
configuration can use their initial channel in the cycle simultaneously,
because no channel sharing is required prior to entering the cycle."

:func:`build_overlapping_ring` realises an overlap specification; the
experiment verifies by exhaustive search that every such configuration
deadlocks (with zero stall budget), matching the theorem.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.specs import SharedCycleConstruction
from repro.routing.table import TableRouting
from repro.topology.channels import NodeId
from repro.topology.network import Network


@dataclass(frozen=True)
class OverlapSpec:
    """One message of an overlapping-ring configuration.

    ``entry_pos``: ring position where the message enters.
    ``run_len``: consecutive ring channels on its path (``>= 1``); its
    destination is the node ``run_len`` steps past the entry.  Runs longer
    than the gap to the next entry overlap the next message's channels --
    the within-cycle sharing of Theorem 2.
    ``approach_len``: private channels from its own source to the entry.
    """

    entry_pos: int
    run_len: int
    approach_len: int = 1
    label: str = ""


def build_overlapping_ring(
    ring_len: int,
    specs: Sequence[OverlapSpec],
    *,
    name: str = "within-cycle",
) -> SharedCycleConstruction:
    """Realise an overlapping-ring configuration.

    Validates that consecutive entries fall inside the previous message's
    run (otherwise the dependency cycle does not close and the scenario is
    vacuous) and that the runs jointly cover the ring.
    """
    specs = list(specs)
    if len(specs) < 2:
        raise ValueError("need at least two messages")
    if ring_len < 3:
        raise ValueError("ring_len must be >= 3")
    covered: set[int] = set()
    order = sorted(range(len(specs)), key=lambda i: specs[i].entry_pos)
    for idx, i in enumerate(order):
        s = specs[i]
        if not 0 <= s.entry_pos < ring_len:
            raise ValueError("entry_pos out of range")
        if s.run_len < 1 or s.run_len > ring_len - 1:
            # run_len == ring_len would make the message end at (or pass
            # through) its own destination
            raise ValueError("run_len out of range (must be < ring_len)")
        covered.update((s.entry_pos + j) % ring_len for j in range(s.run_len))
        nxt = specs[order[(idx + 1) % len(order)]]
        gap = (nxt.entry_pos - s.entry_pos) % ring_len
        if gap == 0 or gap >= s.run_len + 1:
            # next entry must be a channel this message also uses (strictly
            # inside or just past its held prefix) for the dependency
            # cycle to close
            if gap > s.run_len:
                raise ValueError(
                    f"message {i}: next entry at gap {gap} lies beyond its run "
                    f"({s.run_len}); dependency cycle would not close"
                )
    if len(covered) != ring_len:
        raise ValueError("runs do not cover the ring; no dependency cycle exists")

    net = Network(name)
    ring_nodes = [f"R{j}" for j in range(ring_len)]
    for node in ring_nodes:
        net.add_node(node)
    ring_channels = [
        net.add_channel(ring_nodes[j], ring_nodes[(j + 1) % ring_len], label=f"ring{j}")
        for j in range(ring_len)
    ]

    pairs: list[tuple[NodeId, NodeId]] = []
    node_paths: dict[tuple[NodeId, NodeId], list[NodeId]] = {}
    out_specs = []
    from repro.core.specs import CycleMessageSpec

    for i, s in enumerate(specs):
        label = s.label or f"M{i + 1}"
        src: NodeId = f"S{i + 1}"
        net.add_node(src)
        chain: list[NodeId] = [src]
        prev: NodeId = src
        for j in range(s.approach_len - 1):
            mid: NodeId = f"A{i + 1}.{j + 1}"
            net.add_node(mid)
            net.add_channel(prev, mid, label=f"ap{i + 1}.{j + 1}")
            chain.append(mid)
            prev = mid
        entry = ring_nodes[s.entry_pos]
        net.add_channel(prev, entry, label=f"ap{i + 1}.in")
        chain.append(entry)
        p = s.entry_pos
        for _ in range(s.run_len):
            p = (p + 1) % ring_len
            chain.append(ring_nodes[p])
        dest = ring_nodes[p]
        pairs.append((src, dest))
        node_paths[(src, dest)] = chain
        out_specs.append(
            CycleMessageSpec(
                approach_len=s.approach_len,
                hold_len=max(1, s.run_len - 1),
                uses_shared=False,
                label=label,
            )
        )

    routing = TableRouting.from_node_paths(net, node_paths, name=name)
    return SharedCycleConstruction(
        network=net,
        routing=routing,
        cycle_channels=ring_channels,
        shared_channel=None,
        message_pairs=pairs,
        specs=out_specs,
        entry_positions=[s.entry_pos for s in specs],
    )


def theorem2_default() -> SharedCycleConstruction:
    """Four messages on an 8-ring, each overlapping the next by two channels."""
    return build_overlapping_ring(
        8,
        [
            OverlapSpec(entry_pos=0, run_len=4, label="Ma"),
            OverlapSpec(entry_pos=2, run_len=4, label="Mb"),
            OverlapSpec(entry_pos=4, run_len=4, label="Mc"),
            OverlapSpec(entry_pos=6, run_len=4, label="Md"),
        ],
        name="theorem2-overlap8",
    )
