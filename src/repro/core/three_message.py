"""Figure 3 / Theorem 5: cycles with exactly three messages sharing a channel.

Theorem 5 characterises exactly when a cycle whose shared channel is used
by three messages is unreachable: eight conditions, all necessary and
sufficient.  Figure 3 gives six instances: panels (a) and (b) are false
resource cycles; panels (c)--(f) violate specific conditions and deadlock.

The scanned figure is unreadable, so each panel is instantiated with the
smallest parameters that match its prose description (which condition it
satisfies/violates); the experiment then verifies the classification by
exhaustive search -- which is geometry-exact regardless of how the original
figure drew the networks.  Panel (f) adds a fourth message that does not
use the shared channel, exactly as the paper describes.

Parameter meanings (see :mod:`repro.core.specs`): ``d`` = channels from the
shared channel to the cycle entry, ``hold`` = ring channels the message
must hold.  Messages are listed in *cycle order* (each blocks on the next
one's entry channel).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.specs import CycleMessageSpec, SharedCycleConstruction, build_shared_cycle


@dataclass(frozen=True)
class ThreeMessageParams:
    """A Figure 3 style configuration, messages in cycle order."""

    specs: tuple[CycleMessageSpec, ...]
    name: str
    expected_unreachable: bool  # the paper's stated classification
    description: str = ""

    def __post_init__(self) -> None:
        shared = [s for s in self.specs if s.uses_shared]
        if len(shared) != 3:
            raise ValueError("Theorem 5 configurations have exactly 3 shared messages")


def build_three_message_config(params: ThreeMessageParams) -> SharedCycleConstruction:
    """Realise a Theorem 5 configuration as a concrete network + routing."""
    return build_shared_cycle(list(params.specs), name=params.name)


def _p(d: int, hold: int, label: str, shared: bool = True) -> CycleMessageSpec:
    return CycleMessageSpec(approach_len=d, hold_len=hold, uses_shared=shared, label=label)


#: The six panels.  Cycle order lists follow condition 1 (M1 followed by M3
#: with M2 not between them) for the unreachable panels and break specific
#: conditions for the deadlocking ones.  Labels carry the Theorem 5 naming
#: per panel: Ma has the longest approach (the paper's M1), Mc the shortest
#: (M3), Mb the middle one (M2).  Parameters are the smallest instances
#: whose condition profile matches each panel's prose description; the
#: classification is verified by exhaustive search in the experiment.
FIG3_PANELS: dict[str, ThreeMessageParams] = {
    "a": ThreeMessageParams(
        specs=(_p(4, 5, "Ma"), _p(2, 4, "Mc"), _p(3, 4, "Mb")),
        name="fig3a",
        expected_unreachable=True,
        description=(
            "all three messages use more channels within the cycle than from "
            "the shared channel to the cycle; conditions 1-8 hold"
        ),
    ),
    "b": ThreeMessageParams(
        specs=(_p(4, 5, "Ma"), _p(2, 3, "Mc"), _p(3, 4, "Mb")),
        name="fig3b",
        expected_unreachable=True,
        description=(
            "false resource cycle with the shortest message barely long "
            "enough (h3 = d3 + 1): delaying Ma en route cannot be sustained "
            "long enough to form the cycle"
        ),
    ),
    "c": ThreeMessageParams(
        specs=(_p(4, 3, "Ma"), _p(2, 4, "Mc"), _p(3, 4, "Mb")),
        name="fig3c",
        expected_unreachable=False,
        description=(
            "condition 4 violated (only): M1 holds no more channels inside "
            "the cycle than its approach length, so it can be parked at its "
            "entry by an interposed copy and the rest reduces to Theorem 4"
        ),
    ),
    "d": ThreeMessageParams(
        specs=(_p(4, 4, "Mb"), _p(6, 7, "Ma"), _p(3, 4, "Mc")),
        name="fig3d",
        expected_unreachable=False,
        description=(
            "condition 6 violated (only): M2's path from the shared channel "
            "is too long relative to its in-cycle segment (h2 <= d2)"
        ),
    ),
    "e": ThreeMessageParams(
        specs=(_p(5, 6, "Ma"), _p(1, 2, "Mc"), _p(2, 3, "Mb")),
        name="fig3e",
        expected_unreachable=False,
        description=(
            "condition 7 violated (only): M1's approach is so long that the "
            "consecutive schedule Ma, Mb, Mc closes the cycle (d1 >= h2 + d3)"
        ),
    ),
    "f": ThreeMessageParams(
        specs=(
            _p(4, 5, "Ma"),
            _p(2, 4, "Mc"),
            _p(2, 6, "M4", shared=False),
            _p(3, 3, "Mb"),
        ),
        name="fig3f",
        expected_unreachable=False,
        description=(
            "a fourth message that does not use the shared channel sits "
            "between Mc and Mb in the cycle; conditions 6 and 8 no longer "
            "hold and the deadlock forms via the Mc-first schedule"
        ),
    ),
}
