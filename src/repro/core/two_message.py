"""Figure 2 / Theorem 4: a channel shared by exactly two messages.

Theorem 4: *if a shared channel outside of the cycle is used by only two
messages, the cycle forms a (reachable) deadlock configuration.*  The
proof's schedule: inject the message with the longer approach first; the
second starts using ``cs`` immediately after, and both arrive in the cycle
in time to block each other.

The default parameters mirror Figure 2's two-message ring (approach lengths
differ, both messages hold the ring segment up to the other's entry).  The
experiment verifies the deadlock is reachable at stall budget 0 and that the
proof's injection order is the one the minimum witness uses.
"""

from __future__ import annotations

from repro.core.specs import CycleMessageSpec, SharedCycleConstruction, build_shared_cycle

#: Figure 2 defaults: M1 approaches through 3 channels, M2 through 2;
#: each holds 4 ring channels (ring of 8).
TWO_MESSAGE_DEFAULT: tuple[CycleMessageSpec, ...] = (
    CycleMessageSpec(approach_len=3, hold_len=4, label="M1"),
    CycleMessageSpec(approach_len=2, hold_len=4, label="M2"),
)


def build_two_message_config(
    *,
    approach_1: int = 3,
    approach_2: int = 2,
    hold_1: int = 4,
    hold_2: int = 4,
) -> SharedCycleConstruction:
    """Two messages sharing ``cs`` outside the ring cycle (Theorem 4 shape)."""
    return build_shared_cycle(
        [
            CycleMessageSpec(approach_len=approach_1, hold_len=hold_1, label="M1"),
            CycleMessageSpec(approach_len=approach_2, hold_len=hold_2, label="M2"),
        ],
        name=f"fig2-two-message(d1={approach_1},d2={approach_2},h1={hold_1},h2={hold_2})",
    )
