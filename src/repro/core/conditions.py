"""The eight Theorem 5 conditions, executable.

Theorem 5: a cycle whose shared channel is used by exactly three messages
is an unreachable configuration **iff** all eight conditions hold.

Naming (paper Section 5): the three sharing messages are labelled by their
distance from the shared channel ``cs`` to their first cycle channel --
``M1`` uses the most channels between ``cs`` and the cycle, ``M3`` the
fewest, ``M2`` the remaining one.  ``d_i`` is that distance; ``in_i`` is
the number of channels message ``M_i`` must hold within the cycle (ring
distance from its entry to the next message's entry).

RECONSTRUCTION NOTE: the available text of the paper is OCR-damaged in this
section; conditions 1-5 are recovered verbatim, conditions 6-8 are
reconstructed from the proof's narrative and **calibrated** against the
exhaustive reachability search over a parameter sweep (see
``benchmarks/bench_fig3_theorem5.py``, which reports the agreement rate).
Each condition function documents the wording it implements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.specs import CycleMessageSpec


@dataclass(frozen=True)
class TheoremFiveInput:
    """Distilled geometry of a three-shared-message cycle configuration.

    ``shared`` are the three sharing messages in **cycle order** (each is
    blocked by the next one's entry channel); ``extras`` are non-sharing
    messages also in the cycle, with their position recorded as the index
    of the shared message they immediately follow.
    """

    shared: tuple[CycleMessageSpec, CycleMessageSpec, CycleMessageSpec]
    extras_after: dict[int, tuple[CycleMessageSpec, ...]] = field(default_factory=dict)

    @classmethod
    def from_specs(cls, specs: list[CycleMessageSpec]) -> "TheoremFiveInput":
        shared = [s for s in specs if s.uses_shared]
        if len(shared) != 3:
            raise ValueError("Theorem 5 needs exactly three sharing messages")
        extras_after: dict[int, list[CycleMessageSpec]] = {}
        shared_idx = -1
        for s in specs:
            if s.uses_shared:
                shared_idx += 1
            else:
                if shared_idx < 0:
                    # extras before the first shared message follow the last one
                    extras_after.setdefault(2, []).append(s)
                else:
                    extras_after.setdefault(shared_idx, []).append(s)
        return cls(
            shared=(shared[0], shared[1], shared[2]),
            extras_after={k: tuple(v) for k, v in extras_after.items()},
        )

    # ------------------------------------------------------------------
    def ranked(self) -> tuple[int, int, int]:
        """Indices (into ``shared``, cycle order) of (M1, M2, M3) by distance.

        M1 = largest ``d``; M2 = middle; M3 = smallest.  Ties are broken by
        cycle position, but condition 3 (distinct distances) fails on ties
        anyway.
        """
        order = sorted(range(3), key=lambda i: (-self.shared[i].approach_len, i))
        return order[0], order[1], order[2]  # (M1, M2, M3)

    def extras_between(self, i: int, j: int) -> tuple[CycleMessageSpec, ...]:
        """Non-sharing messages strictly between shared ``i`` and ``j`` in cycle order."""
        out: list[CycleMessageSpec] = []
        k = i
        while k != j:
            out.extend(self.extras_after.get(k, ()))
            k = (k + 1) % 3
        return tuple(out)

    def shared_between(self, i: int, j: int) -> tuple[int, ...]:
        """Shared message indices strictly between ``i`` and ``j`` in cycle order."""
        out: list[int] = []
        k = (i + 1) % 3
        while k != j:
            out.append(k)
            k = (k + 1) % 3
        return tuple(out)

    def immediately_precedes(self, i: int, j: int) -> bool:
        """True iff shared ``i`` comes right before shared ``j`` with no
        message (shared or extra) in between."""
        return (i + 1) % 3 == j and not self.extras_after.get(i)


@dataclass
class ConditionReport:
    """Per-condition verdicts plus the conjunction."""

    conditions: dict[int, bool]
    m1: CycleMessageSpec
    m2: CycleMessageSpec
    m3: CycleMessageSpec

    @property
    def all_hold(self) -> bool:
        return all(self.conditions.values())

    def failed(self) -> list[int]:
        return [k for k, v in self.conditions.items() if not v]


def evaluate_conditions(inp: TheoremFiveInput) -> ConditionReport:
    """Evaluate the eight conditions on a configuration.

    Returns the per-condition verdicts; Theorem 5 predicts *unreachable*
    exactly when all eight hold.
    """
    i1, i2, i3 = inp.ranked()
    m1, m2, m3 = inp.shared[i1], inp.shared[i2], inp.shared[i3]
    d1, d2, d3 = m1.approach_len, m2.approach_len, m3.approach_len
    h1, h2, h3 = m1.hold_len, m2.hold_len, m3.hold_len

    def between_channels(a: int, b: int) -> int:
        """Cycle channels held by messages strictly between shared a and b."""
        total = sum(s.hold_len for s in inp.extras_between(a, b))
        total += sum(inp.shared[k].hold_len for k in inp.shared_between(a, b))
        return total

    conds: dict[int, bool] = {}
    # 1. "the order of the messages using cs is such that M1 is followed by
    #    M3 ... M2 is not between M1 and M3" (other, non-sharing messages may
    #    sit between them).
    conds[1] = i2 not in inp.shared_between(i1, i3)
    # 2. "All three messages use cs outside of the cycle."  True by
    #    construction for this input type (cs is the injection channel and
    #    never a ring channel); kept explicit for report completeness.
    conds[2] = True
    # 3. "All three messages use a different number of channels from cs to
    #    the cycle."
    conds[3] = len({d1, d2, d3}) == 3
    # 4. "Message M1 uses more channels within the cycle than it uses from
    #    cs to c1."
    conds[4] = h1 > d1
    # 5. [calibrated] "M3 uses more channels within the cycle than it uses
    #    from cs to c3."  The OCR text guards this with "if the message
    #    immediately preceding M3 does not use cs", but calibration against
    #    the exhaustive search shows the inequality is required even in
    #    all-shared configurations: with h3 <= d3, message M3 can be parked
    #    at (or before) its cycle entry long enough for the remaining two
    #    messages to run the Theorem 4 two-message schedule.
    conds[5] = h3 > d3
    # 6. [reconstructed + calibrated] "M2 uses more channels within the
    #    cycle than it uses from cs to c2."  The OCR text carries a second
    #    disjunct ("or M3 immediately precedes M2 ...") whose inequality is
    #    unrecoverable; calibration against the exhaustive search (250
    #    random all-shared configurations, scripts/calibrate_theorem5.py)
    #    rejects every candidate reading of it, so it is dropped.  Without
    #    h2 > d2, message M2 can be parked at its cycle entry and the
    #    configuration degenerates to the two-message case of Theorem 4.
    conds[6] = h2 > d2
    # 7. [reconstructed + calibrated] "The number of channels used by M1
    #    from cs to c1, plus the channels held in the cycle by messages
    #    between M1 and M3, is less than the number of channels M2 holds in
    #    the cycle plus the number of channels used by M3 from cs to c3."
    #    Derivation: in the only viable consecutive-cs schedule
    #    (M1, M2, M3), M3 takes its cycle entry at t1 + L1 + L2 + 1 + d3
    #    while M1 arrives there at t1 + 1 + d1 + h1, extended by any slack
    #    interposed non-shared messages provide; with minimum lengths
    #    L_i = h_i the schedule closes iff d1 + extras >= h2 + d3, so
    #    unreachability requires the strict negation.
    conds[7] = d1 + between_channels(i1, i3) < h2 + d3
    # 8. [reconstructed + calibrated] "The number of channels used by M3
    #    from cs to c3, plus the channels held in the cycle by messages
    #    between M3 and M2, is less than the number of channels used by M2
    #    from cs to c2 plus the channels M1 holds in the cycle."
    #    Derivation: interposed messages between M3 and M2 enable the
    #    (M3, M1, M2) schedule, which closes iff
    #    h1 + d2 <= d3 + extras_between(M3, M2); negation for
    #    unreachability.  Vacuous (always true) without interposed
    #    messages, which matches the paper's Figure 3(f) being the panel
    #    that violates it.
    conds[8] = d3 + between_channels(i3, i2) < d2 + h1

    return ConditionReport(conditions=conds, m1=m1, m2=m2, m3=m3)


def theorem5_predicts_unreachable(specs: list[CycleMessageSpec]) -> bool:
    """Theorem 5's verdict for a configuration given as cycle-ordered specs."""
    return evaluate_conditions(TheoremFiveInput.from_specs(specs)).all_hold
