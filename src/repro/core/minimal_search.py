"""Theorem 3: minimal oblivious routing admits no Figure-1-style cycles.

Theorem 3: *unreachable cyclic configurations with a single shared channel
are not possible with minimal oblivious routing if all the messages in the
configuration use the shared channel.*  The proof forces
``d_1 > d_2 > ... > d_r > d_1`` from subpath minimality -- a contradiction.

Executable form: sweep the shared-cycle parameter family, and for each
construction record (a) whether its routing is minimal over its domain in
its own network, and (b) the exhaustive-search classification.  Theorem 3
predicts the conjunction *minimal AND unreachable* never occurs; the
paper's Figure 1 instance must additionally certify as nonminimal (its
approach chains shortcut each other's ring walks).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.analysis.reachability import search_deadlock
from repro.analysis.state import SystemSpec
from repro.core.specs import CycleMessageSpec, build_shared_cycle
from repro.routing.base import RoutingAlgorithm
from repro.routing.properties import is_minimal, minimality_slack


@dataclass
class MinimalSweepRecord:
    """One configuration's verdicts."""

    params: tuple[tuple[int, int], ...]  # (approach, hold) per message
    minimal: bool
    deadlock_reachable: bool
    states_explored: int

    @property
    def violates_theorem3(self) -> bool:
        return self.minimal and not self.deadlock_reachable


@dataclass
class MinimalSweepResult:
    records: list[MinimalSweepRecord] = field(default_factory=list)

    @property
    def any_violation(self) -> bool:
        return any(r.violates_theorem3 for r in self.records)

    @property
    def num_minimal(self) -> int:
        return sum(1 for r in self.records if r.minimal)

    @property
    def num_unreachable(self) -> int:
        return sum(1 for r in self.records if not r.deadlock_reachable)

    def summary(self) -> dict[str, int | bool]:
        return {
            "configs": len(self.records),
            "minimal": self.num_minimal,
            "unreachable": self.num_unreachable,
            "minimal_and_unreachable": sum(
                1 for r in self.records if r.violates_theorem3
            ),
            "theorem3_holds": not self.any_violation,
        }


def sweep_minimal_configs(
    *,
    num_messages: int = 3,
    approach_range: Sequence[int] = (1, 2, 3),
    hold_range: Sequence[int] = (1, 2, 3, 4),
    max_states: int = 1_000_000,
    limit: int | None = None,
) -> MinimalSweepResult:
    """Sweep all-shared cycle constructions and test Theorem 3's prediction.

    Every message uses the single shared channel ``cs``; the sweep covers
    the cross product of approach and hold lengths (``limit`` caps the
    number of configurations for quick runs).
    """
    result = MinimalSweepResult()
    combos = itertools.product(
        itertools.product(approach_range, hold_range), repeat=num_messages
    )
    for count, params in enumerate(combos):
        if limit is not None and count >= limit:
            break
        specs = [
            CycleMessageSpec(approach_len=a, hold_len=h, label=f"M{i + 1}")
            for i, (a, h) in enumerate(params)
        ]
        try:
            construction = build_shared_cycle(specs, name=f"minsweep{count}")
        except ValueError:
            # degenerate geometry (a walk would pass through its own
            # destination) -- not a valid oblivious configuration
            continue
        alg = construction.algorithm
        minimal = is_minimal(alg, construction.message_pairs)
        spec = SystemSpec.uniform(construction.checker_messages(), budget=0)
        search = search_deadlock(spec, max_states=max_states, find_witness=False)
        result.records.append(
            MinimalSweepRecord(
                params=tuple(params),
                minimal=minimal,
                deadlock_reachable=search.deadlock_reachable,
                states_explored=search.states_explored,
            )
        )
    return result


def fig1_nonminimality_certificate() -> dict[str, int]:
    """Per-exception-pair excess hops of the Figure 1 algorithm.

    All four cycle messages must show strictly positive slack (the hub
    relay reaches each ``D_i`` in two hops), which certifies the Cyclic
    Dependency algorithm as nonminimal -- consistent with Theorem 3, since
    it *does* have an unreachable cycle.
    """
    from repro.core.cyclic_dependency import build_cyclic_dependency_network

    cdn = build_cyclic_dependency_network()
    alg: RoutingAlgorithm = cdn.algorithm
    slack = minimality_slack(alg, list(cdn.message_pairs.values()))
    return {f"{s}->{d}": v for (s, d), v in slack.items()}
