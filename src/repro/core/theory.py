"""The Theorem 1 timing argument, in closed form.

An independent, lightweight cross-check of the exhaustive search: model the
simple (no transient in-ring blocking) deadlock-formation schedules
analytically and decide feasibility by enumerating injection orders and
bounded gaps.

Timing model (matches the engine's semantics, validated by tests): a
message injected at cycle ``t`` whose path is ``cs`` + ``d`` approach
channels + ring channels acquires its ring-entry channel at ``t + 1 + d``,
needs its blocked channel at ``t + 1 + d + hold``, and (at its minimum
length ``L = hold``) releases ``cs`` at ``t + hold``.  A deadlock following
Definition 6 requires, for every message ``i`` with cycle successor
``next(i)``:

    ``t_next + 1 + d_next  <=  t_i + 1 + d_i + hold_i``

(the successor's entry channel must be occupied no later than the moment
``i``'s header asks for it; equality is fine because simultaneous requests
are resolved adversarially), subject to ``cs`` serialisation:

    ``t_{sigma(k+1)}  >=  t_{sigma(k)} + L_{sigma(k)}``.

:func:`analytic_schedule_feasible` decides whether any injection order and
gap assignment satisfies all constraints.  It deliberately models only the
schedules of Theorem 1's main argument -- messages proceed unimpeded from
``cs`` to their blocking point -- so it is a *sound* deadlock finder but
not complete (the paper's own proof separately dismisses transient-blocking
schedules; the exhaustive search covers them).  The experiments assert:
analytic-feasible implies search-reachable, and for the Figure 1 family the
two verdicts coincide.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.core.specs import CycleMessageSpec


@dataclass
class Theorem1Timing:
    """Feasibility verdict plus the narrative the paper's proof gives."""

    feasible: bool
    schedule: dict[str, int] | None  # label -> injection cycle, when feasible
    order_constraints: list[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"analytic deadlock schedule feasible: {self.feasible}"]
        if self.schedule:
            lines.append(
                "schedule: "
                + ", ".join(f"{tag}@{t}" for tag, t in sorted(self.schedule.items(), key=lambda kv: kv[1]))
            )
        lines.extend(self.order_constraints)
        return "\n".join(lines)


def _constraints_ok(
    specs: Sequence[CycleMessageSpec], times: Sequence[int]
) -> bool:
    """All Definition-6 blocking deadlines met for the given injection times."""
    r = len(specs)
    for i in range(r):
        j = (i + 1) % r
        lhs = times[j] + 1 + specs[j].approach_len
        rhs = times[i] + 1 + specs[i].approach_len + specs[i].hold_len
        if lhs > rhs:
            return False
    return True


def analytic_schedule_feasible(
    specs: Sequence[CycleMessageSpec],
    *,
    max_gap: int = 8,
    lengths: Sequence[int] | None = None,
) -> Theorem1Timing:
    """Search injection orders x gaps for a Definition-6 deadlock schedule.

    ``specs`` are in cycle order (message ``i`` blocked by ``i+1``'s entry)
    and must all use the shared channel (serialisation applies to all).
    ``lengths`` default to the minimum (``hold_len``) per the paper's
    worst-case argument.
    """
    specs = list(specs)
    r = len(specs)
    if any(not s.uses_shared for s in specs):
        raise ValueError("analytic model covers all-shared configurations only")
    if lengths is None:
        lengths = [s.hold_len for s in specs]

    for order in itertools.permutations(range(r)):
        for gaps in itertools.product(range(max_gap + 1), repeat=r - 1):
            times = [0] * r
            t = 0
            for k, idx in enumerate(order):
                if k > 0:
                    t += lengths[order[k - 1]] + gaps[k - 1]
                times[idx] = t
            if _constraints_ok(specs, times):
                schedule = {specs[i].label or f"M{i+1}": times[i] for i in range(r)}
                return Theorem1Timing(feasible=True, schedule=schedule)
    return Theorem1Timing(feasible=False, schedule=None)


def earliest_blocking_analysis(specs: Sequence[CycleMessageSpec]) -> list[str]:
    """The paper's proof narrative: who must be injected before whom.

    Message ``i+1`` must occupy its entry channel no later than message
    ``i`` arrives at it, giving the slack
    ``slack = (d_i + hold_i) - d_{i+1}`` cycles by which ``i+1`` may be
    injected *after* ``i``.  But the shared channel serialises injections:
    starting after ``i`` means starting at least ``L_i = hold_i`` cycles
    after it.  When ``slack < L_i`` the only option is to inject ``i+1``
    *before* ``i`` -- exactly how Theorem 1's proof derives "M2 must be
    injected before M1" and "M4 before M3" on Figure 1.
    """
    out: list[str] = []
    r = len(specs)
    for i in range(r):
        j = (i + 1) % r
        slack = specs[i].approach_len + specs[i].hold_len - specs[j].approach_len
        min_sep = specs[i].hold_len  # minimum length of message i
        li = specs[i].label or f"M{i+1}"
        lj = specs[j].label or f"M{j+1}"
        if slack < min_sep:
            out.append(
                f"{lj} must be injected before {li} "
                f"(slack {slack} < cs occupancy {min_sep})"
            )
        else:
            out.append(
                f"{lj} may follow {li} through cs (slack {slack} >= {min_sep})"
            )
    return out
