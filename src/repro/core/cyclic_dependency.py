"""The Figure 1 network and the Cyclic Dependency routing algorithm (Sec. 4).

Reconstruction (the source figure is an unreadable scan; geometry is derived
from the prose of Theorem 1's proof -- see DESIGN.md item 3.1):

* Hub node ``N*`` with bidirectional links to every other node; every
  ordinary message routes ``source -> N* -> destination`` (one relay hop),
  and ``N*`` itself sends directly.
* Four exception pairs ``(Src, D1) .. (Src, D4)``: the message crosses the
  shared channel ``cs = Src -> N*``, walks a private approach chain to its
  entry node ``P_i`` on the 14-channel ring, and follows the ring to ``D_i``
  *through* ``D_{i-1}``:

  - ring, in travel order:
    ``P1, D4, X1, P2, D1, X2, X3, P3, D2, X4, P4, D3, X5, X6`` (wraps to P1);
  - ``M1 = Src->D1`` enters at ``P1`` via ``N* -> A1 -> P1``
    (2 channels from ``cs``), holds 3 ring channels, blocked at ``P2 -> D1``;
  - ``M2 = Src->D2`` enters at ``P2`` via ``N* -> B1 -> B2 -> P2``
    (3 channels), holds 4, blocked at ``P3 -> D2``;
  - ``M3 = Src->D3`` enters at ``P3`` via ``N* -> A3 -> P3`` (2 channels),
    holds 3, blocked at ``P4 -> D3``;
  - ``M4 = Src->D4`` enters at ``P4`` via ``N* -> B3 -> B4 -> P4``
    (3 channels), holds 4, blocked at ``P1 -> D4``.

These counts are exactly Theorem 1's: "M2 and M4 must hold four channels,
and messages M1 and M3 must hold three channels...  M2 and M4 use three
channels from [cs] to the cycle, while M1 and M3 use only two."

The routing function is a genuine ``R: C x N -> C`` (Definition 2): at
``N*`` the output depends on whether the message arrived on ``cs`` -- that
input-channel dependence is what lets the cycle messages leave the hub
relay pattern, and is why Corollary 1 (no unreachable cycles for
``N x N -> C`` functions) does not apply.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.state import CheckerMessage
from repro.routing.base import RoutingAlgorithm
from repro.routing.table import TableRouting
from repro.topology.channels import Channel, NodeId
from repro.topology.network import Network

#: Ring nodes in travel (dependency) order.
RING_ORDER: tuple[str, ...] = (
    "P1", "D4", "X1", "P2", "D1", "X2", "X3", "P3", "D2", "X4", "P4", "D3", "X5", "X6",
)

#: The four exception messages: tag -> (dest, approach chain from N*, min length)
FIG1_MESSAGES: dict[str, dict] = {
    "M1": {"dest": "D1", "approach": ("A1",), "entry": "P1", "min_length": 3},
    "M2": {"dest": "D2", "approach": ("B1", "B2"), "entry": "P2", "min_length": 4},
    "M3": {"dest": "D3", "approach": ("A3",), "entry": "P3", "min_length": 3},
    "M4": {"dest": "D4", "approach": ("B3", "B4"), "entry": "P4", "min_length": 4},
}


@dataclass
class CyclicDependencyNetwork:
    """The realised Figure 1 system."""

    network: Network
    routing: TableRouting
    cycle_channels: list[Channel]  # the 14 ring channels, travel order
    shared_channel: Channel  # cs = Src -> N*
    message_pairs: dict[str, tuple[NodeId, NodeId]]  # tag -> (src, dst)

    @property
    def algorithm(self) -> RoutingAlgorithm:
        return RoutingAlgorithm(self.routing)

    def checker_messages(
        self, lengths: dict[str, int] | None = None
    ) -> list[CheckerMessage]:
        """The four cycle messages, checker-ready, at minimum lengths by default."""
        alg = self.algorithm
        out: list[CheckerMessage] = []
        for tag, info in FIG1_MESSAGES.items():
            src, dst = self.message_pairs[tag]
            length = (lengths or {}).get(tag, info["min_length"])
            out.append(CheckerMessage.from_channels(alg.path(src, dst), length, tag=tag))
        return out


def _ring_walk(entry: str, dest: str) -> list[str]:
    """Ring nodes from ``entry`` (inclusive) to ``dest`` (inclusive), travel order."""
    n = len(RING_ORDER)
    i = RING_ORDER.index(entry)
    walk = [RING_ORDER[i]]
    while walk[-1] != dest:
        i = (i + 1) % n
        walk.append(RING_ORDER[i])
        if len(walk) > n + 1:  # pragma: no cover - defensive
            raise AssertionError("ring walk failed to terminate")
    return walk


def build_cyclic_dependency_network(*, include_reverse_links: bool = True) -> CyclicDependencyNetwork:
    """Construct the Figure 1 network with its full routing algorithm.

    ``include_reverse_links`` adds the unused reverse direction of the ring
    and approach links (the paper notes all channels are bidirectional; the
    reverse directions carry no route and hence never appear in the CDG).
    """
    net = Network("fig1-cyclic-dependency")
    hub = "N*"
    approach_nodes = [n for info in FIG1_MESSAGES.values() for n in info["approach"]]
    all_nodes = ["Src", hub, *RING_ORDER, *approach_nodes]
    for node in all_nodes:
        net.add_node(node)

    # shared channel cs and hub links (bidirectional, both directions used)
    shared = net.add_channel("Src", hub, label="cs")
    net.add_channel(hub, "Src", label="hub->Src")
    for node in all_nodes:
        if node in ("Src", hub):
            continue
        net.add_channel(hub, node, label=f"hub->{node}")
        net.add_channel(node, hub, label=f"{node}->hub")

    # ring channels (travel direction; reverse optionally present, unused)
    n = len(RING_ORDER)
    ring: list[Channel] = []
    for j in range(n):
        a, b = RING_ORDER[j], RING_ORDER[(j + 1) % n]
        ring.append(net.add_channel(a, b, label=f"ring:{a}->{b}"))
        if include_reverse_links:
            net.add_channel(b, a, label=f"ringrev:{b}->{a}")

    # approach chains N* -> ... -> P_i (first hop uses the hub link)
    for tag, info in FIG1_MESSAGES.items():
        chain = [hub, *info["approach"], info["entry"]]
        # hub -> first approach node already exists as a hub link
        for a, b in zip(chain[1:], chain[2:]):
            net.add_channel(a, b, label=f"ap:{a}->{b}")
            if include_reverse_links:
                net.add_channel(b, a, label=f"aprev:{b}->{a}")

    # ------------------------------------------------------------------
    # routing table: hub relay everywhere, except the four cycle messages
    # ------------------------------------------------------------------
    node_paths: dict[tuple[NodeId, NodeId], list[NodeId]] = {}
    exceptions: dict[str, tuple[NodeId, NodeId]] = {}
    for tag, info in FIG1_MESSAGES.items():
        dest = info["dest"]
        chain = ["Src", hub, *info["approach"], info["entry"]]
        chain += _ring_walk(info["entry"], dest)[1:]
        node_paths[("Src", dest)] = chain
        exceptions[tag] = ("Src", dest)

    for u in all_nodes:
        for v in all_nodes:
            if u == v or (u, v) in node_paths:
                continue
            if u == hub:
                node_paths[(u, v)] = [hub, v]
            elif v == hub:
                node_paths[(u, v)] = [u, hub]
            else:
                node_paths[(u, v)] = [u, hub, v]

    routing = TableRouting.from_node_paths(net, node_paths, name="CyclicDependency")
    return CyclicDependencyNetwork(
        network=net,
        routing=routing,
        cycle_channels=ring,
        shared_channel=shared,
        message_pairs=exceptions,
    )
