"""The paper's constructions and theory, executable.

* :mod:`specs` -- parametric builder for shared-channel cycle networks
  (the geometry family behind Figures 1, 2, 3 and Section 6).
* :mod:`cyclic_dependency` -- the Figure 1 network and the full Cyclic
  Dependency routing algorithm (Section 4, Theorem 1).
* :mod:`two_message` -- Figure 2 / Theorem 4 configurations.
* :mod:`three_message` -- Figure 3(a)--(f) / Theorem 5 configurations.
* :mod:`within_cycle` -- Theorem 2 configurations (shared channel inside
  the cycle) and Corollary 1--3 baselines.
* :mod:`generalized` -- the Section 6 family ``Gen(m)``.
* :mod:`conditions` -- the eight Theorem 5 conditions, executable.
* :mod:`theory` -- the closed-form Theorem 1 timing argument.
* :mod:`minimal_search` -- Theorem 3: minimal-routing configuration sweep.
"""

from repro.core.specs import (
    CycleMessageSpec,
    SharedCycleConstruction,
    build_shared_cycle,
)
from repro.core.cyclic_dependency import (
    CyclicDependencyNetwork,
    build_cyclic_dependency_network,
    FIG1_MESSAGES,
)
from repro.core.two_message import build_two_message_config, TWO_MESSAGE_DEFAULT
from repro.core.three_message import (
    ThreeMessageParams,
    build_three_message_config,
    FIG3_PANELS,
)
from repro.core.within_cycle import build_overlapping_ring, OverlapSpec
from repro.core.generalized import build_generalized, generalized_messages
from repro.core.conditions import (
    TheoremFiveInput,
    evaluate_conditions,
    theorem5_predicts_unreachable,
    ConditionReport,
)
from repro.core.theory import (
    Theorem1Timing,
    analytic_schedule_feasible,
    earliest_blocking_analysis,
)
from repro.core.minimal_search import sweep_minimal_configs, MinimalSweepResult
from repro.core.multi_message import (
    predicted_unreachable,
    run_four_message_sweep,
    split_shared_fig1,
    run_split_shared_experiment,
)

__all__ = [
    "CycleMessageSpec",
    "SharedCycleConstruction",
    "build_shared_cycle",
    "CyclicDependencyNetwork",
    "build_cyclic_dependency_network",
    "FIG1_MESSAGES",
    "build_two_message_config",
    "TWO_MESSAGE_DEFAULT",
    "ThreeMessageParams",
    "build_three_message_config",
    "FIG3_PANELS",
    "build_overlapping_ring",
    "OverlapSpec",
    "build_generalized",
    "generalized_messages",
    "TheoremFiveInput",
    "evaluate_conditions",
    "theorem5_predicts_unreachable",
    "ConditionReport",
    "Theorem1Timing",
    "analytic_schedule_feasible",
    "earliest_blocking_analysis",
    "sweep_minimal_configs",
    "MinimalSweepResult",
    "predicted_unreachable",
    "run_four_message_sweep",
    "split_shared_fig1",
    "run_split_shared_experiment",
]
