"""Replay checker witnesses on the flit-level simulator.

A deadlock witness found by the abstract search is only trustworthy if the
concrete simulator, run under the schedule the witness describes, reproduces
the same deadlock.  This module extracts (injection times, stall cycles,
arbitration decisions) from a witness and replays them through
:class:`repro.sim.engine.Simulator` -- the cross-validation backbone used by
the figure experiments and ``tests/test_cross_validation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.analysis.reachability import Witness
from repro.routing.base import RoutingFunction
from repro.sim.arbitration import ArbitrationPolicy, FifoArbitration
from repro.sim.engine import SimConfig, Simulator, SimResult
from repro.sim.injection import StallSchedule
from repro.sim.message import MessageSpec, MessageState
from repro.topology.channels import Channel
from repro.topology.network import Network


@dataclass
class ReplaySchedule:
    """Concrete schedule extracted from a witness."""

    specs: list[MessageSpec]
    stalls: StallSchedule
    winners: dict[tuple[int, int], int]  # (cycle, cid) -> mid


class ScriptedArbitration(ArbitrationPolicy):
    """Arbitration that follows a (cycle, channel) -> winner script.

    Unscripted conflicts fall back to FIFO.  A scripted winner that is not
    among the requesters raises -- replay divergence must fail loudly.
    """

    def __init__(self, winners: dict[tuple[int, int], int]) -> None:
        self.winners = winners
        self._fifo = FifoArbitration()

    def choose(
        self, channel: Channel, requesters: Sequence[MessageState], cycle: int
    ) -> MessageState:
        key = (cycle, channel.cid)
        if key in self.winners:
            want = self.winners[key]
            for m in requesters:
                if m.mid == want:
                    return m
            raise RuntimeError(
                f"replay divergence: scripted winner {want} not among requesters "
                f"for channel {channel!r} at cycle {cycle}"
            )
        return self._fifo.choose(channel, requesters, cycle)


def witness_to_schedule(witness: Witness, *, src_dst: Sequence[tuple] | None = None) -> ReplaySchedule:
    """Extract a concrete simulator schedule from a witness.

    ``src_dst`` supplies (src, dst) node pairs per message for building
    :class:`MessageSpec` (the checker itself only knows channel-id paths);
    when omitted, endpoints are unavailable and this function raises.
    """
    if src_dst is None:
        raise ValueError("src_dst endpoints are required to build MessageSpecs")
    spec = witness.spec
    n = len(spec.messages)
    inject_time: dict[int, int] = {}
    stall_cycles: dict[int, list[int]] = {}
    winners: dict[tuple[int, int], int] = {}

    for t, actions in enumerate(witness.steps):
        prev_state = witness.states[t - 1] if t > 0 else spec.initial_state()
        for i, act in enumerate(actions):
            msg = spec.messages[i]
            if act == "try":
                inject_time[i] = t
                winners[(t, msg.path[0])] = i
            elif act == "adv":
                h = prev_state[i][0]
                if 1 <= h <= msg.k - 1:
                    winners[(t, msg.path[h])] = i
            elif act == "stall":
                stall_cycles.setdefault(i, []).append(t)

    specs: list[MessageSpec] = []
    # a message that never injected during the witness is not part of the
    # deadlock: schedule it after the witness horizon so it cannot contend
    # with the scripted prefix (the detector fires before it moves)
    horizon = len(witness.steps)
    for i in range(n):
        src, dst = src_dst[i]
        specs.append(
            MessageSpec(
                mid=i,
                src=src,
                dst=dst,
                length=spec.messages[i].length,
                inject_time=inject_time.get(i, horizon),
                tag=spec.messages[i].tag,
            )
        )
    return ReplaySchedule(
        specs=specs, stalls=StallSchedule(stall_cycles), winners=winners
    )


def replay_witness(
    witness: Witness,
    network: Network,
    routing: RoutingFunction,
    src_dst: Sequence[tuple],
    *,
    max_cycles: int = 10_000,
) -> SimResult:
    """Run the flit-level simulator under the witness's schedule.

    Returns the :class:`SimResult`; callers assert ``result.deadlocked``.
    """
    schedule = witness_to_schedule(witness, src_dst=src_dst)
    sim = Simulator(
        network,
        routing,
        schedule.specs,
        config=SimConfig(max_cycles=max_cycles),
        arbitration=ScriptedArbitration(schedule.winners),
        stalls=schedule.stalls,
    )
    return sim.run()
