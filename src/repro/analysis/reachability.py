"""BFS reachability search for wormhole deadlock configurations.

Explores every state reachable from the empty network under the adversary
described in :mod:`repro.analysis.state`.  Terminates because the state
space is finite (header positions, flit counts and budgets are all
bounded); a configurable state cap turns pathological blow-ups into loud
:class:`SearchLimitExceeded` errors instead of silently-partial answers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.analysis.state import SystemSpec, SystemState


class SearchLimitExceeded(RuntimeError):
    """The search hit its state cap before finishing -- result unknown."""


@dataclass
class Witness:
    """A replayable path from the empty network to a deadlock state.

    ``steps[t]`` is the tuple of per-message actions taken in cycle ``t``;
    ``states[t]`` is the state *after* that cycle (``states[-1]`` is the
    deadlock state).  ``deadlocked`` lists the message indices on the
    wait-for cycle.
    """

    spec: SystemSpec
    steps: list[tuple[str, ...]]
    states: list[SystemState]
    deadlocked: tuple[int, ...]

    @property
    def num_cycles(self) -> int:
        return len(self.steps)

    def render(self) -> str:
        """Human-readable cycle-by-cycle account of the deadlock formation."""
        tags = [m.tag or f"msg{i}" for i, m in enumerate(self.spec.messages)]
        lines = [f"deadlock witness over {self.num_cycles} cycles; "
                 f"cycle members: {', '.join(tags[i] for i in self.deadlocked)}"]
        for t, (acts, st) in enumerate(zip(self.steps, self.states)):
            parts = []
            for i, (act, ms) in enumerate(zip(acts, st)):
                h, inj, cons, bud = ms
                parts.append(f"{tags[i]}:{act}(h={h},f={inj - cons},b={bud})")
            lines.append(f"t={t:<3} " + "  ".join(parts))
        return "\n".join(lines)


@dataclass
class SearchResult:
    """Outcome of :func:`search_deadlock`."""

    deadlock_reachable: bool
    witness: Witness | None
    states_explored: int
    spec: SystemSpec = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def is_false_resource_cycle(self) -> bool:
        """Convenience alias: unreachable deadlock == false resource cycle."""
        return not self.deadlock_reachable


def _symmetry_canonicalizer(spec: SystemSpec):
    """Canonical-form function exploiting identical message types.

    Messages with the same (path, length, initial budget) are
    interchangeable: permuting their per-message states maps reachable
    states to reachable states and preserves deadlock.  Canonicalising by
    sorting within each equivalence class can shrink the visited set
    dramatically when copies are present (the Theorem 1 "more than four
    messages" searches).  Returns ``None`` when every message is unique.
    """
    groups: dict[tuple, list[int]] = {}
    for i, (m, b) in enumerate(zip(spec.messages, spec.budgets)):
        groups.setdefault((m.path, m.length, b), []).append(i)
    classes = [idxs for idxs in groups.values() if len(idxs) > 1]
    if not classes:
        return None

    def canon(state: SystemState) -> SystemState:
        out = list(state)
        for idxs in classes:
            vals = sorted(out[i] for i in idxs)
            for i, v in zip(idxs, vals):
                out[i] = v
        return tuple(out)

    return canon


def search_deadlock(
    spec: SystemSpec,
    *,
    max_states: int = 2_000_000,
    find_witness: bool = True,
    symmetry_reduction: bool | None = None,
) -> SearchResult:
    """Decide whether any reachable state of ``spec`` is a deadlock.

    Parameters
    ----------
    spec:
        The scenario (messages, paths, lengths, stall budgets).
    max_states:
        Hard cap on distinct states explored; exceeding it raises
        :class:`SearchLimitExceeded` (never a silent partial verdict).
    find_witness:
        When true, parent pointers are kept so a full
        :class:`Witness` trace can be reconstructed.
    symmetry_reduction:
        Deduplicate states up to permutation of identical message types
        (same path, length and budget).  Sound and complete for the
        reachability verdict, but witness action rows may name a different
        member of an identical pair than a non-reduced search would, so it
        defaults to on only when ``find_witness`` is false.

    Notes
    -----
    BFS order means a returned witness has the minimum number of cycles
    over all deadlock formations -- handy for reports and replay tests.
    """
    if symmetry_reduction is None:
        symmetry_reduction = not find_witness
    canon = _symmetry_canonicalizer(spec) if symmetry_reduction else None

    init = spec.initial_state()
    visited: set[SystemState] = {canon(init) if canon else init}
    parent: dict[SystemState, tuple[SystemState, tuple[str, ...]]] = {}
    queue: deque[SystemState] = deque([init])

    dead = spec.deadlocked_set(init)
    if dead:  # pragma: no cover - empty network can't deadlock
        raise AssertionError("initial state deadlocked; spec is malformed")

    while queue:
        state = queue.popleft()
        for nxt, actions in spec.successors(state):
            key = canon(nxt) if canon else nxt
            if key in visited:
                continue
            visited.add(key)
            if len(visited) > max_states:
                raise SearchLimitExceeded(
                    f"exceeded {max_states} states; tighten the scenario or raise the cap"
                )
            if find_witness:
                parent[nxt] = (state, actions)
            dead = spec.deadlocked_set(nxt)
            if dead:
                witness = None
                if find_witness:
                    witness = _rebuild_witness(spec, parent, init, nxt, dead)
                return SearchResult(
                    deadlock_reachable=True,
                    witness=witness,
                    states_explored=len(visited),
                    spec=spec,
                )
            queue.append(nxt)

    return SearchResult(
        deadlock_reachable=False,
        witness=None,
        states_explored=len(visited),
        spec=spec,
    )


def _rebuild_witness(
    spec: SystemSpec,
    parent: dict[SystemState, tuple[SystemState, tuple[str, ...]]],
    init: SystemState,
    final: SystemState,
    dead: tuple[int, ...],
) -> Witness:
    steps: list[tuple[str, ...]] = []
    states: list[SystemState] = []
    cur = final
    while cur != init:
        prev, actions = parent[cur]
        steps.append(actions)
        states.append(cur)
        cur = prev
    steps.reverse()
    states.reverse()
    return Witness(spec=spec, steps=steps, states=states, deadlocked=dead)
