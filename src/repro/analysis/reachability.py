"""BFS reachability search for wormhole deadlock configurations.

Explores every state reachable from the empty network under the adversary
described in :mod:`repro.analysis.state`.  Terminates because the state
space is finite (header positions, flit counts and budgets are all
bounded); a configurable state cap turns pathological blow-ups into loud
:class:`SearchLimitExceeded` errors instead of silently-partial answers.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field

from repro.analysis.state import SystemSpec, SystemState

# imported eagerly (not inside _search_fast) so the engine module's load
# cost lands at import time, outside any timed search; fastpath itself
# imports this module's SearchLimitExceeded lazily, so there is no cycle
from repro.analysis.fastpath import engine_for as _engine_for
from repro.analysis.fastpath import counters_snapshot as _counters_snapshot
from repro.analysis.fastpath import peek_engine as _peek_fast

# same reasoning for the vector engine (and its numpy import): load cost
# lands at import time so benchmark setup phases absorb it untimed
from repro.analysis.vectorpath import counters_snapshot as _v_counters_snapshot
from repro.analysis.vectorpath import peek_engine as _peek_vector
from repro.analysis.vectorpath import vector_engine_for as _vector_engine_for

# and for the kernel engine: the module itself is dependency-free (its
# numba/cc acceleration resolves lazily per search, never at import)
from repro.analysis.kernelpath import counters_snapshot as _k_counters_snapshot
from repro.analysis.kernelpath import kernel_available as _kernel_available
from repro.analysis.kernelpath import kernel_engine_for as _kernel_engine_for
from repro.analysis.kernelpath import peek_engine as _peek_kernel
from repro.obs import get as _obs_get

#: every name accepted by ``engine=`` / ``REPRO_SEARCH_ENGINE``
SEARCH_ENGINES = ("fast", "vector", "kernel", "auto", "reference")

#: how often ``auto`` resolved to each concrete engine (telemetry reads
#: these via snapshot deltas, like the per-engine COUNTERS dicts)
AUTO_COUNTERS: dict[str, int] = {
    "search.engine.auto.kernel": 0,
    "search.engine.auto.vector": 0,
    "search.engine.auto.fast": 0,
}


def resolve_engine(engine: str | None, spec: SystemSpec | None = None) -> str:
    """The concrete engine a search request will run on.

    ``None`` defers to ``REPRO_SEARCH_ENGINE`` (default ``fast``).
    ``auto`` picks the kernel engine when an accelerated backend (numba or
    a C compiler) is available, else the vector engine when ``spec`` is
    vectorizable, else the fast engine -- and records the outcome in
    :data:`AUTO_COUNTERS`.  Unknown names raise :class:`ValueError`.
    """
    eng = engine or os.environ.get("REPRO_SEARCH_ENGINE", "fast")
    if eng not in SEARCH_ENGINES:
        raise ValueError(
            f"unknown search engine {eng!r}; use "
            "'fast', 'vector', 'kernel', 'auto' or 'reference'"
        )
    if eng == "auto":
        if _kernel_available():
            eng = "kernel"
        elif spec is not None and _vector_engine_for(spec).vectorizable:
            eng = "vector"
        else:
            eng = "fast"
        AUTO_COUNTERS[f"search.engine.auto.{eng}"] += 1
    return eng


class SearchLimitExceeded(RuntimeError):
    """The search hit its state cap before finishing -- result unknown."""


@dataclass
class Witness:
    """A replayable path from the empty network to a deadlock state.

    ``steps[t]`` is the tuple of per-message actions taken in cycle ``t``;
    ``states[t]`` is the state *after* that cycle (``states[-1]`` is the
    deadlock state).  ``deadlocked`` lists the message indices on the
    wait-for cycle.
    """

    spec: SystemSpec
    steps: list[tuple[str, ...]]
    states: list[SystemState]
    deadlocked: tuple[int, ...]

    @property
    def num_cycles(self) -> int:
        return len(self.steps)

    def render(self) -> str:
        """Human-readable cycle-by-cycle account of the deadlock formation."""
        tags = [m.tag or f"msg{i}" for i, m in enumerate(self.spec.messages)]
        lines = [f"deadlock witness over {self.num_cycles} cycles; "
                 f"cycle members: {', '.join(tags[i] for i in self.deadlocked)}"]
        for t, (acts, st) in enumerate(zip(self.steps, self.states)):
            parts = []
            for i, (act, ms) in enumerate(zip(acts, st)):
                h, inj, cons, bud = ms
                parts.append(f"{tags[i]}:{act}(h={h},f={inj - cons},b={bud})")
            lines.append(f"t={t:<3} " + "  ".join(parts))
        return "\n".join(lines)


@dataclass
class SearchResult:
    """Outcome of :func:`search_deadlock`."""

    deadlock_reachable: bool
    witness: Witness | None
    states_explored: int
    spec: SystemSpec | None = field(repr=False, default=None)
    #: rule code of the static certificate that decided (or confirmed) the
    #: verdict, e.g. ``"CRT001"``; ``None`` when the BFS decided alone.
    #: ``states_explored == 0`` iff the certificate alone decided.
    certificate: str | None = None

    @property
    def is_false_resource_cycle(self) -> bool:
        """Convenience alias: unreachable deadlock == false resource cycle."""
        return not self.deadlock_reachable


def _symmetry_canonicalizer(spec: SystemSpec):
    """Canonical-form function exploiting identical message types.

    Messages with the same (path, length, initial budget) are
    interchangeable: permuting their per-message states maps reachable
    states to reachable states and preserves deadlock.  Canonicalising by
    sorting within each equivalence class can shrink the visited set
    dramatically when copies are present (the Theorem 1 "more than four
    messages" searches).  Returns ``None`` when every message is unique.
    """
    groups: dict[tuple, list[int]] = {}
    for i, (m, b) in enumerate(zip(spec.messages, spec.budgets)):
        groups.setdefault((m.path, m.length, b), []).append(i)
    classes = [idxs for idxs in groups.values() if len(idxs) > 1]
    if not classes:
        return None

    if all(len(idxs) == 2 for idxs in classes):
        # identical messages overwhelmingly come in pairs (the "add a copy"
        # searches); canonicalizing is then a compare-and-swap per pair,
        # with no allocation when the state is already canonical
        pairs = [(idxs[0], idxs[1]) for idxs in classes]

        def canon(state: SystemState) -> SystemState:
            for i, j in pairs:
                if state[j] < state[i]:
                    out = list(state)
                    for a, b in pairs:
                        if out[b] < out[a]:
                            out[a], out[b] = out[b], out[a]
                    return tuple(out)
            return state

        return canon

    def canon(state: SystemState) -> SystemState:
        out = list(state)
        for idxs in classes:
            vals = sorted([out[i] for i in idxs])
            for i, v in zip(idxs, vals):
                out[i] = v
        return tuple(out)

    return canon


def search_deadlock(
    spec: SystemSpec,
    *,
    max_states: int = 2_000_000,
    find_witness: bool = True,
    symmetry_reduction: bool | None = None,
    engine: str | None = None,
    jobs: int = 1,
    certificates: str | None = None,
) -> SearchResult:
    """Decide whether any reachable state of ``spec`` is a deadlock.

    Parameters
    ----------
    spec:
        The scenario (messages, paths, lengths, stall budgets).
    max_states:
        Hard cap on distinct states explored; exceeding it raises
        :class:`SearchLimitExceeded` (never a silent partial verdict).
    find_witness:
        When true, parent pointers are kept so a full
        :class:`Witness` trace can be reconstructed.
    symmetry_reduction:
        Deduplicate states up to permutation of identical message types
        (same path, length and budget).  Sound and complete for the
        reachability verdict, but witness action rows may name a different
        member of an identical pair than a non-reduced search would, so it
        defaults to on only when ``find_witness`` is false.
    engine:
        ``"fast"`` (default) expands states through the table-driven
        :class:`~repro.analysis.fastpath.FastEngine`; ``"vector"``
        expands whole BFS levels at a time as numpy blocks through
        :class:`~repro.analysis.vectorpath.VectorEngine`; ``"kernel"``
        runs the whole search as one compiled fused loop through
        :class:`~repro.analysis.kernelpath.KernelEngine` (numba / C
        backend when available, interpreted otherwise); ``"auto"`` picks
        kernel when accelerated, else vector when the spec is
        vectorizable, else fast (see :func:`resolve_engine`);
        ``"reference"`` keeps the original :meth:`SystemSpec.successors`
        implementation as a cross-checking oracle.  All engines produce
        identical verdicts, ``states_explored`` counts and witnesses
        (pinned by ``tests/test_fastpath_differential.py``,
        ``tests/test_vectorpath_differential.py`` and
        ``tests/test_kernelpath_differential.py``).  The
        ``REPRO_SEARCH_ENGINE`` environment variable overrides the
        default for whole processes (benchmarks, CI A/B runs).
    jobs:
        Worker processes for frontier-parallel expansion (verdict-only
        searches).  ``1`` means serial; witness and reference searches
        ignore it (a witness needs the whole parent map in one process).
    certificates:
        ``"on"`` (default) consults the static linter first: when
        :func:`repro.lint.certificates.spec_certificate` decides the
        verdict, the BFS is skipped entirely (``states_explored == 0``,
        ``certificate`` set to the rule code).  Reachable certificates
        short-circuit even with ``find_witness=True``: CRT005's stall-free
        injection schedule is driven through ``SystemSpec.successors`` into
        a validated :class:`Witness`
        (:func:`repro.lint.witness.certificate_witness`); the BFS runs only
        if that construction fails.  Constructed witnesses are valid
        replayable traces but -- unlike BFS witnesses -- not guaranteed to
        be minimum-cycle.  ``"off"`` disables the pre-pass;
        ``"check"`` runs *both* and raises
        :class:`~repro.lint.certificates.CertificateMismatch` if they
        disagree (the cross-checking analogue of the fast/reference
        engine pair).  The ``REPRO_STATIC_CERTIFICATES`` environment
        variable supplies the default.

    Notes
    -----
    BFS order means a search-produced witness has the minimum number of
    cycles over all deadlock formations -- handy for reports and replay
    tests.  Certificate-constructed witnesses follow the Theorem-2
    schedule instead, which may take more cycles.
    """
    tel = _obs_get()
    if tel is None:
        # telemetry disabled (the default): straight to the search with
        # zero additional work beyond the one env lookup in obs.get()
        return _search_deadlock_impl(
            spec,
            max_states=max_states,
            find_witness=find_witness,
            symmetry_reduction=symmetry_reduction,
            engine=engine,
            jobs=jobs,
            certificates=certificates,
        )

    resolved = engine or os.environ.get("REPRO_SEARCH_ENGINE", "fast")
    before = {
        **_counters_snapshot(),
        **_v_counters_snapshot(),
        **_k_counters_snapshot(),
        **AUTO_COUNTERS,
    }
    # the vector engine's phase timers are cumulative (reset_profile is
    # owned by scripts/profile_hotpaths.py), so meter this search by delta
    veng_before = _peek_vector(spec)
    vphases_before = (
        dict(veng_before.phase_seconds) if veng_before is not None else {}
    )
    with tel.span(
        "search.deadlock",
        engine=resolved,
        jobs=jobs,
        find_witness=find_witness,
        messages=len(spec.messages),
    ) as sp:
        t0 = time.perf_counter()
        result = _search_deadlock_impl(
            spec,
            max_states=max_states,
            find_witness=find_witness,
            symmetry_reduction=symmetry_reduction,
            engine=engine,
            jobs=jobs,
            certificates=certificates,
        )
        dur = time.perf_counter() - t0
        # snapshot before telemetry's own engine_for below
        after = {
            **_counters_snapshot(),
            **_v_counters_snapshot(),
            **_k_counters_snapshot(),
            **AUTO_COUNTERS,
        }
        sp.set(
            verdict="reachable" if result.deadlock_reachable else "deadlock-free",
            states_explored=result.states_explored,
            certificate=result.certificate,
        )
        if dur > 0 and result.states_explored:
            sp.set(states_per_sec=round(result.states_explored / dur, 1))
        if result.witness is not None:
            sp.set(frontier_depth=result.witness.num_cycles)
        elif resolved == "fast" and jobs <= 1 and result.states_explored:
            depth = _engine_for(spec).last_search_depth
            if depth is not None:
                sp.set(frontier_depth=depth)
        elif resolved == "vector" and result.states_explored:
            veng = _vector_engine_for(spec)
            if veng.last_search_depth is not None:
                sp.set(frontier_depth=veng.last_search_depth)
            if veng.last_peak_frontier:
                sp.set(peak_frontier=veng.last_peak_frontier)
        elif resolved == "kernel" and result.states_explored:
            keng = _kernel_engine_for(spec)
            if keng.last_search_depth is not None:
                sp.set(frontier_depth=keng.last_search_depth)
            if keng.last_backend is not None:
                sp.set(kernel_backend=keng.last_backend)
        # per-phase profile + level widths from whichever engine ran
        # (peeked, so the engine-cache counters stay undisturbed)
        phases: dict[str, float] = {}
        widths: list[int] = []
        if resolved == "fast" and jobs <= 1:
            feng = _peek_fast(spec)
            if feng is not None:
                phases = feng.phase_seconds
                widths = feng.last_level_widths
        elif resolved == "vector":
            veng2 = _peek_vector(spec)
            if veng2 is not None:
                phases = {
                    p: s - vphases_before.get(p, 0.0)
                    for p, s in veng2.phase_seconds.items()
                }
                widths = veng2.last_level_widths
        elif resolved == "kernel":
            keng2 = _peek_kernel(spec)
            if keng2 is not None:
                phases = keng2.phase_seconds
        if result.states_explored:
            for phase, seconds in phases.items():
                if seconds > 0:
                    tel.incr(f"{resolved}path.phase.{phase}_s", round(seconds, 6))
            for width in widths:
                tel.observe("search.level.width", width, engine=resolved)
            if dur > 0:
                tel.observe(
                    "search.states_per_sec",
                    result.states_explored / dur,
                    engine=resolved,
                )
        tel.incr("search.calls")
        tel.incr("search.states_explored", result.states_explored)
        if result.certificate is not None and result.states_explored == 0:
            tel.incr("search.certificate_short_circuits")
            tel.event(
                "search.certificate_fastpath",
                code=result.certificate,
                deadlock_reachable=result.deadlock_reachable,
            )
        for name, value in after.items():
            delta = value - before.get(name, 0)
            if delta:
                tel.incr(name, delta)
    return result


def _search_deadlock_impl(
    spec: SystemSpec,
    *,
    max_states: int,
    find_witness: bool,
    symmetry_reduction: bool | None,
    engine: str | None,
    jobs: int,
    certificates: str | None,
) -> SearchResult:
    if symmetry_reduction is None:
        symmetry_reduction = not find_witness
    engine = resolve_engine(engine, spec)

    init = spec.initial_state()
    dead = spec.deadlocked_set(init)
    if dead:  # pragma: no cover - empty network can't deadlock
        raise AssertionError("initial state deadlocked; spec is malformed")

    # static-certificate pre-pass (lazy import: lint sits above analysis)
    from repro.lint.certificates import (
        CertificateMismatch,
        certificates_mode,
        spec_certificate,
    )

    cert_mode = certificates_mode(certificates)
    cert = spec_certificate(spec) if cert_mode != "off" else None
    if cert is not None and cert_mode == "on":
        if not cert.deadlock_reachable:
            return SearchResult(
                deadlock_reachable=False,
                witness=None,
                states_explored=0,
                spec=spec,
                certificate=cert.code,
            )
        if not find_witness:
            return SearchResult(
                deadlock_reachable=True,
                witness=None,
                states_explored=0,
                spec=spec,
                certificate=cert.code,
            )
        # reachable certificate with a witness requested: construct the
        # certificate's stall-free schedule directly (zero search states);
        # only a failed construction falls through to the BFS.
        from repro.lint.witness import certificate_witness

        wit = certificate_witness(cert, spec)
        if wit is not None:
            return SearchResult(
                deadlock_reachable=True,
                witness=wit,
                states_explored=0,
                spec=spec,
                certificate=cert.code,
            )

    if engine == "fast":
        result = _search_fast(
            spec,
            max_states=max_states,
            find_witness=find_witness,
            symmetry_reduction=symmetry_reduction,
            jobs=jobs,
        )
    elif engine == "vector":
        result = _search_vector(
            spec,
            max_states=max_states,
            find_witness=find_witness,
            symmetry_reduction=symmetry_reduction,
            jobs=jobs,
        )
    elif engine == "kernel":
        result = _search_kernel(
            spec,
            max_states=max_states,
            find_witness=find_witness,
            symmetry_reduction=symmetry_reduction,
            jobs=jobs,
        )
    else:
        result = _search_reference(
            spec,
            init,
            max_states=max_states,
            find_witness=find_witness,
            symmetry_reduction=symmetry_reduction,
        )

    if cert is not None:
        if cert_mode == "check" and result.deadlock_reachable != cert.deadlock_reachable:
            raise CertificateMismatch(
                f"static certificate {cert.code} says "
                f"{'reachable' if cert.deadlock_reachable else 'deadlock-free'} "
                f"but the search found the opposite "
                f"({result.states_explored} states explored)"
            )
        result.certificate = cert.code
    return result


def _search_reference(
    spec: SystemSpec,
    init: SystemState,
    *,
    max_states: int,
    find_witness: bool,
    symmetry_reduction: bool,
) -> SearchResult:
    """The original :meth:`SystemSpec.successors`-driven BFS (oracle engine)."""
    canon = _symmetry_canonicalizer(spec) if symmetry_reduction else None
    visited: set[SystemState] = {canon(init) if canon else init}
    parent: dict[SystemState, tuple[SystemState, tuple[str, ...]]] = {}
    queue: deque[SystemState] = deque([init])

    while queue:
        state = queue.popleft()
        for nxt, actions in spec.successors(state):
            key = canon(nxt) if canon else nxt
            if key in visited:
                continue
            visited.add(key)
            if len(visited) > max_states:
                raise SearchLimitExceeded(
                    f"exceeded {max_states} states; tighten the scenario or raise the cap"
                )
            if find_witness:
                parent[nxt] = (state, actions)
            dead = spec.deadlocked_set(nxt)
            if dead:
                witness = None
                if find_witness:
                    witness = _rebuild_witness(spec, parent, init, nxt, dead)
                return SearchResult(
                    deadlock_reachable=True,
                    witness=witness,
                    states_explored=len(visited),
                    spec=spec,
                )
            queue.append(nxt)

    return SearchResult(
        deadlock_reachable=False,
        witness=None,
        states_explored=len(visited),
        spec=spec,
    )


def _search_fast(
    spec: SystemSpec,
    *,
    max_states: int,
    find_witness: bool,
    symmetry_reduction: bool,
    jobs: int,
) -> SearchResult:
    """The optimized search paths."""
    engine_for = _engine_for

    if not find_witness:
        if jobs > 1:
            from repro.analysis.frontier import frontier_search

            reachable, explored = frontier_search(
                spec,
                jobs=jobs,
                max_states=max_states,
                symmetry_reduction=symmetry_reduction,
            )
        else:
            reachable, explored = engine_for(spec).search(
                max_states=max_states, symmetry_reduction=symmetry_reduction
            )
        return SearchResult(
            deadlock_reachable=reachable,
            witness=None,
            states_explored=explored,
            spec=spec,
        )

    # witness search: index-domain BFS with bare parent pointers; the
    # action rows are recovered for the states on the deadlock path only
    # (see FastEngine.search_witness), so witness searches run at nearly
    # verdict-search speed while returning the reference's exact witness
    found, count, steps, states, dead = engine_for(spec).search_witness(
        max_states=max_states, symmetry_reduction=symmetry_reduction
    )
    witness = None
    if found:
        assert steps is not None and states is not None
        witness = Witness(spec=spec, steps=steps, states=states, deadlocked=dead)
    return SearchResult(
        deadlock_reachable=found,
        witness=witness,
        states_explored=count,
        spec=spec,
    )


def _search_vector(
    spec: SystemSpec,
    *,
    max_states: int,
    find_witness: bool,
    symmetry_reduction: bool,
    jobs: int,
) -> SearchResult:
    """Whole-frontier numpy search (bit-identical to fast/reference).

    ``jobs > 1`` is routed through :func:`~repro.analysis.frontier
    .frontier_search`, which refuses to combine process parallelism with
    the vector engine (warning + ``vectorpath.fallback.jobs`` counter)
    and runs the whole-frontier search serially instead -- the engine
    already batches an entire BFS level per step, so per-state chunking
    across workers would undo the batching it exists for.
    """
    if not find_witness:
        if jobs > 1:
            from repro.analysis.frontier import frontier_search

            reachable, explored = frontier_search(
                spec,
                jobs=jobs,
                max_states=max_states,
                symmetry_reduction=symmetry_reduction,
                engine="vector",
            )
        else:
            reachable, explored = _vector_engine_for(spec).search(
                max_states=max_states, symmetry_reduction=symmetry_reduction
            )
        return SearchResult(
            deadlock_reachable=reachable,
            witness=None,
            states_explored=explored,
            spec=spec,
        )

    found, count, steps, states, dead = _vector_engine_for(spec).search_witness(
        max_states=max_states, symmetry_reduction=symmetry_reduction
    )
    witness = None
    if found:
        assert steps is not None and states is not None
        witness = Witness(spec=spec, steps=steps, states=states, deadlocked=dead)
    return SearchResult(
        deadlock_reachable=found,
        witness=witness,
        states_explored=count,
        spec=spec,
    )


def _search_kernel(
    spec: SystemSpec,
    *,
    max_states: int,
    find_witness: bool,
    symmetry_reduction: bool,
    jobs: int,
) -> SearchResult:
    """Compiled fused-loop search (bit-identical to fast/reference).

    ``jobs > 1`` is refused the same way the vector engine refuses it
    (warning + ``kernelpath.fallback.jobs`` counter, then a serial kernel
    search): the compiled loop already amortizes per-state overhead, and
    per-state chunking across worker processes would rebuild its tables
    per worker for no win.
    """
    if not find_witness:
        if jobs > 1:
            from repro.analysis.frontier import frontier_search

            reachable, explored = frontier_search(
                spec,
                jobs=jobs,
                max_states=max_states,
                symmetry_reduction=symmetry_reduction,
                engine="kernel",
            )
        else:
            reachable, explored = _kernel_engine_for(spec).search(
                max_states=max_states, symmetry_reduction=symmetry_reduction
            )
        return SearchResult(
            deadlock_reachable=reachable,
            witness=None,
            states_explored=explored,
            spec=spec,
        )

    found, count, steps, states, dead = _kernel_engine_for(spec).search_witness(
        max_states=max_states, symmetry_reduction=symmetry_reduction
    )
    witness = None
    if found:
        assert steps is not None and states is not None
        witness = Witness(spec=spec, steps=steps, states=states, deadlocked=dead)
    return SearchResult(
        deadlock_reachable=found,
        witness=witness,
        states_explored=count,
        spec=spec,
    )


def _rebuild_witness(
    spec: SystemSpec,
    parent: dict[SystemState, tuple[SystemState, tuple[str, ...]]],
    init: SystemState,
    final: SystemState,
    dead: tuple[int, ...],
) -> Witness:
    steps: list[tuple[str, ...]] = []
    states: list[SystemState] = []
    cur = final
    while cur != init:
        prev, actions = parent[cur]
        steps.append(actions)
        states.append(cur)
        cur = prev
    steps.reverse()
    states.reverse()
    return Witness(spec=spec, steps=steps, states=states, deadlocked=dead)
