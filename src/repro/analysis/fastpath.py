"""Optimized successor engine: bitmask occupancy + precomputed move tables.

This is the hot path of every verdict in the reproduction.  The reference
implementation (:meth:`repro.analysis.state.SystemSpec.successors`) rebuilds
a ``{channel id -> owner}`` dict for every grant round of every branch of
every expanded state, re-deriving each move's flit-train arithmetic as it
goes, and the search then rebuilds occupancy *again* per discovered state to
test for deadlock.  :class:`FastEngine` removes all of that work up front:

* every channel id touched by the spec maps to a **dense bit position**
  once, so occupancy is a single int bitmask (channels are referred to by
  their single-bit masks ``1 << position`` throughout);
* every *per-message* state ``(h, inj, cons, bud)`` reachable under the
  message's own dynamics is enumerated at engine construction and assigned
  a small index; for each index the engine precomputes the channel bits the
  flit train occupies, the move options available, and -- per option -- the
  successor index plus the single bit acquired and the single bit released.
  The inner round loop therefore performs **no arithmetic at all**: a move
  is one table lookup, one mask update, and one integer store;
* occupancy is threaded **incrementally** through the round expansion --
  each action sets at most one bit and clears at most one -- and a round
  that frees no bit wanted by a still-blocked message short-circuits
  straight to emission (no fixpoint re-scan);
* the wait-for map for **deadlock detection at emit time** is read off the
  threaded occupancy, skipping the functional-graph cycle walk entirely
  when no header is blocked (the overwhelmingly common case), and the
  verdict is memoized per state;
* searches that do not need action labels (``find_witness=False`` -- every
  campaign task) run entirely in the index domain via :meth:`search` /
  :meth:`expand`: states are flat tuples of small ints (cheaper to hash,
  compare and canonicalize than nested 4-tuples), and per-message state
  indices are assigned in sorted order of the underlying tuples, so
  symmetry canonicalization in the index domain picks exactly the
  representatives the reference search would.

Exact-equivalence contract: for every state,
``[(s, a) for s, a, _ in engine.successors_full(state)]`` equals
``spec.successors(state)`` **deduplicated by next state** (first occurrence
kept), and the third component equals ``spec.deadlocked_set(s)``.  The
deduplicated view is exactly what every search consumes -- the visited
check drops repeated states and the witness parent map keeps only the
first-encountered action labels -- so search verdicts, ``states_explored``
counts, witnesses and BFS expansion order are all bit-identical to the
reference.  The index-domain expansion follows the same grant-round
orchestration (scan, deterministic pre-apply, joint-choice product,
arbitration) and therefore yields the same states in the same order.
``tests/test_fastpath_differential.py`` pins both views over the whole
paper battery plus hypothesis-generated specs.

Cross-checking invariants (the ``assert cid not in occ`` family) live
behind :data:`repro.analysis.state.DEBUG_INVARIANTS` -- set
``REPRO_DEBUG_INVARIANTS=1`` to re-enable them.
"""

from __future__ import annotations

from collections import deque
from itertools import product

from repro.analysis import state as _state_mod
from repro.analysis.state import SystemSpec, SystemState

#: successor lists memoized per engine; shallow search prefixes are the most
#: frequently revisited across repeated searches, so a modest cap captures
#: most of the benefit without letting multi-million-state searches hoard RAM
DEFAULT_MEMO_LIMIT = 8192

#: deadlock verdicts are one tuple per state -- far smaller than successor
#: lists -- so they can afford a much larger cap
DEFAULT_DEAD_MEMO_LIMIT = 1 << 20

#: engines cached per spec so repeated searches share the tables and memos
_ENGINE_CACHE_LIMIT = 64
_ENGINES: dict[SystemSpec, "FastEngine"] = {}

#: cumulative cache-effectiveness counters, read by the telemetry layer
#: (repro.obs) via snapshot deltas around a search.  Incremented only on
#: call-boundary paths -- engine_for, expand, successors_full -- never
#: inside the fused _emissions/search loop, so the benchmarked hot path
#: is untouched whether telemetry is on or off.
COUNTERS: dict[str, int] = {
    "fastpath.engine_cache.hits": 0,
    "fastpath.engine_cache.misses": 0,
    "fastpath.smemo.hits": 0,
    "fastpath.smemo.misses": 0,
    "fastpath.memo.hits": 0,
    "fastpath.memo.misses": 0,
    "fastpath.expand.emitted": 0,
    "fastpath.expand.unique": 0,
}


def counters_snapshot() -> dict[str, int]:
    """A copy of :data:`COUNTERS` (diff two to meter one search)."""
    return dict(COUNTERS)

# interned action labels; options are compared by identity against these
_TRY, _WAIT, _ADV, _STALL, _DRAIN = "try", "wait", "adv", "stall", "drain"

# per-message record kinds (see _message_record)
_DONE, _INJECT, _ADVANCE, _ADVANCE_STALL, _ARRIVE, _ARRIVE_STALL, _DRAINING = (
    range(7)
)

_OVERLAP = "two messages occupy one channel: invariant broken"


def engine_for(spec: SystemSpec) -> "FastEngine":
    """The (cached) fast engine for ``spec``."""
    eng = _ENGINES.get(spec)
    if eng is None:
        COUNTERS["fastpath.engine_cache.misses"] += 1
        if len(_ENGINES) >= _ENGINE_CACHE_LIMIT:
            _ENGINES.clear()
        eng = FastEngine(spec)
        _ENGINES[spec] = eng
    else:
        COUNTERS["fastpath.engine_cache.hits"] += 1
    return eng


def peek_engine(spec: SystemSpec) -> "FastEngine | None":
    """The cached engine for ``spec``, without counting a cache hit/miss
    (telemetry peeks must not disturb the metered counters)."""
    return _ENGINES.get(spec)


class FastEngine:
    """Successor generation over a dense-bit, table-driven encoding of ``spec``."""

    def __init__(
        self,
        spec: SystemSpec,
        *,
        memo_limit: int = DEFAULT_MEMO_LIMIT,
        dead_memo_limit: int = DEFAULT_DEAD_MEMO_LIMIT,
    ) -> None:
        self.spec = spec
        bit_of: dict[int, int] = {}
        for m in spec.messages:
            for cid in m.path:
                if cid not in bit_of:
                    bit_of[cid] = len(bit_of)
        self.bit_of = bit_of
        self.num_bits = len(bit_of)
        # paths re-encoded as single-bit masks (index aligned with the cid path)
        self._paths = tuple(
            tuple(1 << bit_of[cid] for cid in m.path) for m in spec.messages
        )
        self._ks = tuple(len(m.path) for m in spec.messages)
        self._lens = tuple(m.length for m in spec.messages)
        self._n = len(spec.messages)

        # ------------------------------------------------------------------
        # per-message state tables.  Indices are assigned in sorted order of
        # the (h, inj, cons, bud) tuples, making index comparison
        # order-isomorphic to tuple comparison -- required for index-domain
        # symmetry canonicalization to pick the reference representatives.
        # ------------------------------------------------------------------
        self._idx: list[dict[tuple, int]] = []
        self._back: list[list[tuple]] = []
        self._recs: list[list[tuple]] = []
        #: the record minus its kind code: ``(req, opts)``.  ``req`` is the
        #: one channel bit the state can block on (0 when it never blocks --
        #: records for arriving/draining/done states already store 0), so
        #: ``mask & req`` alone decides blocked-ness and empty ``opts``
        #: alone decides done-ness.  ``_emissions`` scans these rows; the
        #: kind dispatch disappears from the hot loop entirely.
        self._scan: list[list[tuple]] = []
        self._occm: list[list[int]] = []
        #: the channel bit this per-message state blocks on (0 = never blocks);
        #: lets the deadlock test skip record unpacking entirely
        self._blk: list[list[int]] = []
        for i in range(self._n):
            closed = self._closure(i)
            self._idx.append({ms: ci for ci, ms in enumerate(closed)})
            self._back.append(list(closed))
            self._occm.append([self._occ_bits(i, ms) for ms in closed])
            # records need every next-state index, so they come last
            self._recs.append([])
        for i in range(self._n):
            self._recs[i] = [
                self._message_record(i, ms) for ms in self._back[i]
            ]
            self._scan.append([rec[1:] for rec in self._recs[i]])
            self._blk.append(
                [
                    rec[1] if rec[0] in (_ADVANCE, _ADVANCE_STALL) else 0
                    for rec in self._recs[i]
                ]
            )
        self.init_idx = tuple(
            self._idx[i][(0, 0, 0, spec.budgets[i])] for i in range(self._n)
        )
        self.canon = self._build_canon()

        self._memo_limit = memo_limit
        self._memo: dict[SystemState, list] = {}
        self._smemo: dict[tuple, list] = {}
        self._dead_memo_limit = dead_memo_limit
        self._dead_memo: dict[tuple, tuple[int, ...]] = {}
        #: BFS levels of the most recent :meth:`search` (telemetry only)
        self.last_search_depth: int | None = None
        #: per-phase wall seconds of the most recent :meth:`search`; only
        #: populated when telemetry is enabled (the gate is checked once
        #: per search, so the disabled hot loop is untouched)
        self.phase_seconds: dict[str, float] = {}
        #: frontier width per BFS level of the most recent :meth:`search`
        #: (telemetry-gated, like :attr:`phase_seconds`)
        self.last_level_widths: list[int] = []

    # ------------------------------------------------------------------
    # table construction
    # ------------------------------------------------------------------
    def _move(self, i: int, ms: tuple, act: str) -> tuple[tuple, int, int]:
        """Apply one action to a per-message state: (next, acquired, released).

        This is the only place the reference flit-train arithmetic lives;
        everything downstream reads its results out of tables.
        """
        h, inj, cons, bud = ms
        k, L, path = self._ks[i], self._lens[i], self._paths[i]
        if act is _TRY:
            return (1, 1, cons, bud), path[0], 0
        if act is _STALL:
            return (h, inj, cons, bud - 1), 0, 0
        f = inj - cons
        if act is _ADV:
            h += 1
            if h == k + 1:
                cons += 1  # header consumed on arrival
                if inj < L and (inj - cons) < k:
                    inj += 1
                rel = path[k - f] if inj - cons < f else 0  # train shrank
                return (h, inj, cons, bud), 0, rel
            acq = path[h - 1]  # the channel just acquired
            if inj < L and (inj - cons) < h:
                inj += 1
            rel = path[h - 1 - f] if inj - cons == f else 0  # tail vacated
            return (h, inj, cons, bud), acq, rel
        # drain: forced consumption
        cons += 1
        if inj < L and (inj - cons) < k:
            inj += 1
        rel = path[k - f] if inj - cons < f else 0  # train shrank
        return (h, inj, cons, bud), 0, rel

    def _moves_of(self, i: int, ms: tuple) -> list[str]:
        """The actions that can change this per-message state (for closure)."""
        h, _inj, cons, bud = ms
        k, L = self._ks[i], self._lens[i]
        if cons == L:
            return []
        acts: list[str] = []
        if h == 0:
            acts.append(_TRY)
        elif h <= k:
            acts.append(_ADV)
            if bud > 0:
                acts.append(_STALL)
        else:
            acts.append(_DRAIN)
        return acts

    def _closure(self, i: int) -> list[tuple]:
        """Every per-message state reachable from injection start, sorted."""
        start = (0, 0, 0, self.spec.budgets[i])
        seen = {start}
        frontier = deque([start])
        while frontier:
            ms = frontier.popleft()
            for act in self._moves_of(i, ms):
                nxt, _acq, _rel = self._move(i, ms, act)
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return sorted(seen)

    def _occ_bits(self, i: int, ms: tuple) -> int:
        """Bitmask of the channels message ``i``'s flit train occupies."""
        h, inj, cons, _bud = ms
        f = inj - cons
        if h == 0 or f <= 0:
            return 0
        k, path = self._ks[i], self._paths[i]
        front = h - 1 if h <= k else k - 1
        bits = 0
        for idx in range(front - f + 1, front + 1):
            bits |= path[idx]
        return bits

    def _message_record(self, i: int, ms: tuple) -> tuple:
        """``(kind, req, opts)`` scan record for one per-message state.

        ``req`` is the single channel bit the message needs to move (0 when
        it never blocks); ``opts`` are ``(label, chan, next_index, acquired,
        released)`` tuples, ``chan`` being the requested channel for
        arbitration purposes (``None`` for uncontendable moves).
        """
        h, inj, cons, bud = ms
        k, L = self._ks[i], self._lens[i]
        idx = self._idx[i]
        if cons == L:
            return (_DONE, 0, ())
        if h == 0:
            nxt, acq, rel = self._move(i, ms, _TRY)
            b = self._paths[i][0]
            return (
                _INJECT,
                b,
                ((_TRY, b, idx[nxt], acq, rel), (_WAIT, None, idx[ms], 0, 0)),
            )
        if h <= k - 1:
            nxt, acq, rel = self._move(i, ms, _ADV)
            b = self._paths[i][h]
            adv = (_ADV, b, idx[nxt], acq, rel)
            if bud > 0:
                st, _a, _r = self._move(i, ms, _STALL)
                return (_ADVANCE_STALL, b, (adv, (_STALL, None, idx[st], 0, 0)))
            return (_ADVANCE, b, (adv,))
        if h == k:
            # arrival into the node: no arbitration, but the router may
            # stall it (it is an in-network move)
            nxt, acq, rel = self._move(i, ms, _ADV)
            adv = (_ADV, None, idx[nxt], acq, rel)
            if bud > 0:
                st, _a, _r = self._move(i, ms, _STALL)
                return (_ARRIVE_STALL, 0, (adv, (_STALL, None, idx[st], 0, 0)))
            return (_ARRIVE, 0, (adv,))
        # h == k + 1: draining, forced consumption
        nxt, acq, rel = self._move(i, ms, _DRAIN)
        return (_DRAINING, 0, ((_DRAIN, None, idx[nxt], acq, rel),))

    def _build_canon(self):
        """Index-domain symmetry canonicalizer (``None`` when no symmetry).

        Mirrors :func:`repro.analysis.reachability._symmetry_canonicalizer`:
        because per-message indices are assigned in sorted tuple order and
        identical message types share identical tables, sorting indices
        within a class picks exactly the representative the reference
        canonicalizer would pick for the corresponding raw states.
        """
        spec = self.spec
        groups: dict[tuple, list[int]] = {}
        for i, (m, b) in enumerate(zip(spec.messages, spec.budgets)):
            groups.setdefault((m.path, m.length, b), []).append(i)
        classes = [idxs for idxs in groups.values() if len(idxs) > 1]
        #: pair classes exposed for the fused search: emitted states are
        #: overwhelmingly already canonical, so the emission loop inlines
        #: the is-canonical probe and only calls ``canon`` on a hit
        self._canon_pairs: list[tuple[int, int]] | None = None
        if not classes:
            return None
        if all(len(idxs) == 2 for idxs in classes):
            pairs = [(idxs[0], idxs[1]) for idxs in classes]
            self._canon_pairs = pairs

            def canon(st: tuple) -> tuple:
                for i, j in pairs:
                    if st[j] < st[i]:
                        out = list(st)
                        for a, b in pairs:
                            if out[b] < out[a]:
                                out[a], out[b] = out[b], out[a]
                        return tuple(out)
                return st

            return canon

        def canon(st: tuple) -> tuple:
            out = list(st)
            for idxs in classes:
                vals = sorted([out[i] for i in idxs])
                for i, v in zip(idxs, vals):
                    out[i] = v
            return tuple(out)

        return canon

    # ------------------------------------------------------------------
    # encoding helpers
    # ------------------------------------------------------------------
    def _ci(self, i: int, ms: tuple) -> int:
        """Index of per-message state ``ms``, extending the tables on demand.

        Extension keeps ``successors_full``/``deadlocked`` total over states
        outside the message's own reachable closure (tests build some), but
        appended indices break the sorted-order isomorphism -- which only
        the index-domain :meth:`search` relies on, and that always starts
        from the initial state, whose closure is fully enumerated up front.
        """
        idx = self._idx[i]
        ci = idx.get(ms)
        if ci is None:
            h, inj, cons, _bud = ms
            if not (0 <= h <= self._ks[i] + 1 and 0 <= cons <= inj <= self._lens[i]):
                raise ValueError(f"per-message state {ms!r} is malformed for message {i}")
            ci = len(self._back[i])
            idx[ms] = ci
            self._back[i].append(ms)
            self._occm[i].append(self._occ_bits(i, ms))
            rec = self._message_record(i, ms)
            self._recs[i].append(rec)
            self._scan[i].append(rec[1:])
            self._blk[i].append(
                rec[1] if rec[0] in (_ADVANCE, _ADVANCE_STALL) else 0
            )
        return ci

    def encode(self, state: SystemState) -> tuple:
        """Raw state -> index-domain state."""
        return tuple(self._ci(i, ms) for i, ms in enumerate(state))

    def decode(self, st: tuple) -> SystemState:
        """Index-domain state -> raw state."""
        back = self._back
        return tuple(back[i][ci] for i, ci in enumerate(st))

    def occupancy(self, state: SystemState) -> tuple[int, dict[int, int]]:
        """(bitmask, {bit -> owner}) for ``state``."""
        mask = 0
        owners: dict[int, int] = {}
        debug = _state_mod.DEBUG_INVARIANTS
        occm = self._occm
        for i, ms in enumerate(state):
            bits = occm[i][self._ci(i, ms)]
            if debug and mask & bits:
                raise AssertionError(_OVERLAP)
            mask |= bits
            while bits:
                b = bits & -bits
                owners[b] = i
                bits ^= b
        return mask, owners

    # ------------------------------------------------------------------
    # deadlock detection
    # ------------------------------------------------------------------
    def deadlocked(self, state: SystemState) -> tuple[int, ...]:
        """Memoized :meth:`SystemSpec.deadlocked_set` over the fast encoding."""
        st = self.encode(state)
        dead = self._dead_memo.get(st)
        if dead is None:
            mask = 0
            occm = self._occm
            for i, ci in enumerate(st):
                mask |= occm[i][ci]
            dead = self._deadlocked(st, mask)
            if len(self._dead_memo) < self._dead_memo_limit:
                self._dead_memo[st] = dead
        return dead

    def _deadlocked(self, st: tuple, mask: int) -> tuple[int, ...]:
        """Wait-for cycle members of index-state ``st`` (mirrors
        ``deadlocked_set``).

        The wait map is read straight off the threaded occupancy; when it is
        empty -- no header blocked, the overwhelmingly common case -- the
        cycle walk is skipped outright.
        """
        blk = self._blk
        occm = self._occm
        wait: dict[int, int] = {}
        for i, ci in enumerate(st):
            req = blk[i][ci]
            if req and mask & req:
                for j, cj in enumerate(st):
                    if occm[j][cj] & req:
                        if j != i:
                            wait[i] = j
                        break
        if not wait:
            return ()
        color: dict[int, int] = {}
        for start in wait:
            if color.get(start):
                continue
            trail: list[int] = []
            node = start
            while node in wait and color.get(node) is None:
                color[node] = 1
                trail.append(node)
                node = wait[node]
            if color.get(node) == 1:
                idx = trail.index(node)
                for n in trail:
                    color[n] = 2
                return tuple(sorted(trail[idx:]))
            for n in trail:
                color[n] = 2
        return ()

    # ------------------------------------------------------------------
    # index-domain expansion (label-free: what verdict-only searches use)
    # ------------------------------------------------------------------
    def expand(self, root: tuple) -> list[tuple[tuple, tuple[int, ...]]]:
        """``(next_state, deadlocked)`` pairs for one cycle, index domain.

        Same states, same order, same deadlock verdicts as
        :meth:`successors_full` -- minus the action labels, which no
        verdict-only search reads.  This is the list view parallel workers
        and differential tests consume; :meth:`search` streams the same
        emissions without materializing lists.
        """
        cached = self._smemo.get(root)
        if cached is not None:
            COUNTERS["fastpath.smemo.hits"] += 1
            return cached
        COUNTERS["fastpath.smemo.misses"] += 1
        results: list[tuple[tuple, tuple[int, ...]]] = []
        seen: set[tuple] = set()
        emitted = 0
        for st, dead in self._emissions(root):
            emitted += 1
            if st not in seen:
                seen.add(st)
                results.append((st, dead))
        COUNTERS["fastpath.expand.emitted"] += emitted
        COUNTERS["fastpath.expand.unique"] += len(results)
        if len(self._smemo) < self._memo_limit:
            self._smemo[root] = results
        return results

    def _emissions(
        self,
        root: tuple,
        visited: set | None = None,
        canon=None,
        mask: int | None = None,
    ):
        """Yield successors of ``root`` for one cycle, index domain.

        Plain mode (``visited is None``): yields ``(next_state,
        deadlocked)`` pairs.  The stream may contain rare duplicate states
        (a state reachable via different in-round choices); every consumer
        deduplicates -- the search's visited check, :meth:`expand`'s
        first-occurrence filter -- so the deduplicated view is what the
        equivalence contract pins.

        Fused mode (``visited`` given): the search's dedup moves *inside*
        the expansion -- a state whose key (under ``canon``, identity when
        ``None``) is already in ``visited`` is dropped before it crosses
        the generator boundary, and its deadlock verdict is never looked
        up; new keys are added to ``visited`` in place and yielded as
        ``(next_state, deadlocked, occupancy_mask)`` triples so the caller
        can thread the mask back in (the ``mask`` parameter) and skip the
        root-occupancy rebuild.  First-occurrence order is identical to
        plain mode, which is what keeps fused searches bit-identical to
        the reference.

        Iterative (explicit stack, children pushed in reverse) so the deep
        forced spines of a cycle cost no Python call overhead; emission
        order equals the reference's depth-first combo order.
        """
        n = self._n
        scan = self._scan
        occm = self._occm
        debug = _state_mod.DEBUG_INVARIANTS
        dead_memo = self._dead_memo
        dead_memo_limit = self._dead_memo_limit
        deadlocked = self._deadlocked
        _product, _wait, _stall = product, _WAIT, _STALL
        visited_add = visited.add if visited is not None else None
        # pair-class canon: probe inline (states are overwhelmingly already
        # canonical) and only pay the call when a swap is actually needed
        pairs = self._canon_pairs if canon is not None else None
        # branch-convergence pruning: (configuration, pending) fully
        # determines the *states* a subtree can emit, so a node reached
        # twice (different arbitration winners, lose-vs-wait pairs ending
        # equal) is expanded only once -- the skipped copy could only
        # re-emit states consumers deduplicate away
        seen_nodes: set[tuple] = set()

        if mask is None or debug:
            mask0 = 0
            for i, ci in enumerate(root):
                if debug and mask0 & occm[i][ci]:
                    raise AssertionError(_OVERLAP)
                mask0 |= occm[i][ci]
            if debug and mask is not None and mask != mask0:
                raise AssertionError(_OVERLAP)
            mask = mask0
        # stack entries: (configuration, pending bitmask, occupancy mask);
        # pending == -1 tags an already-at-fixpoint node to emit directly
        stack: list[tuple[list, int, int]] = [(list(root), (1 << n) - 1, mask)]
        while stack:
            cur, pending, mask = stack.pop()
            branch = False
            if pending >= 0:
                while True:
                    if not pending:
                        break
                    movers: list[int] = []
                    mopts: list[tuple] = []
                    multi = False  # any mover with a genuine choice?
                    reqmask = 0
                    clash = False
                    want = 0  # bits still-blocked messages are waiting on
                    for i in range(n):
                        if not pending >> i & 1:
                            continue
                        req, opts = scan[i][cur[i]]
                        if mask & req:
                            want |= req  # blocked; may free in a later round
                        elif opts:
                            movers.append(i)
                            mopts.append(opts)
                            if len(opts) > 1:
                                multi = True
                            elif req:  # single-option in-network advance
                                if reqmask & req:
                                    clash = True
                                reqmask |= req
                        else:
                            pending &= ~(1 << i)  # done
                    if not movers:
                        break
                    if not multi and not clash:
                        # fully deterministic round -- the overwhelmingly
                        # common case once messages are in flight: apply
                        # every mover in place (adv/drain).  If no freed
                        # bit is wanted by a still-blocked message, the
                        # next scan cannot find a mover: emit without
                        # re-scanning.
                        freed = 0
                        for i, o in zip(movers, mopts):
                            first = o[0]
                            acq = first[3]
                            if debug and mask & acq:
                                raise AssertionError(_OVERLAP)
                            cur[i] = first[2]
                            mask = (mask | acq) & ~first[4]
                            freed |= first[4]
                            pending &= ~(1 << i)
                        if not pending or not freed & want:
                            break
                        continue
                    # channel demand across every mover's first option
                    # (single-bit masks, so two int accumulators count): a
                    # single-option mover whose channel nobody else
                    # requests this round is still deterministic
                    seen1 = 0  # requested at least once
                    seen2 = 0  # requested at least twice
                    for o in mopts:
                        c = o[0][1]
                        if c is not None:
                            if seen1 & c:
                                seen2 |= c
                            seen1 |= c
                    bmovers: list[int] = []
                    bopts: list[tuple] = []
                    pre_moved = False
                    freed = 0
                    for i, o in zip(movers, mopts):
                        first = o[0]
                        c = first[1]
                        if len(o) > 1 or (c is not None and seen2 & c):
                            bmovers.append(i)
                            bopts.append(o)
                            continue
                        # deterministic: apply in place (adv/drain)
                        acq = first[3]
                        if debug and mask & acq:
                            raise AssertionError(_OVERLAP)
                        cur[i] = first[2]
                        mask = (mask | acq) & ~first[4]
                        freed |= first[4]
                        pending &= ~(1 << i)
                        pre_moved = True
                    if not bmovers:  # unreachable in practice: multi/clash
                        if not pending or not freed & want:  # pragma: no cover
                            break
                        continue
                    branch = True
                    break
            if not branch:
                st = tuple(cur)
                if visited is not None:
                    if canon is None:
                        key = st
                    elif pairs is not None:
                        key = st
                        for a, b in pairs:
                            if st[b] < st[a]:
                                key = canon(st)
                                break
                    else:
                        key = canon(st)
                    if key in visited:
                        continue
                    visited_add(key)
                    dead = dead_memo.get(st)
                    if dead is None:
                        dead = deadlocked(st, mask)
                        if len(dead_memo) < dead_memo_limit:
                            dead_memo[st] = dead
                    yield st, dead, mask
                    continue
                dead = dead_memo.get(st)
                if dead is None:
                    dead = deadlocked(st, mask)
                    if len(dead_memo) < dead_memo_limit:
                        dead_memo[st] = dead
                yield st, dead
                continue

            # branching round: enumerate joint choices of the branching
            # movers (and, per combo, arbitration winners); the
            # deterministic movers are already folded into cur/mask above.
            # Children are pushed in reverse so LIFO popping reproduces the
            # reference's depth-first emission order exactly.
            children: list[tuple[list, int, int]] = []
            # if no two branching movers can ever request the same channel,
            # no combo can be contested -- skip arbitration bookkeeping
            # (channels are single-bit masks, so an int accumulator detects
            # duplicates without allocating)
            chseen = 0
            no_contest = True
            for o in bopts:
                c = o[0][1]
                if c is not None:
                    if chseen & c:
                        no_contest = False
                        break
                    chseen |= c
            for combo in _product(*bopts):
                wsets: tuple | None = None  # None: this combo is uncontested
                if not no_contest:
                    # most combos of a contestable round are still
                    # uncontested (somebody chose wait/stall); one pass of
                    # int ors over the single-bit channel masks finds the
                    # channels requested twice, and the requester-list
                    # bookkeeping runs only when there genuinely are some
                    seenm = 0
                    dupm = 0
                    for o in combo:
                        c = o[1]
                        if c is not None:
                            if seenm & c:
                                dupm |= c
                            seenm |= c
                    if dupm:
                        requests: dict[int, list[int]] = {}
                        for i, o in zip(bmovers, combo):
                            c = o[1]
                            if c is not None and c & dupm:
                                lst = requests.get(c)
                                if lst is None:
                                    requests[c] = [i]
                                else:
                                    lst.append(i)
                        if len(requests) == 1:
                            ((c0, cands),) = requests.items()
                            wsets = tuple([{c0: w} for w in cands])
                        else:
                            wsets = tuple(
                                [
                                    dict(zip(requests, wc))
                                    for wc in _product(*requests.values())
                                ]
                            )
                if wsets is None:
                    # uncontested: exactly one child for this combo
                    nxt = list(cur)
                    nmask = mask
                    npend = pending
                    moved = pre_moved
                    for i, o in zip(bmovers, combo):
                        lab, chan, nci, acq, rel = o
                        if lab is _wait:
                            continue  # stays pending (may try a later round)
                        nxt[i] = nci
                        npend &= ~(1 << i)
                        if lab is not _stall:
                            moved = True
                        if acq or rel:
                            if debug and nmask & acq:
                                raise AssertionError(_OVERLAP)
                            nmask = (nmask | acq) & ~rel
                    if moved:
                        node = (tuple(nxt), npend)
                        if node not in seen_nodes:
                            seen_nodes.add(node)
                            children.append((nxt, npend, nmask))
                    else:
                        # nothing moved: fixpoint; tag for direct emission
                        children.append((nxt, -1, nmask))
                    continue
                for winners in wsets:
                    nxt = list(cur)
                    nmask = mask
                    npend = pending
                    moved = pre_moved
                    for i, o in zip(bmovers, combo):
                        lab, chan, nci, acq, rel = o
                        if chan is not None:
                            w = winners.get(chan)
                            if w is not None and w != i:
                                npend &= ~(1 << i)  # lost arbitration
                                continue
                        if lab is _wait:
                            continue  # stays pending (may try a later round)
                        nxt[i] = nci
                        npend &= ~(1 << i)
                        if lab is not _stall:
                            moved = True
                        if acq or rel:
                            if debug and nmask & acq:
                                raise AssertionError(_OVERLAP)
                            nmask = (nmask | acq) & ~rel
                    if moved:
                        node = (tuple(nxt), npend)
                        if node not in seen_nodes:
                            seen_nodes.add(node)
                            children.append((nxt, npend, nmask))
                    else:
                        # nothing moved: fixpoint; tag for direct emission
                        children.append((nxt, -1, nmask))
            stack.extend(reversed(children))

    # ------------------------------------------------------------------
    # index-domain BFS (verdict + states_explored only)
    # ------------------------------------------------------------------
    def search(
        self, *, max_states: int = 2_000_000, symmetry_reduction: bool = True
    ) -> tuple[bool, int]:
        """BFS deadlock reachability in the index domain.

        Returns ``(deadlock_reachable, states_explored)`` -- bit-identical
        to the reference :func:`repro.analysis.reachability.search_deadlock`
        with ``find_witness=False`` and the same ``symmetry_reduction``,
        including the early-exit count when a deadlock is found (expansion
        order matches the reference's).
        """
        from time import perf_counter

        from repro.analysis.reachability import SearchLimitExceeded
        from repro.obs import get as _obs_get

        canon = self.canon if symmetry_reduction else None
        init = self.init_idx
        visited: set[tuple] = {canon(init) if canon else init}
        # fused expansion: _emissions filters against (and grows) visited
        # itself, so duplicate states never cross the generator boundary,
        # and each child's occupancy mask rides along in the queue so the
        # next expansion skips the root-occupancy rebuild.  First-occurrence
        # order is the reference's, so the early-exit count matches too.
        init_mask = 0
        for i, ci in enumerate(init):
            init_mask |= self._occm[i][ci]
        queue: deque[tuple[tuple, int]] = deque([(init, init_mask)])
        emissions = self._emissions
        popleft = queue.popleft
        push = queue.append
        count = 1
        # level-structured loop: identical FIFO pop order (states are
        # popped and pushed exactly as before; the inner range only
        # partitions the deque into BFS levels), so verdicts and counts
        # stay bit-identical while the frontier depth becomes observable
        # through ``last_search_depth`` at near-zero cost per state.
        # Phase timing + level widths are telemetry-gated: one enabled
        # check per search, one branch per *level* (never per state), so
        # disabled runs keep the benchmarked loop byte-for-byte.
        prof = _obs_get() is not None
        self.phase_seconds = {}
        self.last_level_widths = []
        expand_s = 0.0
        t_level = 0.0
        depth = 0
        while queue:
            if prof:
                self.last_level_widths.append(len(queue))
                t_level = perf_counter()
            for _ in range(len(queue)):
                state, mask = popleft()
                for nxt, dead, nmask in emissions(state, visited, canon, mask):
                    count += 1
                    if count > max_states:
                        raise SearchLimitExceeded(
                            f"exceeded {max_states} states; tighten the "
                            "scenario or raise the cap"
                        )
                    if dead:
                        self.last_search_depth = depth + 1
                        if prof:
                            self.phase_seconds["expand"] = (
                                expand_s + perf_counter() - t_level
                            )
                        return True, count
                    push((nxt, nmask))
            if prof:
                expand_s += perf_counter() - t_level
            depth += 1
        self.last_search_depth = depth
        if prof:
            self.phase_seconds["expand"] = expand_s
        return False, count

    def search_witness(
        self, *, max_states: int = 2_000_000, symmetry_reduction: bool = False
    ) -> tuple[
        bool,
        int,
        list[tuple[str, ...]] | None,
        list[SystemState] | None,
        tuple[int, ...],
    ]:
        """BFS with parent tracking; returns a replayable deadlock path.

        ``(found, states_explored, steps, states, deadlocked)`` where
        ``steps``/``states`` are the per-cycle action rows and raw states
        of a minimum-length deadlock formation (``None`` when no deadlock
        is reachable).  The search itself runs entirely in the index
        domain -- parents are bare state pointers, no labels -- and action
        rows are recovered afterwards by re-expanding only the states
        *on the returned path* through :meth:`successors_full`.  Because
        the fused expansion yields first occurrences in the reference's
        order, the parent of every state is the reference's parent, and
        ``successors_full``'s first-occurrence labels are the actions the
        reference's parent map would have stored: the witness is
        step-for-step the reference's.
        """
        from time import perf_counter

        from repro.analysis.reachability import SearchLimitExceeded
        from repro.obs import get as _obs_get

        canon = self.canon if symmetry_reduction else None
        init = self.init_idx
        visited: set[tuple] = {canon(init) if canon else init}
        parent: dict[tuple, tuple] = {}
        init_mask = 0
        for i, ci in enumerate(init):
            init_mask |= self._occm[i][ci]
        queue: deque[tuple[tuple, int]] = deque([(init, init_mask)])
        emissions = self._emissions
        popleft = queue.popleft
        push = queue.append
        count = 1
        # same telemetry gating as search(): one enabled check per search.
        # The queue is not level-partitioned here, so no per-level widths;
        # expand and witness recovery are timed as two phases.
        prof = _obs_get() is not None
        self.phase_seconds = {}
        self.last_level_widths = []
        t_expand = perf_counter() if prof else 0.0
        while queue:
            state, mask = popleft()
            for nxt, dead, nmask in emissions(state, visited, canon, mask):
                count += 1
                if count > max_states:
                    raise SearchLimitExceeded(
                        f"exceeded {max_states} states; tighten the "
                        "scenario or raise the cap"
                    )
                parent[nxt] = state
                if dead:
                    if prof:
                        self.phase_seconds["expand"] = (
                            perf_counter() - t_expand
                        )
                        t_witness = perf_counter()
                    chain = [nxt]
                    cur = nxt
                    while cur != init:
                        cur = parent[cur]
                        chain.append(cur)
                    chain.reverse()
                    decode = self.decode
                    states = [decode(s) for s in chain[1:]]
                    steps: list[tuple[str, ...]] = []
                    for prev, raw in zip(chain, states):
                        praw = decode(prev)
                        for s, acts, _d in self.successors_full(praw):
                            if s == raw:
                                steps.append(acts)
                                break
                        else:  # pragma: no cover - parent chain is consistent
                            raise AssertionError("witness edge lost")
                    if prof:
                        self.phase_seconds["witness"] = (
                            perf_counter() - t_witness
                        )
                    return True, count, steps, states, dead
                push((nxt, nmask))
        if prof:
            self.phase_seconds["expand"] = perf_counter() - t_expand
        return False, count, None, None, ()

    # ------------------------------------------------------------------
    # labeled successor generation (what witness searches and the
    # differential contract consume)
    # ------------------------------------------------------------------
    def successors_full(
        self, state: SystemState
    ) -> list[tuple[SystemState, tuple[str, ...], tuple[int, ...]]]:
        """``(next_state, actions, deadlocked)`` triples for one cycle.

        The list is :meth:`SystemSpec.successors` **deduplicated by next
        state**, keeping the first occurrence (same states, same order,
        same first action labels).  That is exactly the view every search
        consumes: repeated ``(state, actions)`` pairs differing only in
        labels are dropped by the visited check, and the witness parent map
        keeps only the first-encountered actions.  ``deadlocked`` equals
        ``spec.deadlocked_set(next_state)``.
        """
        memo = self._memo
        cached = memo.get(state)
        if cached is not None:
            COUNTERS["fastpath.memo.hits"] += 1
            return cached
        COUNTERS["fastpath.memo.misses"] += 1

        n = self._n
        recs = self._recs
        occm = self._occm
        back = self._back
        debug = _state_mod.DEBUG_INVARIANTS
        dead_memo = self._dead_memo
        dead_memo_limit = self._dead_memo_limit
        deadlocked = self._deadlocked
        results: list[tuple[SystemState, tuple[str, ...], tuple[int, ...]]] = []
        seen: set[tuple] = set()
        seen_nodes: set[tuple] = set()

        def emit(cur: list, last: list, mask: int) -> None:
            st = tuple(cur)
            if st not in seen:
                seen.add(st)
                dead = dead_memo.get(st)
                if dead is None:
                    dead = deadlocked(st, mask)
                    if len(dead_memo) < dead_memo_limit:
                        dead_memo[st] = dead
                raw = tuple(back[i][ci] for i, ci in enumerate(st))
                results.append((raw, tuple(last), dead))

        def rounds(cur: list, pending: int, last: list, mask: int) -> None:
            """Expand grant rounds from ``cur`` until the cycle fixpoint.

            Same orchestration as :meth:`expand`, plus the action-label
            bookkeeping (``done``/``freeze`` rewrites, per-branch labels).
            """
            while True:
                if not pending:
                    emit(cur, last, mask)
                    return
                movers: list[int] = []
                mopts: list[tuple] = []
                multi = False
                reqmask = 0
                clash = False
                want = 0
                for i in range(n):
                    if not pending >> i & 1:
                        continue
                    kind, req, opts = recs[i][cur[i]]
                    if kind == _DONE:
                        last[i] = "done"
                        pending &= ~(1 << i)
                    elif kind <= _ADVANCE_STALL and mask & req:
                        want |= req
                        if kind != _INJECT:  # blocked injection stays silent
                            last[i] = "freeze"
                    else:
                        movers.append(i)
                        mopts.append(opts)
                        if len(opts) > 1:
                            multi = True
                        elif kind == _ADVANCE:
                            if reqmask & req:
                                clash = True
                            reqmask |= req
                if not movers:
                    emit(cur, last, mask)
                    return
                counts: dict[int, int] | None = None
                if multi or clash:
                    counts = {}
                    for o in mopts:
                        c = o[0][1]
                        if c is not None:
                            counts[c] = counts.get(c, 0) + 1
                bmovers: list[int] = []
                bopts: list[tuple] = []
                pre_moved = False
                freed = 0
                for j, i in enumerate(movers):
                    o = mopts[j]
                    first = o[0]
                    c = first[1]
                    if len(o) > 1 or (
                        counts is not None and c is not None and counts[c] > 1
                    ):
                        bmovers.append(i)
                        bopts.append(o)
                        continue
                    acq = first[3]
                    if debug and mask & acq:
                        raise AssertionError(_OVERLAP)
                    cur[i] = first[2]
                    last[i] = first[0]
                    mask = (mask | acq) & ~first[4]
                    freed |= first[4]
                    pending &= ~(1 << i)
                    pre_moved = True
                if not bmovers:
                    if not pending or not freed & want:
                        emit(cur, last, mask)
                        return
                    continue
                break

            def finish(combo, winners) -> None:
                nxt = list(cur)
                nxt_last = list(last)
                npend = pending
                nmask = mask
                moved = pre_moved
                for i, o in zip(bmovers, combo):
                    lab, chan, nci, acq, rel = o
                    if winners is not None and chan is not None:
                        w = winners.get(chan)
                        if w is not None and w != i:
                            npend &= ~(1 << i)
                            nxt_last[i] = "lose"
                            continue
                    nxt_last[i] = lab
                    if lab is _WAIT:
                        continue
                    nxt[i] = nci
                    npend &= ~(1 << i)
                    if lab is not _STALL:
                        moved = True
                    if acq or rel:
                        if debug and nmask & acq:
                            raise AssertionError(_OVERLAP)
                        nmask = (nmask | acq) & ~rel
                if moved:
                    node = (tuple(nxt), npend)
                    if node not in seen_nodes:
                        seen_nodes.add(node)
                        rounds(nxt, npend, nxt_last, nmask)
                else:
                    emit(nxt, nxt_last, nmask)

            bchans = [o[0][1] for o in bopts if o[0][1] is not None]
            if len(set(bchans)) == len(bchans):
                for combo in product(*bopts):
                    finish(combo, None)
                return
            for combo in product(*bopts):
                requests: dict[int, list[int]] = {}
                for i, o in zip(bmovers, combo):
                    c = o[1]
                    if c is not None:
                        lst = requests.get(c)
                        if lst is None:
                            requests[c] = [i]
                        else:
                            lst.append(i)
                contested = [c for c, cands in requests.items() if len(cands) > 1]
                if not contested:
                    finish(combo, None)
                else:
                    for wcombo in product(*[requests[c] for c in contested]):
                        finish(combo, dict(zip(contested, wcombo)))

        st0 = self.encode(state)
        mask0 = 0
        for i, ci in enumerate(st0):
            if debug and mask0 & occm[i][ci]:
                raise AssertionError(_OVERLAP)
            mask0 |= occm[i][ci]
        # "done"/"freeze" labels are (re)derived by the first round's scan,
        # so the initial labels are simply all-"wait"
        rounds(list(st0), (1 << n) - 1, ["wait"] * n, mask0)

        if len(memo) < self._memo_limit:
            memo[state] = results
        return results
