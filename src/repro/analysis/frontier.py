"""Frontier-parallel BFS: expand whole BFS levels across worker processes.

The explicit-state search is embarrassingly parallel *within* a BFS level:
every state's successor set is a pure function of the state, so a level can
be partitioned into chunks, expanded concurrently, and merged.  The merge
consumes chunk results **in submission order**, which makes the traversal
-- discovery order, ``states_explored``, early-exit counts, cap behaviour
-- bit-identical to the serial search: a serial BFS processes its FIFO
queue level by level, and within a level this merge visits exactly the
same states in exactly the same order.

Execution machinery follows the campaign runner
(:mod:`repro.campaign.runner`): a ``ProcessPoolExecutor`` is created
lazily (only once a level is large enough to be worth shipping out), pool
creation failure or mid-search breakage degrades to in-process expansion
of the remaining chunks, and the pool is always torn down on exit --
including the early-exit paths.  Workers rebuild the
:class:`~repro.analysis.fastpath.FastEngine` for the spec once per process
via :func:`~repro.analysis.fastpath.engine_for` and exchange index-domain
states (flat tuples of small ints), so payloads stay tiny.

Witness searches stay serial: reconstructing a path needs the parent map
of the whole traversal, which would have to cross the process boundary for
every discovered state and erase the win.
"""

from __future__ import annotations

import warnings

from repro.analysis.fastpath import engine_for
from repro.analysis.kernelpath import COUNTERS as _K_COUNTERS
from repro.analysis.state import SystemSpec
from repro.analysis.vectorpath import COUNTERS as _V_COUNTERS
from repro.analysis.vectorpath import vector_engine_for

#: states per worker task; large enough to amortize pickling + dispatch,
#: small enough to pipeline merge work behind expansion work
DEFAULT_CHUNK = 256

#: levels smaller than this expand in-process -- dispatch latency would
#: dominate (early BFS levels hold a handful of states)
MIN_PARALLEL_FRONTIER = 1024


def _expand_chunk(spec: SystemSpec, chunk: list[tuple]) -> list[list]:
    """Worker entry: expand a slice of one BFS level (pure, picklable)."""
    eng = engine_for(spec)
    expand = eng.expand
    return [expand(st) for st in chunk]


def frontier_search(
    spec: SystemSpec,
    *,
    jobs: int,
    max_states: int = 2_000_000,
    symmetry_reduction: bool = True,
    chunk_size: int = DEFAULT_CHUNK,
    engine: str = "fast",
) -> tuple[bool, int]:
    """Parallel deadlock-reachability BFS over ``spec``.

    Returns ``(deadlock_reachable, states_explored)``, bit-identical to
    ``FastEngine.search`` (and therefore to the reference search) for the
    same parameters.  ``jobs`` is the worker-process count; ``jobs <= 1``
    simply runs the serial engine search.

    ``engine="vector"`` and ``engine="kernel"`` do not compose with
    worker processes: the vector engine already expands a whole BFS level
    per step, and the kernel engine runs the entire search as one
    compiled loop, so carving levels into per-state chunks for workers
    would dismantle exactly the batching each exists for.  Rather than
    silently degrading to per-state expansion, the combination is refused
    loudly -- a ``RuntimeWarning`` plus the ``vectorpath.fallback.jobs``
    / ``kernelpath.fallback.jobs`` telemetry counter -- and the engine's
    own serial search runs instead.
    """
    from repro.analysis.reachability import SearchLimitExceeded

    if engine in ("vector", "kernel"):
        if jobs > 1:
            counters = _V_COUNTERS if engine == "vector" else _K_COUNTERS
            counters[f"{engine}path.fallback.jobs"] += 1
            warnings.warn(
                f"--search-jobs={jobs} does not compose with the {engine} "
                "engine (it already batches the whole search); running the "
                f"{engine} search serially",
                RuntimeWarning,
                stacklevel=2,
            )
        if engine == "kernel":
            from repro.analysis.kernelpath import kernel_engine_for

            return kernel_engine_for(spec).search(
                max_states=max_states, symmetry_reduction=symmetry_reduction
            )
        return vector_engine_for(spec).search(
            max_states=max_states, symmetry_reduction=symmetry_reduction
        )

    eng = engine_for(spec)
    if jobs <= 1:
        return eng.search(max_states=max_states, symmetry_reduction=symmetry_reduction)

    canon = eng.canon if symmetry_reduction else None
    expand = eng.expand
    init = eng.init_idx
    visited: set[tuple] = {canon(init) if canon else init}
    count = 1
    frontier: list[tuple] = [init]
    pool = None
    pool_ok = True  # flips off permanently on creation failure or breakage

    try:
        while frontier:
            use_pool = pool_ok and len(frontier) >= MIN_PARALLEL_FRONTIER
            if use_pool and pool is None:
                try:
                    from concurrent.futures import ProcessPoolExecutor

                    pool = ProcessPoolExecutor(max_workers=jobs)
                except Exception:  # noqa: BLE001 - no fork/semaphores here
                    pool_ok = False
                    use_pool = False
            if use_pool:
                chunks = [
                    frontier[lo : lo + chunk_size]
                    for lo in range(0, len(frontier), chunk_size)
                ]
                futures = [pool.submit(_expand_chunk, spec, c) for c in chunks]

                def level_results():
                    nonlocal pool_ok
                    for fi, fut in enumerate(futures):
                        if pool_ok:
                            try:
                                yield from fut.result()
                                continue
                            except Exception:  # noqa: BLE001 - broken pool
                                pool_ok = False
                        # degraded: expansion is pure, so redoing the chunk
                        # in-process yields the identical successor lists
                        for st in chunks[fi]:
                            yield expand(st)

                per_state_lists = level_results()
            else:
                per_state_lists = (expand(st) for st in frontier)

            next_frontier: list[tuple] = []
            push = next_frontier.append
            for successors in per_state_lists:
                for nxt, dead in successors:
                    key = canon(nxt) if canon else nxt
                    if key in visited:
                        continue
                    visited.add(key)
                    count += 1
                    if count > max_states:
                        raise SearchLimitExceeded(
                            f"exceeded {max_states} states; tighten the "
                            "scenario or raise the cap"
                        )
                    if dead:
                        return True, count
                    push(nxt)
            frontier = next_frontier
        return False, count
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
