/* Compiled search kernel: fused BFS over the fastpath transition tables.
 *
 * This is the C twin of the `cc` backend in repro/analysis/kernelpath.py.
 * It ports FastEngine._emissions / FastEngine.search / search_witness
 * (src/repro/analysis/fastpath.py) loop for loop: the same grant-round
 * orchestration (scan, deterministic pre-apply, joint-choice product,
 * mixed-radix arbitration), the same fused visited-dedup at emission
 * time, the same deadlock test, the same count/cap/early-exit semantics.
 * Verdicts, states_explored and witness chains are bit-identical to the
 * reference engine; tests/test_kernelpath_differential.py pins that.
 *
 * Unlike the numpy wave machine (vectorpath.py), channel occupancy here
 * is a fixed-width array of W uint64 words, so specs with more than 62
 * channels need no fallback; message count is bounded by the single
 * uint64 `pending` bitmask (n <= 64).
 *
 * The file is self-contained C99 with no dependencies beyond libc; the
 * Python side compiles it once per toolchain into a disk-cached shared
 * library and calls rk_search through ctypes.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define RK_NOT_FOUND 0
#define RK_FOUND 1
#define RK_LIMIT 2
#define RK_OOM 3

#define RK_ABI_VERSION 1

#ifdef _WIN32
#define RK_EXPORT __declspec(dllexport)
#else
#define RK_EXPORT __attribute__((visibility("default")))
#endif

/* ------------------------------------------------------------------ */
/* multi-word channel masks (W x uint64)                               */
/* ------------------------------------------------------------------ */

static inline int mw_test(const uint64_t *m, int32_t ch) {
    return (int)((m[ch >> 6] >> (ch & 63)) & 1u);
}

static inline void mw_set(uint64_t *m, int32_t ch) {
    m[ch >> 6] |= (uint64_t)1 << (ch & 63);
}

static inline void mw_clear(uint64_t *m, int32_t ch) {
    m[ch >> 6] &= ~((uint64_t)1 << (ch & 63));
}

static inline void mw_zero(uint64_t *m, int32_t W) {
    for (int32_t w = 0; w < W; w++) m[w] = 0;
}

static inline void mw_copy(uint64_t *dst, const uint64_t *src, int32_t W) {
    for (int32_t w = 0; w < W; w++) dst[w] = src[w];
}

static inline int mw_intersects(const uint64_t *a, const uint64_t *b, int32_t W) {
    for (int32_t w = 0; w < W; w++)
        if (a[w] & b[w]) return 1;
    return 0;
}

/* ------------------------------------------------------------------ */
/* growable arenas                                                     */
/* ------------------------------------------------------------------ */

typedef struct {
    int32_t *cfg;      /* size * n per-message state indices            */
    int64_t *parent;   /* size (only when tracking parents)             */
    int64_t size;
    int64_t cap;
} rk_arena;

static int arena_reserve(rk_arena *a, int64_t need, int32_t n, int track) {
    if (need <= a->cap) return 1;
    int64_t cap = a->cap ? a->cap : 1024;
    while (cap < need) cap *= 2;
    int32_t *cfg = (int32_t *)realloc(a->cfg, (size_t)cap * n * sizeof(int32_t));
    if (!cfg) return 0;
    a->cfg = cfg;
    if (track) {
        int64_t *par = (int64_t *)realloc(a->parent, (size_t)cap * sizeof(int64_t));
        if (!par) return 0;
        a->parent = par;
    }
    a->cap = cap;
    return 1;
}

/* ------------------------------------------------------------------ */
/* visited hash set (open addressing over int32 rows)                  */
/* ------------------------------------------------------------------ */

typedef struct {
    int64_t *slots;    /* index into key arena, -1 empty                */
    int64_t nslots;    /* power of two                                  */
    int32_t *keys;     /* used * n                                      */
    int64_t used;
    int64_t keycap;
} rk_set;

static uint64_t row_hash(const int32_t *row, int32_t n) {
    /* FNV-1a over the row bytes, finalized with a xor-shift mix */
    uint64_t h = 1469598103934665603ULL;
    const uint8_t *p = (const uint8_t *)row;
    for (size_t i = 0; i < (size_t)n * sizeof(int32_t); i++) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
}

static int set_init(rk_set *s, int64_t nslots) {
    s->nslots = nslots;
    s->slots = (int64_t *)malloc((size_t)nslots * sizeof(int64_t));
    if (!s->slots) return 0;
    memset(s->slots, 0xff, (size_t)nslots * sizeof(int64_t));
    s->keys = NULL;
    s->used = 0;
    s->keycap = 0;
    return 1;
}

static void set_free(rk_set *s) {
    free(s->slots);
    free(s->keys);
}

static int set_grow(rk_set *s, int32_t n) {
    int64_t nslots = s->nslots * 2;
    int64_t *slots = (int64_t *)malloc((size_t)nslots * sizeof(int64_t));
    if (!slots) return 0;
    memset(slots, 0xff, (size_t)nslots * sizeof(int64_t));
    for (int64_t k = 0; k < s->used; k++) {
        uint64_t h = row_hash(s->keys + k * n, n) & (uint64_t)(nslots - 1);
        while (slots[h] >= 0) h = (h + 1) & (uint64_t)(nslots - 1);
        slots[h] = k;
    }
    free(s->slots);
    s->slots = slots;
    s->nslots = nslots;
    return 1;
}

/* insert row if absent; returns 1 inserted, 0 present, -1 OOM */
static int set_add(rk_set *s, const int32_t *row, int32_t n) {
    if ((s->used + 1) * 2 >= s->nslots && !set_grow(s, n)) return -1;
    uint64_t h = row_hash(row, n) & (uint64_t)(s->nslots - 1);
    while (s->slots[h] >= 0) {
        if (memcmp(s->keys + s->slots[h] * n, row, (size_t)n * sizeof(int32_t)) == 0)
            return 0;
        h = (h + 1) & (uint64_t)(s->nslots - 1);
    }
    if (s->used >= s->keycap) {
        int64_t cap = s->keycap ? s->keycap * 2 : 4096;
        int32_t *keys = (int32_t *)realloc(s->keys, (size_t)cap * n * sizeof(int32_t));
        if (!keys) return -1;
        s->keys = keys;
        s->keycap = cap;
    }
    memcpy(s->keys + s->used * n, row, (size_t)n * sizeof(int32_t));
    s->slots[h] = s->used++;
    return 1;
}

/* ------------------------------------------------------------------ */
/* per-root (cfg, pending) node set: branch-convergence pruning        */
/* ------------------------------------------------------------------ */

typedef struct {
    int64_t *slots;
    int64_t nslots;
    int32_t *cfg;      /* used * n                                      */
    uint64_t *pend;    /* used                                          */
    int64_t used;
    int64_t cap;
} rk_nodeset;

static int nodeset_init(rk_nodeset *s, int64_t nslots) {
    s->nslots = nslots;
    s->slots = (int64_t *)malloc((size_t)nslots * sizeof(int64_t));
    if (!s->slots) return 0;
    memset(s->slots, 0xff, (size_t)nslots * sizeof(int64_t));
    s->cfg = NULL;
    s->pend = NULL;
    s->used = 0;
    s->cap = 0;
    return 1;
}

static void nodeset_free(rk_nodeset *s) {
    free(s->slots);
    free(s->cfg);
    free(s->pend);
}

static void nodeset_reset(rk_nodeset *s) {
    /* cheap per-root reset: the slot table is only cleared when it was
     * touched (the common node expands without ever branching twice) */
    if (s->used)
        memset(s->slots, 0xff, (size_t)s->nslots * sizeof(int64_t));
    s->used = 0;
}

static int nodeset_grow(rk_nodeset *s, int32_t n) {
    int64_t nslots = s->nslots * 2;
    int64_t *slots = (int64_t *)malloc((size_t)nslots * sizeof(int64_t));
    if (!slots) return 0;
    memset(slots, 0xff, (size_t)nslots * sizeof(int64_t));
    for (int64_t k = 0; k < s->used; k++) {
        uint64_t h = (row_hash(s->cfg + k * n, n) ^ (s->pend[k] * 0x9e3779b97f4a7c15ULL))
                     & (uint64_t)(nslots - 1);
        while (slots[h] >= 0) h = (h + 1) & (uint64_t)(nslots - 1);
        slots[h] = k;
    }
    free(s->slots);
    s->slots = slots;
    s->nslots = nslots;
    return 1;
}

static int nodeset_add(rk_nodeset *s, const int32_t *row, uint64_t pend, int32_t n) {
    if ((s->used + 1) * 2 >= s->nslots && !nodeset_grow(s, n)) return -1;
    uint64_t h = (row_hash(row, n) ^ (pend * 0x9e3779b97f4a7c15ULL))
                 & (uint64_t)(s->nslots - 1);
    while (s->slots[h] >= 0) {
        int64_t k = s->slots[h];
        if (s->pend[k] == pend &&
            memcmp(s->cfg + k * n, row, (size_t)n * sizeof(int32_t)) == 0)
            return 0;
        h = (h + 1) & (uint64_t)(s->nslots - 1);
    }
    if (s->used >= s->cap) {
        int64_t cap = s->cap ? s->cap * 2 : 1024;
        int32_t *cfg = (int32_t *)realloc(s->cfg, (size_t)cap * n * sizeof(int32_t));
        if (!cfg) return -1;
        s->cfg = cfg;
        uint64_t *pendarr = (uint64_t *)realloc(s->pend, (size_t)cap * sizeof(uint64_t));
        if (!pendarr) return -1;
        s->pend = pendarr;
        s->cap = cap;
    }
    memcpy(s->cfg + s->used * n, row, (size_t)n * sizeof(int32_t));
    s->pend[s->used] = pend;
    s->slots[h] = s->used++;
    return 1;
}

/* ------------------------------------------------------------------ */
/* expansion node stack                                                */
/* ------------------------------------------------------------------ */

typedef struct {
    int32_t *cfg;      /* cap * n                                       */
    uint64_t *pend;    /* cap                                           */
    uint64_t *mask;    /* cap * W                                       */
    uint8_t *fix;      /* cap: 1 = already at fixpoint, emit directly   */
    int64_t top;
    int64_t cap;
} rk_stack;

static int stack_reserve(rk_stack *s, int64_t need, int32_t n, int32_t W) {
    if (need <= s->cap) return 1;
    int64_t cap = s->cap ? s->cap : 256;
    while (cap < need) cap *= 2;
    int32_t *cfg = (int32_t *)realloc(s->cfg, (size_t)cap * n * sizeof(int32_t));
    if (!cfg) return 0;
    s->cfg = cfg;
    uint64_t *pend = (uint64_t *)realloc(s->pend, (size_t)cap * sizeof(uint64_t));
    if (!pend) return 0;
    s->pend = pend;
    uint64_t *mask = (uint64_t *)realloc(s->mask, (size_t)cap * W * sizeof(uint64_t));
    if (!mask) return 0;
    s->mask = mask;
    uint8_t *fix = (uint8_t *)realloc(s->fix, (size_t)cap);
    if (!fix) return 0;
    s->fix = fix;
    s->cap = cap;
    return 1;
}

/* ------------------------------------------------------------------ */
/* the search context                                                  */
/* ------------------------------------------------------------------ */

typedef struct {
    int32_t n, S, W;
    const int32_t *req_ch;   /* n*S: channel this state waits on, -1    */
    const int8_t *nops;      /* n*S: option count 0..2                  */
    const int32_t *ch0;      /* n*S: option-0 arbitration channel, -1   */
    const int32_t *nxt0;     /* n*S: option-0 successor index           */
    const int32_t *acq0;     /* n*S: option-0 acquired channel, -1      */
    const int32_t *rel0;     /* n*S: option-0 released channel, -1      */
    const int32_t *nxt1;     /* n*S: option-1 successor index           */
    const uint8_t *wait1;    /* n*S: option-1 is wait (1) vs stall (0)  */
    const uint64_t *occ;     /* n*S*W occupancy words                   */
    const int32_t *blk_ch;   /* n*S: deadlock-relevant request, -1      */
    int32_t ncls;            /* symmetry classes (canonicalization)     */
    const int32_t *cls_off;  /* ncls+1 offsets into cls_cols            */
    const int32_t *cls_cols;
    int use_canon;
    int64_t max_states;
    int track;

    rk_arena arena;          /* BFS queue: states in discovery order    */
    rk_set visited;
    rk_nodeset seen;         /* per-root branch-convergence set         */
    rk_stack stack;
    rk_stack kids;           /* forward-order child buffer per branch   */
    int64_t count;

    /* scratch (allocated once; n <= 64 keeps these tiny) */
    int32_t *keybuf;         /* n: canonicalized emission key           */
    int32_t *wait_to;        /* n: deadlock wait-for pointers           */
    int32_t *movers;         /* n */
    int32_t *bmov;           /* n: branching movers                     */
    int32_t *bnxt0, *bacq0, *brel0, *bnxt1, *bch0; /* n: cached options */
    uint8_t *btwo, *bwait1;  /* n */
    int32_t *chose;          /* n: chosen channel per branching mover   */
    uint8_t *cdig;           /* n: chosen option digit per mover (0/1)  */
    int32_t *t_ch;           /* n: contested-channel list               */
    int32_t *t_cnt;          /* n */
    int32_t *t_mem;          /* n*n: requester lists                    */
    int32_t *winner_of;      /* n: winner per contested channel slot    */
    uint64_t *want, *freed, *reqm, *seen1, *seen2, *dupm, *maskbuf;
} rk_ctx;

static void ctx_free(rk_ctx *c) {
    free(c->arena.cfg);
    free(c->arena.parent);
    set_free(&c->visited);
    nodeset_free(&c->seen);
    free(c->stack.cfg); free(c->stack.pend); free(c->stack.mask); free(c->stack.fix);
    free(c->kids.cfg); free(c->kids.pend); free(c->kids.mask); free(c->kids.fix);
    free(c->keybuf); free(c->wait_to); free(c->movers); free(c->bmov);
    free(c->bnxt0); free(c->bacq0); free(c->brel0); free(c->bnxt1); free(c->bch0);
    free(c->btwo); free(c->bwait1); free(c->chose); free(c->cdig);
    free(c->t_ch); free(c->t_cnt); free(c->t_mem); free(c->winner_of);
    free(c->want);
}

static int ctx_alloc(rk_ctx *c) {
    int32_t n = c->n, W = c->W;
    memset(&c->arena, 0, sizeof(c->arena));
    memset(&c->stack, 0, sizeof(c->stack));
    memset(&c->kids, 0, sizeof(c->kids));
    if (!set_init(&c->visited, 1 << 14)) return 0;
    if (!nodeset_init(&c->seen, 1 << 10)) return 0;
    c->keybuf = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    c->wait_to = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    c->movers = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    c->bmov = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    c->bnxt0 = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    c->bacq0 = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    c->brel0 = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    c->bnxt1 = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    c->bch0 = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    c->btwo = (uint8_t *)malloc((size_t)n);
    c->bwait1 = (uint8_t *)malloc((size_t)n);
    c->chose = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    c->cdig = (uint8_t *)malloc((size_t)n);
    c->t_ch = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    c->t_cnt = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    c->t_mem = (int32_t *)malloc((size_t)n * n * sizeof(int32_t));
    c->winner_of = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    /* one block for the 7 W-word scratch masks */
    c->want = (uint64_t *)malloc((size_t)7 * W * sizeof(uint64_t));
    if (!c->keybuf || !c->wait_to || !c->movers || !c->bmov || !c->bnxt0 ||
        !c->bacq0 || !c->brel0 || !c->bnxt1 || !c->bch0 || !c->btwo ||
        !c->bwait1 || !c->chose || !c->cdig || !c->t_ch || !c->t_cnt || !c->t_mem ||
        !c->winner_of || !c->want)
        return 0;
    c->freed = c->want + W;
    c->reqm = c->want + 2 * W;
    c->seen1 = c->want + 3 * W;
    c->seen2 = c->want + 4 * W;
    c->dupm = c->want + 5 * W;
    c->maskbuf = c->want + 6 * W;
    return 1;
}

/* canonicalize cur into keybuf: sort values within each symmetry class */
static const int32_t *canon_key(rk_ctx *c, const int32_t *cur) {
    if (!c->use_canon || c->ncls == 0) return cur;
    memcpy(c->keybuf, cur, (size_t)c->n * sizeof(int32_t));
    for (int32_t t = 0; t < c->ncls; t++) {
        int32_t lo = c->cls_off[t], hi = c->cls_off[t + 1];
        /* insertion sort of keybuf values at columns cls_cols[lo:hi] */
        for (int32_t a = lo + 1; a < hi; a++) {
            int32_t v = c->keybuf[c->cls_cols[a]];
            int32_t b = a - 1;
            while (b >= lo && c->keybuf[c->cls_cols[b]] > v) {
                c->keybuf[c->cls_cols[b + 1]] = c->keybuf[c->cls_cols[b]];
                b--;
            }
            c->keybuf[c->cls_cols[b + 1]] = v;
        }
    }
    return c->keybuf;
}

/* wait-for cycle test; mirrors FastEngine._deadlocked truthiness */
static int is_deadlocked(rk_ctx *c, const int32_t *cur, const uint64_t *mask) {
    int32_t n = c->n, S = c->S, W = c->W;
    int any = 0;
    for (int32_t i = 0; i < n; i++) {
        c->wait_to[i] = -1;
        int32_t rc = c->blk_ch[(int64_t)i * S + cur[i]];
        if (rc < 0 || !mw_test(mask, rc)) continue;
        for (int32_t j = 0; j < n; j++) {
            const uint64_t *oj = c->occ + ((int64_t)j * S + cur[j]) * W;
            if ((oj[rc >> 6] >> (rc & 63)) & 1u) {
                if (j != i) {
                    c->wait_to[i] = j;
                    any = 1;
                }
                break; /* occupancies are disjoint: first owner is the owner */
            }
        }
    }
    if (!any) return 0;
    for (int32_t i = 0; i < n; i++) {
        int32_t p = c->wait_to[i];
        for (int32_t k = 0; k < n && p >= 0; k++) p = c->wait_to[p];
        if (p >= 0) return 1; /* a pointer that survives n hops is cyclic */
    }
    return 0;
}

/* emit one expansion leaf: fused visited-dedup, count/cap, deadlock.
 * Returns RK_NOT_FOUND to continue, RK_FOUND/RK_LIMIT/RK_OOM to stop. */
static int emit(rk_ctx *c, const int32_t *cur, const uint64_t *mask, int64_t root) {
    const int32_t *key = canon_key(c, cur);
    int added = set_add(&c->visited, key, c->n);
    if (added < 0) return RK_OOM;
    if (!added) return RK_NOT_FOUND; /* duplicate: never counted */
    c->count++;
    if (c->count > c->max_states) return RK_LIMIT;
    if (!arena_reserve(&c->arena, c->arena.size + 1, c->n, c->track)) return RK_OOM;
    memcpy(c->arena.cfg + c->arena.size * c->n, cur, (size_t)c->n * sizeof(int32_t));
    if (c->track) c->arena.parent[c->arena.size] = root;
    c->arena.size++;
    if (is_deadlocked(c, cur, mask)) return RK_FOUND;
    return RK_NOT_FOUND;
}

/* expand one root state: the grant-round machine of FastEngine._emissions */
static int expand_root(rk_ctx *c, int64_t root) {
    const int32_t n = c->n, S = c->S, W = c->W;
    rk_stack *st = &c->stack;
    rk_stack *kids = &c->kids;

    nodeset_reset(&c->seen);
    st->top = 0;
    if (!stack_reserve(st, 1, n, W)) return RK_OOM;
    memcpy(st->cfg, c->arena.cfg + root * n, (size_t)n * sizeof(int32_t));
    st->pend[0] = (n == 64) ? ~(uint64_t)0 : (((uint64_t)1 << n) - 1);
    /* root occupancy: OR of the per-message occupancy rows */
    mw_zero(st->mask, W);
    for (int32_t i = 0; i < n; i++) {
        const uint64_t *oi = c->occ + ((int64_t)i * S + st->cfg[i]) * W;
        for (int32_t w = 0; w < W; w++) st->mask[w] |= oi[w];
    }
    st->fix[0] = 0;
    st->top = 1;

    while (st->top > 0) {
        st->top--;
        int32_t *cur = st->cfg + st->top * n;
        uint64_t pending = st->pend[st->top];
        uint64_t *mask = c->maskbuf;
        mw_copy(mask, st->mask + st->top * W, W);
        int fixed = st->fix[st->top];

        int branch = 0;
        int nb = 0;          /* branching movers */
        int pre_moved = 0;

        if (!fixed) {
            for (;;) { /* grant rounds */
                if (!pending) break;
                int nm = 0, multi = 0, clash = 0;
                mw_zero(c->want, W);
                mw_zero(c->reqm, W);
                for (int32_t i = 0; i < n; i++) {
                    if (!((pending >> i) & 1u)) continue;
                    int64_t idx = (int64_t)i * S + cur[i];
                    int32_t rc = c->req_ch[idx];
                    int8_t no = c->nops[idx];
                    if (rc >= 0 && mw_test(mask, rc)) {
                        mw_set(c->want, rc); /* blocked */
                    } else if (no > 0) {
                        c->movers[nm++] = i;
                        if (no > 1) {
                            multi = 1;
                        } else if (rc >= 0) {
                            if (mw_test(c->reqm, rc)) clash = 1;
                            mw_set(c->reqm, rc);
                        }
                    } else {
                        pending &= ~((uint64_t)1 << i); /* done */
                    }
                }
                if (!nm) break;
                if (!multi && !clash) {
                    /* fully deterministic round: apply every mover */
                    mw_zero(c->freed, W);
                    for (int k = 0; k < nm; k++) {
                        int32_t i = c->movers[k];
                        int64_t idx = (int64_t)i * S + cur[i];
                        int32_t acq = c->acq0[idx], rel = c->rel0[idx];
                        cur[i] = c->nxt0[idx];
                        if (acq >= 0) mw_set(mask, acq);
                        if (rel >= 0) {
                            mw_clear(mask, rel);
                            mw_set(c->freed, rel);
                        }
                        pending &= ~((uint64_t)1 << i);
                    }
                    if (!pending || !mw_intersects(c->freed, c->want, W)) break;
                    continue;
                }
                /* channel demand across first options: twice-requested
                 * channels force even single-option movers to branch */
                mw_zero(c->seen1, W);
                mw_zero(c->seen2, W);
                for (int k = 0; k < nm; k++) {
                    int32_t i = c->movers[k];
                    int32_t ch = c->ch0[(int64_t)i * S + cur[i]];
                    if (ch >= 0) {
                        if (mw_test(c->seen1, ch)) mw_set(c->seen2, ch);
                        mw_set(c->seen1, ch);
                    }
                }
                nb = 0;
                mw_zero(c->freed, W);
                for (int k = 0; k < nm; k++) {
                    int32_t i = c->movers[k];
                    int64_t idx = (int64_t)i * S + cur[i];
                    int32_t ch = c->ch0[idx];
                    if (c->nops[idx] > 1 || (ch >= 0 && mw_test(c->seen2, ch))) {
                        c->bmov[nb++] = i;
                        continue;
                    }
                    /* deterministic: pre-apply in place */
                    int32_t acq = c->acq0[idx], rel = c->rel0[idx];
                    cur[i] = c->nxt0[idx];
                    if (acq >= 0) mw_set(mask, acq);
                    if (rel >= 0) {
                        mw_clear(mask, rel);
                        mw_set(c->freed, rel);
                    }
                    pending &= ~((uint64_t)1 << i);
                    pre_moved = 1;
                }
                if (!nb) { /* unreachable in practice: multi/clash imply some */
                    if (!pending || !mw_intersects(c->freed, c->want, W)) break;
                    continue;
                }
                branch = 1;
                break;
            }
        }

        if (!branch) {
            int rc = emit(c, cur, mask, root);
            if (rc != RK_NOT_FOUND) return rc;
            continue;
        }

        /* branching round: joint choices x arbitration winner sets.
         * Children are generated in reference combo order into `kids`,
         * then pushed onto the stack in reverse (LIFO pop order equals
         * the reference's depth-first emission order). */
        for (int k = 0; k < nb; k++) {
            int32_t i = c->bmov[k];
            int64_t idx = (int64_t)i * S + cur[i];
            c->bch0[k] = c->ch0[idx];
            c->bnxt0[k] = c->nxt0[idx];
            c->bacq0[k] = c->acq0[idx];
            c->brel0[k] = c->rel0[idx];
            c->bnxt1[k] = c->nxt1[idx];
            c->bwait1[k] = c->wait1[idx];
            c->btwo[k] = (uint8_t)(c->nops[idx] > 1);
        }
        int64_t ncombo = 1;
        for (int k = 0; k < nb; k++)
            if (c->btwo[k]) ncombo <<= 1;
        kids->top = 0;
        for (int64_t combo = 0; combo < ncombo; combo++) {
            /* digit of mover k: first two-option mover varies slowest */
            int64_t rem = combo;
            int64_t div = ncombo;
            int T = 0; /* contested channels, first-requester order */
            for (int k = 0; k < nb; k++) {
                int choice = 0;
                if (c->btwo[k]) {
                    div >>= 1;
                    choice = (int)((rem / div) & 1);
                }
                c->cdig[k] = (uint8_t)choice;
                int32_t ch = (choice == 0) ? c->bch0[k] : -1;
                c->chose[k] = ch;
                if (ch >= 0) {
                    int t = 0;
                    while (t < T && c->t_ch[t] != ch) t++;
                    if (t == T) {
                        c->t_ch[T] = ch;
                        c->t_cnt[T] = 0;
                        T++;
                    }
                    c->t_mem[t * n + c->t_cnt[t]++] = k; /* bmover slot */
                }
            }
            /* compress to genuinely contested channels, keeping order */
            int Tc = 0;
            for (int t = 0; t < T; t++) {
                if (c->t_cnt[t] > 1) {
                    if (Tc != t) {
                        c->t_ch[Tc] = c->t_ch[t];
                        c->t_cnt[Tc] = c->t_cnt[t];
                        memmove(c->t_mem + Tc * n, c->t_mem + t * n,
                                (size_t)c->t_cnt[t] * sizeof(int32_t));
                    }
                    Tc++;
                }
            }
            int64_t nwin = 1;
            for (int t = 0; t < Tc; t++) nwin *= c->t_cnt[t];
            for (int64_t w = 0; w < nwin; w++) {
                /* mixed-radix winner set: last contested channel varies
                 * fastest, matching product(*requests.values()) */
                int64_t acc = w;
                for (int t = Tc - 1; t >= 0; t--) {
                    c->winner_of[t] = c->t_mem[t * n + (int)(acc % c->t_cnt[t])];
                    acc /= c->t_cnt[t];
                }
                if (!stack_reserve(kids, kids->top + 1, n, W)) return RK_OOM;
                int32_t *nxt = kids->cfg + kids->top * n;
                uint64_t *nmask = kids->mask + kids->top * W;
                memcpy(nxt, cur, (size_t)n * sizeof(int32_t));
                mw_copy(nmask, mask, W);
                uint64_t npend = pending;
                int moved = pre_moved;
                for (int k = 0; k < nb; k++) {
                    int32_t i = c->bmov[k];
                    if (c->cdig[k] == 0) {
                        int32_t ch = c->bch0[k];
                        if (ch >= 0) {
                            /* contested? then only the winner advances */
                            int lost = 0;
                            for (int t = 0; t < Tc; t++) {
                                if (c->t_ch[t] == ch) {
                                    if (c->winner_of[t] != k) lost = 1;
                                    break;
                                }
                            }
                            if (lost) {
                                npend &= ~((uint64_t)1 << i);
                                continue;
                            }
                        }
                        nxt[i] = c->bnxt0[k];
                        npend &= ~((uint64_t)1 << i);
                        moved = 1;
                        if (c->bacq0[k] >= 0) mw_set(nmask, c->bacq0[k]);
                        if (c->brel0[k] >= 0) mw_clear(nmask, c->brel0[k]);
                    } else if (c->bwait1[k]) {
                        /* wait: stays pending, nothing changes */
                    } else {
                        /* stall: state moves, not "moved" */
                        nxt[i] = c->bnxt1[k];
                        npend &= ~((uint64_t)1 << i);
                    }
                }
                if (moved) {
                    int fresh = nodeset_add(&c->seen, nxt, npend, n);
                    if (fresh < 0) return RK_OOM;
                    if (!fresh) continue; /* convergent branch: prune */
                    kids->pend[kids->top] = npend;
                    kids->fix[kids->top] = 0;
                } else {
                    kids->pend[kids->top] = npend;
                    kids->fix[kids->top] = 1; /* fixpoint: emit directly */
                }
                kids->top++;
            }
        }
        /* push children in reverse for depth-first reference order */
        if (!stack_reserve(st, st->top + kids->top, n, W)) return RK_OOM;
        /* NOTE: `cur`/`mask` point into stack/scratch storage that the
         * reserve above may have reallocated; they are dead here. */
        for (int64_t k = kids->top - 1; k >= 0; k--) {
            memcpy(st->cfg + st->top * n, kids->cfg + k * n,
                   (size_t)n * sizeof(int32_t));
            st->pend[st->top] = kids->pend[k];
            mw_copy(st->mask + st->top * W, kids->mask + k * W, W);
            st->fix[st->top] = kids->fix[k];
            st->top++;
        }
    }
    return RK_NOT_FOUND;
}

RK_EXPORT int rk_abi_version(void) { return RK_ABI_VERSION; }

RK_EXPORT void rk_free(void *p) { free(p); }

/* Full BFS; returns RK_* status.  out_count is states_explored (valid for
 * NOT_FOUND / FOUND), out_depth the BFS level count (search() semantics).
 * With track_parents, a FOUND search also returns the init..deadlock
 * chain as a malloc'd (chain_len x n) int32 block the caller must
 * rk_free. */
RK_EXPORT int rk_search(
    int32_t n, int32_t S, int32_t W,
    const int32_t *req_ch, const int8_t *nops,
    const int32_t *ch0, const int32_t *nxt0,
    const int32_t *acq0, const int32_t *rel0,
    const int32_t *nxt1, const uint8_t *wait1,
    const uint64_t *occ, const int32_t *blk_ch,
    const int32_t *init_cfg,
    int32_t ncls, const int32_t *cls_off, const int32_t *cls_cols,
    int32_t use_canon,
    int64_t max_states,
    int32_t track_parents,
    int64_t *out_count, int64_t *out_depth,
    int32_t **out_chain, int64_t *out_chain_len)
{
    if (n < 1 || n > 64) return RK_OOM; /* caller guards; belt and braces */
    rk_ctx c;
    memset(&c, 0, sizeof(c));
    c.n = n; c.S = S; c.W = W;
    c.req_ch = req_ch; c.nops = nops; c.ch0 = ch0; c.nxt0 = nxt0;
    c.acq0 = acq0; c.rel0 = rel0; c.nxt1 = nxt1; c.wait1 = wait1;
    c.occ = occ; c.blk_ch = blk_ch;
    c.ncls = ncls; c.cls_off = cls_off; c.cls_cols = cls_cols;
    c.use_canon = use_canon;
    c.max_states = max_states;
    c.track = track_parents;
    c.count = 1; /* the initial state */
    *out_count = 0;
    *out_depth = 0;
    if (out_chain) *out_chain = NULL;
    if (out_chain_len) *out_chain_len = 0;

    int status = RK_OOM;
    if (!ctx_alloc(&c)) goto done;
    if (!arena_reserve(&c.arena, 1, n, c.track)) goto done;
    memcpy(c.arena.cfg, init_cfg, (size_t)n * sizeof(int32_t));
    if (c.track) c.arena.parent[0] = -1;
    c.arena.size = 1;
    if (set_add(&c.visited, canon_key(&c, init_cfg), n) < 0) goto done;

    int64_t head = 0, boundary = 1, depth = 0;
    status = RK_NOT_FOUND;
    while (head < c.arena.size) {
        status = expand_root(&c, head);
        head++;
        if (status == RK_FOUND) {
            *out_depth = depth + 1;
            break;
        }
        if (status != RK_NOT_FOUND) break; /* limit / oom */
        if (head == boundary) {
            depth++;
            boundary = c.arena.size;
        }
    }
    if (status == RK_NOT_FOUND) *out_depth = depth;
    *out_count = c.count;

    if (status == RK_FOUND && c.track && out_chain && out_chain_len) {
        int64_t len = 0;
        for (int64_t idx = c.arena.size - 1; idx >= 0; idx = c.arena.parent[idx])
            len++;
        int32_t *chain = (int32_t *)malloc((size_t)len * n * sizeof(int32_t));
        if (!chain) {
            status = RK_OOM;
        } else {
            int64_t at = len;
            for (int64_t idx = c.arena.size - 1; idx >= 0;
                 idx = c.arena.parent[idx]) {
                at--;
                memcpy(chain + at * n, c.arena.cfg + idx * n,
                       (size_t)n * sizeof(int32_t));
            }
            *out_chain = chain;
            *out_chain_len = len;
        }
    }

done:
    ctx_free(&c);
    return status;
}
