"""Compiled search kernel: the fourth search engine.

:class:`KernelEngine` runs the same fused expand/arbitrate/dedup/deadlock
BFS as :class:`~repro.analysis.fastpath.FastEngine` -- grant rounds,
deterministic pre-apply, joint-choice enumeration, mixed-radix
arbitration, in-expansion visited dedup, wait-for-cycle test -- but as
**one compiled loop over flat numpy transition tables**, eliminating both
the per-state Python interpretation of the fast engine and the per-level
numpy dispatch of the vector engine.  Verdicts, ``states_explored``
(including the early-exit count and the exact
:class:`~repro.analysis.reachability.SearchLimitExceeded` behaviour) and
witnesses are bit-identical to the reference engine;
``tests/test_kernelpath_differential.py`` pins the four-way contract.

The tables are the fast engine's scan records flattened exactly the way
:class:`~repro.analysis.vectorpath.VectorEngine` flattens them, with two
representation changes that lift the vector engine's width limits:

* channels are stored as **indices** (``int32``, ``-1`` = none) instead
  of single-bit masks, and occupancy masks are ``W``-word ``uint64``
  arrays -- specs with more than 62 channels need no fallback;
* the visited store is an open-addressing hash over raw index rows --
  no packed key, so no key-width limit.  Only the per-state ``pending``
  bitmask bounds the engine: ``n <= 64`` messages (wider specs fall back
  to the fast engine with a structured
  :class:`~repro.analysis.vectorpath.WideSpecFallbackWarning`).

Three interchangeable backends execute the loop (``REPRO_KERNEL_BACKEND``
or the ``backend=`` argument; ``auto`` picks the first available):

``numba``
    :func:`_core_search` compiled with ``numba.njit``.  numba is an
    optional extra (``pip install repro[kernel]``); imports never
    hard-fail without it.
``cc``
    ``_kernel.c`` (same directory) -- a C99 port of the identical loop --
    compiled on first use with the system C compiler into a shared
    library cached on disk keyed by source hash, called through
    :mod:`ctypes`.
``python``
    :func:`_core_search` interpreted.  Slow, but always available: it is
    the no-dependency floor that keeps the engine importable and lets the
    numba-source logic be pinned by tests on machines without numba.

Witness searches track a parent per arena slot and recover action labels
after the fact by re-expanding only the chain states through
``successors_full``, the same scheme the fast and vector engines use.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
import warnings
from pathlib import Path

import numpy as np

from repro.analysis.fastpath import FastEngine, engine_for
from repro.analysis.state import SystemSpec

#: widest message count the single-``uint64`` pending bitmask covers;
#: beyond it the engine delegates to the fast engine wholesale
MAX_KERNEL_MSGS = 64

_KENGINE_CACHE_LIMIT = 64
_KENGINES: dict[SystemSpec, "KernelEngine"] = {}

#: cumulative counters, read by the telemetry layer (repro.obs) via
#: snapshot deltas around a search
COUNTERS: dict[str, int] = {
    "kernelpath.engine_cache.hits": 0,
    "kernelpath.engine_cache.misses": 0,
    "kernelpath.searches.numba": 0,
    "kernelpath.searches.cc": 0,
    "kernelpath.searches.python": 0,
    "kernelpath.fallback.searches": 0,
    "kernelpath.fallback.jobs": 0,
    "kernelpath.cc.compiles": 0,
    "kernelpath.cc.cache_hits": 0,
    "kernelpath.cc.errors": 0,
}

_STATUS_NOT_FOUND = 0
_STATUS_FOUND = 1
_STATUS_LIMIT = 2
_STATUS_OOM = 3

_LIMIT_MSG = "exceeded {max_states} states; tighten the scenario or raise the cap"


def counters_snapshot() -> dict[str, int]:
    """A copy of :data:`COUNTERS` (diff two to meter one search)."""
    return dict(COUNTERS)


# ----------------------------------------------------------------------
# numba tier: optional decoration of the shared core
# ----------------------------------------------------------------------
try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    HAVE_NUMBA = True
except Exception:  # ImportError, or a broken numba install
    HAVE_NUMBA = False

    def _njit(*args, **kwargs):  # type: ignore[misc]
        """No-op ``@njit`` stand-in: the core runs interpreted."""
        if args and callable(args[0]):
            return args[0]

        def deco(fn):
            return fn

        return deco


_U0 = np.uint64(0)
_U1 = np.uint64(1)
_U33 = np.uint64(33)
_FNV_OFF = np.uint64(0xCBF29CE484222325)
_FNV_PRM = np.uint64(0x100000001B3)
_MIX = np.uint64(0xFF51AFD7ED558CCD)


@_njit(cache=True)
def _hash_row(row, n):
    """FNV-1a over ``n`` int32 values with a xor-shift finalizer."""
    h = _FNV_OFF
    for j in range(n):
        h = (h ^ np.uint64(row[j])) * _FNV_PRM
    h ^= h >> _U33
    h *= _MIX
    h ^= h >> _U33
    return h


@_njit(cache=True)
def _hash_node(cfg_row, pend_row, n):
    """Hash of a ``(configuration, pending)`` wave node."""
    h = _FNV_OFF
    for j in range(n):
        h = (h ^ np.uint64(cfg_row[j])) * _FNV_PRM
    for j in range(n):
        h = (h ^ np.uint64(pend_row[j])) * _FNV_PRM
    h ^= h >> _U33
    h *= _MIX
    h ^= h >> _U33
    return h


@_njit(cache=True)
def _vgrow(vslots, vkeys, vused, n):
    """Double the visited slot table, rehashing the live keys."""
    nslots = np.full(vslots.size * 2, -1, np.int64)
    m = np.uint64(nslots.size - 1)
    for k in range(vused):
        h = _hash_row(vkeys[k], n) & m
        while nslots[h] >= 0:
            h = (h + _U1) & m
        nslots[h] = k
    return nslots


@_njit(cache=True)
def _sgrow(sslots, s_cfg, s_pend, sused, n):
    """Double the wave-node slot table, rehashing the live nodes."""
    nslots = np.full(sslots.size * 2, -1, np.int64)
    m = np.uint64(nslots.size - 1)
    for k in range(sused):
        h = _hash_node(s_cfg[k], s_pend[k], n) & m
        while nslots[h] >= 0:
            h = (h + _U1) & m
        nslots[h] = k
    return nslots


@_njit(cache=True)
def _canon_into(keybuf, cur, off, n, ncls, cls_off, cls_cols):
    """``keybuf`` = ``cur[off:off+n]`` canonicalized (sort within class)."""
    for j in range(n):
        keybuf[j] = cur[off + j]
    for t in range(ncls):
        lo = cls_off[t]
        hi = cls_off[t + 1]
        for a in range(lo + 1, hi):
            v = keybuf[cls_cols[a]]
            b = a - 1
            while b >= lo and keybuf[cls_cols[b]] > v:
                keybuf[cls_cols[b + 1]] = keybuf[cls_cols[b]]
                b -= 1
            keybuf[cls_cols[b + 1]] = v


@_njit(cache=True)
def _deadlocked(cur, off, mask, wait_to, n, S, W, blk_ch, occ):
    """Wait-for cycle existence (mirrors ``FastEngine._deadlocked``)."""
    anyb = False
    for i in range(n):
        wait_to[i] = -1
        rc = blk_ch[i * S + cur[off + i]]
        if rc < 0:
            continue
        if (mask[rc >> 6] >> np.uint64(rc & 63)) & _U1 == _U0:
            continue
        for j in range(n):
            ob = occ[(j * S + cur[off + j]) * W + (rc >> 6)]
            if (ob >> np.uint64(rc & 63)) & _U1 != _U0:
                if j != i:
                    wait_to[i] = j
                    anyb = True
                break  # occupancies are disjoint: first owner is the owner
    if not anyb:
        return False
    for i in range(n):
        p = wait_to[i]
        k = 0
        while k < n and p >= 0:
            p = wait_to[p]
            k += 1
        if p >= 0:
            return True  # a pointer that survives n hops is cyclic
    return False


@_njit(cache=True)
def _core_search(
    n,
    S,
    W,
    req_ch,
    nops,
    ch0,
    nxt0,
    acq0,
    rel0,
    nxt1,
    wait1,
    occ,
    blk_ch,
    init_cfg,
    ncls,
    cls_off,
    cls_cols,
    use_canon,
    max_states,
    track,
):
    """Fused BFS over the flat tables; the loop ``_kernel.c`` also runs.

    Returns ``(status, count, depth, arena_cfg, arena_parent, arena_size)``
    with the :data:`_STATUS_NOT_FOUND`/``FOUND``/``LIMIT`` codes of the C
    kernel.  ``arena_cfg[:arena_size]`` holds every counted state in
    discovery order (the found deadlock last); ``arena_parent`` maps each
    to its BFS parent slot (``-1`` for the initial state) when ``track``.

    The body is a transliteration of ``rk_search`` in ``_kernel.c``:
    per-message state indices in flat int32 rows, occupancy as ``W``-word
    ``uint64`` masks, visited as open addressing over raw rows, and the
    exact grant-round orchestration of ``FastEngine._emissions``.  It is
    nopython-compatible, so ``numba.njit`` compiles it unchanged.
    """
    # --- visited: open-addressing hash over canonical rows ---
    vslots = np.full(1 << 14, -1, np.int64)
    vkeys = np.empty((4096, n), np.int32)
    vused = 0
    # --- arena: every counted state, discovery order (doubles as queue) ---
    ar_cap = 1024
    ar_cfg = np.empty((ar_cap, n), np.int32)
    ar_par = np.empty(ar_cap if track else 1, np.int64)
    ar_size = 0
    # --- per-root expansion stack + forward-order child buffer ---
    st_cap = 256
    st_cfg = np.empty((st_cap, n), np.int32)
    st_pend = np.empty((st_cap, n), np.uint8)
    st_mask = np.empty((st_cap, W), np.uint64)
    st_fix = np.empty(st_cap, np.uint8)
    kd_cap = 64
    kd_cfg = np.empty((kd_cap, n), np.int32)
    kd_pend = np.empty((kd_cap, n), np.uint8)
    kd_mask = np.empty((kd_cap, W), np.uint64)
    kd_fix = np.empty(kd_cap, np.uint8)
    # --- per-root (cfg, pending) node set: branch-convergence pruning ---
    sslots = np.full(1 << 10, -1, np.int64)
    s_cfg = np.empty((512, n), np.int32)
    s_pend = np.empty((512, n), np.uint8)
    sused = 0
    # --- scratch ---
    keybuf = np.empty(n, np.int32)
    wait_to = np.empty(n, np.int64)
    movers = np.empty(n, np.int64)
    bmov = np.empty(n, np.int64)
    bch0 = np.empty(n, np.int32)
    bnxt0 = np.empty(n, np.int32)
    bacq0 = np.empty(n, np.int32)
    brel0 = np.empty(n, np.int32)
    bnxt1 = np.empty(n, np.int32)
    bwait1 = np.empty(n, np.uint8)
    btwo = np.empty(n, np.uint8)
    chose = np.empty(n, np.int32)
    cdig = np.empty(n, np.uint8)
    t_ch = np.empty(n, np.int32)
    t_cnt = np.empty(n, np.int64)
    t_mem = np.empty(n * n, np.int64)
    winner_of = np.empty(n, np.int64)
    want = np.empty(W, np.uint64)
    freed = np.empty(W, np.uint64)
    reqm = np.empty(W, np.uint64)
    seen1 = np.empty(W, np.uint64)
    seen2 = np.empty(W, np.uint64)
    mask = np.empty(W, np.uint64)

    count = np.int64(1)
    depth = np.int64(0)
    status = _STATUS_NOT_FOUND

    for j in range(n):
        ar_cfg[0, j] = init_cfg[j]
    if track:
        ar_par[0] = -1
    ar_size = 1
    # seed visited with the canonical initial state
    if use_canon:
        _canon_into(keybuf, init_cfg, 0, n, ncls, cls_off, cls_cols)
    else:
        for j in range(n):
            keybuf[j] = init_cfg[j]
    h = _hash_row(keybuf, n) & np.uint64(vslots.size - 1)
    vslots[h] = 0
    for j in range(n):
        vkeys[0, j] = keybuf[j]
    vused = 1

    head = np.int64(0)
    boundary = np.int64(1)
    stop = False
    while head < ar_size and not stop:
        # ---- expand one root ----
        if sused > 0:  # cheap per-root reset of the wave-node set
            sslots[:] = -1
            sused = 0
        for j in range(n):
            st_cfg[0, j] = ar_cfg[head, j]
            st_pend[0, j] = 1
        for w in range(W):
            mask[w] = _U0
        for i in range(n):
            base = (i * S + ar_cfg[head, i]) * W
            for w in range(W):
                mask[w] |= occ[base + w]
        for w in range(W):
            st_mask[0, w] = mask[w]
        st_fix[0] = 0
        top = 1
        while top > 0 and not stop:
            top -= 1
            cur = st_cfg[top]
            pend = st_pend[top]
            for w in range(W):
                mask[w] = st_mask[top, w]
            fixed = st_fix[top] != 0

            branch = False
            nb = 0
            pre_moved = False
            if not fixed:
                while True:  # grant rounds
                    pending_any = False
                    for i in range(n):
                        if pend[i] != 0:
                            pending_any = True
                            break
                    if not pending_any:
                        break
                    nm = 0
                    multi = False
                    clash = False
                    for w in range(W):
                        want[w] = _U0
                        reqm[w] = _U0
                    for i in range(n):
                        if pend[i] == 0:
                            continue
                        idx = i * S + cur[i]
                        rc = req_ch[idx]
                        no = nops[idx]
                        if rc >= 0 and (
                            (mask[rc >> 6] >> np.uint64(rc & 63)) & _U1 != _U0
                        ):
                            want[rc >> 6] |= _U1 << np.uint64(rc & 63)  # blocked
                        elif no > 0:
                            movers[nm] = i
                            nm += 1
                            if no > 1:
                                multi = True
                            elif rc >= 0:
                                if (reqm[rc >> 6] >> np.uint64(rc & 63)) & _U1 != _U0:
                                    clash = True
                                reqm[rc >> 6] |= _U1 << np.uint64(rc & 63)
                        else:
                            pend[i] = 0  # done
                    if nm == 0:
                        break
                    if not multi and not clash:
                        # fully deterministic round: apply every mover
                        for w in range(W):
                            freed[w] = _U0
                        for k in range(nm):
                            i = movers[k]
                            idx = i * S + cur[i]
                            acq = acq0[idx]
                            rel = rel0[idx]
                            cur[i] = nxt0[idx]
                            if acq >= 0:
                                mask[acq >> 6] |= _U1 << np.uint64(acq & 63)
                            if rel >= 0:
                                mask[rel >> 6] &= ~(_U1 << np.uint64(rel & 63))
                                freed[rel >> 6] |= _U1 << np.uint64(rel & 63)
                            pend[i] = 0
                        pending_any = False
                        for i in range(n):
                            if pend[i] != 0:
                                pending_any = True
                                break
                        hit = False
                        for w in range(W):
                            if freed[w] & want[w] != _U0:
                                hit = True
                                break
                        if not pending_any or not hit:
                            break
                        continue
                    # channel demand across first options: twice-requested
                    # channels force single-option movers to branch too
                    for w in range(W):
                        seen1[w] = _U0
                        seen2[w] = _U0
                    for k in range(nm):
                        i = movers[k]
                        ch = ch0[i * S + cur[i]]
                        if ch >= 0:
                            b = _U1 << np.uint64(ch & 63)
                            if seen1[ch >> 6] & b != _U0:
                                seen2[ch >> 6] |= b
                            seen1[ch >> 6] |= b
                    nb = 0
                    for w in range(W):
                        freed[w] = _U0
                    for k in range(nm):
                        i = movers[k]
                        idx = i * S + cur[i]
                        ch = ch0[idx]
                        if nops[idx] > 1 or (
                            ch >= 0
                            and (seen2[ch >> 6] >> np.uint64(ch & 63)) & _U1 != _U0
                        ):
                            bmov[nb] = i
                            nb += 1
                            continue
                        # deterministic: pre-apply in place
                        acq = acq0[idx]
                        rel = rel0[idx]
                        cur[i] = nxt0[idx]
                        if acq >= 0:
                            mask[acq >> 6] |= _U1 << np.uint64(acq & 63)
                        if rel >= 0:
                            mask[rel >> 6] &= ~(_U1 << np.uint64(rel & 63))
                            freed[rel >> 6] |= _U1 << np.uint64(rel & 63)
                        pend[i] = 0
                        pre_moved = True
                    if nb == 0:  # unreachable in practice: multi/clash
                        pending_any = False
                        for i in range(n):
                            if pend[i] != 0:
                                pending_any = True
                                break
                        hit = False
                        for w in range(W):
                            if freed[w] & want[w] != _U0:
                                hit = True
                                break
                        if not pending_any or not hit:
                            break
                        continue
                    branch = True
                    break

            if not branch:
                # ---- emit: fused dedup, count/cap, deadlock test ----
                if use_canon:
                    _canon_into(keybuf, cur, 0, n, ncls, cls_off, cls_cols)
                else:
                    for j in range(n):
                        keybuf[j] = cur[j]
                if (vused + 1) * 2 >= vslots.size:
                    vslots = _vgrow(vslots, vkeys, vused, n)
                hm = np.uint64(vslots.size - 1)
                h = _hash_row(keybuf, n) & hm
                present = False
                while vslots[h] >= 0:
                    k = vslots[h]
                    same = True
                    for j in range(n):
                        if vkeys[k, j] != keybuf[j]:
                            same = False
                            break
                    if same:
                        present = True
                        break
                    h = (h + _U1) & hm
                if present:
                    continue  # duplicate: never counted
                if vused >= vkeys.shape[0]:
                    nk = np.empty((vkeys.shape[0] * 2, n), np.int32)
                    nk[:vused] = vkeys[:vused]
                    vkeys = nk
                for j in range(n):
                    vkeys[vused, j] = keybuf[j]
                vslots[h] = vused
                vused += 1
                count += 1
                if count > max_states:
                    status = _STATUS_LIMIT
                    stop = True
                    continue
                if ar_size >= ar_cap:
                    ar_cap *= 2
                    na = np.empty((ar_cap, n), np.int32)
                    na[:ar_size] = ar_cfg[:ar_size]
                    ar_cfg = na
                    if track:
                        npa = np.empty(ar_cap, np.int64)
                        npa[:ar_size] = ar_par[:ar_size]
                        ar_par = npa
                for j in range(n):
                    ar_cfg[ar_size, j] = cur[j]
                if track:
                    ar_par[ar_size] = head
                ar_size += 1
                if _deadlocked(cur, 0, mask, wait_to, n, S, W, blk_ch, occ):
                    status = _STATUS_FOUND
                    stop = True
                continue

            # ---- branching round: joint choices x arbitration winners ----
            for k in range(nb):
                i = bmov[k]
                idx = i * S + cur[i]
                bch0[k] = ch0[idx]
                bnxt0[k] = nxt0[idx]
                bacq0[k] = acq0[idx]
                brel0[k] = rel0[idx]
                bnxt1[k] = nxt1[idx]
                bwait1[k] = wait1[idx]
                btwo[k] = 1 if nops[idx] > 1 else 0
            ncombo = np.int64(1)
            for k in range(nb):
                if btwo[k] != 0:
                    ncombo <<= 1
            ktop = 0
            for combo in range(ncombo):
                # digit of mover k: the first two-option mover varies
                # slowest, matching product(*bopts)
                div = ncombo
                T = 0
                for k in range(nb):
                    choice = 0
                    if btwo[k] != 0:
                        div >>= 1
                        choice = (combo // div) & 1
                    cdig[k] = choice
                    ch = bch0[k] if choice == 0 else np.int32(-1)
                    chose[k] = ch
                    if ch >= 0:
                        t = 0
                        while t < T and t_ch[t] != ch:
                            t += 1
                        if t == T:
                            t_ch[T] = ch
                            t_cnt[T] = 0
                            T += 1
                        t_mem[t * n + t_cnt[t]] = k  # bmover slot
                        t_cnt[t] += 1
                # compress to genuinely contested channels, keeping order
                Tc = 0
                for t in range(T):
                    if t_cnt[t] > 1:
                        if Tc != t:
                            t_ch[Tc] = t_ch[t]
                            t_cnt[Tc] = t_cnt[t]
                            for q in range(t_cnt[t]):
                                t_mem[Tc * n + q] = t_mem[t * n + q]
                        Tc += 1
                nwin = np.int64(1)
                for t in range(Tc):
                    nwin *= t_cnt[t]
                for wsel in range(nwin):
                    # mixed-radix winner set: last contested channel varies
                    # fastest, matching product(*requests.values())
                    acc = wsel
                    for t in range(Tc - 1, -1, -1):
                        winner_of[t] = t_mem[t * n + (acc % t_cnt[t])]
                        acc //= t_cnt[t]
                    if ktop >= kd_cap:
                        kd_cap *= 2
                        nc = np.empty((kd_cap, n), np.int32)
                        nc[:ktop] = kd_cfg[:ktop]
                        kd_cfg = nc
                        npd = np.empty((kd_cap, n), np.uint8)
                        npd[:ktop] = kd_pend[:ktop]
                        kd_pend = npd
                        nmk = np.empty((kd_cap, W), np.uint64)
                        nmk[:ktop] = kd_mask[:ktop]
                        kd_mask = nmk
                        nf = np.empty(kd_cap, np.uint8)
                        nf[:ktop] = kd_fix[:ktop]
                        kd_fix = nf
                    nxt = kd_cfg[ktop]
                    npend = kd_pend[ktop]
                    nmask = kd_mask[ktop]
                    for j in range(n):
                        nxt[j] = cur[j]
                        npend[j] = pend[j]
                    for w in range(W):
                        nmask[w] = mask[w]
                    moved = pre_moved
                    for k in range(nb):
                        i = bmov[k]
                        if cdig[k] == 0:
                            ch = bch0[k]
                            if ch >= 0:
                                lost = False
                                for t in range(Tc):
                                    if t_ch[t] == ch:
                                        if winner_of[t] != k:
                                            lost = True
                                        break
                                if lost:
                                    npend[i] = 0  # lost arbitration
                                    continue
                            nxt[i] = bnxt0[k]
                            npend[i] = 0
                            moved = True
                            if bacq0[k] >= 0:
                                nmask[bacq0[k] >> 6] |= _U1 << np.uint64(
                                    bacq0[k] & 63
                                )
                            if brel0[k] >= 0:
                                nmask[brel0[k] >> 6] &= ~(
                                    _U1 << np.uint64(brel0[k] & 63)
                                )
                        elif bwait1[k] != 0:
                            pass  # wait: stays pending, nothing changes
                        else:
                            nxt[i] = bnxt1[k]  # stall: moves, not "moved"
                            npend[i] = 0
                    if moved:
                        # branch-convergence pruning on (cfg, pending)
                        if (sused + 1) * 2 >= sslots.size:
                            sslots = _sgrow(sslots, s_cfg, s_pend, sused, n)
                        sm = np.uint64(sslots.size - 1)
                        h = _hash_node(nxt, npend, n) & sm
                        dup = False
                        while sslots[h] >= 0:
                            k2 = sslots[h]
                            same = True
                            for j in range(n):
                                if s_cfg[k2, j] != nxt[j] or s_pend[k2, j] != npend[j]:
                                    same = False
                                    break
                            if same:
                                dup = True
                                break
                            h = (h + _U1) & sm
                        if dup:
                            continue
                        if sused >= s_cfg.shape[0]:
                            nc2 = np.empty((s_cfg.shape[0] * 2, n), np.int32)
                            nc2[:sused] = s_cfg[:sused]
                            s_cfg = nc2
                            np2 = np.empty((s_pend.shape[0] * 2, n), np.uint8)
                            np2[:sused] = s_pend[:sused]
                            s_pend = np2
                        for j in range(n):
                            s_cfg[sused, j] = nxt[j]
                            s_pend[sused, j] = npend[j]
                        sslots[h] = sused
                        sused += 1
                        kd_fix[ktop] = 0
                    else:
                        kd_fix[ktop] = 1  # fixpoint: emit directly
                    ktop += 1
            # push children in reverse for depth-first reference order
            while top + ktop > st_cap:
                st_cap *= 2
                nc3 = np.empty((st_cap, n), np.int32)
                nc3[: top] = st_cfg[:top]
                st_cfg = nc3
                np3 = np.empty((st_cap, n), np.uint8)
                np3[:top] = st_pend[:top]
                st_pend = np3
                nm3 = np.empty((st_cap, W), np.uint64)
                nm3[:top] = st_mask[:top]
                st_mask = nm3
                nf3 = np.empty(st_cap, np.uint8)
                nf3[:top] = st_fix[:top]
                st_fix = nf3
            for k in range(ktop - 1, -1, -1):
                for j in range(n):
                    st_cfg[top, j] = kd_cfg[k, j]
                    st_pend[top, j] = kd_pend[k, j]
                for w in range(W):
                    st_mask[top, w] = kd_mask[k, w]
                st_fix[top] = kd_fix[k]
                top += 1
        # ---- root done ----
        if stop:
            if status == _STATUS_FOUND:
                depth += 1
            break
        head += 1
        if head == boundary:
            depth += 1
            boundary = ar_size
    return status, count, depth, ar_cfg, ar_par, ar_size


#: the interpreted core: numba's ``py_func`` when decorated, else itself
_core_py = _core_search.py_func if HAVE_NUMBA else _core_search


# ----------------------------------------------------------------------
# cc tier: runtime-compiled shared library through ctypes
# ----------------------------------------------------------------------
_CC_SRC = Path(__file__).with_name("_kernel.c")
_CC_ABI = 1
_cc_lib: ctypes.CDLL | None = None
_cc_tried = False


def _cc_cache_dir() -> Path:
    env = os.environ.get("REPRO_KERNEL_CACHE")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    try:
        base.mkdir(parents=True, exist_ok=True)
    except OSError:  # pragma: no cover - unwritable home
        base = Path(tempfile.gettempdir())
    return base / "repro-kernel"


def _cc_compiler() -> str | None:
    env = os.environ.get("REPRO_CC")
    if env:
        return env if shutil.which(env) else None
    for cand in ("cc", "gcc", "clang"):
        if shutil.which(cand):
            return cand
    return None


def _load_cc_lib() -> ctypes.CDLL | None:
    """The compiled C kernel, building (and disk-caching) it on first use.

    Returns ``None`` -- never raises -- when no C compiler is available,
    compilation fails, or the cached library's ABI does not match; the
    caller falls through to the next backend.
    """
    global _cc_lib, _cc_tried
    if _cc_tried:
        return _cc_lib
    _cc_tried = True
    try:
        code = _CC_SRC.read_bytes()
    except OSError:  # pragma: no cover - broken install
        COUNTERS["kernelpath.cc.errors"] += 1
        return None
    tag = hashlib.sha256(code).hexdigest()[:16]
    suffix = "dll" if sys.platform == "win32" else "so"
    so = _cc_cache_dir() / f"repro_kernel_{tag}.{suffix}"
    if not so.exists():
        comp = _cc_compiler()
        if comp is None:
            COUNTERS["kernelpath.cc.errors"] += 1
            return None
        try:
            so.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(suffix=f".{suffix}", dir=str(so.parent))
            os.close(fd)
            cmd = [comp, "-O2", "-fPIC", "-shared", "-o", tmp, str(_CC_SRC)]
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=120
            )
            if proc.returncode != 0:
                os.unlink(tmp)
                COUNTERS["kernelpath.cc.errors"] += 1
                return None
            os.replace(tmp, so)  # atomic: concurrent builders race safely
            COUNTERS["kernelpath.cc.compiles"] += 1
        except (OSError, subprocess.SubprocessError):
            COUNTERS["kernelpath.cc.errors"] += 1
            return None
    else:
        COUNTERS["kernelpath.cc.cache_hits"] += 1
    try:
        lib = ctypes.CDLL(str(so))
        lib.rk_abi_version.restype = ctypes.c_int
        if lib.rk_abi_version() != _CC_ABI:
            COUNTERS["kernelpath.cc.errors"] += 1
            return None
        lib.rk_search.restype = ctypes.c_int
        lib.rk_free.restype = None
        lib.rk_free.argtypes = [ctypes.c_void_p]
    except OSError:  # pragma: no cover - corrupt cache entry
        COUNTERS["kernelpath.cc.errors"] += 1
        return None
    _cc_lib = lib
    return lib


_BACKENDS = ("numba", "cc", "python")


def resolve_backend(name: str | None = None) -> str:
    """The backend a search would run on (env/arg ``auto`` resolved).

    Raises :class:`ValueError` for unknown names and :class:`RuntimeError`
    when an explicitly requested accelerated backend is unavailable;
    ``auto`` never fails (the python tier always exists).
    """
    want = name or os.environ.get("REPRO_KERNEL_BACKEND", "auto")
    if want not in _BACKENDS + ("auto",):
        raise ValueError(
            f"unknown kernel backend {want!r}; use 'numba', 'cc', "
            "'python' or 'auto'"
        )
    if want == "numba":
        if not HAVE_NUMBA:
            raise RuntimeError(
                "kernel backend 'numba' requested but numba is not "
                "installed (pip install repro[kernel])"
            )
        return "numba"
    if want == "cc":
        if _load_cc_lib() is None:
            raise RuntimeError(
                "kernel backend 'cc' requested but no C compiler / cached "
                "library is available"
            )
        return "cc"
    if want == "python":
        return "python"
    # auto: first accelerated tier that resolves, else interpreted
    if HAVE_NUMBA:
        return "numba"
    if _load_cc_lib() is not None:
        return "cc"
    return "python"


def kernel_available() -> bool:
    """True when an **accelerated** backend (numba or cc) would run.

    The interpreted python tier keeps :class:`KernelEngine` importable and
    correct everywhere, but it is slower than the fast engine -- so the
    ``auto`` *engine* selector only picks the kernel when this holds.
    """
    try:
        return resolve_backend() != "python"
    except (ValueError, RuntimeError):  # pragma: no cover - bad env value
        return False


def kernel_engine_for(spec: SystemSpec) -> "KernelEngine":
    """The (cached) kernel engine for ``spec``."""
    eng = _KENGINES.get(spec)
    if eng is None:
        COUNTERS["kernelpath.engine_cache.misses"] += 1
        if len(_KENGINES) >= _KENGINE_CACHE_LIMIT:
            _KENGINES.clear()
        eng = KernelEngine(spec)
        _KENGINES[spec] = eng
    else:
        COUNTERS["kernelpath.engine_cache.hits"] += 1
    return eng


def peek_engine(spec: SystemSpec) -> "KernelEngine | None":
    """The cached engine for ``spec``, without counting a cache hit/miss
    (telemetry peeks must not disturb the metered counters)."""
    return _KENGINES.get(spec)


class KernelEngine:
    """Compiled fused BFS over flat numpy transition tables."""

    def __init__(self, spec: SystemSpec, *, fast: FastEngine | None = None) -> None:
        self.spec = spec
        self.fast = fast if fast is not None else engine_for(spec)
        f = self.fast
        self._n = f._n
        self.num_bits = f.num_bits
        n = self._n
        #: False when the spec exceeds the single-uint64 pending bitmask;
        #: every search then delegates to the fast engine (counted, and
        #: warned about, in COUNTERS / WideSpecFallbackWarning)
        self.kernelizable = 1 <= n <= MAX_KERNEL_MSGS
        #: BFS levels of the most recent :meth:`search` (telemetry only)
        self.last_search_depth: int | None = None
        #: backend the most recent search ran on (telemetry only)
        self.last_backend: str | None = None
        #: per-phase wall seconds of the most recent search -- ``kernel``
        #: (the compiled call) and, for witness searches, ``witness`` (the
        #: Python-side path recovery).  Populated only when telemetry is
        #: enabled; the gate is checked once per search.
        self.phase_seconds: dict[str, float] = {}
        if not self.kernelizable:
            return
        S = max(len(f._back[i]) for i in range(n))
        self._S = S
        W = max(1, (f.num_bits + 63) // 64)
        self._W = W
        t_req = np.full((n, S), -1, np.int32)
        t_nops = np.zeros((n, S), np.int8)
        t_ch0 = np.full((n, S), -1, np.int32)
        t_nxt0 = np.zeros((n, S), np.int32)
        t_acq0 = np.full((n, S), -1, np.int32)
        t_rel0 = np.full((n, S), -1, np.int32)
        t_nxt1 = np.zeros((n, S), np.int32)
        t_wait1 = np.zeros((n, S), np.uint8)
        t_occ = np.zeros((n, S, W), np.uint64)
        t_blk = np.full((n, S), -1, np.int32)
        wmask = (1 << 64) - 1
        for i in range(n):
            scan_i = f._scan[i]
            occ_i = f._occm[i]
            blk_i = f._blk[i]
            for ci in range(len(scan_i)):
                req, opts = scan_i[ci]
                if req:
                    t_req[i, ci] = req.bit_length() - 1
                if blk_i[ci]:
                    t_blk[i, ci] = blk_i[ci].bit_length() - 1
                ob = occ_i[ci]
                for w in range(W):
                    t_occ[i, ci, w] = (ob >> (64 * w)) & wmask
                t_nops[i, ci] = len(opts)
                if opts:
                    _lab, chan, nci, acq, rel = opts[0]
                    if chan is not None:
                        t_ch0[i, ci] = chan.bit_length() - 1
                    t_nxt0[i, ci] = nci
                    if acq:
                        t_acq0[i, ci] = acq.bit_length() - 1
                    if rel:
                        t_rel0[i, ci] = rel.bit_length() - 1
                if len(opts) > 1:
                    lab1, _c1, nci1, _a1, _r1 = opts[1]
                    t_nxt1[i, ci] = nci1
                    t_wait1[i, ci] = 1 if lab1 == "wait" else 0
        self._t_req = np.ascontiguousarray(t_req.reshape(-1))
        self._t_nops = np.ascontiguousarray(t_nops.reshape(-1))
        self._t_ch0 = np.ascontiguousarray(t_ch0.reshape(-1))
        self._t_nxt0 = np.ascontiguousarray(t_nxt0.reshape(-1))
        self._t_acq0 = np.ascontiguousarray(t_acq0.reshape(-1))
        self._t_rel0 = np.ascontiguousarray(t_rel0.reshape(-1))
        self._t_nxt1 = np.ascontiguousarray(t_nxt1.reshape(-1))
        self._t_wait1 = np.ascontiguousarray(t_wait1.reshape(-1))
        self._t_occ = np.ascontiguousarray(t_occ.reshape(-1))
        self._t_blk = np.ascontiguousarray(t_blk.reshape(-1))
        self._init_cfg = np.asarray(f.init_idx, dtype=np.int32)
        # symmetry classes as (offsets, concatenated ascending columns);
        # mirrors FastEngine.canon (sort values within each class)
        groups: dict[tuple, list[int]] = {}
        for i, (m, b) in enumerate(zip(spec.messages, spec.budgets)):
            groups.setdefault((m.path, m.length, b), []).append(i)
        classes = [ix for ix in groups.values() if len(ix) > 1]
        cols: list[int] = []
        offs = [0]
        for ix in classes:
            cols.extend(ix)
            offs.append(len(cols))
        self._ncls = len(classes)
        self._cls_off = np.asarray(offs, dtype=np.int64)
        self._cls_cols = np.asarray(cols if cols else [0], dtype=np.int64)

    # ------------------------------------------------------------------
    # backend dispatch
    # ------------------------------------------------------------------
    def _run(
        self, max_states: int, symmetry_reduction: bool, track: bool
    ) -> tuple[int, int, int, np.ndarray, np.ndarray, int]:
        backend = resolve_backend()
        self.last_backend = backend
        COUNTERS[f"kernelpath.searches.{backend}"] += 1
        use_canon = 1 if (symmetry_reduction and self._ncls) else 0
        if backend == "cc":
            return self._run_cc(max_states, use_canon, track)
        core = _core_search if backend == "numba" else _core_py
        with np.errstate(over="ignore"):  # uint64 hash mixing wraps by design
            status, count, depth, ar_cfg, ar_par, ar_size = core(
                self._n,
                self._S,
                self._W,
                self._t_req,
                self._t_nops,
                self._t_ch0,
                self._t_nxt0,
                self._t_acq0,
                self._t_rel0,
                self._t_nxt1,
                self._t_wait1,
                self._t_occ,
                self._t_blk,
                self._init_cfg,
                self._ncls,
                self._cls_off,
                self._cls_cols,
                use_canon,
                max_states,
                1 if track else 0,
            )
        return int(status), int(count), int(depth), ar_cfg, ar_par, int(ar_size)

    def _run_cc(
        self, max_states: int, use_canon: int, track: bool
    ) -> tuple[int, int, int, np.ndarray, np.ndarray, int]:
        lib = _load_cc_lib()
        assert lib is not None  # resolve_backend vetted it
        c_i32p = ctypes.POINTER(ctypes.c_int32)
        cls_off32 = np.asarray(self._cls_off, dtype=np.int32)
        cls_cols32 = np.asarray(self._cls_cols, dtype=np.int32)
        out_count = ctypes.c_int64(0)
        out_depth = ctypes.c_int64(0)
        out_chain = c_i32p()
        out_chain_len = ctypes.c_int64(0)

        def p(arr: np.ndarray) -> ctypes.c_void_p:
            return ctypes.c_void_p(arr.ctypes.data)

        status = lib.rk_search(
            ctypes.c_int32(self._n),
            ctypes.c_int32(self._S),
            ctypes.c_int32(self._W),
            p(self._t_req),
            p(self._t_nops),
            p(self._t_ch0),
            p(self._t_nxt0),
            p(self._t_acq0),
            p(self._t_rel0),
            p(self._t_nxt1),
            p(self._t_wait1),
            p(self._t_occ),
            p(self._t_blk),
            p(self._init_cfg),
            ctypes.c_int32(self._ncls),
            p(cls_off32),
            p(cls_cols32),
            ctypes.c_int32(use_canon),
            ctypes.c_int64(max_states),
            ctypes.c_int32(1 if track else 0),
            ctypes.byref(out_count),
            ctypes.byref(out_depth),
            ctypes.byref(out_chain) if track else None,
            ctypes.byref(out_chain_len) if track else None,
        )
        # the C side returns only the found chain, not the whole arena:
        # repackage it in the (ar_cfg, ar_par) shape the callers consume
        n = self._n
        chain_len = int(out_chain_len.value)
        if track and status == _STATUS_FOUND and chain_len:
            buf = ctypes.cast(
                out_chain, ctypes.POINTER(ctypes.c_int32 * (chain_len * n))
            ).contents
            ar_cfg = np.frombuffer(buf, dtype=np.int32).reshape(chain_len, n).copy()
            lib.rk_free(out_chain)
            ar_par = np.arange(-1, chain_len - 1, dtype=np.int64)
            return (
                int(status),
                int(out_count.value),
                int(out_depth.value),
                ar_cfg,
                ar_par,
                chain_len,
            )
        if track and out_chain:  # pragma: no cover - defensive
            lib.rk_free(out_chain)
        empty = np.empty((0, n), dtype=np.int32)
        return (
            int(status),
            int(out_count.value),
            int(out_depth.value),
            empty,
            np.empty(0, dtype=np.int64),
            0,
        )

    # ------------------------------------------------------------------
    # searches
    # ------------------------------------------------------------------
    def search(
        self, *, max_states: int = 2_000_000, symmetry_reduction: bool = True
    ) -> tuple[bool, int]:
        """Compiled BFS; bit-identical to ``FastEngine.search``."""
        from repro.analysis.reachability import SearchLimitExceeded
        from repro.analysis.vectorpath import warn_wide_fallback

        if not self.kernelizable:
            COUNTERS["kernelpath.fallback.searches"] += 1
            warn_wide_fallback(
                "kernel", self.spec, self._n, self.num_bits,
                max_msgs=MAX_KERNEL_MSGS, max_bits=None,
            )
            result = self.fast.search(
                max_states=max_states, symmetry_reduction=symmetry_reduction
            )
            self.last_search_depth = self.fast.last_search_depth
            return result
        from time import perf_counter

        from repro.obs import get as _obs_get

        prof = _obs_get() is not None
        self.phase_seconds = {}
        t0 = perf_counter() if prof else 0.0
        status, count, depth, _cfg, _par, _size = self._run(
            max_states, symmetry_reduction, track=False
        )
        if prof:
            self.phase_seconds["kernel"] = perf_counter() - t0
        if status == _STATUS_LIMIT:
            raise SearchLimitExceeded(_LIMIT_MSG.format(max_states=max_states))
        if status == _STATUS_OOM:  # pragma: no cover - allocator exhaustion
            raise MemoryError("kernel search ran out of memory")
        self.last_search_depth = depth
        return status == _STATUS_FOUND, count

    def search_witness(
        self, *, max_states: int = 2_000_000, symmetry_reduction: bool = False
    ) -> tuple[bool, int, list | None, list | None, tuple[int, ...]]:
        """Compiled witness BFS; mirrors ``FastEngine.search_witness``."""
        from repro.analysis.reachability import SearchLimitExceeded
        from repro.analysis.vectorpath import warn_wide_fallback

        if not self.kernelizable:
            COUNTERS["kernelpath.fallback.searches"] += 1
            warn_wide_fallback(
                "kernel", self.spec, self._n, self.num_bits,
                max_msgs=MAX_KERNEL_MSGS, max_bits=None,
            )
            return self.fast.search_witness(
                max_states=max_states, symmetry_reduction=symmetry_reduction
            )
        from time import perf_counter

        from repro.obs import get as _obs_get

        prof = _obs_get() is not None
        self.phase_seconds = {}
        t0 = perf_counter() if prof else 0.0
        status, count, _depth, ar_cfg, ar_par, ar_size = self._run(
            max_states, symmetry_reduction, track=True
        )
        if prof:
            self.phase_seconds["kernel"] = perf_counter() - t0
            t0 = perf_counter()
        if status == _STATUS_LIMIT:
            raise SearchLimitExceeded(_LIMIT_MSG.format(max_states=max_states))
        if status == _STATUS_OOM:  # pragma: no cover - allocator exhaustion
            raise MemoryError("kernel search ran out of memory")
        if status != _STATUS_FOUND:
            return False, count, None, None, ()
        # walk the arena parents back to the initial state (the found
        # deadlock is always the last arena slot)
        chain: list[tuple] = []
        at = ar_size - 1
        while at >= 0:
            chain.append(tuple(int(v) for v in ar_cfg[at]))
            at = int(ar_par[at])
        chain.reverse()
        f = self.fast
        final = chain[-1]
        final_mask = 0
        for i, ci in enumerate(final):
            final_mask |= f._occm[i][ci]
        dead = f._deadlocked(final, final_mask)
        decode = f.decode
        states = [decode(s) for s in chain[1:]]
        steps: list[tuple[str, ...]] = []
        for prev, raw in zip(chain, states):
            praw = decode(prev)
            for s, acts, _d in f.successors_full(praw):
                if s == raw:
                    steps.append(acts)
                    break
            else:  # pragma: no cover - parent chain is consistent
                raise AssertionError("witness edge lost")
        if prof:
            self.phase_seconds["witness"] = perf_counter() - t0
        return True, count, steps, states, dead


def clear_caches() -> None:
    """Drop the engine cache (tests use this to force table rebuilds)."""
    _KENGINES.clear()
