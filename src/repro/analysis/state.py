"""Compact state model for the exhaustive wormhole reachability search.

Under oblivious routing with single-flit buffers (the paper's worst case --
Section 4 argues a deadlock impossible at buffer depth one and minimum
message length is impossible in general), the entire network state is
determined by, per message:

``h``    -- header progress: ``0`` not injected; ``1..k`` header occupies
            path channel ``h-1``; ``k+1`` header consumed at destination.
``inj``  -- flits injected so far (``<= length``).
``cons`` -- flits consumed at the destination so far.
``bud``  -- remaining adversarial stall budget (Section 6's router delay).

The flit train is contiguous: with one-flit buffers a data flit moves only
when the flit ahead of it moves, so the ``f = inj - cons`` flits in the
network occupy the ``f`` consecutive path channels ending at the front
channel ``min(h, k) - 1``.  These are exactly the semantics of
:class:`repro.sim.engine.Simulator` at ``buffer_depth=1`` (cross-validated
in ``tests/test_cross_validation.py``).

Per synchronous cycle each message takes one move:

* ``h == 0``: may request path channel 0 (``TRY``) or wait (free).
* ``1 <= h <= k`` and the next step is available: must advance (``ADV``) or
  spend a budget unit to stall (``STALL``) -- the synchrony assumption says
  an unblocked message cannot simply idle.
* header blocked by another message's flits: frozen (``FREEZE``, forced).
* ``h == k+1``: the destination consumes one flit per cycle (forced;
  Assumption 2 makes consumption non-refusable).

Simultaneous requests for one free channel branch over every possible
winner.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from collections.abc import Sequence

from repro.topology.channels import Channel

#: Cross-checking invariants (e.g. "no two messages occupy one channel")
#: sit on the hottest loops of the search; they are disabled by default and
#: re-enabled by setting ``REPRO_DEBUG_INVARIANTS=1`` (or monkeypatching
#: this flag) when chasing a suspected state-model bug.
DEBUG_INVARIANTS = os.environ.get("REPRO_DEBUG_INVARIANTS", "") not in ("", "0")

# Per-message state: (h, inj, cons, bud)
MsgState = tuple[int, int, int, int]
# Full system state: one MsgState per message, in message order.
SystemState = tuple[MsgState, ...]


@dataclass(frozen=True)
class CheckerMessage:
    """A message as seen by the checker: a fixed channel path plus length.

    ``path`` is the tuple of channel ids the header traverses (source to
    destination); ``length`` is the flit count; ``tag`` labels the message
    in witnesses and reports.
    """

    path: tuple[int, ...]
    length: int
    tag: str = ""

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("checker message needs a non-empty path")
        if self.length < 1:
            raise ValueError("length must be >= 1")
        if len(set(self.path)) != len(self.path):
            raise ValueError("path revisits a channel; oblivious routing would loop")

    @property
    def k(self) -> int:
        return len(self.path)

    @classmethod
    def from_channels(
        cls, channels: Sequence[Channel], length: int, tag: str = ""
    ) -> "CheckerMessage":
        return cls(path=tuple(c.cid for c in channels), length=length, tag=tag)


@dataclass(frozen=True)
class SystemSpec:
    """A checker scenario: messages plus per-message stall budgets."""

    messages: tuple[CheckerMessage, ...]
    budgets: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.messages) != len(self.budgets):
            raise ValueError("one budget per message required")
        if any(b < 0 for b in self.budgets):
            raise ValueError("budgets must be >= 0")
        # hot-path caches (profiled: attribute/property lookups dominate the
        # search loop otherwise); frozen dataclass, so set via object.
        object.__setattr__(self, "_paths", tuple(m.path for m in self.messages))
        object.__setattr__(self, "_ks", tuple(len(m.path) for m in self.messages))
        object.__setattr__(self, "_lens", tuple(m.length for m in self.messages))

    @classmethod
    def uniform(
        cls, messages: Sequence[CheckerMessage], *, budget: int = 0
    ) -> "SystemSpec":
        msgs = tuple(messages)
        return cls(messages=msgs, budgets=tuple(budget for _ in msgs))

    def initial_state(self) -> SystemState:
        return tuple((0, 0, 0, b) for b in self.budgets)

    # ------------------------------------------------------------------
    # state interpretation
    # ------------------------------------------------------------------
    def occupied_channels(self, state: SystemState) -> dict[int, int]:
        """Map channel id -> index of the occupying message."""
        occ: dict[int, int] = {}
        paths = self._paths  # type: ignore[attr-defined]
        ks = self._ks  # type: ignore[attr-defined]
        debug = DEBUG_INVARIANTS
        for i, (h, inj, cons, _bud) in enumerate(state):
            if h == 0:
                continue
            f = inj - cons
            if f <= 0:
                continue
            k = ks[i]
            front = h - 1 if h <= k else k - 1
            path = paths[i]
            for idx in range(front - f + 1, front + 1):
                cid = path[idx]
                if debug and cid in occ:
                    raise AssertionError(
                        "two messages occupy one channel: invariant broken"
                    )
                occ[cid] = i
        return occ

    def is_done(self, state: SystemState, i: int) -> bool:
        _h, _inj, cons, _bud = state[i]
        return cons == self.messages[i].length

    def blocked_owner(self, state: SystemState, i: int) -> int | None:
        """If message ``i``'s header is blocked, the blocking message index."""
        h, _inj, _cons, _bud = state[i]
        msg = self.messages[i]
        if not 1 <= h <= msg.k - 1:
            return None
        occ = self.occupied_channels(state)
        return occ.get(msg.path[h])

    def deadlocked_set(self, state: SystemState) -> tuple[int, ...]:
        """Messages on a wait-for cycle in ``state`` (empty tuple if none).

        Edge ``i -> j`` when ``i``'s header waits on a channel occupied by
        ``j``.  A cycle is a genuine deadlock: every member's only possible
        move depends on another member moving.
        """
        occ = self.occupied_channels(state)
        wait: dict[int, int] = {}
        for i, (h, _inj, _cons, _bud) in enumerate(state):
            msg = self.messages[i]
            if 1 <= h <= msg.k - 1:
                owner = occ.get(msg.path[h])
                if owner is not None and owner != i:
                    wait[i] = owner
        # find a cycle in the functional graph `wait`
        color: dict[int, int] = {}  # 1 = in progress, 2 = finished
        for start in wait:
            if color.get(start):
                continue
            trail: list[int] = []
            node = start
            while node in wait and color.get(node) is None:
                color[node] = 1
                trail.append(node)
                node = wait[node]
            if color.get(node) == 1:
                # found a cycle; extract it from the trail
                idx = trail.index(node)
                for n in trail:
                    color[n] = 2
                return tuple(sorted(trail[idx:]))
            for n in trail:
                color[n] = 2
        return ()

    # ------------------------------------------------------------------
    # successor generation
    # ------------------------------------------------------------------
    def successors(self, state: SystemState) -> list[tuple[SystemState, tuple[str, ...]]]:
        """All successor states for one synchronous cycle.

        Returns ``(next_state, actions)`` pairs where ``actions[i]`` is the
        last move message ``i`` took this cycle (``"wait"``, ``"try"``,
        ``"adv"``, ``"stall"``, ``"freeze"``, ``"drain"``, ``"done"``,
        ``"lose"``).  The search deduplicates states; here every distinct
        joint choice is emitted so witnesses stay exact.

        **Pipelined channel handoff.**  Flits stream: when a tail flit
        vacates a channel during a cycle, another header may enter that
        channel in the *same* cycle (this is how the paper's schedules use
        ``cs`` -- "immediately after M1 has traversed [cs], the second
        message starts traversing [cs]").  The cycle is therefore expanded
        in *rounds*: each round moves messages whose next channel is
        currently free, applies the moves (which can free tail channels),
        and repeats until nothing else can move.  Each message moves at
        most one hop per cycle.
        """
        n = len(self.messages)
        results: list[tuple[SystemState, tuple[str, ...]]] = []
        seen: set[tuple[SystemState, tuple[str, ...]]] = set()

        ks = self._ks  # type: ignore[attr-defined]
        lens = self._lens  # type: ignore[attr-defined]
        paths = self._paths  # type: ignore[attr-defined]

        def apply_action(cur: list[MsgState], i: int, act: str) -> None:
            h, inj, cons, bud = cur[i]
            k = ks[i]
            if act == "stall":
                bud -= 1
            elif act == "try":
                h, inj = 1, 1
            elif act == "adv":
                h += 1
                if h == k + 1:
                    cons += 1  # header consumed on arrival
                if inj < lens[i] and (inj - cons) < min(h, k):
                    inj += 1
            elif act == "drain":
                cons += 1
                if inj < lens[i] and (inj - cons) < k:
                    inj += 1
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown action {act!r}")
            cur[i] = (h, inj, cons, bud)

        def emit(cur: list[MsgState], last: list[str]) -> None:
            key = (tuple(cur), tuple(last))
            if key not in seen:
                seen.add(key)
                results.append(key)

        def run_round(cur: list[MsgState], pending: frozenset[int], last: list[str]) -> None:
            """Branch over one grant round; ``pending`` may still move."""
            occ = self.occupied_channels(tuple(cur))
            # per-pending-message move options this round
            options: dict[int, list[tuple[str, int | None]]] = {}
            for i in pending:
                h, inj, cons, bud = cur[i]
                k = ks[i]
                path = paths[i]
                if cons == lens[i]:
                    last[i] = "done"
                    continue
                if h == 0:
                    first = path[0]
                    if first not in occ:
                        options[i] = [("try", first), ("wait", None)]
                    # else: stays pending silently (may free later round)
                elif h <= k - 1:
                    nxt = path[h]
                    if nxt not in occ:
                        opts: list[tuple[str, int | None]] = [("adv", nxt)]
                        if bud > 0:
                            opts.append(("stall", None))
                        options[i] = opts
                    else:
                        last[i] = "freeze"
                elif h == k:
                    # arrival into the node: no arbitration, but the router
                    # may stall it (it is an in-network move).
                    opts = [("adv", None)]
                    if bud > 0:
                        opts.append(("stall", None))
                    options[i] = opts
                else:  # h == k + 1: draining, forced consumption
                    options[i] = [("drain", None)]

            movers = sorted(options)
            if not movers:
                emit(cur, last)
                return

            def choose(idx: int, chosen: dict[int, tuple[str, int | None]]) -> None:
                if idx == len(movers):
                    resolve(dict(chosen))
                    return
                i = movers[idx]
                for opt in options[i]:
                    chosen[i] = opt
                    choose(idx + 1, chosen)
                del chosen[i]

            def resolve(chosen: dict[int, tuple[str, int | None]]) -> None:
                requests: dict[int, list[int]] = {}
                for i, (act, chan) in chosen.items():
                    if chan is not None:
                        requests.setdefault(chan, []).append(i)
                contested = [c for c, cands in requests.items() if len(cands) > 1]

                def finish(winners: dict[int, int]) -> None:
                    nxt = list(cur)
                    nxt_last = list(last)
                    nxt_pending = set(pending)
                    moved_any = False
                    for i, (act, chan) in chosen.items():
                        final = act
                        if chan is not None and chan in winners and winners[chan] != i:
                            final = "lose"
                        if final in ("adv", "try", "drain"):
                            apply_action(nxt, i, final)
                            nxt_pending.discard(i)
                            moved_any = True
                        elif final == "stall":
                            apply_action(nxt, i, final)
                            nxt_pending.discard(i)
                        elif final == "lose":
                            nxt_pending.discard(i)
                        # "wait": stays pending (may try again later round)
                        nxt_last[i] = final
                    # messages whose channel was occupied stay pending; if
                    # nothing moved this round, no channel freed -> fixpoint
                    if moved_any:
                        run_round(nxt, frozenset(nxt_pending), nxt_last)
                    else:
                        emit(nxt, nxt_last)

                if not contested:
                    finish({})
                    return

                def branch(ci: int, winners: dict[int, int]) -> None:
                    if ci == len(contested):
                        finish(dict(winners))
                        return
                    chan = contested[ci]
                    for w in requests[chan]:
                        winners[chan] = w
                        branch(ci + 1, winners)
                    del winners[chan]

                branch(0, {})

            choose(0, {})

        init_last = ["wait"] * n
        for i, (h, inj, cons, bud) in enumerate(state):
            if cons == self.messages[i].length and self.messages[i].length > 0 and h > 0:
                init_last[i] = "done"
        run_round(list(state), frozenset(range(n)), init_last)
        return results
