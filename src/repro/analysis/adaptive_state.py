"""Exhaustive reachability search for *adaptive* routing (Section 7).

The paper closes by calling for its techniques to be applied to adaptive
routing, where "a choice of output channels and more dependencies between
channels" make unreachable configurations more likely.  This module
extends the explicit-state search to routing functions of Duato's form
``R: C x N -> P(C)``:

* a message's state can no longer be a position on a fixed path -- the
  *route taken so far* is part of the state (the adversary also chooses
  which candidate each header takes);
* blocking is OR-semantics: a header is frozen only when **every**
  candidate is occupied; a deadlock is a set of messages each of whose
  candidates is held by another member (the knot criterion, matching
  :func:`repro.sim.deadlock.detect_deadlock`).

State per message: ``(taken, inj, cons, bud)`` where ``taken`` is the
tuple of channel ids acquired so far.  The flit train occupies the last
``inj - cons`` channels of ``taken``.  State spaces are exponentially
larger than the oblivious checker's, so this is for small certification
scenarios (the tests and the E7 experiment), with a hard state cap.

Only *progressive* adaptive functions terminate here: if candidates allow
walking in circles the taken-path grows without bound, caught by
``max_path_len``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from collections.abc import Sequence

from repro.analysis import state as _state_mod
from repro.analysis.reachability import SearchLimitExceeded
from repro.routing.adaptive import AdaptiveRoutingFunction
from repro.routing.base import INJECT, RoutingError
from repro.topology.channels import NodeId

# per-message: (taken channel ids, flits injected, flits consumed, budget)
AdaptiveMsgState = tuple[tuple[int, ...], int, int, int]
AdaptiveSystemState = tuple[AdaptiveMsgState, ...]


@dataclass(frozen=True)
class AdaptiveMessage:
    """A message for the adaptive checker: endpoints and length only."""

    src: NodeId
    dst: NodeId
    length: int
    tag: str = ""

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("src == dst")
        if self.length < 1:
            raise ValueError("length must be >= 1")


@dataclass
class AdaptiveSearchResult:
    deadlock_reachable: bool
    states_explored: int
    deadlocked_tags: tuple[str, ...] = ()
    #: rule code of the static certificate that decided (or confirmed) the
    #: verdict, e.g. ``"CRT008"``; ``None`` when the search decided alone.
    #: ``states_explored == 0`` iff the certificate alone decided.
    certificate: str | None = None


class AdaptiveSystem:
    """Successor relation for adaptive messages under the full adversary."""

    def __init__(
        self,
        fn: AdaptiveRoutingFunction,
        messages: Sequence[AdaptiveMessage],
        *,
        budget: int = 0,
        max_path_len: int | None = None,
    ) -> None:
        self.fn = fn
        self.network = fn.network
        self.messages = tuple(messages)
        self.budget = budget
        self.max_path_len = max_path_len or 2 * self.network.num_channels
        self._chan = {c.cid: c for c in self.network.channels}
        # routing candidates are a pure function of (taken, i); the search
        # asks for them once in deadlocked_set and again when expanding, so
        # memoizing halves the routing-function traffic on the hot path
        self._cand_memo: dict[tuple[tuple[int, ...], int], list[int]] = {}

    def initial_state(self) -> AdaptiveSystemState:
        return tuple(((), 0, 0, self.budget) for _ in self.messages)

    # ------------------------------------------------------------------
    def occupied(self, state: AdaptiveSystemState) -> dict[int, int]:
        occ: dict[int, int] = {}
        # read through the module so monkeypatched/env-enabled flags apply
        debug = _state_mod.DEBUG_INVARIANTS
        for i, (taken, inj, cons, _bud) in enumerate(state):
            f = inj - cons
            if f <= 0:
                continue
            for cid in taken[len(taken) - f :]:
                if debug and cid in occ:
                    raise AssertionError("channel double-booked")
                occ[cid] = i
        return occ

    def _node(self, taken: tuple[int, ...], i: int) -> NodeId:
        if not taken:
            return self.messages[i].src
        return self._chan[taken[-1]].dst

    def _candidates(self, taken: tuple[int, ...], i: int) -> list[int]:
        key = (taken, i)
        hit = self._cand_memo.get(key)
        if hit is not None:
            return hit
        msg = self.messages[i]
        in_ch = INJECT if not taken else self._chan[taken[-1]]
        try:
            cands = self.fn.candidates(in_ch, self._node(taken, i), msg.dst)
            out = [c.cid for c in cands if c.cid not in taken]
        except RoutingError:
            out = []
        self._cand_memo[key] = out
        return out

    def deadlocked_set(self, state: AdaptiveSystemState) -> tuple[int, ...]:
        """OR-semantics knot among in-flight, non-arrived messages."""
        occ = self.occupied(state)
        waits: dict[int, list[int]] = {}
        for i, (taken, inj, cons, _bud) in enumerate(state):
            if not taken or cons == self.messages[i].length:
                continue
            if self._node(taken, i) == self.messages[i].dst:
                continue  # arrived: draining, will free its channels
            cands = self._candidates(taken, i)
            if not cands:
                continue
            owners = [occ.get(c) for c in cands]
            if any(o is None or o == i for o in owners):
                continue
            waits[i] = [o for o in owners if o is not None]
        S = set(waits)
        changed = True
        while changed:
            changed = False
            for mid in list(S):
                if any(o not in S for o in waits[mid]):
                    S.discard(mid)
                    changed = True
        return tuple(sorted(S))

    # ------------------------------------------------------------------
    def successors(self, state: AdaptiveSystemState) -> list[AdaptiveSystemState]:
        """One synchronous cycle with pipelined handoff (round-based)."""
        results: list[AdaptiveSystemState] = []
        seen: set[AdaptiveSystemState] = set()

        def emit(cur: list[AdaptiveMsgState]) -> None:
            t = tuple(cur)
            if t not in seen:
                seen.add(t)
                results.append(t)

        def run_round(cur: list[AdaptiveMsgState], pending: frozenset[int]) -> None:
            occ = self.occupied(tuple(cur))
            options: dict[int, list[tuple[str, int | None]]] = {}
            for i in pending:
                taken, inj, cons, bud = cur[i]
                msg = self.messages[i]
                if cons == msg.length:
                    continue
                node = self._node(taken, i)
                if taken and node == msg.dst:
                    # header is in its final channel: consumption proceeds
                    # one flit per cycle; the very first consumption (the
                    # arrival move) is still a router step and stallable
                    opts_d: list[tuple[str, int | None]] = [("drain", None)]
                    if cons == 0 and bud > 0:
                        opts_d.append(("stall", None))
                    options[i] = opts_d
                    continue
                if len(taken) >= self.max_path_len:
                    raise SearchLimitExceeded(
                        "adaptive path exceeded max_path_len; the routing "
                        "function is not progressive"
                    )
                cands = self._candidates(taken, i)
                free = [c for c in cands if c not in occ]
                opts: list[tuple[str, int | None]] = []
                for c in free:
                    opts.append(("adv", c))
                if free and bud > 0:
                    opts.append(("stall", None))
                if not taken:
                    if free:
                        opts.append(("wait", None))
                    else:
                        continue  # blocked at injection: silently pending
                elif not free:
                    continue  # frozen this round; may retry next round
                options[i] = opts

            movers = sorted(options)
            if not movers:
                emit(cur)
                return

            def choose(idx: int, chosen: dict[int, tuple[str, int | None]]) -> None:
                if idx == len(movers):
                    resolve(dict(chosen))
                    return
                i = movers[idx]
                for opt in options[i]:
                    chosen[i] = opt
                    choose(idx + 1, chosen)
                del chosen[i]

            def resolve(chosen: dict[int, tuple[str, int | None]]) -> None:
                requests: dict[int, list[int]] = {}
                for i, (act, chan) in chosen.items():
                    if chan is not None:
                        requests.setdefault(chan, []).append(i)
                contested = [c for c, cands in requests.items() if len(cands) > 1]

                def finish(winners: dict[int, int]) -> None:
                    nxt = list(cur)
                    nxt_pending = set(pending)
                    moved = False
                    for i, (act, chan) in chosen.items():
                        taken, inj, cons, bud = nxt[i]
                        msg = self.messages[i]
                        final = act
                        if chan is not None and chan in winners and winners[chan] != i:
                            final = "lose"
                        if final == "adv":
                            assert chan is not None
                            was_empty = not taken
                            taken = taken + (chan,)
                            if was_empty:
                                inj = 1
                            elif inj < msg.length and (inj - cons) < len(taken):
                                inj += 1
                            nxt[i] = (taken, inj, cons, bud)
                            nxt_pending.discard(i)
                            moved = True
                        elif final == "drain":
                            cons += 1
                            if inj < msg.length and (inj - cons) < len(taken):
                                inj += 1
                            nxt[i] = (taken, inj, cons, bud)
                            nxt_pending.discard(i)
                            moved = True
                        elif final == "stall":
                            nxt[i] = (taken, inj, cons, bud - 1)
                            nxt_pending.discard(i)
                        elif final == "lose":
                            nxt_pending.discard(i)
                        # "wait": stays pending
                    if moved:
                        run_round(nxt, frozenset(nxt_pending))
                    else:
                        emit(nxt)

                if not contested:
                    finish({})
                    return

                def branch(ci: int, winners: dict[int, int]) -> None:
                    if ci == len(contested):
                        finish(dict(winners))
                        return
                    chan = contested[ci]
                    for w in requests[chan]:
                        winners[chan] = w
                        branch(ci + 1, winners)
                    del winners[chan]

                branch(0, {})

            choose(0, {})

        run_round(list(state), frozenset(range(len(self.messages))))
        return results


def search_adaptive_deadlock(
    fn: AdaptiveRoutingFunction,
    messages: Sequence[AdaptiveMessage],
    *,
    budget: int = 0,
    max_states: int = 500_000,
    certificates: str | None = None,
) -> AdaptiveSearchResult:
    """BFS over every schedule, arbitration outcome AND route choice.

    ``certificates`` mirrors :func:`repro.analysis.reachability.search_deadlock`:
    ``"on"`` (default) consults
    :func:`repro.lint.certificates.adaptive_certificate` first -- Duato's
    escape-channel condition (CRT008) or an acyclic full adaptive CDG
    (CRT001) decides DEADLOCK_FREE with zero states explored; ``"off"``
    disables the pre-pass; ``"check"`` runs both and raises
    :class:`~repro.lint.certificates.CertificateMismatch` on disagreement.
    The ``REPRO_STATIC_CERTIFICATES`` environment variable supplies the
    default mode.
    """
    # lazy import: lint sits above analysis in the layering
    from repro.lint.certificates import (
        CertificateMismatch,
        adaptive_certificate,
        certificates_mode,
    )

    cert_mode = certificates_mode(certificates)
    cert = adaptive_certificate(fn) if cert_mode != "off" else None
    if cert is not None and cert_mode == "on" and not cert.deadlock_reachable:
        return AdaptiveSearchResult(
            deadlock_reachable=False, states_explored=0, certificate=cert.code
        )

    result = _search_adaptive_impl(
        fn, messages, budget=budget, max_states=max_states
    )
    if cert is not None:
        if cert_mode == "check" and result.deadlock_reachable != cert.deadlock_reachable:
            raise CertificateMismatch(
                f"static certificate {cert.code} says "
                f"{'reachable' if cert.deadlock_reachable else 'deadlock-free'} "
                f"but the adaptive search found the opposite "
                f"({result.states_explored} states explored)"
            )
        result.certificate = cert.code
    return result


def _search_adaptive_impl(
    fn: AdaptiveRoutingFunction,
    messages: Sequence[AdaptiveMessage],
    *,
    budget: int,
    max_states: int,
) -> AdaptiveSearchResult:
    system = AdaptiveSystem(fn, messages, budget=budget)
    init = system.initial_state()
    visited: set[AdaptiveSystemState] = {init}
    queue: deque[AdaptiveSystemState] = deque([init])
    while queue:
        state = queue.popleft()
        for nxt in system.successors(state):
            if nxt in visited:
                continue
            visited.add(nxt)
            if len(visited) > max_states:
                raise SearchLimitExceeded(
                    f"adaptive search exceeded {max_states} states"
                )
            dead = system.deadlocked_set(nxt)
            if dead:
                return AdaptiveSearchResult(
                    deadlock_reachable=True,
                    states_explored=len(visited),
                    deadlocked_tags=tuple(
                        messages[i].tag or f"msg{i}" for i in dead
                    ),
                )
            queue.append(nxt)
    return AdaptiveSearchResult(deadlock_reachable=False, states_explored=len(visited))
