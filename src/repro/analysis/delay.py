"""Stall-budget (clock skew / router delay) analysis -- the Section 6 axis.

The Figure 1 network is deadlock-free only under the paper's synchrony
assumption; delaying messages in flight can complete the cycle.  Section 6
constructs networks requiring at least ``m`` cycles of adversarial delay
before deadlock is possible.  :func:`min_delay_to_deadlock` measures that
threshold exactly by sweeping the per-message stall budget through the
exhaustive search, and :func:`delay_tolerance_profile` produces the
``m -> Δ*(m)`` series reproduced by the generalisation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.analysis.reachability import SearchResult, search_deadlock
from repro.analysis.state import CheckerMessage, SystemSpec


@dataclass
class DelayResult:
    """Outcome of a minimum-delay sweep."""

    min_delay: int | None  # None: no deadlock up to max_delay
    max_delay_tested: int
    results: dict[int, SearchResult]

    @property
    def deadlock_free_under_synchrony(self) -> bool:
        """True iff no deadlock at budget 0 (the paper's base model)."""
        return not self.results[0].deadlock_reachable


def min_delay_to_deadlock(
    messages: Sequence[CheckerMessage],
    *,
    max_delay: int = 16,
    max_states: int = 4_000_000,
    search_jobs: int = 1,
    engine: str | None = None,
) -> DelayResult:
    """Smallest uniform per-message stall budget Δ at which deadlock is reachable.

    Deadlock reachability is monotone in the budget (a larger budget only
    adds adversary options), so the sweep stops at the first reachable Δ.

    The sweep runs in two phases: every budget is first decided with a
    verdict-only search (symmetry reduction on, parent pointers off,
    optionally frontier-parallel via ``search_jobs``), and only the single
    deadlocking budget is re-searched in witness mode so
    ``results[min_delay].witness`` replays exactly as before.  The negative
    budgets dominate the sweep cost, so skipping their parent maps and
    deduplicating identical-message permutations is the big win here;
    their entries report the (smaller) symmetry-reduced state counts.
    """
    results: dict[int, SearchResult] = {}
    for delta in range(max_delay + 1):
        spec = SystemSpec.uniform(messages, budget=delta)
        res = search_deadlock(
            spec,
            max_states=max_states,
            find_witness=False,
            jobs=search_jobs,
            engine=engine,
        )
        if res.deadlock_reachable:
            # witness pass: identical to the pre-two-phase search at this
            # budget (witness mode, no symmetry reduction), so downstream
            # replay consumers see an unchanged trace
            results[delta] = search_deadlock(spec, max_states=max_states, engine=engine)
            return DelayResult(min_delay=delta, max_delay_tested=delta, results=results)
        results[delta] = res
    return DelayResult(min_delay=None, max_delay_tested=max_delay, results=results)


def delay_tolerance_profile(
    scenario_factory: Callable[[int], Sequence[CheckerMessage]],
    params: Sequence[int],
    *,
    max_delay: int = 24,
    max_states: int = 6_000_000,
    search_jobs: int = 1,
    engine: str | None = None,
) -> dict[int, int | None]:
    """Map each parameter ``m`` to the measured minimum deadlock delay Δ*(m).

    ``scenario_factory(m)`` builds the messages of the Section 6 network
    ``Gen(m)``; the paper predicts Δ*(m) grows (at least) linearly in ``m``.
    """
    profile: dict[int, int | None] = {}
    for m in params:
        messages = scenario_factory(m)
        res = min_delay_to_deadlock(
            messages,
            max_delay=max_delay,
            max_states=max_states,
            search_jobs=search_jobs,
            engine=engine,
        )
        profile[m] = res.min_delay
    return profile
