"""Reachability analysis: exhaustive search over the paper's adversary.

The deterministic simulator answers "does *this* schedule deadlock?".  The
paper's claims quantify over **all** schedules: Theorem 1 says *no*
injection timing, arbitration outcome or modest delay can complete the
Figure 1 cycle; Theorems 2/4/5 say a deadlock *does* exist for certain
configurations.  This package decides such claims by explicit-state search
over everything the adversary controls:

* when each message is injected (any cycle -- Assumption 1);
* which requester wins each simultaneous arbitration (the paper's
  adversarial tie-break, explored exhaustively rather than heuristically);
* a bounded per-message *stall budget* Δ -- the Section 6 "delayed by m
  clock cycles" knob.  Δ = 0 is the paper's tight-synchrony model in which
  an unblocked message always advances.

Because oblivious messages follow fixed paths and the worst case is
single-flit buffers (Section 4's argument), states are tiny tuples and the
full state space of the figure networks is a few thousand states.

Public API
----------
:class:`CheckerMessage` / :class:`SystemSpec` -- scenario description.
:func:`search_deadlock`                       -- BFS for a reachable deadlock.
:class:`SearchResult` / :class:`Witness`      -- outcome + replayable trace.
:func:`classify_cycle`                        -- false resource cycle vs
                                                 reachable deadlock.
:func:`min_delay_to_deadlock`                 -- smallest Δ making a
                                                 configuration deadlock.
:func:`witness_to_schedule`                   -- replay a witness on the
                                                 flit-level simulator.
"""

from repro.analysis.state import CheckerMessage, SystemSpec, SystemState, MsgState
from repro.analysis.reachability import (
    search_deadlock,
    SearchResult,
    Witness,
    SearchLimitExceeded,
)
from repro.analysis.classify import (
    classify_cycle,
    classify_configuration,
    CycleClassification,
    messages_for_cycle,
)
from repro.analysis.delay import min_delay_to_deadlock, delay_tolerance_profile
from repro.analysis.schedules import witness_to_schedule, replay_witness
from repro.analysis.adaptive_state import (
    AdaptiveMessage,
    AdaptiveSystem,
    search_adaptive_deadlock,
    AdaptiveSearchResult,
)

__all__ = [
    "CheckerMessage",
    "SystemSpec",
    "SystemState",
    "MsgState",
    "search_deadlock",
    "SearchResult",
    "Witness",
    "SearchLimitExceeded",
    "classify_cycle",
    "classify_configuration",
    "CycleClassification",
    "messages_for_cycle",
    "min_delay_to_deadlock",
    "delay_tolerance_profile",
    "witness_to_schedule",
    "replay_witness",
    "AdaptiveMessage",
    "AdaptiveSystem",
    "search_adaptive_deadlock",
    "AdaptiveSearchResult",
]
