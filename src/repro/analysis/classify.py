"""Classify CDG cycles: reachable deadlock vs false resource cycle.

This operationalizes the paper's central distinction.  Given a cycle in the
channel dependency graph of an oblivious routing algorithm, the classifier

1. finds the messages (source--destination pairs) whose paths realise the
   cycle's dependencies,
2. enumerates the ways those messages can *tile* the cycle into a
   Definition-6 deadlock configuration -- each message holds a consecutive
   segment of cycle channels and is blocked at the first cycle channel of
   the next message,
3. hands each candidate configuration (messages at their minimum adequate
   lengths, optionally swept longer and/or duplicated) to the exhaustive
   reachability search.

If *some* candidate deadlock configuration is reachable the cycle is a real
deadlock hazard; if *every* candidate is unreachable the cycle is a false
resource cycle (unreachable configuration).

Completeness caveats -- stated here because a classifier that hides them
would overclaim: the search is exact for the candidate scenarios generated,
but the generator bounds message multiplicity (``extra_copies``) and length
slack (``length_slack``).  The paper's Theorem 1 proof reasons over the same
bounded families (minimum lengths, single-flit buffers, extra interposed
messages), and for the figure networks the bounds used here are those of
the paper's argument.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from collections.abc import Sequence


from repro.analysis.reachability import SearchResult, search_deadlock
from repro.analysis.state import CheckerMessage, SystemSpec
from repro.obs import get as _obs_get
from repro.routing.base import RoutingAlgorithm
from repro.topology.channels import Channel, NodeId

Pair = tuple[NodeId, NodeId]


def classify_configuration(
    messages: Sequence["CheckerMessage"],
    *,
    budget: int = 0,
    copy_depth: int = 1,
    max_copies_total: int = 2,
    length_slack: int = 0,
    max_states: int = 20_000_000,
    search_jobs: int = 1,
    engine: str | None = None,
) -> tuple[bool, SearchResult]:
    """Full-adversary reachability verdict for a fixed message-type set.

    The paper's adversary may inject *additional* messages of the defined
    source--destination types (Assumption 1) and choose their lengths; the
    proofs of Theorems 1 and 5 use interposed extra messages to delay a
    cycle member (a copy takes the member's next channel and drains there,
    stalling it for ``length`` cycles).  This helper therefore searches the
    base scenario plus every augmentation with up to ``copy_depth`` extra
    copies per message type and at most ``max_copies_total`` extra messages
    overall (the paper's constructions interpose one), and sweeps base
    lengths up to ``length_slack`` above minimum.

    Returns ``(deadlock_reachable, result_of_first_deadlocking_scenario_or_last)``.
    """
    tel = _obs_get()
    if tel is None:
        return _classify_configuration_impl(
            messages,
            budget=budget,
            copy_depth=copy_depth,
            max_copies_total=max_copies_total,
            length_slack=length_slack,
            max_states=max_states,
            search_jobs=search_jobs,
            engine=engine,
        )
    with tel.span("classify.config", messages=len(messages)) as sp:
        reachable, result = _classify_configuration_impl(
            messages,
            budget=budget,
            copy_depth=copy_depth,
            max_copies_total=max_copies_total,
            length_slack=length_slack,
            max_states=max_states,
            search_jobs=search_jobs,
            engine=engine,
        )
        sp.set(
            verdict="reachable" if reachable else "deadlock-free",
            certificate=result.certificate,
        )
        tel.incr("classify.configs")
    return reachable, result


def _classify_configuration_impl(
    messages: Sequence["CheckerMessage"],
    *,
    budget: int,
    copy_depth: int,
    max_copies_total: int,
    length_slack: int,
    max_states: int,
    search_jobs: int,
    engine: str | None,
) -> tuple[bool, SearchResult]:
    from repro.analysis.state import CheckerMessage as _CM

    base = list(messages)
    n = len(base)
    copy_subsets: list[tuple[int, ...]] = [()]
    for r in range(1, min(copy_depth * n, max_copies_total) + 1):
        copy_subsets.extend(
            s
            for s in itertools.combinations_with_replacement(range(n), r)
            if all(s.count(i) <= copy_depth for i in set(s))
        )
    last: SearchResult | None = None
    for lengths in itertools.product(
        *[range(m.length, m.length + length_slack + 1) for m in base]
    ):
        sized = [_CM(m.path, ln, m.tag) for m, ln in zip(base, lengths)]
        for subset in copy_subsets:
            msgs = list(sized) + [
                _CM(sized[i].path, sized[i].length, f"{sized[i].tag}+{j}")
                for j, i in enumerate(subset)
            ]
            spec = SystemSpec.uniform(msgs, budget=budget)
            last = search_deadlock(
                spec,
                max_states=max_states,
                find_witness=False,
                jobs=search_jobs,
                engine=engine,
            )
            if last.deadlock_reachable:
                return True, last
    assert last is not None
    return False, last


@dataclass
class CycleTiling:
    """One Definition-6 candidate: messages in cycle order with held segments."""

    pairs: list[Pair]
    held_lengths: list[int]  # cycle channels held by each message

    def __len__(self) -> int:
        return len(self.pairs)


@dataclass
class CycleClassification:
    """Verdict for one CDG cycle."""

    cycle: tuple[Channel, ...]
    deadlock_reachable: bool
    tilings_tested: int
    scenarios_tested: int
    witness_result: SearchResult | None = field(default=None, repr=False)
    notes: list[str] = field(default_factory=list)
    #: rule code of the static certificate that decided (or confirmed) the
    #: verdict; ``None`` when the search decided alone.
    #: ``scenarios_tested == 0`` iff the certificate alone decided.
    certificate: str | None = None

    @property
    def is_false_resource_cycle(self) -> bool:
        return not self.deadlock_reachable


def _cycle_runs(
    cycle: Sequence[Channel], path: Sequence[Channel]
) -> list[tuple[int, int]]:
    """Maximal runs of ``path`` along ``cycle``, as (start index, length).

    Thin channel-object wrapper over the shared cid-domain implementation
    in :func:`repro.lint.tiling.cycle_runs` (the static certificates use
    the same core, so classifier and linter cannot drift apart).
    """
    from repro.lint.tiling import cycle_runs

    return cycle_runs([ch.cid for ch in cycle], [ch.cid for ch in path])


def messages_for_cycle(
    alg: RoutingAlgorithm,
    cycle: Sequence[Channel],
    pairs: Sequence[Pair] | None = None,
) -> dict[Pair, list[tuple[int, int]]]:
    """Pairs whose path intersects the cycle, with their cycle runs."""
    from repro.routing.properties import _domain

    out: dict[Pair, list[tuple[int, int]]] = {}
    for pair in _domain(alg, pairs):
        path = alg.try_path(*pair)
        if path is None:
            continue
        runs = _cycle_runs(cycle, path)
        if runs:
            out[pair] = runs
    return out


def enumerate_tilings(
    cycle: Sequence[Channel],
    candidates: dict[Pair, list[tuple[int, int]]],
    *,
    max_tilings: int = 512,
) -> list[CycleTiling]:
    """All ways to tile the cycle with message segments per Definition 6.

    Each tiling is a cyclic sequence of distinct messages: message ``i``
    holds cycle channels ``[start_i, start_{i+1})`` (in cycle order), where
    ``start_{i+1}`` lies strictly inside message ``i``'s run -- that is
    exactly "the first channel message ``m_{i+1}`` uses in the cycle blocks
    ``m_i``" from the paper's deadlock definition.

    Thin wrapper over the shared implementation in
    :func:`repro.lint.tiling.enumerate_tilings` (also used by the static
    certificates), preserving the historical :class:`CycleTiling` return
    type.
    """
    from repro.lint.tiling import enumerate_tilings as _enumerate

    tilings = _enumerate(len(cycle), candidates, max_tilings=max_tilings)
    return [
        CycleTiling(pairs=list(t.members), held_lengths=list(t.held_lengths))
        for t in tilings
    ]


def classify_cycle(
    alg: RoutingAlgorithm,
    cycle: Sequence[Channel],
    *,
    pairs: Sequence[Pair] | None = None,
    length_slack: int = 1,
    extra_copies: int = 1,
    budget: int = 0,
    max_states: int = 2_000_000,
    max_scenarios: int = 256,
    search_jobs: int = 1,
    engine: str | None = None,
    certificates: str | None = None,
) -> CycleClassification:
    """Decide whether ``cycle`` can produce a reachable deadlock.

    ``length_slack`` sweeps message lengths from the minimum (enough flits
    to hold the message's segment) up to minimum + slack.  ``extra_copies``
    additionally tests scenarios with up to that many duplicate messages of
    each type (the paper's "more than four messages" case in Theorem 1's
    proof).  ``budget`` is the per-message stall allowance (0 = the paper's
    tight synchrony).

    ``certificates`` mirrors :func:`~repro.analysis.reachability.search_deadlock`:
    ``"on"`` (default) asks :func:`repro.lint.certificates.cycle_certificate`
    first and skips every search when a static REACHABLE_DEADLOCK argument
    (Corollaries 1-3, Theorems 2-4) applies; ``"off"`` disables the
    pre-pass; ``"check"`` runs both and raises
    :class:`~repro.lint.certificates.CertificateMismatch` on disagreement.
    There is no static deadlock-free verdict at cycle level, so "cycle is a
    false resource cycle" always comes from the search.
    """
    tel = _obs_get()
    if tel is None:
        return _classify_cycle_impl(
            alg,
            cycle,
            pairs=pairs,
            length_slack=length_slack,
            extra_copies=extra_copies,
            budget=budget,
            max_states=max_states,
            max_scenarios=max_scenarios,
            search_jobs=search_jobs,
            engine=engine,
            certificates=certificates,
        )
    with tel.span("classify.cycle", channels=len(cycle)) as sp:
        result = _classify_cycle_impl(
            alg,
            cycle,
            pairs=pairs,
            length_slack=length_slack,
            extra_copies=extra_copies,
            budget=budget,
            max_states=max_states,
            max_scenarios=max_scenarios,
            search_jobs=search_jobs,
            engine=engine,
            certificates=certificates,
        )
        sp.set(
            verdict="reachable" if result.deadlock_reachable else "false-cycle",
            tilings_tested=result.tilings_tested,
            scenarios_tested=result.scenarios_tested,
            certificate=result.certificate,
        )
        tel.incr("classify.cycles")
        tel.incr("classify.scenarios", result.scenarios_tested)
        if result.certificate is not None and result.scenarios_tested == 0:
            tel.incr("classify.certificate_short_circuits")
            tel.event("classify.certificate_fastpath", code=result.certificate)
    return result


def _classify_cycle_impl(
    alg: RoutingAlgorithm,
    cycle: Sequence[Channel],
    *,
    pairs: Sequence[Pair] | None,
    length_slack: int,
    extra_copies: int,
    budget: int,
    max_states: int,
    max_scenarios: int,
    search_jobs: int,
    engine: str | None,
    certificates: str | None,
) -> CycleClassification:
    from repro.lint.certificates import (
        CertificateMismatch,
        certificates_mode,
        cycle_certificate,
    )

    cycle = tuple(cycle)
    cert_mode = certificates_mode(certificates)
    cert = (
        cycle_certificate(alg, cycle, pairs) if cert_mode != "off" else None
    )
    if cert is not None and cert_mode == "on":
        # constructive certificates (CRT005) also yield a zero-search
        # witness over the certificate's own message set; the others
        # leave witness_result as None (existence without a schedule)
        from repro.lint.witness import certificate_witness

        witness_result = None
        wit = certificate_witness(cert, budget=budget)
        if wit is not None:
            witness_result = SearchResult(
                deadlock_reachable=True,
                witness=wit,
                states_explored=0,
                spec=wit.spec,
                certificate=cert.code,
            )
        return CycleClassification(
            cycle=cycle,
            deadlock_reachable=True,
            tilings_tested=1,
            scenarios_tested=0,
            witness_result=witness_result,
            notes=[f"static certificate {cert.code}: {cert.rationale}"],
            certificate=cert.code,
        )

    result = _classify_cycle_search(
        alg,
        cycle,
        pairs=pairs,
        length_slack=length_slack,
        extra_copies=extra_copies,
        budget=budget,
        max_states=max_states,
        max_scenarios=max_scenarios,
        search_jobs=search_jobs,
        engine=engine,
    )
    if cert is not None:
        # check mode: certificate claimed reachable; the bounded search must
        # agree (its scenario family includes the certificate's tiling)
        if not result.deadlock_reachable:
            raise CertificateMismatch(
                f"static certificate {cert.code} says the cycle deadlock is "
                f"reachable but the search classified it as a false resource "
                f"cycle ({result.scenarios_tested} scenarios tested)"
            )
        result.certificate = cert.code
    return result


def _classify_cycle_search(
    alg: RoutingAlgorithm,
    cycle: tuple[Channel, ...],
    *,
    pairs: Sequence[Pair] | None,
    length_slack: int,
    extra_copies: int,
    budget: int,
    max_states: int,
    max_scenarios: int,
    search_jobs: int,
    engine: str | None,
) -> CycleClassification:
    """The search-based classification (certificate pre-pass already done)."""
    candidates = messages_for_cycle(alg, cycle, pairs)
    tilings = enumerate_tilings(cycle, candidates)
    notes: list[str] = []
    if not tilings:
        notes.append("no Definition-6 tiling exists; cycle cannot deadlock")
        return CycleClassification(
            cycle=cycle,
            deadlock_reachable=False,
            tilings_tested=0,
            scenarios_tested=0,
            notes=notes,
        )

    scenarios = 0
    for tiling in tilings:
        base_msgs: list[CheckerMessage] = []
        for pair, held in zip(tiling.pairs, tiling.held_lengths):
            path = alg.path(*pair)
            base_msgs.append(
                CheckerMessage.from_channels(
                    path, length=max(1, held), tag=f"{pair[0]}->{pair[1]}"
                )
            )
        length_options = [
            range(m.length, m.length + length_slack + 1) for m in base_msgs
        ]
        for lengths in itertools.product(*length_options):
            for copies in range(1, extra_copies + 1):
                scenarios += 1
                if scenarios > max_scenarios:
                    notes.append(
                        f"scenario cap {max_scenarios} reached; verdict covers tested scenarios"
                    )
                    return CycleClassification(
                        cycle=cycle,
                        deadlock_reachable=False,
                        tilings_tested=len(tilings),
                        scenarios_tested=scenarios - 1,
                        notes=notes,
                    )
                msgs: list[CheckerMessage] = []
                for m, ln in zip(base_msgs, lengths):
                    for c in range(copies):
                        tag = m.tag if c == 0 else f"{m.tag}(copy{c})"
                        msgs.append(CheckerMessage(path=m.path, length=ln, tag=tag))
                spec = SystemSpec.uniform(msgs, budget=budget)
                # verdict first (symmetry-reduced, optionally parallel);
                # witness search only for the rare deadlocking scenario
                probe = search_deadlock(
                    spec,
                    max_states=max_states,
                    find_witness=False,
                    jobs=search_jobs,
                    engine=engine,
                )
                result = probe
                if probe.deadlock_reachable:
                    result = search_deadlock(spec, max_states=max_states, engine=engine)
                if result.deadlock_reachable:
                    return CycleClassification(
                        cycle=cycle,
                        deadlock_reachable=True,
                        tilings_tested=len(tilings),
                        scenarios_tested=scenarios,
                        witness_result=result,
                        notes=notes,
                    )

    notes.append(
        "no tested scenario reaches a deadlock: false resource cycle "
        f"(lengths swept +{length_slack}, copies up to {extra_copies}, budget {budget})"
    )
    return CycleClassification(
        cycle=cycle,
        deadlock_reachable=False,
        tilings_tested=len(tilings),
        scenarios_tested=scenarios,
        notes=notes,
    )
