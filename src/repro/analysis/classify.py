"""Classify CDG cycles: reachable deadlock vs false resource cycle.

This operationalizes the paper's central distinction.  Given a cycle in the
channel dependency graph of an oblivious routing algorithm, the classifier

1. finds the messages (source--destination pairs) whose paths realise the
   cycle's dependencies,
2. enumerates the ways those messages can *tile* the cycle into a
   Definition-6 deadlock configuration -- each message holds a consecutive
   segment of cycle channels and is blocked at the first cycle channel of
   the next message,
3. hands each candidate configuration (messages at their minimum adequate
   lengths, optionally swept longer and/or duplicated) to the exhaustive
   reachability search.

If *some* candidate deadlock configuration is reachable the cycle is a real
deadlock hazard; if *every* candidate is unreachable the cycle is a false
resource cycle (unreachable configuration).

Completeness caveats -- stated here because a classifier that hides them
would overclaim: the search is exact for the candidate scenarios generated,
but the generator bounds message multiplicity (``extra_copies``) and length
slack (``length_slack``).  The paper's Theorem 1 proof reasons over the same
bounded families (minimum lengths, single-flit buffers, extra interposed
messages), and for the figure networks the bounds used here are those of
the paper's argument.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from collections.abc import Sequence

import networkx as nx

from repro.analysis.reachability import SearchResult, search_deadlock
from repro.analysis.state import CheckerMessage, SystemSpec
from repro.routing.base import RoutingAlgorithm
from repro.topology.channels import Channel, NodeId

Pair = tuple[NodeId, NodeId]


def classify_configuration(
    messages: Sequence["CheckerMessage"],
    *,
    budget: int = 0,
    copy_depth: int = 1,
    max_copies_total: int = 2,
    length_slack: int = 0,
    max_states: int = 20_000_000,
    search_jobs: int = 1,
) -> tuple[bool, SearchResult]:
    """Full-adversary reachability verdict for a fixed message-type set.

    The paper's adversary may inject *additional* messages of the defined
    source--destination types (Assumption 1) and choose their lengths; the
    proofs of Theorems 1 and 5 use interposed extra messages to delay a
    cycle member (a copy takes the member's next channel and drains there,
    stalling it for ``length`` cycles).  This helper therefore searches the
    base scenario plus every augmentation with up to ``copy_depth`` extra
    copies per message type and at most ``max_copies_total`` extra messages
    overall (the paper's constructions interpose one), and sweeps base
    lengths up to ``length_slack`` above minimum.

    Returns ``(deadlock_reachable, result_of_first_deadlocking_scenario_or_last)``.
    """
    from repro.analysis.state import CheckerMessage as _CM

    base = list(messages)
    n = len(base)
    copy_subsets: list[tuple[int, ...]] = [()]
    for r in range(1, min(copy_depth * n, max_copies_total) + 1):
        copy_subsets.extend(
            s
            for s in itertools.combinations_with_replacement(range(n), r)
            if all(s.count(i) <= copy_depth for i in set(s))
        )
    last: SearchResult | None = None
    for lengths in itertools.product(
        *[range(m.length, m.length + length_slack + 1) for m in base]
    ):
        sized = [_CM(m.path, ln, m.tag) for m, ln in zip(base, lengths)]
        for subset in copy_subsets:
            msgs = list(sized) + [
                _CM(sized[i].path, sized[i].length, f"{sized[i].tag}+{j}")
                for j, i in enumerate(subset)
            ]
            spec = SystemSpec.uniform(msgs, budget=budget)
            last = search_deadlock(
                spec, max_states=max_states, find_witness=False, jobs=search_jobs
            )
            if last.deadlock_reachable:
                return True, last
    assert last is not None
    return False, last


@dataclass
class CycleTiling:
    """One Definition-6 candidate: messages in cycle order with held segments."""

    pairs: list[Pair]
    held_lengths: list[int]  # cycle channels held by each message

    def __len__(self) -> int:
        return len(self.pairs)


@dataclass
class CycleClassification:
    """Verdict for one CDG cycle."""

    cycle: tuple[Channel, ...]
    deadlock_reachable: bool
    tilings_tested: int
    scenarios_tested: int
    witness_result: SearchResult | None = field(default=None, repr=False)
    notes: list[str] = field(default_factory=list)

    @property
    def is_false_resource_cycle(self) -> bool:
        return not self.deadlock_reachable


def _cycle_runs(
    cycle: Sequence[Channel], path: Sequence[Channel]
) -> list[tuple[int, int]]:
    """Maximal runs of ``path`` along ``cycle``, as (start index, length).

    A run is a maximal stretch of consecutive path channels that are also
    consecutive cycle channels in cycle order.
    """
    pos = {ch.cid: i for i, ch in enumerate(cycle)}
    n = len(cycle)
    runs: list[tuple[int, int]] = []
    i = 0
    path = list(path)
    while i < len(path):
        ch = path[i]
        if ch.cid not in pos:
            i += 1
            continue
        start = pos[ch.cid]
        length = 1
        while (
            i + length < len(path)
            and path[i + length].cid in pos
            and pos[path[i + length].cid] == (start + length) % n
            and length < n
        ):
            length += 1
        runs.append((start, length))
        i += length
    return runs


def messages_for_cycle(
    alg: RoutingAlgorithm,
    cycle: Sequence[Channel],
    pairs: Sequence[Pair] | None = None,
) -> dict[Pair, list[tuple[int, int]]]:
    """Pairs whose path intersects the cycle, with their cycle runs."""
    from repro.routing.properties import _domain

    out: dict[Pair, list[tuple[int, int]]] = {}
    for pair in _domain(alg, pairs):
        path = alg.try_path(*pair)
        if path is None:
            continue
        runs = _cycle_runs(cycle, path)
        if runs:
            out[pair] = runs
    return out


def enumerate_tilings(
    cycle: Sequence[Channel],
    candidates: dict[Pair, list[tuple[int, int]]],
    *,
    max_tilings: int = 512,
) -> list[CycleTiling]:
    """All ways to tile the cycle with message segments per Definition 6.

    Each tiling is a cyclic sequence of distinct messages: message ``i``
    holds cycle channels ``[start_i, start_{i+1})`` (in cycle order), where
    ``start_{i+1}`` lies strictly inside message ``i``'s run -- that is
    exactly "the first channel message ``m_{i+1}`` uses in the cycle blocks
    ``m_i``" from the paper's deadlock definition.
    """
    n = len(cycle)
    # run starts -> list of (pair, run_length)
    by_start: dict[int, list[tuple[Pair, int]]] = {}
    for pair, runs in candidates.items():
        for start, length in runs:
            by_start.setdefault(start, []).append((pair, length))

    tilings: list[CycleTiling] = []
    starts = sorted(by_start)
    if not starts:
        return tilings

    def dfs(
        origin: int,
        position: int,
        covered: int,
        used: list[tuple[Pair, int]],
    ) -> None:
        if len(tilings) >= max_tilings:
            return
        for pair, run_len in by_start.get(position, ()):  # messages entering here
            if any(p == pair for p, _ in used):
                continue
            # message may hold 1 .. run_len-? channels; the next message
            # must start inside this run, i.e. hold h in [1, run_len] with
            # the successor's first channel at position + h.  Holding all
            # run_len channels is allowed only when position + run_len
            # closes the tiling at origin (header then blocked at its own
            # next channel beyond the run -- not a Definition 6 cycle), so
            # require the blocked channel to be in the run: h <= run_len - 1,
            # unless closing exactly at origin with h == run_len... closing
            # at origin requires the blocked channel to be the origin
            # channel, which IS in cycle order the successor's first channel;
            # that needs position + h == origin (mod n) with h <= run_len.
            for hold in range(1, run_len + 1):
                nxt = (position + hold) % n
                new_cov = covered + hold
                if new_cov > n:
                    break
                closes = nxt == origin and new_cov == n
                if closes:
                    # the message must actually be blockable at `nxt`:
                    # its run must extend to include the origin channel.
                    if hold <= run_len - 1 or run_len == n:
                        tilings.append(
                            CycleTiling(
                                pairs=[p for p, _ in used] + [pair],
                                held_lengths=[h for _, h in used] + [hold],
                            )
                        )
                    continue
                if hold >= run_len:
                    continue  # successor must start strictly inside the run
                if nxt in by_start:
                    used.append((pair, hold))
                    dfs(origin, nxt, new_cov, used)
                    used.pop()

    for origin in starts:
        # canonical: smallest start index begins the tiling, to avoid
        # rotations being enumerated repeatedly
        dfs(origin, origin, 0, [])
        # only use the smallest viable origin; rotations of a tiling are
        # the same configuration
        if tilings:
            break
    return tilings


def classify_cycle(
    alg: RoutingAlgorithm,
    cycle: Sequence[Channel],
    *,
    pairs: Sequence[Pair] | None = None,
    length_slack: int = 1,
    extra_copies: int = 1,
    budget: int = 0,
    max_states: int = 2_000_000,
    max_scenarios: int = 256,
    search_jobs: int = 1,
) -> CycleClassification:
    """Decide whether ``cycle`` can produce a reachable deadlock.

    ``length_slack`` sweeps message lengths from the minimum (enough flits
    to hold the message's segment) up to minimum + slack.  ``extra_copies``
    additionally tests scenarios with up to that many duplicate messages of
    each type (the paper's "more than four messages" case in Theorem 1's
    proof).  ``budget`` is the per-message stall allowance (0 = the paper's
    tight synchrony).
    """
    cycle = tuple(cycle)
    candidates = messages_for_cycle(alg, cycle, pairs)
    tilings = enumerate_tilings(cycle, candidates)
    notes: list[str] = []
    if not tilings:
        notes.append("no Definition-6 tiling exists; cycle cannot deadlock")
        return CycleClassification(
            cycle=cycle,
            deadlock_reachable=False,
            tilings_tested=0,
            scenarios_tested=0,
            notes=notes,
        )

    scenarios = 0
    for tiling in tilings:
        base_msgs: list[CheckerMessage] = []
        for pair, held in zip(tiling.pairs, tiling.held_lengths):
            path = alg.path(*pair)
            base_msgs.append(
                CheckerMessage.from_channels(
                    path, length=max(1, held), tag=f"{pair[0]}->{pair[1]}"
                )
            )
        length_options = [
            range(m.length, m.length + length_slack + 1) for m in base_msgs
        ]
        for lengths in itertools.product(*length_options):
            for copies in range(1, extra_copies + 1):
                scenarios += 1
                if scenarios > max_scenarios:
                    notes.append(
                        f"scenario cap {max_scenarios} reached; verdict covers tested scenarios"
                    )
                    return CycleClassification(
                        cycle=cycle,
                        deadlock_reachable=False,
                        tilings_tested=len(tilings),
                        scenarios_tested=scenarios - 1,
                        notes=notes,
                    )
                msgs: list[CheckerMessage] = []
                for m, ln in zip(base_msgs, lengths):
                    for c in range(copies):
                        tag = m.tag if c == 0 else f"{m.tag}(copy{c})"
                        msgs.append(CheckerMessage(path=m.path, length=ln, tag=tag))
                spec = SystemSpec.uniform(msgs, budget=budget)
                # verdict first (symmetry-reduced, optionally parallel);
                # witness search only for the rare deadlocking scenario
                probe = search_deadlock(
                    spec, max_states=max_states, find_witness=False, jobs=search_jobs
                )
                result = probe
                if probe.deadlock_reachable:
                    result = search_deadlock(spec, max_states=max_states)
                if result.deadlock_reachable:
                    return CycleClassification(
                        cycle=cycle,
                        deadlock_reachable=True,
                        tilings_tested=len(tilings),
                        scenarios_tested=scenarios,
                        witness_result=result,
                        notes=notes,
                    )

    notes.append(
        "no tested scenario reaches a deadlock: false resource cycle "
        f"(lengths swept +{length_slack}, copies up to {extra_copies}, budget {budget})"
    )
    return CycleClassification(
        cycle=cycle,
        deadlock_reachable=False,
        tilings_tested=len(tilings),
        scenarios_tested=scenarios,
        notes=notes,
    )
