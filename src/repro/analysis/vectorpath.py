"""Whole-frontier vectorized BFS engine over the fastpath transition tables.

:class:`VectorEngine` is the third search engine (after the reference and
:class:`~repro.analysis.fastpath.FastEngine`).  Where the fast engine still
expands one state at a time in a Python inner loop, this engine processes
the BFS **one whole level at a time** as numpy arrays:

* a state is one fixed-width row of per-message state indices (``int32``),
  exactly the flat tuples of the fast engine's index domain; the occupancy
  bitmask of each row rides along in one integer column whose dtype
  (``self._md``) is ``int32`` when the mask fits 31 bits and ``int64``
  otherwise -- halving the element traffic of every mask op on the common
  small specs;
* the per-message scan records of the fast engine (``(req, opts)`` with at
  most two options) are flattened into dense ``(n_messages, n_states)``
  numpy tables at construction -- requested-channel bit, option count,
  first-option channel/next-index/acquired/released, second-option kind
  (wait vs stall) and next-index, occupancy bits, blocking bit -- so one
  flat ``np.take`` (per-message column offsets baked into the index) reads
  the scan record of every message of every frontier state at once;
* grant rounds run as a **wave machine**: every not-yet-emitted row scans,
  applies its deterministic movers simultaneously, and branching rows are
  replaced in place by their combo children via ``np.repeat`` splicing,
  with arbitration among clashing requesters enumerated as **mixed-radix
  arithmetic** (child ``k``'s digits select one winner per contested
  channel).  Emitted rows stay in place as tombstones, so the final row
  order is the depth-first leaf order of the reference expansion.  All hot
  selects use arithmetic masking (``x * m`` for masked-zero,
  ``b ^ ((a ^ b) * m)`` for two-way) rather than ``np.where``, which is
  2-3x slower through its buffered three-operand path.  Once a wave
  shrinks to :data:`MAX_DRAIN_ROWS` live rows, the survivors drain through
  the serial fused expansion instead of paying numpy dispatch per
  near-empty wave.  Duplicate wave nodes are pruned every *other* round
  (``guard & 1``) via packed node keys -- pruning each round costs more
  than the duplicates it removes;
* successor dedup is batched per level: canonicalize rows by sorting
  within symmetry classes (vectorized column sort), pack each row into a
  single integer key (``kbits`` bits per message index), take stable
  first occurrences via an argsort over the keys, then probe the visited
  store -- a **sorted key array** -- with one ``np.searchsorted`` per
  level and merge the survivors back in a single ``np.insert`` pass.  The
  key dtype is again ``int32`` when the packed key fits, ``int64``
  otherwise;
* deadlock detection is a vectorized mask test over the new-state block:
  read the wait-for functional graph off the occupancy tables (unique
  owner per channel bit) and iterate the owner pointer ``n`` steps --
  any row still on a live pointer has a wait-for cycle.

Equivalence contract: verdicts, ``states_explored`` counts (including the
early-exit count when a deadlock is found and the exact
:class:`~repro.analysis.reachability.SearchLimitExceeded` behaviour) and
witnesses are bit-identical to both other engines.  Two facts carry the
proof.  First, the wave machine reproduces the reference's per-root
emission order leaf for leaf (children are spliced in combo order, in
place).  Second, the fast engine's ``seen_nodes`` branch-convergence
pruning only ever removes emissions that duplicate an earlier-in-order
emission -- a duplicated ``(configuration, pending)`` node expands to an
identical subtree, and the pruned copy always sits later in leaf order --
so skipping that pruning here changes nothing once the per-level
first-occurrence dedup has run.  ``tests/test_vectorpath_differential.py``
pins all three engines against each other over the paper battery plus
hypothesis-generated specs.

Searches start in a narrow prologue -- the fused fast-engine expansion
over plain index tuples -- and switch one-way to the wide path when a
level first reaches :data:`MIN_VECTOR_FRONTIER` rows (the Python-set
visited store is converted to the sorted key store at the switch), because
sub-hundred-row levels cost more in numpy dispatch than they save.  The
visited store itself is a :class:`_SortedRuns` collection of sorted key
runs merged geometrically, so absorbing a level's worth of new keys costs
amortized ``O(new + V log V / V)`` instead of the ``O(V)`` a per-level
``np.insert`` into one flat array would.

Specs whose packed state key would overflow ``int64`` no longer fall
back: their keys switch to fixed-width big-endian **byte strings**
(``S`` dtype, one ``>i4`` word per message), which sort and
``searchsorted`` lexicographically exactly like the index tuples they
encode.  Nor do most >62-channel specs: occupancy masks only keep the
channels **shared** by at least two messages (a private channel can
never block, clash, be contested or carry a wait-for edge), compressed
to the low bit positions, so what bounds the engine is the *shared*
channel count (``num_bits_eff``) and the message count
(:data:`MAX_VECTOR_BITS`/:data:`MAX_VECTOR_MSGS`).  Specs beyond those
fall back to the fast engine wholesale with a structured
:class:`WideSpecFallbackWarning` naming the spec's requirement.
"""

from __future__ import annotations

import time
import warnings
from itertools import product as _product

import numpy as np

from repro.analysis.fastpath import _STALL, _WAIT, FastEngine, engine_for
from repro.analysis.state import SystemSpec

#: dtype of per-message state indices (table rows are small)
ID = np.int32
#: dtype of occupancy masks / pending bitmasks
MD = np.int64

#: BFS levels narrower than this expand through the fused fast-engine path;
#: numpy dispatch overhead beats the batching win on tiny levels.  Read at
#: search time (not bound at construction) so tests can monkeypatch it to
#: force the wide path onto small scenarios.
MIN_VECTOR_FRONTIER = 256

#: wave-machine tail switch: once the set of still-live nodes of a level
#: shrinks to this many rows, the remaining (long, mostly-deterministic)
#: drain chains finish through the serial per-node expansion instead --
#: late waves would otherwise pay full-array splice copies and tiny-array
#: numpy dispatch for a handful of rows
MAX_DRAIN_ROWS = 48

#: widest occupancy mask / message count the signed-int64 encoding covers;
#: beyond these the engine delegates to the fast engine wholesale
MAX_VECTOR_BITS = 62
MAX_VECTOR_MSGS = 62

_VENGINE_CACHE_LIMIT = 64
_VENGINES: dict[SystemSpec, "VectorEngine"] = {}

#: cumulative counters, read by the telemetry layer (repro.obs) via
#: snapshot deltas around a search; incremented per level / per call,
#: never inside the wave loop
COUNTERS: dict[str, int] = {
    "vectorpath.engine_cache.hits": 0,
    "vectorpath.engine_cache.misses": 0,
    "vectorpath.levels.wide": 0,
    "vectorpath.levels.narrow": 0,
    "vectorpath.emitted": 0,
    "vectorpath.unique": 0,
    "vectorpath.fallback.searches": 0,
    "vectorpath.fallback.jobs": 0,
}

_PHASES = ("expand", "dedup", "visited", "deadlock", "narrow")


def counters_snapshot() -> dict[str, int]:
    """A copy of :data:`COUNTERS` (diff two to meter one search)."""
    return dict(COUNTERS)


class WideSpecFallbackWarning(UserWarning):
    """An accelerated engine delegated a too-wide spec to the fast engine.

    Carries the spec's actual requirements and the engine's limits as
    attributes so tooling can report them structurally; the message spells
    them out for humans.  Verdicts are unaffected -- only the speedup is
    lost -- which is why this is a warning, not an error.
    """

    def __init__(
        self,
        engine: str,
        n: int,
        num_bits: int,
        max_msgs: int | None,
        max_bits: int | None,
    ) -> None:
        self.engine = engine
        self.n = n
        self.num_bits = num_bits
        self.max_msgs = max_msgs
        self.max_bits = max_bits
        lims = []
        if max_msgs is not None:
            lims.append(f"{max_msgs} messages")
        if max_bits is not None:
            lims.append(f"{max_bits} channel bits")
        super().__init__(
            f"{engine} engine fell back to the fast engine: spec needs "
            f"{n} messages over {num_bits} channel bits, engine limit is "
            f"{' / '.join(lims) or 'unbounded'} (verdict unchanged, "
            "no speedup)"
        )


def warn_wide_fallback(
    engine: str,
    spec: SystemSpec,
    n: int,
    num_bits: int,
    *,
    max_msgs: int | None = MAX_VECTOR_MSGS,
    max_bits: int | None = MAX_VECTOR_BITS,
) -> None:
    """Emit the structured wide-spec fallback warning for ``spec``."""
    del spec  # identification lives in (n, num_bits); kept for callers
    warnings.warn(
        WideSpecFallbackWarning(engine, n, num_bits, max_msgs, max_bits),
        stacklevel=3,
    )


def vector_engine_for(spec: SystemSpec) -> "VectorEngine":
    """The (cached) vector engine for ``spec``."""
    eng = _VENGINES.get(spec)
    if eng is None:
        COUNTERS["vectorpath.engine_cache.misses"] += 1
        if len(_VENGINES) >= _VENGINE_CACHE_LIMIT:
            _VENGINES.clear()
        eng = VectorEngine(spec)
        _VENGINES[spec] = eng
    else:
        COUNTERS["vectorpath.engine_cache.hits"] += 1
    return eng


def peek_engine(spec: SystemSpec) -> "VectorEngine | None":
    """The cached engine for ``spec``, without counting a cache hit/miss
    (telemetry peeks must not disturb the metered counters)."""
    return _VENGINES.get(spec)


def _first_occurrences(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(first, cand)``: first-occurrence indices and their distinct keys.

    The lexicographic sort + adjacent-unique pass of ``np.unique``, but
    with a stable argsort: numpy implements it as a radix sort for the
    int32 keys of small specs (measurably faster than the default
    quicksort on ~50k-row waves), and stability makes the first index of
    each equal-key run the first occurrence with no extra pass.  Both
    outputs come back in ascending **key** order (``cand`` is sorted),
    not emission order -- callers that need emission order sort the
    (usually much smaller) surviving subset themselves.
    """
    if keys.size <= 1:
        return np.arange(keys.size, dtype=np.intp), keys
    order = keys.argsort(kind="stable")
    sk = keys[order]
    head = np.empty(sk.size, dtype=bool)
    head[0] = True
    np.not_equal(sk[1:], sk[:-1], out=head[1:])
    return order[head], sk[head]


def _sorted_member(vis: np.ndarray, cand: np.ndarray) -> np.ndarray:
    """Vectorized membership of ``cand`` in the sorted key array ``vis``."""
    if vis.size == 0:
        return np.zeros(cand.shape[0], dtype=bool)
    pos = np.searchsorted(vis, cand)
    inb = pos < vis.size
    member = np.zeros(cand.shape[0], dtype=bool)
    member[inb] = vis[pos[inb]] == cand[inb]
    return member


def _merge_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """One sorted array out of two sorted **disjoint** ones, O(|a| + |b|)."""
    out = np.empty(a.size + b.size, dtype=a.dtype)
    ib = np.searchsorted(a, b) + np.arange(b.size)
    out[ib] = b
    rest = np.ones(out.size, dtype=bool)
    rest[ib] = False
    out[rest] = a
    return out


class _SortedRuns:
    """Amortized sorted visited-key store: a stack of sorted runs.

    ``np.insert`` into one flat sorted array rewrites all ``V`` visited
    keys every level even when the level contributed a handful -- O(V) per
    level, O(V * levels) per search.  Here each new sorted key block is
    pushed as its own run and neighbouring runs are merged only when the
    older one has stopped being at least twice the size of the newer
    (``_merge_sorted`` is linear), the classic logarithmic merge schedule:
    every key is rewritten O(log V) times total and the store never holds
    more than ~log2(V) runs, so membership stays a few ``searchsorted``
    probes.  All inserted keys are globally unique, which keeps the runs
    disjoint and the merges exact.
    """

    __slots__ = ("_runs",)

    def __init__(self, first: np.ndarray) -> None:
        self._runs: list[np.ndarray] = [first] if first.size else []

    @property
    def runs(self) -> int:
        return len(self._runs)

    @property
    def size(self) -> int:
        return sum(r.size for r in self._runs)

    def member(self, cand: np.ndarray) -> np.ndarray:
        """Vectorized membership of sorted ``cand`` across all runs."""
        out = np.zeros(cand.shape[0], dtype=bool)
        for r in self._runs:
            out |= _sorted_member(r, cand)
        return out

    def insert(self, news: np.ndarray) -> None:
        """Absorb a sorted block of keys not already in the store."""
        if news.size == 0:
            return
        runs = self._runs
        runs.append(news)
        while len(runs) >= 2 and runs[-2].size < 2 * runs[-1].size:
            b = runs.pop()
            runs[-1] = _merge_sorted(runs[-1], b)


class VectorEngine:
    """Whole-frontier BFS over numpy-encoded fastpath transition tables."""

    def __init__(self, spec: SystemSpec, *, fast: FastEngine | None = None) -> None:
        self.spec = spec
        self.fast = fast if fast is not None else engine_for(spec)
        f = self.fast
        self._n = f._n
        self.num_bits = f.num_bits
        n = self._n
        size = max(len(f._back[i]) for i in range(n)) if n else 0
        #: bits per message index in the packed single-int state key
        self._kbits = max(1, int(size - 1).bit_length()) if size else 1
        #: True when the packed state key (plus one pend bit per message
        #: for the wave-dedup node key) overflows int64; keys then become
        #: fixed-width big-endian byte strings instead of falling back
        self._wide_keys = n * self._kbits + n > 62
        # Occupancy masks only need to distinguish channels that at least
        # two messages can touch: a channel private to one message can
        # never block anyone (a message never requests a channel it holds),
        # never clash or be contested (one requester), and never carry a
        # wait-for edge.  Dropping private bits and compressing the shared
        # ones to the low positions therefore changes no verdict, count or
        # witness, while letting >62-channel specs fit the int64 mask
        # encoding whenever their *shared* channel count does.
        shared = 0
        if 1 <= n <= MAX_VECTOR_MSGS:
            seen_bits = 0
            for i in range(n):
                u = 0
                for req, opts in f._scan[i]:
                    u |= req
                    for _lab, chan, _nci, acq, rel in opts:
                        u |= (chan or 0) | acq | rel
                for m in f._occm[i]:
                    u |= m
                for m in f._blk[i]:
                    u |= m
                shared |= seen_bits & u
                seen_bits |= u
        self._shared_bits: tuple[int, ...] = tuple(
            p for p in range(f.num_bits) if (shared >> p) & 1
        )
        #: mask bits after shared-channel compression; this, not the raw
        #: channel count, is what bounds the engine
        self.num_bits_eff = len(self._shared_bits)
        #: False when the spec does not fit the int64 mask encoding (mask
        #: width or message count); every search then delegates to the
        #: fast engine (counted in COUNTERS + WideSpecFallbackWarning)
        self.vectorizable = (
            1 <= n <= MAX_VECTOR_MSGS and self.num_bits_eff <= MAX_VECTOR_BITS
        )
        #: BFS levels of the most recent :meth:`search` (telemetry only)
        self.last_search_depth: int | None = None
        #: widest BFS level of the most recent search (telemetry only)
        self.last_peak_frontier: int = 0
        #: cumulative per-phase wall seconds (scripts/profile_hotpaths.py)
        self.phase_seconds: dict[str, float] = {p: 0.0 for p in _PHASES}
        #: frontier width per BFS level of the most recent :meth:`search`
        #: (one append per level -- cheap enough to stay always-on, like
        #: the phase timers)
        self.last_level_widths: list[int] = []
        if not self.vectorizable:
            return
        #: occupancy-mask dtype: int32 when the mask fits (halves the
        #: element traffic of every mask op), int64 otherwise.  All
        #: bit-collision sums accumulate in int64 regardless (a sum of
        #: single int32 bits can overflow int32).
        self._md: type = np.int32 if self.num_bits_eff <= 31 else MD
        md = self._md
        # shared-channel compression of one full-width mask (identity when
        # every channel is shared); applied to every mask entering the
        # numpy tables and the drain scan, so the whole wide phase runs in
        # the compressed domain
        if self.num_bits_eff == f.num_bits:

            def _c(m: int | None) -> int:
                return m or 0
        else:
            _sb = self._shared_bits

            def _c(m: int | None) -> int:
                m = m or 0
                out = 0
                for k, p in enumerate(_sb):
                    out |= ((m >> p) & 1) << k
                return out
        t_req = np.zeros((n, size), dtype=md)
        t_nops = np.zeros((n, size), dtype=np.int8)
        t_ch0 = np.zeros((n, size), dtype=md)
        t_nxt0 = np.zeros((n, size), dtype=ID)
        t_acq0 = np.zeros((n, size), dtype=md)
        t_rel0 = np.zeros((n, size), dtype=md)
        t_nxt1 = np.zeros((n, size), dtype=ID)
        t_wait1 = np.zeros((n, size), dtype=bool)
        t_occ = np.zeros((n, size), dtype=md)
        t_blk = np.zeros((n, size), dtype=md)
        #: compressed-domain copy of ``FastEngine._scan`` for the serial
        #: drain tail, so drained nodes and wave rows share one mask domain
        self._cscan: list[list[tuple]] = []
        for i in range(n):
            scan_i = f._scan[i]
            occ_i = f._occm[i]
            blk_i = f._blk[i]
            cscan_i: list[tuple] = []
            for ci in range(len(scan_i)):
                req, opts = scan_i[ci]
                t_req[i, ci] = _c(req)
                t_nops[i, ci] = len(opts)
                t_occ[i, ci] = _c(occ_i[ci])
                t_blk[i, ci] = _c(blk_i[ci])
                if opts:
                    _lab, chan, nci, acq, rel = opts[0]
                    t_ch0[i, ci] = 0 if chan is None else _c(chan)
                    t_nxt0[i, ci] = nci
                    t_acq0[i, ci] = _c(acq)
                    t_rel0[i, ci] = _c(rel)
                if len(opts) > 1:
                    lab1, _c1, nci1, _a1, _r1 = opts[1]
                    t_nxt1[i, ci] = nci1
                    t_wait1[i, ci] = lab1 == "wait"
                cscan_i.append(
                    (
                        _c(req),
                        tuple(
                            (
                                lab,
                                None if chan is None else _c(chan),
                                nci,
                                _c(acq),
                                _c(rel),
                            )
                            for lab, chan, nci, acq, rel in opts
                        ),
                    )
                )
            self._cscan.append(cscan_i)
        #: (1, n) flat-table row offsets: the (n, size) tables are stored
        #: flattened and gathered through one shared flat index
        #: ``cfg + coloff`` with ``take`` -- the index block is computed
        #: once per wave instead of once per broadcast fancy-index gather
        self._coloff = (np.arange(n, dtype=ID) * size).reshape(1, n)
        self._f_req = t_req.reshape(-1)
        self._f_nops = t_nops.reshape(-1)
        self._f_ch0 = t_ch0.reshape(-1)
        self._f_nxt0 = t_nxt0.reshape(-1)
        # fused mask delta: acquired and released bits of a move are always
        # disjoint (acquired free / released occupied at scan time), so
        # ``(mask | acq) & ~rel == mask ^ (acq | rel)`` -- one table, one
        # XOR, half the reductions of the two-table form
        self._f_mv0 = (t_acq0 | t_rel0).reshape(-1)
        self._f_nxt1 = t_nxt1.reshape(-1)
        self._f_wait1 = t_wait1.reshape(-1)
        self._f_occ = t_occ.reshape(-1)
        self._f_blk = t_blk.reshape(-1)
        # symmetry classes as column-index arrays (mirrors FastEngine.canon:
        # sorting indices within a class picks the same representatives)
        groups: dict[tuple, list[int]] = {}
        for i, (m, b) in enumerate(zip(spec.messages, spec.budgets)):
            groups.setdefault((m.path, m.length, b), []).append(i)
        self._canon_cols = [
            np.asarray(ix, dtype=np.intp) for ix in groups.values() if len(ix) > 1
        ]
        # strict lower-triangular (1, n, n) mask for arbitration rank sums
        self._lt = np.tril(np.ones((n, n), dtype=bool), -1)[None, :, :]
        #: packed-key dtype: int32 when the wave node key (state key plus
        #: one pend bit per message) fits, int64 otherwise; wide-key specs
        #: use fixed-width big-endian byte strings instead (lexicographic
        #: byte order over ``>i4`` words equals elementwise index order,
        #: since indices are non-negative)
        self._kd = np.int32 if n * self._kbits + n <= 31 else MD
        self._sd = np.dtype(f"S{4 * n}")  # state byte key (wide mode)
        self._nd = np.dtype(f"S{8 * n}")  # node byte key: cfg + pend words
        #: per-column shifts of the packed state key
        self._kshift = (np.arange(n, dtype=self._kd) * self._kbits).reshape(1, n)
        #: (1, n) per-message shifts for the pend bits of the wave node key
        self._ark = np.arange(n, dtype=self._kd).reshape(1, n)
        #: duplicate single-bit channels detectable as sum != bitwise-or
        #: (the sum of n single-bit masks cannot overflow int64)
        self._sum_safe = (
            self.num_bits_eff + max(0, (n - 1).bit_length()) + 1 <= 63
        )
        # joint-choice spread table (n <= 8): _spread[two_code, rank, j]
        # is True when child ``rank`` picks option 1 for two-option mover
        # ``j``, with the first mover varying slowest -- the
        # ``product(*bopts)`` enumeration as one table gather
        if n <= 8:
            codes = np.arange(1 << n, dtype=np.int64)
            twob = ((codes[:, None] >> np.arange(n)) & 1).astype(bool)
            sfx = twob[:, ::-1].cumsum(axis=1)[:, ::-1] - twob
            ranks = np.arange(1 << n, dtype=np.int64)
            self._spread: np.ndarray | None = (
                ((ranks[None, :, None] >> sfx[:, None, :]) & 1) != 0
            ) & twob[:, None, :]
        else:
            self._spread = None

    def reset_profile(self) -> None:
        for p in _PHASES:
            self.phase_seconds[p] = 0.0

    # ------------------------------------------------------------------
    # canonicalization / dedup / deadlock over row blocks
    # ------------------------------------------------------------------
    def _pack_rows(self, rows: np.ndarray) -> np.ndarray:
        """One fixed-width key per row, ordered like the index tuples.

        Narrow specs pack message indices at ``kbits``-bit stride into one
        integer -- int32 when ``n * kbits + n`` fits (halves the sort and
        searchsorted traffic of every dedup), int64 otherwise.  Wide specs
        view each row's big-endian ``>i4`` words as one ``S{4n}`` byte
        string: bytewise lexicographic order equals elementwise order for
        the non-negative indices, with no width limit.
        """
        if self._wide_keys:
            be = np.ascontiguousarray(rows.astype(">i4"))
            return be.view(self._sd).ravel()
        r = rows.astype(self._kd, copy=False)
        out = r[:, 0].astype(self._kd)  # always copies (column view)
        k = self._kbits
        for j in range(1, self._n):
            out |= r[:, j] << (j * k)  # python-int shift keeps the dtype
        return out

    def _pack_nodes(self, cfg: np.ndarray, pend: np.ndarray) -> np.ndarray:
        """Wide-mode wave node keys: cfg and pend words as one byte string."""
        node = np.empty((cfg.shape[0], 2 * self._n), dtype=">i4")
        node[:, : self._n] = cfg
        node[:, self._n :] = pend
        return node.view(self._nd).ravel()

    def _pack_set(self, states: set[tuple]) -> np.ndarray:
        """Sorted packed keys of a Python-set visited store (mode switch)."""
        if not states:
            return np.empty(0, dtype=self._sd if self._wide_keys else self._kd)
        rows = np.asarray(sorted(states), dtype=ID if self._wide_keys else self._kd)
        out = self._pack_rows(rows)
        out.sort()
        return out

    def _unpack(self, key: int | bytes) -> tuple:
        """The index tuple behind one packed state key."""
        if self._wide_keys:
            # S-dtype items drop trailing NUL bytes: re-pad to full width
            buf = bytes(key).ljust(4 * self._n, b"\x00")  # type: ignore[arg-type]
            return tuple(int(v) for v in np.frombuffer(buf, dtype=">i4"))
        k = self._kbits
        m = (1 << k) - 1
        return tuple((key >> (i * k)) & m for i in range(self._n))

    def _canon_rows(self, rows: np.ndarray) -> np.ndarray:
        """Row-wise symmetry canonicalization (sort within each class)."""
        if not self._canon_cols:
            return rows
        out = rows.copy()
        for cols in self._canon_cols:
            sub = out[:, cols]
            sub.sort(axis=1)
            out[:, cols] = sub
        return out

    def _masks_for(self, cfg: np.ndarray) -> np.ndarray:
        """Compressed occupancy masks derived from a state block.

        Used at the narrow->wide switch: prologue masks live in the fast
        engine's full-width domain, but a state's mask is by definition
        the OR of its per-message occupancy, so re-deriving it from the
        compressed tables lands it in the wide phase's domain directly.
        """
        return np.bitwise_or.reduce(
            self._f_occ.take(cfg + self._coloff), axis=1
        )

    def _deadlock_flags(self, cfg: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Boolean wait-for-cycle verdict per row (mirrors ``_deadlocked``).

        The owner of each blocked message's requested channel is read off
        the occupancy tables -- channel occupancies are disjoint, so the
        weighted sum over messages recovers the unique owner index -- and
        the resulting functional graph is iterated ``n`` steps: a pointer
        that never falls off (-1) is on a cycle.
        """
        idx = cfg + self._coloff
        req = self._f_blk.take(idx)
        blocked = (mask[:, None] & req) != 0
        out = np.zeros(cfg.shape[0], dtype=bool)
        rows = np.flatnonzero(blocked.any(axis=1))
        if rows.size == 0:
            return out
        n = self._n
        occ = self._f_occ.take(idx[rows])
        reqr = req[rows] * blocked[rows]
        own = np.zeros((rows.size, n), dtype=np.int64)
        for j in range(n):
            own += (j + 1) * ((occ[:, j][:, None] & reqr) != 0)
        wait = own - 1
        # a message occupying its own requested channel is not an edge
        wait[wait == np.arange(n, dtype=np.int64)[None, :]] = -1
        ptr = wait
        for _ in range(n):
            ptr = np.where(
                ptr >= 0,
                np.take_along_axis(wait, np.maximum(ptr, 0), axis=1),
                -1,
            )
        out[rows] = (ptr >= 0).any(axis=1)
        return out

    # ------------------------------------------------------------------
    # the wave machine: all successors of a whole BFS level at once
    # ------------------------------------------------------------------
    def _drain_leaves(
        self, cur0: list, pending0: int, mask0: int
    ) -> tuple[list[tuple], list[int]]:
        """All emission leaves of one live wave node, reference combo order.

        Serial counterpart of the wave machine for a single (cfg, pend,
        mask) node at a round boundary: the same round loop, pre-apply,
        joint-choice enumeration and arbitration as
        ``FastEngine._emissions`` (children pushed in reverse for
        depth-first leaf order), minus visited fusion and deadlock lookups
        -- the caller dedups and verdicts the whole level in batch.  May
        emit duplicate leaves (pruning is best-effort, as everywhere).
        """
        n = self._n
        scan = self._cscan
        seen_nodes: set[tuple] = set()
        out_cfg: list[tuple] = []
        out_mask: list[int] = []
        stack: list[tuple[list, int, int]] = [(cur0, pending0, mask0)]
        while stack:
            cur, pending, mask = stack.pop()
            branch = False
            if pending >= 0:
                while True:
                    if not pending:
                        break
                    movers: list[int] = []
                    mopts: list[tuple] = []
                    multi = False
                    reqmask = 0
                    clash = False
                    want = 0
                    for i in range(n):
                        if not pending >> i & 1:
                            continue
                        req, opts = scan[i][cur[i]]
                        if mask & req:
                            want |= req
                        elif opts:
                            movers.append(i)
                            mopts.append(opts)
                            if len(opts) > 1:
                                multi = True
                            elif req:
                                if reqmask & req:
                                    clash = True
                                reqmask |= req
                        else:
                            pending &= ~(1 << i)
                    if not movers:
                        break
                    if not multi and not clash:
                        freed = 0
                        for i, o in zip(movers, mopts):
                            first = o[0]
                            cur[i] = first[2]
                            mask = (mask | first[3]) & ~first[4]
                            freed |= first[4]
                            pending &= ~(1 << i)
                        if not pending or not freed & want:
                            break
                        continue
                    seen1 = 0
                    seen2 = 0
                    for o in mopts:
                        c = o[0][1]
                        if c is not None:
                            if seen1 & c:
                                seen2 |= c
                            seen1 |= c
                    bmovers: list[int] = []
                    bopts: list[tuple] = []
                    pre_moved = False
                    freed = 0
                    for i, o in zip(movers, mopts):
                        first = o[0]
                        c = first[1]
                        if len(o) > 1 or (c is not None and seen2 & c):
                            bmovers.append(i)
                            bopts.append(o)
                            continue
                        cur[i] = first[2]
                        mask = (mask | first[3]) & ~first[4]
                        freed |= first[4]
                        pending &= ~(1 << i)
                        pre_moved = True
                    if not bmovers:  # pragma: no cover - multi/clash imply some
                        if not pending or not freed & want:
                            break
                        continue
                    branch = True
                    break
            if not branch:
                out_cfg.append(tuple(cur))
                out_mask.append(mask)
                continue
            children: list[tuple[list, int, int]] = []
            chseen = 0
            no_contest = True
            for o in bopts:
                c = o[0][1]
                if c is not None:
                    if chseen & c:
                        no_contest = False
                        break
                    chseen |= c
            for combo in _product(*bopts):
                wsets: tuple | None = None
                if not no_contest:
                    seenm = 0
                    dupm = 0
                    for o in combo:
                        c = o[1]
                        if c is not None:
                            if seenm & c:
                                dupm |= c
                            seenm |= c
                    if dupm:
                        requests: dict[int, list[int]] = {}
                        for i, o in zip(bmovers, combo):
                            c = o[1]
                            if c is not None and c & dupm:
                                lst = requests.get(c)
                                if lst is None:
                                    requests[c] = [i]
                                else:
                                    lst.append(i)
                        if len(requests) == 1:
                            ((c0, cands),) = requests.items()
                            wsets = tuple([{c0: w} for w in cands])
                        else:
                            wsets = tuple(
                                [
                                    dict(zip(requests, wc))
                                    for wc in _product(*requests.values())
                                ]
                            )
                if wsets is None:
                    nxt = list(cur)
                    nmask = mask
                    npend = pending
                    moved = pre_moved
                    for i, o in zip(bmovers, combo):
                        lab, _chan, nci, acq, rel = o
                        if lab is _WAIT:
                            continue
                        nxt[i] = nci
                        npend &= ~(1 << i)
                        if lab is not _STALL:
                            moved = True
                        if acq or rel:
                            nmask = (nmask | acq) & ~rel
                    if moved:
                        node = (tuple(nxt), npend)
                        if node not in seen_nodes:
                            seen_nodes.add(node)
                            children.append((nxt, npend, nmask))
                    else:
                        children.append((nxt, -1, nmask))
                    continue
                for winners in wsets:
                    nxt = list(cur)
                    nmask = mask
                    npend = pending
                    moved = pre_moved
                    for i, o in zip(bmovers, combo):
                        lab, chan, nci, acq, rel = o
                        if chan is not None:
                            w = winners.get(chan)
                            if w is not None and w != i:
                                npend &= ~(1 << i)
                                continue
                        if lab is _WAIT:
                            continue
                        nxt[i] = nci
                        npend &= ~(1 << i)
                        if lab is not _STALL:
                            moved = True
                        if acq or rel:
                            nmask = (nmask | acq) & ~rel
                    if moved:
                        node = (tuple(nxt), npend)
                        if node not in seen_nodes:
                            seen_nodes.add(node)
                            children.append((nxt, npend, nmask))
                    else:
                        children.append((nxt, -1, nmask))
            stack.extend(reversed(children))
        return out_cfg, out_mask

    def _expand_level(
        self, cfg0: np.ndarray, mask0: np.ndarray, *, need_roots: bool = True
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """``(emitted_cfg, emitted_mask, emitted_root)`` for one BFS level.

        Row ``r`` of the output is the ``r``-th emission the serial fast
        engine would produce expanding the level's states in order (minus
        its in-expansion dedup, which the caller's batched first-occurrence
        pass reproduces); ``emitted_root[r]`` indexes the level row it came
        from.  May contain duplicate rows.  Only witness searches consume
        the root map; verdict searches pass ``need_roots=False`` and get
        ``None`` back, skipping one gather per splice.
        """
        n = self._n
        wcfg = cfg0.astype(ID, copy=True)
        wpend = np.ones((cfg0.shape[0], n), dtype=bool)
        wmask = mask0.astype(self._md, copy=True)
        wroot = np.arange(cfg0.shape[0], dtype=ID) if need_roots else None
        wem = np.zeros(cfg0.shape[0], dtype=bool)
        orr = np.bitwise_or.reduce
        guard = 0
        while True:
            act = np.flatnonzero(~wem)
            if act.size == 0:
                break
            if act.size <= MAX_DRAIN_ROWS:
                # tail switch: finish the few surviving drain chains
                # serially; their leaves splice into the same positions the
                # wave machine would have emitted them at, so leaf order --
                # and therefore everything downstream -- is unchanged
                cfg_l = wcfg[act].tolist()
                pend_l = (
                    (wpend[act].astype(np.int64) << np.arange(n, dtype=np.int64))
                    .sum(axis=1)
                    .tolist()
                )
                mask_l = wmask[act].tolist()
                leaves = [
                    self._drain_leaves(c, p, m)
                    for c, p, m in zip(cfg_l, pend_l, mask_l)
                ]
                counts = np.ones(wcfg.shape[0], dtype=np.int64)
                counts[act] = [len(lc) for lc, _lm in leaves]
                pos = np.repeat(np.arange(wcfg.shape[0], dtype=ID), counts)
                live = np.zeros(wcfg.shape[0], dtype=bool)
                live[act] = True
                slots = np.flatnonzero(live[pos])
                wcfg = wcfg[pos]
                wmask = wmask[pos]
                if wroot is not None:
                    wroot = wroot[pos]
                wcfg[slots] = np.array(
                    [st for lc, _lm in leaves for st in lc], dtype=ID
                )
                wmask[slots] = np.array(
                    [m for _lc, lm in leaves for m in lm], dtype=self._md
                )
                break
            if (guard & 1) and act.size > 1:
                # branch-convergence pruning, batched: a live (cfg, pend)
                # node reached twice -- different arbitration winners,
                # lose-vs-wait pairs ending equal, or two level states
                # converging -- expands to the identical subtree, and the
                # later copy's emissions are all duplicates of the earlier
                # one's, so dropping it is invisible after the level's
                # first-occurrence dedup.  (Supersedes the fast engine's
                # per-root ``seen_nodes``: it also prunes across roots.)
                if self._wide_keys:
                    kc = self._pack_nodes(wcfg[act], wpend[act])
                elif n <= 8:
                    pcode = np.packbits(wpend[act], axis=1, bitorder="little")[
                        :, 0
                    ]
                    kc = (self._pack_rows(wcfg[act]) << n) | pcode
                else:  # pragma: no cover - exercised only for n > 8
                    pcode = orr(wpend[act].astype(self._kd) << self._ark, axis=1)
                    kc = (self._pack_rows(wcfg[act]) << n) | pcode
                first, _ = _first_occurrences(kc)
                if first.size < act.size:
                    keep = np.ones(wcfg.shape[0], dtype=bool)
                    keep[act] = False
                    keep[act[first]] = True
                    wcfg = wcfg[keep]
                    wpend = wpend[keep]
                    wmask = wmask[keep]
                    if wroot is not None:
                        wroot = wroot[keep]
                    wem = wem[keep]
                    act = np.flatnonzero(~wem)
            guard += 1
            if guard > 4 * n + 8:  # pragma: no cover - pend strictly shrinks
                raise AssertionError("vector wave machine failed to converge")
            cfg = wcfg[act]
            pend = wpend[act]
            mask = wmask[act]
            # --- scan: one shared flat index, one take per table ---
            idx = cfg + self._coloff
            req = self._f_req.take(idx)
            nops = self._f_nops.take(idx)
            done = pend & (nops == 0)
            done_any = bool(done.any())
            if done_any:
                pend = pend & ~done
            blocked = pend & ((mask[:, None] & req) != 0)
            mover = pend & ~blocked
            has_mover = mover.any(axis=1)
            two = mover & (nops == 2)
            multi = two.any(axis=1)
            # duplicate requested channel among single-option movers (clash):
            # the requests are single bits, so duplicates are exactly where
            # their integer sum differs from their bitwise or.  (Pending
            # movers always have one or two options, so the single-option
            # ones are ``mover ^ two``; ``x * m`` is the masked-zero select
            # throughout this module -- it skips np.where's much slower
            # buffered three-operand path.)
            sreq = req * (mover ^ two)
            if self._sum_safe:
                clash = np.add.reduce(sreq, axis=1, dtype=np.int64) != orr(sreq, axis=1)
            else:  # pragma: no cover - needs num_bits near the int64 limit
                seen1 = np.zeros(act.size, dtype=self._md)
                dup1 = np.zeros(act.size, dtype=self._md)
                for j in range(n):
                    c = sreq[:, j]
                    dup1 |= seen1 & c
                    seen1 |= c
                clash = dup1 != 0
            branch = has_mover & (multi | clash)
            det = has_mover & ~branch
            nxt0 = self._f_nxt0.take(idx)
            mv0 = self._f_mv0.take(idx)
            # --- deterministic rounds: apply every mover simultaneously.
            # All acquired bits of one round are pairwise distinct (clash
            # and contested-channel rounds branch instead) and disjoint
            # from the released bits (an acquired channel was free at scan
            # time), so the batched XOR mask update equals the serial one. ---
            has_det = bool(det.any())
            if has_det:
                want = orr(req * blocked, axis=1)
                dmask = mover & det[:, None]
                cfg = cfg ^ ((cfg ^ nxt0) * dmask)
                delta = orr(mv0 * dmask, axis=1)
                mask = mask ^ delta
                pend = pend & ~dmask
                # short-circuit: nothing a blocked message wants was freed
                # (the requested bit was occupied at scan time, so only the
                # released half of ``delta`` can intersect ``want``)
                det_done = det & (~pend.any(axis=1) | ((delta & want) == 0))
            else:
                det_done = np.zeros(act.size, dtype=bool)
            emit_now = ~has_mover | det_done
            # write back what actually changed (branch rows get replaced
            # below and emitted rows are tombstones, so stale is fine)
            if has_det:
                wcfg[act] = cfg
                wmask[act] = mask
            if has_det or done_any:
                wpend[act] = pend
            wem[act[emit_now]] = True
            bsel = np.flatnonzero(branch)
            if bsel.size == 0:
                continue
            cfg_b = cfg[bsel]
            ch_cfg, ch_pend, ch_mask, ch_moved, ch_starts, patch, row_counts = (
                self._branch_children(
                    cfg_b,
                    pend[bsel],
                    mask[bsel],
                    mover[bsel],
                    nops[bsel],
                    # branch rows are never det rows, so the pre-round
                    # flat index is still valid for them
                    self._f_ch0.take(idx[bsel]),
                    nxt0[bsel],
                    mv0[bsel],
                )
            )
            # splice: each branch row is replaced in place by its children
            # (combo order), preserving depth-first leaf order; the child
            # blocks are scattered straight into the spliced arrays
            total = wcfg.shape[0]
            bglobal = act[bsel]
            counts = np.ones(total, dtype=np.int64)
            counts[bglobal] = row_counts
            pos = np.repeat(np.arange(total, dtype=ID), counts)
            is_branch_row = np.zeros(total, dtype=bool)
            is_branch_row[bglobal] = True
            slots = np.flatnonzero(is_branch_row[pos])
            wcfg = wcfg[pos]
            wpend = wpend[pos]
            wmask = wmask[pos]
            if wroot is not None:
                wroot = wroot[pos]
            wem = wem[pos]
            sl0 = slots if ch_starts is None else slots[ch_starts]
            wcfg[sl0] = ch_cfg
            wpend[sl0] = ch_pend
            wmask[sl0] = ch_mask
            wem[sl0] = ~ch_moved
            if patch is not None:
                cs, p_cfg, p_pend, p_mask, p_moved = patch
                slc = slots[cs]
                wcfg[slc] = p_cfg
                wpend[slc] = p_pend
                wmask[slc] = p_mask
                wem[slc] = ~p_moved
        return wcfg, wmask, wroot

    def _branch_children(
        self,
        cfg: np.ndarray,
        pend: np.ndarray,
        mask: np.ndarray,
        mover: np.ndarray,
        nops: np.ndarray,
        ch0: np.ndarray,
        nxt0: np.ndarray,
        mv0: np.ndarray,
    ) -> tuple[
        np.ndarray,
        np.ndarray,
        np.ndarray,
        np.ndarray,
        np.ndarray | None,
        tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None,
        np.ndarray,
    ]:
        """Children of one wave's branching rows, reference combo order.

        Returns ``(cfg, pend, mask, moved, starts, patch, row_counts)``.
        Children of row ``r`` are contiguous and in the order
        ``product(*bopts)`` (then ``product`` over arbitration winners)
        would yield them; ``row_counts[r]`` is how many.  The first four
        arrays hold the joint-choice (phase A) children; when arbitration
        multiplied some of them into several winner-set children, ``starts``
        maps each phase-A child to its first child slot and ``patch`` is
        ``(cs, cfg, pend, mask, moved)`` rows to scatter at child slots
        ``cs`` (both ``None`` when no child is contested, where child slots
        are exactly the phase-A children).  ``moved`` False marks a round
        fixpoint: the child is a finished emission, not a live node.

        Arbitration is fully vectorized as mixed-radix arithmetic: within
        one combo child, number the contested channels by first-requester
        column and each channel's requesters by column; winner set ``w``
        (of ``prod(counts)``) picks, on the channel whose later-channel
        counts multiply to ``suffix``, the requester of rank
        ``(w // suffix) % count`` -- exactly the reference's
        ``product(*requests.values())`` enumeration order.
        """
        n = self._n
        nrows = cfg.shape[0]
        orr = np.bitwise_or.reduce
        # branching movers: a genuine second option, or first-option channel
        # requested by more than one mover this round
        chm = ch0 * mover
        # rows where two movers share a first-option channel (sum != or of
        # the single-bit channels); everywhere else branching is purely the
        # two-option movers and no child can need arbitration
        if self._sum_safe:
            coll = np.add.reduce(chm, axis=1, dtype=np.int64) != orr(chm, axis=1)
            crows = np.flatnonzero(coll)
        else:  # pragma: no cover - needs num_bits near the int64 limit
            s1 = np.zeros(nrows, dtype=self._md)
            s2f = np.zeros(nrows, dtype=self._md)
            for j in range(n):
                c = chm[:, j]
                s2f |= s1 & c
                s1 |= c
            crows = np.flatnonzero(s2f != 0)
        isb = mover & (nops == 2)
        if crows.size:
            chc = chm[crows]
            s1 = np.zeros(crows.size, dtype=self._md)
            s2 = np.zeros(crows.size, dtype=self._md)
            for j in range(n):
                c = chc[:, j]
                s2 |= s1 & c
                s1 |= c
            ch0r = ch0[crows]
            isb[crows] |= mover[crows] & (ch0r != 0) & ((s2[:, None] & ch0r) != 0)
        # remaining movers are deterministic: fold them in first (pre-apply)
        pre = mover & ~isb
        pre_any = pre.any(axis=1)
        cfg = cfg ^ ((cfg ^ nxt0) * pre)
        mask = mask ^ orr(mv0 * pre, axis=1)
        pend = pend & ~pre
        # second-option tables (valid at branching-mover columns only;
        # the index must follow the pre-apply, which changed cfg)
        idx = cfg + self._coloff
        nxt1 = self._f_nxt1.take(idx)
        wait1 = self._f_wait1.take(idx)
        # --- phase A: joint choices of the two-option movers.  Child c of
        # a row picks option (c >> suffix) & 1 per mover, suffix = number
        # of two-option movers after it, matching product(*bopts) (first
        # mover varies slowest). ---
        two = isb & (nops == 2)
        k2 = two.sum(axis=1)
        ccount = np.left_shift(np.int64(1), k2)
        total = int(ccount.sum())
        rowrep = np.repeat(np.arange(nrows, dtype=np.int64), ccount)
        base = np.concatenate(([0], np.cumsum(ccount)[:-1]))
        rank = np.arange(total, dtype=np.int64) - base[rowrep]
        if self._spread is not None:
            code = np.packbits(two, axis=1, bitorder="little")[:, 0]
            take1 = self._spread[code[rowrep], rank]
        else:  # pragma: no cover - exercised only for n > 8
            suffix = two[:, ::-1].cumsum(axis=1)[:, ::-1] - two
            take1 = (((rank[:, None] >> suffix[rowrep]) & 1) != 0) & two[rowrep]
        take0 = isb[rowrep] & ~take1
        # --- contested channels per child (arbitration needed): only
        # children of colliding rows are candidates, so work the subset ---
        if crows.size == 0:
            contested = None
        else:
            iscoll = np.zeros(nrows, dtype=bool)
            iscoll[crows] = True
            csel = np.flatnonzero(iscoll[rowrep])
            ch0c = ch0[rowrep[csel]] * take0[csel]
            s1c = np.zeros(csel.size, dtype=self._md)
            dupc = np.zeros(csel.size, dtype=self._md)
            for j in range(n):
                c = ch0c[:, j]
                dupc |= s1c & c
                s1c |= c
            dnz = np.flatnonzero(dupc != 0)
            contested = csel[dnz]
            cc = ch0c[dnz]
            dupsel = dupc[dnz]
        # --- phase C (vectorized): apply the uncontested children ---
        stall1 = take1 & ~wait1[rowrep]
        # take0 and stall1 are disjoint (take0 excludes take1, stall1 is a
        # subset of it), so the two xor corrections never touch the same cell
        cfgr = cfg[rowrep]
        ncfg = (
            cfgr
            ^ ((cfgr ^ nxt0[rowrep]) * take0)
            ^ ((cfgr ^ nxt1[rowrep]) * stall1)
        )
        npend = pend[rowrep] & ~(take0 | stall1)
        nmask = mask[rowrep] ^ orr(mv0[rowrep] * take0, axis=1)
        nmoved = pre_any[rowrep] | take0.any(axis=1)
        if contested is None or contested.size == 0:
            return ncfg, npend, nmask, nmoved, None, None, ccount
        # --- phase B (vectorized): arbitration over contested children via
        # the mixed-radix scheme from the docstring.  Per contested child,
        # count/rank the requesters of each contested channel (pairwise
        # column comparisons; n is small) and suffix-multiply the counts in
        # leader-column order, so each winner set is one integer whose
        # digits are the per-channel winner ranks. ---
        m = contested.size
        # (m, n, n) same-channel matrix: eq[t, j, j2] when movers j and j2
        # of child t both chose channel cc[t, j] != 0
        eq = (cc[:, :, None] == cc[:, None, :]) & (cc != 0)[:, :, None]
        cnt = eq.sum(axis=2, dtype=np.int64)  # requesters on j's channel
        rank = (eq & self._lt).sum(axis=2, dtype=np.int64)  # j's arrival rank
        fp = eq.argmax(axis=2)  # first-requester column of j's channel
        np.maximum(cnt, 1, out=cnt)
        contender = (cc & dupsel[:, None]) != 0
        leader = contender & (rank == 0)
        run = np.ones(m, dtype=np.int64)
        suff = np.empty((m, n), dtype=np.int64)
        for j in range(n - 1, -1, -1):
            suff[:, j] = run
            run = np.where(leader[:, j], run * cnt[:, j], run)
        sfx = np.take_along_axis(suff, fp, axis=1)
        # contested children are rare: instead of re-materializing every
        # row through a repeat, hand the caller the phase-A block plus a
        # patch of winner-set rows with their child-slot positions
        counts2 = np.ones(total, dtype=np.int64)
        counts2[contested] = run
        starts = np.cumsum(counts2) - counts2
        nslots = int(run.sum())
        ti = np.repeat(np.arange(m, dtype=np.int64), run)
        wvec = np.arange(nslots, dtype=np.int64) - np.repeat(
            np.cumsum(run) - run, run
        )
        cs = starts[contested][ti] + wvec
        w = wvec[:, None]
        win = contender[ti] & ((w // sfx[ti]) % cnt[ti] == rank[ti])
        lose = contender[ti] & ~win
        c_of = contested[ti]
        r = rowrep[c_of]
        apply0 = take0[c_of] & ~lose
        st1 = stall1[c_of]
        cfgc = cfg[r]
        p_cfg = cfgc ^ ((cfgc ^ nxt0[r]) * apply0) ^ ((cfgc ^ nxt1[r]) * st1)
        p_pend = pend[r] & ~(apply0 | st1 | lose)
        p_mask = mask[r] ^ orr(mv0[r] * apply0, axis=1)
        p_moved = pre_any[r] | apply0.any(axis=1)
        row_counts = ccount.copy()
        np.add.at(row_counts, rowrep[contested], run - 1)
        return (
            ncfg,
            npend,
            nmask,
            nmoved,
            starts,
            (cs, p_cfg, p_pend, p_mask, p_moved),
            row_counts,
        )

    # ------------------------------------------------------------------
    # searches
    # ------------------------------------------------------------------
    def search(
        self, *, max_states: int = 2_000_000, symmetry_reduction: bool = True
    ) -> tuple[bool, int]:
        """Level-vectorized BFS; bit-identical to ``FastEngine.search``."""
        from repro.analysis.reachability import SearchLimitExceeded

        if not self.vectorizable:
            COUNTERS["vectorpath.fallback.searches"] += 1
            warn_wide_fallback(
                "vector", self.spec, self._n, self.num_bits_eff
            )
            result = self.fast.search(
                max_states=max_states, symmetry_reduction=symmetry_reduction
            )
            self.last_search_depth = self.fast.last_search_depth
            self.last_level_widths = self.fast.last_level_widths
            return result

        f = self.fast
        canon = f.canon if symmetry_reduction else None
        init = f.init_idx
        visited: set[tuple] = {canon(init) if canon else init}
        init_mask = 0
        for i, ci in enumerate(init):
            init_mask |= f._occm[i][ci]
        count = 1
        depth = 0
        peak = 1
        stats = {"wide": 0, "narrow": 0, "emitted": 0, "unique": 0}
        lst: list[tuple[tuple, int]] = [(init, init_mask)]
        emissions = f._emissions
        phases = self.phase_seconds
        widths: list[int] = []
        self.last_level_widths = widths
        try:
            # --- narrow prologue: fused fast-engine expansion against a
            # Python-set visited store (identical per-state semantics) ---
            while lst and len(lst) < MIN_VECTOR_FRONTIER:
                if len(lst) > peak:
                    peak = len(lst)
                widths.append(len(lst))
                stats["narrow"] += 1
                t0 = time.perf_counter()
                nxt_lst: list[tuple[tuple, int]] = []
                push = nxt_lst.append
                for state, mask in lst:
                    for nxt, dead, nmask in emissions(state, visited, canon, mask):
                        count += 1
                        if count > max_states:
                            raise SearchLimitExceeded(
                                f"exceeded {max_states} states; tighten the "
                                "scenario or raise the cap"
                            )
                        if dead:
                            self.last_search_depth = depth + 1
                            return True, count
                        push((nxt, nmask))
                lst = nxt_lst
                phases["narrow"] += time.perf_counter() - t0
                depth += 1
            if not lst:
                self.last_search_depth = depth
                return False, count
            # --- one-way switch to wide mode: the visited store becomes a
            # sorted-runs packed key store, probed with searchsorted; tail
            # levels below the threshold stay in the wave machine (its
            # per-level overhead is bounded, and converting the store back
            # to a Python set would not be) ---
            vis = _SortedRuns(self._pack_set(visited))
            visited.clear()
            arr_cfg = np.asarray([s for s, _ in lst], dtype=ID)
            arr_mask = self._masks_for(arr_cfg)
            while arr_cfg.shape[0]:
                if arr_cfg.shape[0] > peak:
                    peak = arr_cfg.shape[0]
                widths.append(int(arr_cfg.shape[0]))
                stats["wide"] += 1
                t0 = time.perf_counter()
                em_cfg, em_mask, _roots = self._expand_level(
                    arr_cfg, arr_mask, need_roots=False
                )
                t1 = time.perf_counter()
                keys = self._pack_rows(
                    self._canon_rows(em_cfg) if canon is not None else em_cfg
                )
                first, cand = _first_occurrences(keys)
                t2 = time.perf_counter()
                member = vis.member(cand)
                fresh = ~member
                sel = first[fresh]
                sel.sort()  # restore emission order over the survivors
                nd = int(sel.size)
                if nd:
                    # absorb the new-key block (already sorted: cand is in
                    # key order) as a run; geometric merging amortizes
                    vis.insert(cand[fresh])
                t3 = time.perf_counter()
                stats["emitted"] += em_cfg.shape[0]
                stats["unique"] += nd
                phases["expand"] += t1 - t0
                phases["dedup"] += t2 - t1
                phases["visited"] += t3 - t2
                if nd == 0:
                    arr_cfg = em_cfg[:0]
                    arr_mask = em_mask[:0]
                    depth += 1
                    continue
                ncfg = em_cfg[sel]
                nmask = em_mask[sel]
                deadf = self._deadlock_flags(ncfg, nmask)
                phases["deadlock"] += time.perf_counter() - t3
                # exact serial count semantics: the j-th new state (1-based)
                # raises when count + j > max_states, *before* its deadlock
                # verdict would return
                allow = max_states - count
                if deadf.any():
                    j = int(np.argmax(deadf))
                    if j < allow:
                        self.last_search_depth = depth + 1
                        return True, count + j + 1
                    raise SearchLimitExceeded(
                        f"exceeded {max_states} states; tighten the "
                        "scenario or raise the cap"
                    )
                if nd > allow:
                    raise SearchLimitExceeded(
                        f"exceeded {max_states} states; tighten the "
                        "scenario or raise the cap"
                    )
                count += nd
                arr_cfg = ncfg
                arr_mask = nmask
                depth += 1
            self.last_search_depth = depth
            return False, count
        finally:
            self.last_peak_frontier = peak
            COUNTERS["vectorpath.levels.wide"] += stats["wide"]
            COUNTERS["vectorpath.levels.narrow"] += stats["narrow"]
            COUNTERS["vectorpath.emitted"] += stats["emitted"]
            COUNTERS["vectorpath.unique"] += stats["unique"]

    def search_witness(
        self, *, max_states: int = 2_000_000, symmetry_reduction: bool = False
    ) -> tuple[bool, int, list | None, list | None, tuple[int, ...]]:
        """Level-vectorized witness BFS; mirrors ``FastEngine.search_witness``."""
        from repro.analysis.reachability import SearchLimitExceeded

        if not self.vectorizable:
            COUNTERS["vectorpath.fallback.searches"] += 1
            warn_wide_fallback(
                "vector", self.spec, self._n, self.num_bits_eff
            )
            return self.fast.search_witness(
                max_states=max_states, symmetry_reduction=symmetry_reduction
            )

        f = self.fast
        canon = f.canon if symmetry_reduction else None
        init = f.init_idx
        visited: set[tuple] = {canon(init) if canon else init}
        parent: dict[tuple, tuple] = {}
        init_mask = 0
        for i, ci in enumerate(init):
            init_mask |= f._occm[i][ci]
        count = 1
        lst: list[tuple[tuple, int]] = [(init, init_mask)]
        emissions = f._emissions
        # narrow prologue (Python-set visited + tuple parent pointers)
        while lst and len(lst) < MIN_VECTOR_FRONTIER:
            nxt_lst: list[tuple[tuple, int]] = []
            push = nxt_lst.append
            for state, mask in lst:
                for nxt, dead, nmask in emissions(state, visited, canon, mask):
                    count += 1
                    if count > max_states:
                        raise SearchLimitExceeded(
                            f"exceeded {max_states} states; tighten the "
                            "scenario or raise the cap"
                        )
                    parent[nxt] = state
                    if dead:
                        chain = self._chain_from_dict(parent, init, nxt)
                        return self._witness_from_chain(chain, count, dead)
                    push((nxt, nmask))
            lst = nxt_lst
        if not lst:
            return False, count, None, None, ()
        # wide mode: packed visited keys plus per-level packed parent-edge
        # arrays (child key, parent key) in the raw index domain
        vis = _SortedRuns(self._pack_set(visited))
        visited.clear()
        wit: list[tuple[np.ndarray, np.ndarray]] = []
        arr_cfg = np.asarray([s for s, _ in lst], dtype=ID)
        arr_mask = self._masks_for(arr_cfg)
        while arr_cfg.shape[0]:
            em_cfg, em_mask, em_root = self._expand_level(arr_cfg, arr_mask)
            assert em_root is not None  # need_roots defaults on
            keys = self._pack_rows(
                self._canon_rows(em_cfg) if canon is not None else em_cfg
            )
            first, cand = _first_occurrences(keys)
            member = vis.member(cand)
            fresh = ~member
            sel = first[fresh]
            sel.sort()  # restore emission order over the survivors
            nd = int(sel.size)
            if nd == 0:
                arr_cfg = em_cfg[:0]
                arr_mask = em_mask[:0]
                continue
            vis.insert(cand[fresh])  # already sorted: cand is in key order
            ncfg = em_cfg[sel]
            nmask = em_mask[sel]
            cpack = self._pack_rows(ncfg)
            ppack = self._pack_rows(arr_cfg[em_root[sel]])
            deadf = self._deadlock_flags(ncfg, nmask)
            allow = max_states - count
            if deadf.any():
                j = int(np.argmax(deadf))
                if j < allow:
                    wit.append((cpack[: j + 1], ppack[: j + 1]))
                    st = tuple(ncfg[j].tolist())
                    # the fast engine's deadlock probe wants the full-width
                    # mask; rebuild it from per-message occupancy
                    fmask = 0
                    for i, ci in enumerate(st):
                        fmask |= f._occm[i][ci]
                    dead_t = f._deadlocked(st, fmask)
                    chain = self._chain_from_levels(wit, parent, init, cpack[j].item())
                    return self._witness_from_chain(chain, count + j + 1, dead_t)
                raise SearchLimitExceeded(
                    f"exceeded {max_states} states; tighten the "
                    "scenario or raise the cap"
                )
            if nd > allow:
                raise SearchLimitExceeded(
                    f"exceeded {max_states} states; tighten the "
                    "scenario or raise the cap"
                )
            wit.append((cpack, ppack))
            count += nd
            arr_cfg = ncfg
            arr_mask = nmask
        return False, count, None, None, ()

    def _chain_from_dict(
        self, parent: dict[tuple, tuple], init: tuple, final: tuple
    ) -> list[tuple]:
        """``init..final`` state chain out of tuple parent pointers."""
        chain = [final]
        cur = final
        while cur != init:
            cur = parent[cur]
            chain.append(cur)
        chain.reverse()
        return chain

    def _chain_from_levels(
        self,
        wit: list[tuple[np.ndarray, np.ndarray]],
        parent: dict[tuple, tuple],
        init: tuple,
        final_key: int | bytes,
    ) -> list[tuple]:
        """``init..final`` chain: walk the per-level packed edge arrays back
        to the prologue frontier, then the tuple parent pointers to init."""
        packs = [final_key]
        for cpack, ppack in reversed(wit):
            hit = int(np.flatnonzero(cpack == packs[-1])[0])
            packs.append(ppack[hit].item())
        packs.reverse()  # prologue-frontier state first
        tail = [self._unpack(p) for p in packs]
        return self._chain_from_dict(parent, init, tail[0])[:-1] + tail

    def _witness_from_chain(
        self, chain: list[tuple], count: int, dead: tuple[int, ...]
    ) -> tuple[bool, int, list, list, tuple[int, ...]]:
        """Labels + decoded states for a chain, shared with the fast
        engine's index-domain scheme (labels recovered on the path only)."""
        f = self.fast
        decode = f.decode
        states = [decode(s) for s in chain[1:]]
        steps: list[tuple[str, ...]] = []
        for prev, raw in zip(chain, states):
            praw = decode(prev)
            for s, acts, _d in f.successors_full(praw):
                if s == raw:
                    steps.append(acts)
                    break
            else:  # pragma: no cover - parent chain is consistent
                raise AssertionError("witness edge lost")
        return True, count, steps, states, dead
