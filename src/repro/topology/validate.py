"""Structural validation of networks.

Definition 1 of the paper requires the interconnection network to be a
*strongly connected* directed multigraph.  The custom figure networks are
assembled channel-by-channel, so experiments validate them explicitly before
analysis -- a malformed reconstruction should fail loudly here rather than
silently distort a deadlock-reachability result.
"""

from __future__ import annotations

import networkx as nx

from repro.topology.network import Network


class NetworkValidationError(ValueError):
    """Raised when a network violates a structural requirement."""


def check_strongly_connected(net: Network) -> None:
    """Raise :class:`NetworkValidationError` unless ``net`` is strongly connected."""
    g = net.node_digraph()
    if net.num_nodes == 0:
        raise NetworkValidationError("network has no nodes")
    if not nx.is_strongly_connected(g):
        comps = sorted(nx.strongly_connected_components(g), key=len, reverse=True)
        raise NetworkValidationError(
            f"network {net.name!r} is not strongly connected: "
            f"{len(comps)} components, largest has {len(comps[0])} of {net.num_nodes} nodes"
        )


def check_no_dangling(net: Network) -> None:
    """Every node must have at least one outgoing and one incoming channel."""
    for node in net.nodes:
        if not net.channels_out(node):
            raise NetworkValidationError(f"node {node!r} has no outgoing channels")
        if not net.channels_in(node):
            raise NetworkValidationError(f"node {node!r} has no incoming channels")


def check_unique_vcs(net: Network) -> None:
    """Parallel channels between the same node pair must have distinct VC ids.

    The simulator treats ``(src, dst, vc)`` collisions as distinct resources
    anyway (channels are identified by ``cid``), but duplicate VC indices on
    one physical link almost always indicate a builder bug.
    """
    seen: dict[tuple, int] = {}
    for ch in net.channels:
        key = (ch.src, ch.dst, ch.vc)
        if key in seen:
            raise NetworkValidationError(
                f"channels {seen[key]} and {ch.cid} duplicate VC {ch.vc} on link "
                f"{ch.src!r}->{ch.dst!r}"
            )
        seen[key] = ch.cid


def check_network(net: Network, *, require_strong: bool = True) -> None:
    """Run the full validation suite on ``net``."""
    if net.num_nodes < 2:
        raise NetworkValidationError("network needs at least two nodes")
    check_unique_vcs(net)
    check_no_dangling(net)
    if require_strong:
        check_strongly_connected(net)
