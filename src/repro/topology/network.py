"""The interconnection network: a directed multigraph of nodes and channels.

Implements paper Definition 1: ``I = G(N, C)`` where vertices are processors
and arcs are channels.  Multiple parallel channels between the same node pair
are allowed (virtual channels, or physically replicated links such as the
direct hub links in the paper's Figure 1 network).

The class is deliberately simple and dictionary-backed: channel lookups by
id, by label, and by endpoints are all O(1), which keeps the hot paths of the
simulator and the model checker cheap (see the HPC guide's advice to fix the
algorithmic layer before micro-optimizing).
"""

from __future__ import annotations

from collections.abc import Iterator

import networkx as nx

from repro.topology.channels import Channel, NodeId


class Network:
    """A strongly-connected-by-convention directed multigraph.

    Construction does not enforce strong connectivity (the paper's custom
    figures are built channel-by-channel); call
    :func:`repro.topology.validate.check_strongly_connected` when the
    property is required.
    """

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._nodes: dict[NodeId, None] = {}  # insertion-ordered set
        self._channels: list[Channel] = []
        self._by_label: dict[str, Channel] = {}
        self._out: dict[NodeId, list[Channel]] = {}
        self._in: dict[NodeId, list[Channel]] = {}
        self._by_endpoints: dict[tuple[NodeId, NodeId], list[Channel]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId) -> NodeId:
        """Add ``node`` (idempotent) and return it."""
        if node not in self._nodes:
            self._nodes[node] = None
            self._out[node] = []
            self._in[node] = []
        return node

    def add_channel(
        self,
        src: NodeId,
        dst: NodeId,
        *,
        vc: int = 0,
        label: str | None = None,
    ) -> Channel:
        """Create a unidirectional channel ``src -> dst`` and return it.

        Nodes are added implicitly.  ``label`` must be unique when given.
        Self-loop channels are rejected: a channel connects *neighbouring*
        processors (Definition 1) and a self-loop would let a message wait
        on itself.
        """
        if src == dst:
            raise ValueError(f"self-loop channel at node {src!r} not allowed")
        if label is not None and label in self._by_label:
            raise ValueError(f"duplicate channel label {label!r}")
        self.add_node(src)
        self.add_node(dst)
        ch = Channel(cid=len(self._channels), src=src, dst=dst, vc=vc, label=label)
        self._channels.append(ch)
        self._out[src].append(ch)
        self._in[dst].append(ch)
        self._by_endpoints.setdefault((src, dst), []).append(ch)
        if label is not None:
            self._by_label[label] = ch
        return ch

    def add_bidirectional(
        self,
        a: NodeId,
        b: NodeId,
        *,
        vc: int = 0,
        label: str | None = None,
    ) -> tuple[Channel, Channel]:
        """Add the channel pair ``a -> b`` and ``b -> a``.

        The paper's figures use bidirectional links; each direction is an
        independent resource.  Labels get ``+``/``-`` suffixes.
        """
        fwd = self.add_channel(a, b, vc=vc, label=None if label is None else f"{label}+")
        rev = self.add_channel(b, a, vc=vc, label=None if label is None else f"{label}-")
        return fwd, rev

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[NodeId]:
        return list(self._nodes)

    @property
    def channels(self) -> list[Channel]:
        return list(self._channels)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_channels(self) -> int:
        return len(self._channels)

    def has_node(self, node: NodeId) -> bool:
        return node in self._nodes

    def channel(self, cid: int) -> Channel:
        """Channel by integer id."""
        return self._channels[cid]

    def channel_by_label(self, label: str) -> Channel:
        try:
            return self._by_label[label]
        except KeyError:
            raise KeyError(f"no channel labelled {label!r} in {self.name!r}") from None

    def channels_out(self, node: NodeId) -> list[Channel]:
        """Channels whose source is ``node``."""
        return list(self._out.get(node, ()))

    def channels_in(self, node: NodeId) -> list[Channel]:
        """Channels whose destination is ``node``."""
        return list(self._in.get(node, ()))

    def channels_between(self, src: NodeId, dst: NodeId) -> list[Channel]:
        """All parallel channels ``src -> dst`` (possibly several VCs)."""
        return list(self._by_endpoints.get((src, dst), ()))

    def neighbors_out(self, node: NodeId) -> list[NodeId]:
        seen: dict[NodeId, None] = {}
        for ch in self._out.get(node, ()):
            seen[ch.dst] = None
        return list(seen)

    def degree_out(self, node: NodeId) -> int:
        return len(self._out.get(node, ()))

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Channel):
            return 0 <= item.cid < len(self._channels) and self._channels[item.cid] is item
        return item in self._nodes

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Network {self.name!r}: {self.num_nodes} nodes, {self.num_channels} channels>"

    # ------------------------------------------------------------------
    # graph views
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.MultiDiGraph:
        """Export as a :class:`networkx.MultiDiGraph` (channel on edge data)."""
        g = nx.MultiDiGraph(name=self.name)
        g.add_nodes_from(self._nodes)
        for ch in self._channels:
            g.add_edge(ch.src, ch.dst, key=ch.cid, channel=ch)
        return g

    def node_digraph(self) -> nx.DiGraph:
        """Collapsed simple digraph over nodes (used for shortest paths)."""
        g = nx.DiGraph()
        g.add_nodes_from(self._nodes)
        g.add_edges_from((ch.src, ch.dst) for ch in self._channels)
        return g

    def shortest_path_lengths(self) -> dict[NodeId, dict[NodeId, int]]:
        """All-pairs hop distances on the node digraph.

        Cached after first call; builders that mutate the network afterwards
        must call :meth:`invalidate_caches`.
        """
        cached = getattr(self, "_spl_cache", None)
        if cached is None:
            g = self.node_digraph()
            cached = {s: d for s, d in nx.all_pairs_shortest_path_length(g)}
            self._spl_cache = cached
        return cached

    def distance(self, src: NodeId, dst: NodeId) -> int:
        """Hop distance ``src -> dst``; raises ``KeyError`` if unreachable."""
        return self.shortest_path_lengths()[src][dst]

    def invalidate_caches(self) -> None:
        if hasattr(self, "_spl_cache"):
            del self._spl_cache
