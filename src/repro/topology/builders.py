"""Builders for the standard topologies used by baselines and experiments.

Node-id conventions
-------------------
* ``ring(n)``      -- nodes are ints ``0..n-1``.
* ``mesh(dims)``   -- nodes are coordinate tuples, e.g. ``(x, y)``.
* ``torus(dims)``  -- coordinate tuples; wrap links carry ``wrap`` in label.
* ``hypercube(d)`` -- nodes are ints whose binary expansion is the corner.
* ``star(...)``    -- hub-and-spoke; used as the scaffolding of the paper's
  Figure 1 network (the hub ``N*`` has a direct link to every node).

Each builder labels channels systematically so experiments can reference
specific channels by name.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence

from repro.topology.channels import NodeId
from repro.topology.network import Network


def ring(n: int, *, bidirectional: bool = False, vcs: int = 1, name: str | None = None) -> Network:
    """Unidirectional (default) or bidirectional ring of ``n`` nodes.

    The unidirectional ring with a single VC is the canonical network whose
    only shortest-path routing has a cyclic channel dependency graph and a
    *reachable* deadlock -- the textbook contrast to the paper's false
    resource cycle.
    """
    if n < 3:
        raise ValueError("ring needs at least 3 nodes")
    if vcs < 1:
        raise ValueError("vcs must be >= 1")
    net = Network(name or f"ring{n}" + ("-bi" if bidirectional else ""))
    for i in range(n):
        net.add_node(i)
    for i in range(n):
        j = (i + 1) % n
        for v in range(vcs):
            net.add_channel(i, j, vc=v, label=f"cw{i}" + (f".{v}" if vcs > 1 else ""))
    if bidirectional:
        for i in range(n):
            j = (i - 1) % n
            for v in range(vcs):
                net.add_channel(i, j, vc=v, label=f"ccw{i}" + (f".{v}" if vcs > 1 else ""))
    return net


def mesh(dims: Sequence[int], *, vcs: int = 1, name: str | None = None) -> Network:
    """k-ary n-dimensional mesh with bidirectional links, no wraparound."""
    dims = tuple(int(d) for d in dims)
    if not dims or any(d < 2 for d in dims):
        raise ValueError("each mesh dimension must be >= 2")
    net = Network(name or "mesh" + "x".join(map(str, dims)))
    for coord in itertools.product(*(range(d) for d in dims)):
        net.add_node(coord)
    for coord in itertools.product(*(range(d) for d in dims)):
        for axis, size in enumerate(dims):
            if coord[axis] + 1 < size:
                nxt = list(coord)
                nxt[axis] += 1
                nxt = tuple(nxt)
                for v in range(vcs):
                    sfx = f".{v}" if vcs > 1 else ""
                    net.add_channel(coord, nxt, vc=v, label=f"d{axis}+{coord}{sfx}")
                    net.add_channel(nxt, coord, vc=v, label=f"d{axis}-{nxt}{sfx}")
    return net


def torus(dims: Sequence[int], *, vcs: int = 2, name: str | None = None) -> Network:
    """k-ary n-cube (torus) with bidirectional links and ``vcs`` VCs per link.

    The default of two virtual channels matches the Dally--Seitz dateline
    scheme implemented in :mod:`repro.routing.torus_vc`.
    """
    dims = tuple(int(d) for d in dims)
    if not dims or any(d < 2 for d in dims):
        raise ValueError("each torus dimension must be >= 2")
    if vcs < 1:
        raise ValueError("vcs must be >= 1")
    net = Network(name or "torus" + "x".join(map(str, dims)))
    for coord in itertools.product(*(range(d) for d in dims)):
        net.add_node(coord)
    for coord in itertools.product(*(range(d) for d in dims)):
        for axis, size in enumerate(dims):
            nxt = list(coord)
            nxt[axis] = (coord[axis] + 1) % size
            nxt = tuple(nxt)
            wrap = "w" if coord[axis] + 1 == size else ""
            for v in range(vcs):
                net.add_channel(coord, nxt, vc=v, label=f"d{axis}+{wrap}{coord}.{v}")
                net.add_channel(nxt, coord, vc=v, label=f"d{axis}-{wrap}{nxt}.{v}")
    return net


def hypercube(d: int, *, vcs: int = 1, name: str | None = None) -> Network:
    """Binary d-cube with bidirectional links; nodes are ints ``0..2^d-1``."""
    if d < 1:
        raise ValueError("hypercube dimension must be >= 1")
    net = Network(name or f"hcube{d}")
    n = 1 << d
    for i in range(n):
        net.add_node(i)
    for i in range(n):
        for bit in range(d):
            j = i ^ (1 << bit)
            if j > i:
                for v in range(vcs):
                    sfx = f".{v}" if vcs > 1 else ""
                    net.add_channel(i, j, vc=v, label=f"b{bit}+{i}{sfx}")
                    net.add_channel(j, i, vc=v, label=f"b{bit}-{j}{sfx}")
    return net


def star(
    hub: NodeId,
    leaves: Iterable[NodeId],
    *,
    bidirectional: bool = True,
    name: str | None = None,
) -> Network:
    """Hub-and-spoke network: ``hub`` connected to every leaf.

    This is the relay backbone of the paper's Figure 1 network: every
    ordinary message routes source -> hub (``N*``) -> destination.
    """
    net = Network(name or "star")
    net.add_node(hub)
    count = 0
    for leaf in leaves:
        count += 1
        net.add_channel(hub, leaf, label=f"hub->{leaf}")
        if bidirectional:
            net.add_channel(leaf, hub, label=f"{leaf}->hub")
    if count == 0:
        raise ValueError("star needs at least one leaf")
    return net


def from_edges(
    edges: Iterable[tuple[NodeId, NodeId]],
    *,
    bidirectional: bool = False,
    name: str = "custom",
) -> Network:
    """Build a network from an edge list (one channel per directed pair)."""
    net = Network(name)
    for a, b in edges:
        net.add_channel(a, b)
        if bidirectional:
            net.add_channel(b, a)
    if net.num_channels == 0:
        raise ValueError("edge list is empty")
    return net
