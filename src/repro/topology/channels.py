"""Channel model.

A *channel* is a unidirectional link from one node to a neighbouring node
(paper Definition 1).  Virtual channels (Dally's virtual-channel flow
control) are modelled as distinct :class:`Channel` objects that share the
same ``(src, dst)`` endpoints but carry different ``vc`` indices; the
dependency analysis and the simulator treat every :class:`Channel` as an
independently allocatable resource with its own flit queue, which is exactly
the resource model of the paper.

Channels are immutable and hashable so they can serve directly as vertices
of the channel dependency graph (a :mod:`networkx` ``DiGraph``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

NodeId = Hashable


@dataclass(frozen=True, order=False)
class Channel:
    """A unidirectional (virtual) channel ``src -> dst``.

    Parameters
    ----------
    cid:
        Network-unique integer id.  Assigned by :class:`~repro.topology.network.Network`;
        two channels compare equal iff their ``cid`` is equal, which makes
        hashing cheap even when node ids are tuples.
    src, dst:
        Endpoint node ids.  ``src`` transmits, ``dst`` receives.
    vc:
        Virtual-channel index within the physical ``src -> dst`` link.
    label:
        Optional human-readable name (``"cs"``, ``"x+ (0,0)"`` ...), used in
        reports and error messages.  Not part of equality.
    """

    cid: int
    src: NodeId = field(compare=False)
    dst: NodeId = field(compare=False)
    vc: int = field(default=0, compare=False)
    label: str | None = field(default=None, compare=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = self.label if self.label is not None else f"c{self.cid}"
        vc = f"/vc{self.vc}" if self.vc else ""
        return f"<{name}:{self.src}->{self.dst}{vc}>"

    @property
    def endpoints(self) -> tuple[NodeId, NodeId]:
        """``(src, dst)`` pair, convenient for physical-link grouping."""
        return (self.src, self.dst)

    def short(self) -> str:
        """Compact display string used in experiment tables."""
        if self.label is not None:
            return self.label
        return f"{self.src}->{self.dst}" + (f"#{self.vc}" if self.vc else "")
