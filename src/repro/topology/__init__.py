"""Interconnection-network topology substrate.

The paper (Schwiebert, SPAA '97) models an interconnection network as a
strongly connected directed multigraph whose vertices are processors and
whose arcs are unidirectional channels (Definition 1).  This package provides
that model plus builders for the standard topologies used by the baselines
(rings, meshes, tori, hypercubes, star/hub networks) and by the paper's
custom constructions.

Public API
----------
:class:`Channel`      -- immutable unidirectional (virtual) channel.
:class:`Network`      -- directed multigraph of nodes and channels.
:mod:`builders`       -- ``ring``, ``mesh``, ``torus``, ``hypercube``,
                         ``star``, ``from_edges``.
:mod:`validate`       -- structural validation helpers.
"""

from repro.topology.channels import Channel
from repro.topology.network import Network
from repro.topology.builders import (
    ring,
    mesh,
    torus,
    hypercube,
    star,
    from_edges,
)
from repro.topology.validate import (
    check_strongly_connected,
    check_network,
    NetworkValidationError,
)

__all__ = [
    "Channel",
    "Network",
    "ring",
    "mesh",
    "torus",
    "hypercube",
    "star",
    "from_edges",
    "check_strongly_connected",
    "check_network",
    "NetworkValidationError",
]
