"""repro -- reproduction of Schwiebert (SPAA 1997),
"Deadlock-Free Oblivious Wormhole Routing with Cyclic Dependencies".

Subpackages
-----------
``repro.topology``    interconnection-network model and builders
``repro.routing``     oblivious routing framework, baselines, property checks
``repro.cdg``         channel dependency graph construction and analysis
``repro.sim``         flit-level wormhole simulator
``repro.analysis``    exhaustive deadlock-reachability analysis
``repro.core``        the paper's constructions and theory
``repro.experiments`` per-figure/theorem experiment drivers
``repro.campaign``    parallel cached verification campaigns
``repro.lint``        static deadlock linter and certificates
``repro.obs``         opt-in telemetry (spans, counters, JSONL events)
``repro.serve``       HTTP verification service over the shared result cache
``repro.viz``         DOT / text rendering

See README.md for a tour and DESIGN.md / EXPERIMENTS.md for the
reproduction methodology and results.
"""

__version__ = "1.0.0"

__all__ = [
    "topology",
    "routing",
    "cdg",
    "sim",
    "analysis",
    "core",
    "experiments",
    "campaign",
    "lint",
    "obs",
    "serve",
    "viz",
]
