"""Command-line interface: regenerate any paper artifact from the shell.

Examples
--------
::

    python -m repro fig1                 # Figure 1 / Theorem 1 battery
    python -m repro fig2                 # Figure 2 / Theorem 4 sweep
    python -m repro fig3 --sweep 20      # Figure 3 panels + condition sweep
    python -m repro theorem2             # Theorem 2 + corollary baselines
    python -m repro theorem3             # Theorem 3 minimal-routing sweep
    python -m repro gen --max-m 3        # Section 6 delay profile
    python -m repro traffic              # simulator validation traffic runs
    python -m repro dot fig1-cdg         # DOT of the Figure 1 CDG

    # single-scenario verdicts with full diagnostics
    python -m repro search fig1 --params '{"subset": ["M1", "M3"]}'
    python -m repro classify ring-cycle --params '{"n": 4}' --json

    # verification campaigns: parallel, cached, ledgered sweeps
    python -m repro campaign run --spec paper-battery --jobs 4
    python -m repro campaign run --spec paper-battery --shard 1/3
    python -m repro campaign trend old.jsonl new.jsonl --threshold 1.5
    python -m repro campaign status
    python -m repro campaign clean

    # telemetry (see docs/OBSERVABILITY.md): stream events, summarise them
    python -m repro campaign run --spec quick --telemetry out.jsonl
    python -m repro telemetry report out.jsonl

    # verification-as-a-service (see docs/SERVE.md)
    python -m repro serve --port 8765 --cache-backend sqlite:shared.db
    python -m repro client search fig1                # == `repro search --json`
    python -m repro client status
    python -m repro serve --shards 3 &  # coordinator fan-out
    python -m repro client worker --jobs 2

The sweep-shaped commands (``fig3 --sweep``, ``gen``, ``theorem3``) route
through the campaign runner; ``--jobs``/``--cache-dir`` parallelise and
memoise them.  ``search``/``classify``/``campaign run``/``lint`` accept
``--telemetry PATH`` (JSONL event stream) and ``--telemetry-snapshot
PATH`` (end-of-run metrics snapshot).
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Iterator, Sequence
from contextlib import contextmanager


@contextmanager
def _telemetry_session(args: argparse.Namespace, command: str) -> Iterator[None]:
    """Enable telemetry for one CLI invocation when flags ask for it.

    Sets ``REPRO_TELEMETRY=on`` in the environment (so campaign worker
    processes inherit it), attaches a JSONL exporter for ``--telemetry``,
    wraps the command in a root span, and writes the final registry
    snapshot for ``--telemetry-snapshot``.  Without either flag this is
    a straight pass-through: no collector, no exporter, nothing.
    """
    telemetry_path = getattr(args, "telemetry", None)
    snapshot_path = getattr(args, "telemetry_snapshot", None)
    if not telemetry_path and not snapshot_path:
        yield
        return

    import repro.obs as obs

    prev_env = os.environ.get(obs.ENV_VAR)
    os.environ[obs.ENV_VAR] = "on"
    tel = obs.get()
    assert tel is not None
    exporter = obs.JsonlExporter(telemetry_path) if telemetry_path else None
    if exporter is not None:
        tel.add_sink(exporter)
    name = f"repro.{command}"
    tel.run_start(name, argv=list(sys.argv[1:]))
    prev_trace = os.environ.get(obs.TRACE_ENV)
    try:
        with tel.span(name) as root:
            # the REPRO_TRACE carrier joins spawned worker processes
            # (campaign pools) to this invocation's trace
            obs.inject_env(root.context())
            yield
    finally:
        tel.run_end(name)
        if prev_trace is None:
            os.environ.pop(obs.TRACE_ENV, None)
        else:
            os.environ[obs.TRACE_ENV] = prev_trace
        if snapshot_path:
            obs.write_snapshot(tel, snapshot_path)
        if exporter is not None:
            tel.remove_sink(exporter)
            exporter.close()
        obs.reset()
        if prev_env is None:
            os.environ.pop(obs.ENV_VAR, None)
        else:
            os.environ[obs.ENV_VAR] = prev_env


def _parse_scenario_params(args: argparse.Namespace, command: str) -> dict | None:
    """Validate the ``<scenario> --params JSON`` argument pair (or None)."""
    import json as _json

    from repro.campaign.scenarios import scenario_names

    if args.scenario not in scenario_names():
        print(
            f"{command}: unknown scenario {args.scenario!r}; registered: "
            f"{', '.join(scenario_names())}",
            file=sys.stderr,
        )
        return None
    try:
        params = _json.loads(args.params)
    except _json.JSONDecodeError as exc:
        print(f"{command}: --params is not valid JSON: {exc}", file=sys.stderr)
        return None
    if not isinstance(params, dict):
        print(f"{command}: --params must be a JSON object", file=sys.stderr)
        return None
    return params


def _certificate_note(code: str | None, short_circuited: bool) -> str | None:
    """Human-readable account of the static-certificate fast path."""
    if code is None:
        return None
    if short_circuited:
        return f"decided by static certificate {code} (search skipped)"
    return f"confirmed by static certificate {code}"


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.analysis import SystemSpec, search_deadlock
    from repro.campaign.scenarios import build_scenario
    from repro.experiments import render_kv

    params = _parse_scenario_params(args, "search")
    if params is None:
        return 2
    try:
        bundle = build_scenario(args.scenario, params)
    except Exception as exc:  # noqa: BLE001 - reported, drives exit code
        print(f"search: scenario build failed: {exc}", file=sys.stderr)
        return 2
    if not bundle.messages:
        print(
            f"search: scenario {args.scenario!r} exposes no message set",
            file=sys.stderr,
        )
        return 2
    spec = SystemSpec.uniform(bundle.messages, budget=args.budget)
    res = search_deadlock(
        spec,
        max_states=args.max_states,
        find_witness=args.witness,
        jobs=args.search_jobs,
        engine=args.search_engine,
    )
    verdict = "deadlock" if res.deadlock_reachable else "unreachable"
    note = _certificate_note(res.certificate, res.states_explored == 0)

    if args.json:
        # built by the same function the serve API uses, so a cold
        # /v1/search response body stays byte-identical to this output
        from repro.serve.payloads import dumps, search_payload

        payload = search_payload(
            scenario=args.scenario,
            params=params,
            budget=args.budget,
            verdict=verdict,
            deadlock_reachable=res.deadlock_reachable,
            states_explored=res.states_explored,
            certificate=res.certificate,
            witness_cycles=(
                None if res.witness is None else res.witness.num_cycles
            ),
        )
        print(dumps(payload))
        return 0

    rows = {
        "scenario": args.scenario,
        "messages": len(bundle.messages),
        "budget": args.budget,
        "verdict": verdict,
        "states explored": res.states_explored,
    }
    if note is not None:
        rows["certificate"] = note
    print(render_kv(rows, title="deadlock reachability search"))
    if res.witness is not None:
        print()
        print(res.witness.render())
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    import json as _json

    from repro.analysis.classify import classify_configuration, classify_cycle
    from repro.campaign.scenarios import build_scenario
    from repro.experiments import render_kv

    params = _parse_scenario_params(args, "classify")
    if params is None:
        return 2
    try:
        bundle = build_scenario(args.scenario, params)
    except Exception as exc:  # noqa: BLE001 - reported, drives exit code
        print(f"classify: scenario build failed: {exc}", file=sys.stderr)
        return 2

    if bundle.cycle_classify is not None:
        alg, cycle, pairs = bundle.cycle_classify
        cls = classify_cycle(
            alg,
            cycle,
            pairs=pairs,
            length_slack=args.length_slack,
            extra_copies=args.extra_copies,
            budget=args.budget,
            max_states=args.max_states,
            search_jobs=args.search_jobs,
            engine=args.search_engine,
        )
        verdict = "deadlock" if cls.deadlock_reachable else "false-resource-cycle"
        note = _certificate_note(cls.certificate, cls.scenarios_tested == 0)
        if args.json:
            payload = {
                "scenario": args.scenario,
                "params": params,
                "mode": "cycle",
                "verdict": verdict,
                "deadlock_reachable": cls.deadlock_reachable,
                "tilings_tested": cls.tilings_tested,
                "scenarios_tested": cls.scenarios_tested,
                "certificate": cls.certificate,
                "notes": cls.notes,
            }
            print(_json.dumps(payload, indent=2))
            return 0
        rows = {
            "scenario": args.scenario,
            "mode": "CDG cycle",
            "cycle channels": len(cls.cycle),
            "verdict": verdict,
            "tilings tested": cls.tilings_tested,
            "scenarios tested": cls.scenarios_tested,
        }
        if note is not None:
            rows["certificate"] = note
        print(render_kv(rows, title="cycle classification"))
        for line in cls.notes:
            print(f"  note: {line}")
        return 0

    if not bundle.messages:
        print(
            f"classify: scenario {args.scenario!r} exposes neither a CDG "
            "cycle nor a message set",
            file=sys.stderr,
        )
        return 2
    reachable, res = classify_configuration(
        bundle.messages,
        budget=args.budget,
        length_slack=args.length_slack,
        max_states=args.max_states,
        search_jobs=args.search_jobs,
        engine=args.search_engine,
    )
    verdict = "deadlock" if reachable else "unreachable"
    note = _certificate_note(res.certificate, res.states_explored == 0)
    if args.json:
        payload = {
            "scenario": args.scenario,
            "params": params,
            "mode": "configuration",
            "verdict": verdict,
            "deadlock_reachable": reachable,
            "states_explored": res.states_explored,
            "certificate": res.certificate,
        }
        print(_json.dumps(payload, indent=2))
        return 0
    rows = {
        "scenario": args.scenario,
        "mode": "configuration",
        "messages": len(bundle.messages),
        "verdict": verdict,
        "states explored": res.states_explored,
    }
    if note is not None:
        rows["certificate"] = note
    print(render_kv(rows, title="configuration classification"))
    return 0


def _cmd_telemetry_report(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.report import EventStreamError, render, summarize

    try:
        report = summarize(args.events)
    except (EventStreamError, OSError) as exc:
        print(f"telemetry report: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(report.to_json(), indent=2))
    else:
        print(render(report, top=args.top))
    if args.strict and not report.schema_valid:
        return 1
    return 0


def _cmd_telemetry_trace(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.report import (
        EventStreamError,
        build_span_tree,
        read_events,
        render_span_tree,
        trace_ids,
    )

    try:
        events, _bad = read_events(args.events)
    except (EventStreamError, OSError) as exc:
        print(f"telemetry trace: {exc}", file=sys.stderr)
        return 2
    ids = trace_ids(events)
    if args.trace_id is None:
        if not ids:
            print(
                "telemetry trace: no trace ids in the stream "
                "(pre-v2 recording?)",
                file=sys.stderr,
            )
            return 2
        if args.json:
            print(_json.dumps({"traces": ids}, indent=2))
        else:
            for tid, spans in ids.items():
                print(f"{tid}  {spans} span{'s' if spans != 1 else ''}")
        return 0
    matches = [t for t in ids if t == args.trace_id or t.startswith(args.trace_id)]
    if not matches:
        print(
            f"telemetry trace: no trace {args.trace_id!r} in {args.events} "
            f"({len(ids)} trace{'s' if len(ids) != 1 else ''} present; run "
            "without an id to list them)",
            file=sys.stderr,
        )
        return 2
    if len(matches) > 1:
        print(
            f"telemetry trace: prefix {args.trace_id!r} is ambiguous "
            f"({len(matches)} matches)",
            file=sys.stderr,
        )
        return 2
    roots = build_span_tree(events, matches[0])
    if args.json:
        print(
            _json.dumps(
                {"trace": matches[0], "roots": [r.to_json() for r in roots]},
                indent=2,
            )
        )
    else:
        print(render_span_tree(roots, matches[0]))
    return 0


def _cmd_telemetry_tail(args: argparse.Namespace) -> int:
    from repro.obs.tail import follow

    try:
        for line in follow(
            args.events,
            rollup_every_s=args.rollup,
            from_start=not args.new_only,
        ):
            print(line.text, flush=True)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.experiments import render_table, run_fig1_experiment

    res = run_fig1_experiment(
        max_delay=args.max_delay,
        search_jobs=args.search_jobs,
        engine=args.search_engine,
    )
    print(render_table(res.summary_rows(), title="E1: Figure 1 / Theorem 1"))
    print()
    print("\n".join(res.narrative))
    print(f"\nmin delay to deadlock: {res.min_delay_to_deadlock}")
    print(f"matches paper: {res.matches_paper}")
    return 0 if res.matches_paper else 1


def _cmd_fig2(args: argparse.Namespace) -> int:
    from repro.experiments import render_table, run_fig2_experiment

    res = run_fig2_experiment()
    print(render_table(res.sweep_rows, title="E2: Figure 2 / Theorem 4 sweep"))
    print(f"\nall configurations deadlock: {res.all_sweep_deadlock}")
    print(f"proof's injection order reproduced: {res.longer_approach_injected_first}")
    return 0 if res.matches_paper else 1


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.experiments import render_table
    from repro.experiments.fig3 import run_fig3_experiment

    panels = run_fig3_experiment()
    print(render_table([r.row() for r in panels], title="E3: Figure 3 / Theorem 5"))
    ok = all(r.search_matches_paper and r.conditions_match_search for r in panels)
    if args.sweep:
        from repro.campaign.adapters import fig3_sweep_via_campaign

        sweep = fig3_sweep_via_campaign(
            args.sweep, jobs=args.jobs, cache_dir=args.cache_dir
        )
        print(
            f"\ncondition sweep: agree on {sweep.agree}/{sweep.total} "
            f"random configurations"
        )
        for d in sweep.disagreements:
            print(f"  disagreement: {d}")
        ok = ok and sweep.rate == 1.0
    return 0 if ok else 1


def _cmd_theorem2(args: argparse.Namespace) -> int:
    from repro.experiments import render_table
    from repro.experiments.theorem2 import run_corollary_baselines, run_theorem2_experiment

    res = run_theorem2_experiment()
    print(render_table(res.overlap_rows, title="E4: Theorem 2 overlap configurations"))
    rows = run_corollary_baselines()
    print()
    print(render_table(rows, title="E4: Corollary 1-3 baselines"))
    return 0 if res.all_deadlock else 1


def _cmd_theorem3(args: argparse.Namespace) -> int:
    from repro.campaign.adapters import theorem3_via_campaign
    from repro.experiments import render_kv

    res = theorem3_via_campaign(
        limit=args.limit, jobs=args.jobs, cache_dir=args.cache_dir
    )
    print(render_kv(res.summary(), title="E5: Theorem 3 sweep"))
    print()
    print(render_kv(res.fig1_slack, title="Figure 1 per-pair excess hops (nonminimality)"))
    return 0 if res.theorem_holds and res.fig1_certified_nonminimal else 1


def _cmd_gen(args: argparse.Namespace) -> int:
    from repro.campaign.adapters import generalization_via_campaign
    from repro.experiments import render_table

    res = generalization_via_campaign(
        tuple(range(1, args.max_m + 1)), jobs=args.jobs, cache_dir=args.cache_dir
    )
    print(render_table(res.rows(), title="E6: Gen(m) minimum delay to deadlock"))
    print(f"strictly increasing: {res.strictly_increasing}")
    return 0 if res.strictly_increasing else 1


def _cmd_traffic(args: argparse.Namespace) -> int:
    from repro.experiments import render_table
    from repro.experiments.traffic import run_ring_deadlock_probe, run_traffic_experiment

    pts = run_traffic_experiment(rates=tuple(args.rates))
    print(render_table([p.row() for p in pts], title="V1: traffic baselines"))
    probe = run_ring_deadlock_probe()
    print()
    print(render_table([probe.row()], title="V1: ring positive control"))
    return 0 if probe.deadlocked and all(not p.deadlocked for p in pts) else 1


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.cdg import build_cdg, find_cycles
    from repro.core.cyclic_dependency import build_cyclic_dependency_network
    from repro.viz import cdg_to_dot, network_to_dot

    cdn = build_cyclic_dependency_network()
    if args.what == "fig1-network":
        print(network_to_dot(cdn.network, highlight=cdn.cycle_channels))
    elif args.what == "fig1-cdg":
        cdg = build_cdg(cdn.algorithm)
        cycle = find_cycles(cdg).cycles[0]
        print(cdg_to_dot(cdg, cycle=cycle, name="fig1_cdg"))
    else:  # pragma: no cover - argparse restricts choices
        return 2
    return 0


def _default_ledger(cache_dir: str, spec: str) -> str:
    from pathlib import Path

    return str(Path(cache_dir) / "ledgers" / f"{spec}.jsonl")


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign import (
        ProgressReporter,
        RunLedger,
        RunnerConfig,
        build_spec,
        make_backend,
        run_campaign,
    )
    from repro.experiments import render_kv

    try:
        tasks = build_spec(args.spec, limit=args.limit)
        shard = None
        if args.shard:
            from repro.campaign import parse_shard, shard_tasks

            shard = parse_shard(args.shard)
            tasks = shard_tasks(tasks, *shard)
        config = RunnerConfig(
            max_workers=args.jobs,
            task_timeout=args.timeout,
            retries=args.retries,
            search_jobs=args.search_jobs,
            engine=args.search_engine,
        )
        cache = (
            None
            if args.no_cache
            else make_backend(args.cache_backend, default_dir=args.cache_dir)
        )
    except (KeyError, ValueError) as exc:
        msg = exc.args[0] if exc.args else exc
        print(f"error: {msg}", file=sys.stderr)
        return 2
    spec_label = args.spec if shard is None else f"{args.spec}-shard{shard[0]}of{shard[1]}"
    ledger_path = args.ledger or _default_ledger(args.cache_dir, spec_label)
    with RunLedger(ledger_path) as ledger:
        _, summary = run_campaign(
            tasks,
            cache=cache,
            ledger=ledger,
            progress=ProgressReporter(len(tasks), enabled=not args.no_progress),
            config=config,
            spec_name=spec_label,
        )
    rows = summary.rows()
    rows["ledger"] = ledger_path
    if cache is not None:
        rows["cache"] = args.cache_backend or args.cache_dir
        rows["cache hit rate"] = f"{cache.stats.hit_rate:.0%}"
    print(render_kv(rows, title=f"campaign: {spec_label}"))
    for mismatch in summary.expect_mismatches:
        print(f"  MISMATCH {mismatch}")
    return 0 if summary.all_expected else 1


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.campaign import make_backend, read_ledger
    from repro.experiments import render_kv, render_table

    # the primary backend (the --cache-dir directory store unless
    # --cache-backend points elsewhere) plus any extra --cache-backend
    # specs, each integrity-scanned for corrupt / stale-salt entries
    backend_specs = list(args.cache_backend or [args.cache_dir])
    try:
        backends = [
            (spec, make_backend(spec, default_dir=args.cache_dir))
            for spec in backend_specs
        ]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cache = backends[0][1]

    ledger_dir = Path(args.cache_dir) / "ledgers"
    rows = []
    ledgers_json = []
    merged: dict[str, bool] = {}  # task_hash -> ok of latest execution
    tele_counters: dict[str, float] = {}
    tele_tasks = 0
    for path in sorted(ledger_dir.glob("*.jsonl")):
        results, summaries = read_ledger(path)
        last = summaries[-1] if summaries else {}
        for res in results:
            merged[res.task_hash] = res.ok
            if res.telemetry:
                tele_tasks += 1
                for key, value in res.telemetry.get("counters", {}).items():
                    tele_counters[key] = tele_counters.get(key, 0) + value
        rows.append(
            {
                "ledger": path.name,
                "results": len(results),
                "distinct tasks": len({r.task_hash for r in results}),
                "runs": len(summaries),
                "last wall (s)": last.get("wall_time", "-"),
                "last cache hits": last.get("from_cache", "-"),
                "last failed": last.get("failed", "-"),
                "last matches": (
                    "-" if not last
                    else not last.get("expect_mismatches") and not last.get("failed")
                ),
            }
        )
        ledgers_json.append(
            {
                "ledger": path.name,
                "results": len(results),
                "distinct_tasks": len({r.task_hash for r in results}),
                "runs": len(summaries),
            }
        )
    ok = sum(1 for good in merged.values() if good)

    if args.json:
        scans = [(spec, be, be.integrity()) for spec, be in backends]
        payload = {
            "cache_dir": args.cache_dir,
            "backends": [
                {
                    "spec": spec,
                    "backend": type(be).__name__,
                    "entries": len(be),
                    "integrity": report.to_json(),
                }
                for spec, be, report in scans
            ],
            "ledgers": ledgers_json,
            "merged": {
                "distinct_tasks": len(merged),
                "ok": ok,
                "failed": len(merged) - ok,
            },
            "telemetry_rollup": {
                "tasks": tele_tasks,
                "counters": {
                    k: round(tele_counters[k], 6) for k in sorted(tele_counters)
                },
            },
        }
        print(_json.dumps(payload, indent=2))
        return 0 if all(report.healthy for _, _, report in scans) else 1

    integrity = cache.integrity()
    print(render_kv(
        {
            "cache": backend_specs[0],
            "backend": type(cache).__name__,
            "cached results": len(cache),
            "schema salt": integrity.salt,
            "corrupt": integrity.corrupt,
            "stale salt": integrity.stale_salt,
        },
        title="campaign cache",
    ))
    for spec, be in backends[1:]:
        extra = be.integrity()
        print()
        print(render_kv(
            {
                "cache": spec,
                "backend": type(be).__name__,
                "cached results": len(be),
                "schema salt": extra.salt,
                "corrupt": extra.corrupt,
                "stale salt": extra.stale_salt,
            },
            title="extra cache backend",
        ))
    print()
    print(render_table(rows, title="campaign ledgers"))
    if rows:
        # the union view is how sharded runs (--shard i/n) are merged:
        # shards share the cache and write disjoint hash-keyed ledgers
        print()
        print(render_kv(
            {"distinct tasks": len(merged), "ok": ok, "failed": len(merged) - ok},
            title="merged across ledgers",
        ))
    if tele_counters:
        # roll-up of the per-task telemetry summaries embedded in ledger
        # records by runs executed with REPRO_TELEMETRY on
        rollup = {"task executions with telemetry": tele_tasks}
        rollup.update(
            {k: round(tele_counters[k], 6) for k in sorted(tele_counters)}
        )
        print()
        print(render_kv(rollup, title="telemetry roll-up"))
    return 0


def _cmd_campaign_trend(args: argparse.Namespace) -> int:
    from repro.campaign import compare_ledgers
    from repro.experiments import render_kv, render_table

    try:
        report = compare_ledgers(
            args.old, args.new,
            threshold=args.threshold,
            min_seconds=args.min_seconds,
            states_threshold=args.states_threshold,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_kv(report.summary_rows(), title="campaign trend"))
    if report.regressions:
        print()
        print(render_table(
            [ln.row() for ln in report.regressions],
            title=f"regressions (> {report.threshold:g}x)",
        ))
    if report.improvements:
        print()
        print(render_table(
            [ln.row() for ln in report.improvements],
            title=f"improvements (< 1/{report.threshold:g}x)",
        ))
    if report.states_regressions:
        print()
        print(render_table(
            [ln.row() for ln in report.states_regressions],
            title=f"search-work regressions (states > {report.states_threshold:g}x)",
        ))
    return 0 if report.ok else 1


def _cmd_campaign_clean(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.campaign import ResultCache

    removed = ResultCache(args.cache_dir).clear()
    msg = f"removed {removed} cached results"
    if args.ledgers:
        n = 0
        for path in (Path(args.cache_dir) / "ledgers").glob("*.jsonl"):
            path.unlink()
            n += 1
        msg += f" and {n} ledgers"
    print(msg + f" from {args.cache_dir}")
    return 0


#: task parameters that tune the *analysis*, not the scenario geometry --
#: dropped when deriving lint targets from a campaign spec so each distinct
#: construction is linted once
_ANALYSIS_ONLY_PARAMS = frozenset(
    {"max_states", "max_delay", "budget", "length_slack", "extra_copies",
     "copy_depth", "max_cycles", "rate", "cycles", "length", "seed", "msgs"}
)


def _lint_one(scenario: str, params: dict, *, max_cycles: int):
    """Build one scenario and lint it (algorithm if exposed, else messages)."""
    from repro.campaign.scenarios import build_scenario
    from repro.lint import lint_algorithm, lint_messages

    bundle = build_scenario(scenario, params)
    ps = ",".join(f"{k}={v}" for k, v in sorted(params.items()))
    target = f"{scenario}({ps})" if ps else scenario
    if bundle.algorithm is not None:
        return lint_algorithm(bundle.algorithm, name=target, max_cycles=max_cycles)
    if bundle.messages:
        return lint_messages(bundle.messages, name=target)
    raise ValueError(f"scenario {scenario!r} exposes nothing to lint")


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as _json

    from repro.campaign.scenarios import scenario_names

    if bool(args.scenario) == bool(args.all):
        print("lint: give exactly one of <scenario> or --all", file=sys.stderr)
        return 2

    targets: list[tuple[str, dict]] = []
    if args.all:
        from repro.campaign.specs import build_spec

        seen: set[str] = set()
        for task in build_spec(args.spec):
            if task.scenario.startswith("debug-"):
                continue
            params = {
                k: v
                for k, v in task.params_dict().items()
                if k not in _ANALYSIS_ONLY_PARAMS
            }
            key = _json.dumps([task.scenario, params], sort_keys=True, default=str)
            if key in seen:
                continue
            seen.add(key)
            targets.append((task.scenario, params))
    else:
        if args.scenario not in scenario_names():
            print(
                f"lint: unknown scenario {args.scenario!r}; registered: "
                f"{', '.join(scenario_names())}",
                file=sys.stderr,
            )
            return 2
        try:
            params = _json.loads(args.params)
        except _json.JSONDecodeError as exc:
            print(f"lint: --params is not valid JSON: {exc}", file=sys.stderr)
            return 2
        if not isinstance(params, dict):
            print("lint: --params must be a JSON object", file=sys.stderr)
            return 2
        targets.append((args.scenario, params))

    reports = []
    exit_code = 0
    for scenario, params in targets:
        try:
            report = _lint_one(scenario, params, max_cycles=args.max_cycles)
        except Exception as exc:  # noqa: BLE001 - reported, drives exit code
            print(f"lint {scenario}{params}: build failed: {exc}", file=sys.stderr)
            return 2
        reports.append(report)
        exit_code = max(exit_code, report.exit_code)

    if getattr(args, "sarif", None):
        from pathlib import Path

        from repro.lint.sarif import sarif_log

        log = sarif_log(reports)
        Path(args.sarif).write_text(_json.dumps(log, indent=2) + "\n")
        print(f"wrote SARIF log ({len(log['runs'][0]['results'])} results) "
              f"to {args.sarif}", file=sys.stderr)

    if args.json:
        payload = [r.to_json() for r in reports]
        print(_json.dumps(payload[0] if not args.all else payload, indent=2))
    else:
        for report in reports:
            print(report.render(verbose=args.verbose))
        if args.all:
            decided = sum(1 for r in reports if r.verdict != "undecided")
            errors = sum(len(r.errors) for r in reports)
            print(
                f"\n{len(reports)} targets linted: {decided} certificate-decided, "
                f"{errors} error-severity finding(s)"
            )
    return exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ReproServer, ServeConfig

    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            cache_backend=args.cache_backend,
            hot_capacity=args.hot_capacity,
            window=args.window_ms / 1000.0,
            jobs=args.jobs,
            search_jobs=args.search_jobs,
            search_engine=args.search_engine,
            retries=args.retries,
            task_timeout=args.timeout,
            spec=args.spec,
            shards=args.shards,
            ledger=args.ledger,
            telemetry=not args.no_telemetry,
        )
        server = ReproServer(config)
    except (KeyError, ValueError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    try:
        server.run(announce=print)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve import ServeClient, ServeError, run_worker

    cmd = args.client_command
    try:
        if cmd == "worker":
            cache = None
            if args.cache_backend:
                from repro.campaign import make_backend

                cache = make_backend(args.cache_backend)
            out = run_worker(
                args.url,
                worker_id=args.worker_id,
                jobs=args.jobs,
                search_jobs=args.search_jobs,
                search_engine=args.search_engine,
                limit=args.limit,
                cache=cache,
            )
            print(_json.dumps(out, indent=2))
            return 0 if out["summary"]["failed"] == 0 else 1

        client = ServeClient(args.url, timeout=args.http_timeout)
        if cmd in ("search", "classify", "lint"):
            try:
                params = _json.loads(args.params)
            except _json.JSONDecodeError as exc:
                print(f"client: --params is not valid JSON: {exc}", file=sys.stderr)
                return 2
            if cmd == "search":
                knobs = {"budget": args.budget, "max_states": args.max_states}
            elif cmd == "classify":
                knobs = {
                    "budget": args.budget,
                    "max_states": args.max_states,
                    "length_slack": args.length_slack,
                    "extra_copies": args.extra_copies,
                }
            else:
                knobs = {"max_cycles": args.max_cycles}
            resp = getattr(client, cmd)(args.scenario, params, **knobs)
            if not resp.ok:
                detail = (
                    resp.payload.get("error", "")
                    if isinstance(resp.payload, dict)
                    else ""
                )
                print(f"client {cmd}: HTTP {resp.status}: {detail}", file=sys.stderr)
                return 1 if resp.status >= 500 else 2
            # the raw response body: byte-identical to `repro <cmd> --json`
            sys.stdout.write(resp.body.decode("utf-8"))
            if args.show_source:
                print(f"source: {resp.source} ({resp.task_hash})", file=sys.stderr)
            return 0
        if cmd == "campaign":
            resp = client.campaign(
                args.spec, limit=args.limit, shard=args.shard
            ).raise_for_status()
            print(_json.dumps(resp.payload, indent=2))
            return 0 if resp.payload.get("failed", 0) == 0 else 1
        if cmd == "status":
            resp = client.status().raise_for_status()
            print(_json.dumps(resp.payload, indent=2))
            return 0
        if cmd == "metrics":
            sys.stdout.write(client.metrics())
            return 0
        if cmd == "events":
            for event in client.events(
                max_events=args.max_events, timeout=args.listen
            ):
                print(_json.dumps(event, sort_keys=True))
            return 0
    except ServeError as exc:
        print(f"client {cmd}: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(
            f"client {cmd}: cannot reach {args.url}: {exc} "
            "(is `python -m repro serve` running?)",
            file=sys.stderr,
        )
        return 1
    return 2  # pragma: no cover - argparse restricts choices


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce Schwiebert (SPAA 1997): deadlock-free oblivious "
        "wormhole routing with cyclic dependencies.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_search_jobs_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--search-jobs", type=int, default=1,
            help="worker processes for frontier-parallel reachability "
            "searches (default 1: serial; parallel pays only on "
            "multi-core machines and large frontiers)",
        )
        p.add_argument(
            "--search-engine", default=None,
            choices=["fast", "vector", "kernel", "auto", "reference"],
            help="reachability search engine (default: REPRO_SEARCH_ENGINE "
            "or 'fast'); 'auto' picks kernel/vector/fast by availability; "
            "all engines are pinned bit-identical, so this is purely an "
            "execution knob",
        )

    def add_telemetry_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--telemetry", default=None, metavar="PATH",
            help="stream telemetry events to this JSONL file (implies "
            "REPRO_TELEMETRY=on; see docs/OBSERVABILITY.md)",
        )
        p.add_argument(
            "--telemetry-snapshot", default=None, metavar="PATH",
            help="write the end-of-run metrics snapshot (counters, gauges, "
            "span aggregates) to this JSON file",
        )

    p = sub.add_parser("fig1", help="Figure 1 / Theorem 1 battery")
    p.add_argument("--max-delay", type=int, default=3)
    add_search_jobs_flag(p)
    p.set_defaults(fn=_cmd_fig1)

    p = sub.add_parser("fig2", help="Figure 2 / Theorem 4 sweep")
    p.set_defaults(fn=_cmd_fig2)

    def add_runner_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", type=int, default=1,
            help="parallel worker processes for the sweep (default 1: serial)",
        )
        p.add_argument(
            "--cache-dir", default=None,
            help="reuse/populate a campaign result cache at this directory",
        )

    p = sub.add_parser("fig3", help="Figure 3 / Theorem 5 panels")
    p.add_argument("--sweep", type=int, default=0, help="random sweep sample count")
    add_runner_flags(p)
    p.set_defaults(fn=_cmd_fig3)

    p = sub.add_parser("theorem2", help="Theorem 2 + corollary baselines")
    p.set_defaults(fn=_cmd_theorem2)

    p = sub.add_parser("theorem3", help="Theorem 3 minimal-routing sweep")
    p.add_argument("--limit", type=int, default=40)
    add_runner_flags(p)
    p.set_defaults(fn=_cmd_theorem3)

    p = sub.add_parser("gen", help="Section 6 generalisation delay profile")
    p.add_argument("--max-m", type=int, default=2)
    add_runner_flags(p)
    p.set_defaults(fn=_cmd_gen)

    p = sub.add_parser("traffic", help="simulator-validation traffic runs")
    p.add_argument("--rates", type=float, nargs="+", default=[0.02, 0.06])
    p.set_defaults(fn=_cmd_traffic)

    p = sub.add_parser("dot", help="emit Graphviz DOT renderings")
    p.add_argument("what", choices=["fig1-network", "fig1-cdg"])
    p.set_defaults(fn=_cmd_dot)

    p = sub.add_parser(
        "search",
        help="deadlock reachability search over one registered scenario",
        description="Run the exhaustive BFS (with the static-certificate "
        "pre-pass) over a registered scenario's message set.  The output "
        "names the deciding certificate (e.g. CRT001) whenever the static "
        "fast path short-circuited or confirmed the verdict.",
    )
    p.add_argument(
        "scenario",
        help="registered scenario name (see repro.campaign.scenarios)",
    )
    p.add_argument(
        "--params", default="{}",
        help='scenario parameters as a JSON object, e.g. \'{"subset": ["M1"]}\'',
    )
    p.add_argument("--budget", type=int, default=0, help="per-message stall budget")
    p.add_argument(
        "--max-states", type=int, default=4_000_000, help="state-count cap"
    )
    p.add_argument(
        "--witness", action="store_true",
        help="reconstruct and print a replayable deadlock witness",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    add_search_jobs_flag(p)
    add_telemetry_flags(p)
    p.set_defaults(fn=_cmd_search)

    p = sub.add_parser(
        "classify",
        help="classify a scenario: reachable deadlock vs false resource cycle",
        description="Full-adversary classification of a registered scenario: "
        "its CDG cycle when it exposes one (cycle tilings swept through the "
        "reachability search), otherwise its message set.  Static "
        "certificate codes are surfaced in both text and JSON output.",
    )
    p.add_argument(
        "scenario",
        help="registered scenario name (see repro.campaign.scenarios)",
    )
    p.add_argument(
        "--params", default="{}",
        help='scenario parameters as a JSON object, e.g. \'{"n": 4}\'',
    )
    p.add_argument("--budget", type=int, default=0, help="per-message stall budget")
    p.add_argument(
        "--length-slack", type=int, default=0,
        help="sweep message lengths up to this far above minimum",
    )
    p.add_argument(
        "--extra-copies", type=int, default=1,
        help="cycle mode: also test up to this many duplicate messages",
    )
    p.add_argument(
        "--max-states", type=int, default=2_000_000, help="per-search state cap"
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    add_search_jobs_flag(p)
    add_telemetry_flags(p)
    p.set_defaults(fn=_cmd_classify)

    p = sub.add_parser(
        "telemetry",
        help="inspect telemetry event streams (report/trace/tail)",
    )
    tsub = p.add_subparsers(dest="telemetry_command", required=True)
    tr = tsub.add_parser(
        "report",
        help="validate + summarise a telemetry JSONL event stream",
        description="Re-aggregate a --telemetry event stream: per-span "
        "timing, counter totals, campaign per-task wall times and cache "
        "hit rate -- everything rebuilt from the events alone.",
    )
    tr.add_argument("events", help="telemetry event stream (JSONL)")
    tr.add_argument("--json", action="store_true", help="machine-readable output")
    tr.add_argument(
        "--strict", action="store_true",
        help="exit 1 if any event violates the documented schema",
    )
    tr.add_argument(
        "--top", type=int, default=10,
        help="how many slowest campaign tasks to list (default 10)",
    )
    tr.set_defaults(fn=_cmd_telemetry_report)

    tt = tsub.add_parser(
        "trace",
        help="reassemble one trace's span tree from an event stream",
        description="Pair span_start/span_end events sharing a trace id "
        "(possibly merged from serve, client and worker streams) into one "
        "rooted span tree.  Without a trace id, lists the ids present.",
    )
    tt.add_argument("events", help="telemetry event stream (JSONL)")
    tt.add_argument(
        "trace_id", nargs="?", default=None,
        help="32-hex trace id (a unique prefix works); omit to list",
    )
    tt.add_argument("--json", action="store_true", help="machine-readable output")
    tt.set_defaults(fn=_cmd_telemetry_trace)

    tl = tsub.add_parser(
        "tail",
        help="follow a telemetry JSONL file live (tail -f with rollups)",
        description="Follow an event stream as it is written: one formatted "
        "line per event plus a periodic rollup (event/trace/search totals, "
        "cache hit rate, p95 search seconds).  Survives truncation and "
        "waits for the file to appear.  Ctrl-C exits cleanly.",
    )
    tl.add_argument("events", help="telemetry event stream (JSONL)")
    tl.add_argument(
        "--rollup", type=float, default=5.0, metavar="S",
        help="seconds between rollup lines (default 5)",
    )
    tl.add_argument(
        "--new-only", action="store_true",
        help="start at end-of-file instead of replaying existing events",
    )
    tl.set_defaults(fn=_cmd_telemetry_tail)

    p = sub.add_parser(
        "lint",
        help="static deadlock linter (rule diagnostics + certificates)",
        description="Run the static routing linter over one registered "
        "scenario or every distinct construction of a campaign spec. "
        "Exit code 0: no error-severity findings; 1: errors found; "
        "2: usage or build failure.",
    )
    p.add_argument(
        "scenario", nargs="?", default=None,
        help="registered scenario name (see repro.campaign.scenarios)",
    )
    p.add_argument(
        "--params", default="{}",
        help='scenario parameters as a JSON object, e.g. \'{"n": 4}\'',
    )
    p.add_argument(
        "--all", action="store_true",
        help="lint every distinct construction in --spec instead",
    )
    p.add_argument(
        "--spec", default="paper-battery",
        help="campaign spec to derive --all targets from (default: paper-battery)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--sarif", default=None, metavar="PATH",
        help="also write diagnostics as a SARIF 2.1.0 log to PATH",
    )
    p.add_argument(
        "--verbose", action="store_true", help="print per-diagnostic evidence"
    )
    p.add_argument(
        "--max-cycles", type=int, default=10_000,
        help="cap on CDG cycle enumeration (truncation is itself reported)",
    )
    add_telemetry_flags(p)
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser(
        "serve",
        help="verification-as-a-service: async HTTP/JSON API over the campaign "
        "runner (see docs/SERVE.md)",
        description="Start a long-lived HTTP server answering /v1/search, "
        "/v1/classify, /v1/lint and /v1/campaign from a tiered result cache, "
        "micro-batching cold misses through the campaign runner.  /v1/events "
        "streams live telemetry as NDJSON; with --shards N the server also "
        "coordinates a fleet of `repro client worker` processes.",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8765, help="listen port (0 = OS-assigned)"
    )
    p.add_argument(
        "--cache-backend", default=None, metavar="SPEC",
        help="durable cache tier: dir:PATH, sqlite:PATH, memory[:N], or a bare "
        "directory path (default: dir:.campaign-cache)",
    )
    p.add_argument(
        "--hot-capacity", type=int, default=1024, metavar="N",
        help="entries held by the in-memory hot tier (0 disables tiering; "
        "default 1024)",
    )
    p.add_argument(
        "--window-ms", type=float, default=20.0, metavar="MS",
        help="micro-batching window: concurrent cold misses arriving within "
        "this window run as one campaign batch (default 20ms)",
    )
    p.add_argument("--jobs", type=int, default=1, help="campaign worker processes")
    p.add_argument(
        "--retries", type=int, default=0, help="retries per failed task (default 0)"
    )
    p.add_argument(
        "--timeout", type=float, default=None, help="per-task wall-clock timeout (s)"
    )
    p.add_argument(
        "--spec", default="paper-battery",
        help="spec handed to coordinator workers (default: paper-battery)",
    )
    p.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="enable the shard coordinator with N hash-range shards "
        "(default 0: disabled)",
    )
    p.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="merged JSONL ledger for coordinator worker reports",
    )
    p.add_argument(
        "--no-telemetry", action="store_true",
        help="disable the telemetry collector (and the /v1/events stream)",
    )
    add_search_jobs_flag(p)
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "client",
        help="talk to a running `repro serve` instance",
        description="Query a serve instance: task verdicts (byte-identical "
        "to the local --json commands), campaign runs, status, the telemetry "
        "event stream, or a full coordinator worker round trip.",
    )
    p.add_argument(
        "--url", default="http://127.0.0.1:8765", help="server base URL"
    )
    p.add_argument(
        "--http-timeout", type=float, default=300.0,
        help="per-request timeout in seconds (default 300)",
    )
    ksub = p.add_subparsers(dest="client_command", required=True)

    def add_client_scenario_args(kp: argparse.ArgumentParser) -> None:
        kp.add_argument("scenario", help="registered scenario name")
        kp.add_argument(
            "--params", default="{}", help="scenario parameters as a JSON object"
        )
        kp.add_argument(
            "--show-source", action="store_true",
            help="print the X-Repro-Source provenance header to stderr",
        )
        kp.set_defaults(fn=_cmd_client)

    kp = ksub.add_parser("search", help="POST /v1/search")
    add_client_scenario_args(kp)
    kp.add_argument("--budget", type=int, default=0)
    kp.add_argument("--max-states", type=int, default=4_000_000)

    kp = ksub.add_parser("classify", help="POST /v1/classify")
    add_client_scenario_args(kp)
    kp.add_argument("--budget", type=int, default=0)
    kp.add_argument("--max-states", type=int, default=2_000_000)
    kp.add_argument("--length-slack", type=int, default=0)
    kp.add_argument("--extra-copies", type=int, default=1)

    kp = ksub.add_parser("lint", help="POST /v1/lint")
    add_client_scenario_args(kp)
    kp.add_argument("--max-cycles", type=int, default=10_000)

    kp = ksub.add_parser("campaign", help="POST /v1/campaign (run a whole spec)")
    kp.add_argument("--spec", default="quick")
    kp.add_argument("--limit", type=int, default=None)
    kp.add_argument("--shard", default=None, metavar="I/N")
    kp.set_defaults(fn=_cmd_client)

    kp = ksub.add_parser("status", help="GET /v1/status")
    kp.set_defaults(fn=_cmd_client)

    kp = ksub.add_parser(
        "metrics", help="GET /metrics (Prometheus text exposition)"
    )
    kp.set_defaults(fn=_cmd_client)

    kp = ksub.add_parser("events", help="GET /v1/events (stream telemetry NDJSON)")
    kp.add_argument("--max-events", type=int, default=50)
    kp.add_argument(
        "--listen", type=float, default=5.0, metavar="S",
        help="stop after this many seconds (default 5)",
    )
    kp.set_defaults(fn=_cmd_client)

    kp = ksub.add_parser(
        "worker",
        help="register with the coordinator, run the assigned shard, report back",
    )
    kp.add_argument("--worker-id", default=None)
    kp.add_argument("--jobs", type=int, default=1)
    kp.add_argument("--limit", type=int, default=None)
    kp.add_argument(
        "--cache-backend", default=None, metavar="SPEC",
        help="local cache for shard execution (dir:/sqlite:/memory[:N])",
    )
    add_search_jobs_flag(kp)
    kp.set_defaults(fn=_cmd_client)

    p = sub.add_parser(
        "campaign", help="parallel verification campaigns (run/status/clean)"
    )
    csub = p.add_subparsers(dest="campaign_command", required=True)

    pr = csub.add_parser("run", help="execute a campaign spec")
    pr.add_argument(
        "--spec", default="paper-battery",
        help="campaign spec name (default: paper-battery)",
    )
    pr.add_argument("--jobs", type=int, default=1, help="worker processes")
    pr.add_argument("--cache-dir", default=".campaign-cache")
    pr.add_argument(
        "--cache-backend", default=None, metavar="SPEC",
        help="cache backend spec: dir:PATH, sqlite:PATH (shareable between "
        "processes), memory[:N], or a bare path (default: the --cache-dir "
        "directory store)",
    )
    pr.add_argument("--no-cache", action="store_true", help="force live re-verification")
    pr.add_argument(
        "--ledger", default=None,
        help="JSONL ledger path (default: <cache-dir>/ledgers/<spec>.jsonl)",
    )
    pr.add_argument("--limit", type=int, default=None, help="run only the first N tasks")
    pr.add_argument(
        "--timeout", type=float, default=None, help="per-task wall-clock timeout (s)"
    )
    pr.add_argument("--retries", type=int, default=1, help="retries per failed task")
    pr.add_argument("--no-progress", action="store_true")
    pr.add_argument(
        "--shard", default=None, metavar="I/N",
        help="run only hash-range shard I of N (1-based); shards are "
        "disjoint, content-stable, and merge via a shared --cache-dir "
        "(see 'campaign status')",
    )
    add_search_jobs_flag(pr)
    add_telemetry_flags(pr)
    pr.set_defaults(fn=_cmd_campaign_run)

    pt = csub.add_parser(
        "trend", help="diff per-task wall times between two run ledgers"
    )
    pt.add_argument("old", help="baseline ledger (JSONL)")
    pt.add_argument("new", help="candidate ledger (JSONL)")
    pt.add_argument(
        "--threshold", type=float, default=1.5,
        help="flag tasks whose wall time grew beyond this ratio (default 1.5)",
    )
    pt.add_argument(
        "--min-seconds", type=float, default=0.05,
        help="ignore tasks faster than this in the new ledger (noise floor)",
    )
    pt.add_argument(
        "--states-threshold", type=float, default=1.0,
        help="allowed growth ratio of per-task states_explored before the "
        "trend fails (default 1.0: any growth in search work is a "
        "regression -- state counts are exact, so no noise floor applies)",
    )
    pt.set_defaults(fn=_cmd_campaign_trend)

    ps = csub.add_parser(
        "status",
        help="summarise cache + ledgers (with per-backend integrity)",
        description="Report cache contents, per-backend integrity scans "
        "(corrupt entries, stale schema salts), per-ledger run history and "
        "the merged cross-shard union.  --json exits 1 if any scanned "
        "backend is unhealthy.",
    )
    ps.add_argument("--cache-dir", default=".campaign-cache")
    ps.add_argument(
        "--cache-backend", action="append", default=None, metavar="SPEC",
        help="backend(s) to inspect instead of the --cache-dir store; "
        "repeat to integrity-scan several (dir:/sqlite:/memory[:N])",
    )
    ps.add_argument("--json", action="store_true", help="machine-readable output")
    ps.set_defaults(fn=_cmd_campaign_status)

    pc = csub.add_parser("clean", help="drop cached results")
    pc.add_argument("--cache-dir", default=".campaign-cache")
    pc.add_argument("--ledgers", action="store_true", help="also delete ledgers")
    pc.set_defaults(fn=_cmd_campaign_clean)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with _telemetry_session(args, args.command):
            return args.fn(args)
    except BrokenPipeError:
        # stdout piped into head/less that exited: not an error.  Point
        # stdout at devnull so the interpreter's exit flush stays quiet.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
