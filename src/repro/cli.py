"""Command-line interface: regenerate any paper artifact from the shell.

Examples
--------
::

    python -m repro fig1                 # Figure 1 / Theorem 1 battery
    python -m repro fig2                 # Figure 2 / Theorem 4 sweep
    python -m repro fig3 --sweep 20      # Figure 3 panels + condition sweep
    python -m repro theorem2             # Theorem 2 + corollary baselines
    python -m repro theorem3             # Theorem 3 minimal-routing sweep
    python -m repro gen --max-m 3        # Section 6 delay profile
    python -m repro traffic              # simulator validation traffic runs
    python -m repro dot fig1-cdg         # DOT of the Figure 1 CDG
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.experiments import render_table, run_fig1_experiment

    res = run_fig1_experiment(max_delay=args.max_delay)
    print(render_table(res.summary_rows(), title="E1: Figure 1 / Theorem 1"))
    print()
    print("\n".join(res.narrative))
    print(f"\nmin delay to deadlock: {res.min_delay_to_deadlock}")
    print(f"matches paper: {res.matches_paper}")
    return 0 if res.matches_paper else 1


def _cmd_fig2(args: argparse.Namespace) -> int:
    from repro.experiments import render_table, run_fig2_experiment

    res = run_fig2_experiment()
    print(render_table(res.sweep_rows, title="E2: Figure 2 / Theorem 4 sweep"))
    print(f"\nall configurations deadlock: {res.all_sweep_deadlock}")
    print(f"proof's injection order reproduced: {res.longer_approach_injected_first}")
    return 0 if res.matches_paper else 1


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.experiments import render_table
    from repro.experiments.fig3 import run_condition_sweep, run_fig3_experiment

    panels = run_fig3_experiment()
    print(render_table([r.row() for r in panels], title="E3: Figure 3 / Theorem 5"))
    ok = all(r.search_matches_paper and r.conditions_match_search for r in panels)
    if args.sweep:
        sweep = run_condition_sweep(samples=args.sweep)
        print(
            f"\ncondition sweep: agree on {sweep.agree}/{sweep.total} "
            f"random configurations"
        )
        for d in sweep.disagreements:
            print(f"  disagreement: {d}")
        ok = ok and sweep.rate == 1.0
    return 0 if ok else 1


def _cmd_theorem2(args: argparse.Namespace) -> int:
    from repro.experiments import render_table
    from repro.experiments.theorem2 import run_corollary_baselines, run_theorem2_experiment

    res = run_theorem2_experiment()
    print(render_table(res.overlap_rows, title="E4: Theorem 2 overlap configurations"))
    rows = run_corollary_baselines()
    print()
    print(render_table(rows, title="E4: Corollary 1-3 baselines"))
    return 0 if res.all_deadlock else 1


def _cmd_theorem3(args: argparse.Namespace) -> int:
    from repro.experiments import render_kv
    from repro.experiments.theorem3 import run_theorem3_experiment

    res = run_theorem3_experiment(limit=args.limit)
    print(render_kv(res.summary(), title="E5: Theorem 3 sweep"))
    print()
    print(render_kv(res.fig1_slack, title="Figure 1 per-pair excess hops (nonminimality)"))
    return 0 if res.theorem_holds and res.fig1_certified_nonminimal else 1


def _cmd_gen(args: argparse.Namespace) -> int:
    from repro.experiments import render_table
    from repro.experiments.generalization import run_generalization_experiment

    res = run_generalization_experiment(
        params=tuple(range(1, args.max_m + 1)), max_delay=args.max_m + 4
    )
    print(render_table(res.rows(), title="E6: Gen(m) minimum delay to deadlock"))
    print(f"strictly increasing: {res.strictly_increasing}")
    return 0 if res.strictly_increasing else 1


def _cmd_traffic(args: argparse.Namespace) -> int:
    from repro.experiments import render_table
    from repro.experiments.traffic import run_ring_deadlock_probe, run_traffic_experiment

    pts = run_traffic_experiment(rates=tuple(args.rates))
    print(render_table([p.row() for p in pts], title="V1: traffic baselines"))
    probe = run_ring_deadlock_probe()
    print()
    print(render_table([probe.row()], title="V1: ring positive control"))
    return 0 if probe.deadlocked and all(not p.deadlocked for p in pts) else 1


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.cdg import build_cdg, find_cycles
    from repro.core.cyclic_dependency import build_cyclic_dependency_network
    from repro.viz import cdg_to_dot, network_to_dot

    cdn = build_cyclic_dependency_network()
    if args.what == "fig1-network":
        print(network_to_dot(cdn.network, highlight=cdn.cycle_channels))
    elif args.what == "fig1-cdg":
        cdg = build_cdg(cdn.algorithm)
        cycle = find_cycles(cdg).cycles[0]
        print(cdg_to_dot(cdg, cycle=cycle, name="fig1_cdg"))
    else:  # pragma: no cover - argparse restricts choices
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce Schwiebert (SPAA 1997): deadlock-free oblivious "
        "wormhole routing with cyclic dependencies.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig1", help="Figure 1 / Theorem 1 battery")
    p.add_argument("--max-delay", type=int, default=3)
    p.set_defaults(fn=_cmd_fig1)

    p = sub.add_parser("fig2", help="Figure 2 / Theorem 4 sweep")
    p.set_defaults(fn=_cmd_fig2)

    p = sub.add_parser("fig3", help="Figure 3 / Theorem 5 panels")
    p.add_argument("--sweep", type=int, default=0, help="random sweep sample count")
    p.set_defaults(fn=_cmd_fig3)

    p = sub.add_parser("theorem2", help="Theorem 2 + corollary baselines")
    p.set_defaults(fn=_cmd_theorem2)

    p = sub.add_parser("theorem3", help="Theorem 3 minimal-routing sweep")
    p.add_argument("--limit", type=int, default=40)
    p.set_defaults(fn=_cmd_theorem3)

    p = sub.add_parser("gen", help="Section 6 generalisation delay profile")
    p.add_argument("--max-m", type=int, default=2)
    p.set_defaults(fn=_cmd_gen)

    p = sub.add_parser("traffic", help="simulator-validation traffic runs")
    p.add_argument("--rates", type=float, nargs="+", default=[0.02, 0.06])
    p.set_defaults(fn=_cmd_traffic)

    p = sub.add_parser("dot", help="emit Graphviz DOT renderings")
    p.add_argument("what", choices=["fig1-network", "fig1-cdg"])
    p.set_defaults(fn=_cmd_dot)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
