"""Command-line interface: regenerate any paper artifact from the shell.

Examples
--------
::

    python -m repro fig1                 # Figure 1 / Theorem 1 battery
    python -m repro fig2                 # Figure 2 / Theorem 4 sweep
    python -m repro fig3 --sweep 20      # Figure 3 panels + condition sweep
    python -m repro theorem2             # Theorem 2 + corollary baselines
    python -m repro theorem3             # Theorem 3 minimal-routing sweep
    python -m repro gen --max-m 3        # Section 6 delay profile
    python -m repro traffic              # simulator validation traffic runs
    python -m repro dot fig1-cdg         # DOT of the Figure 1 CDG

    # verification campaigns: parallel, cached, ledgered sweeps
    python -m repro campaign run --spec paper-battery --jobs 4
    python -m repro campaign run --spec paper-battery --shard 1/3
    python -m repro campaign trend old.jsonl new.jsonl --threshold 1.5
    python -m repro campaign status
    python -m repro campaign clean

The sweep-shaped commands (``fig3 --sweep``, ``gen``, ``theorem3``) route
through the campaign runner; ``--jobs``/``--cache-dir`` parallelise and
memoise them.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.experiments import render_table, run_fig1_experiment

    res = run_fig1_experiment(max_delay=args.max_delay, search_jobs=args.search_jobs)
    print(render_table(res.summary_rows(), title="E1: Figure 1 / Theorem 1"))
    print()
    print("\n".join(res.narrative))
    print(f"\nmin delay to deadlock: {res.min_delay_to_deadlock}")
    print(f"matches paper: {res.matches_paper}")
    return 0 if res.matches_paper else 1


def _cmd_fig2(args: argparse.Namespace) -> int:
    from repro.experiments import render_table, run_fig2_experiment

    res = run_fig2_experiment()
    print(render_table(res.sweep_rows, title="E2: Figure 2 / Theorem 4 sweep"))
    print(f"\nall configurations deadlock: {res.all_sweep_deadlock}")
    print(f"proof's injection order reproduced: {res.longer_approach_injected_first}")
    return 0 if res.matches_paper else 1


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.experiments import render_table
    from repro.experiments.fig3 import run_fig3_experiment

    panels = run_fig3_experiment()
    print(render_table([r.row() for r in panels], title="E3: Figure 3 / Theorem 5"))
    ok = all(r.search_matches_paper and r.conditions_match_search for r in panels)
    if args.sweep:
        from repro.campaign.adapters import fig3_sweep_via_campaign

        sweep = fig3_sweep_via_campaign(
            args.sweep, jobs=args.jobs, cache_dir=args.cache_dir
        )
        print(
            f"\ncondition sweep: agree on {sweep.agree}/{sweep.total} "
            f"random configurations"
        )
        for d in sweep.disagreements:
            print(f"  disagreement: {d}")
        ok = ok and sweep.rate == 1.0
    return 0 if ok else 1


def _cmd_theorem2(args: argparse.Namespace) -> int:
    from repro.experiments import render_table
    from repro.experiments.theorem2 import run_corollary_baselines, run_theorem2_experiment

    res = run_theorem2_experiment()
    print(render_table(res.overlap_rows, title="E4: Theorem 2 overlap configurations"))
    rows = run_corollary_baselines()
    print()
    print(render_table(rows, title="E4: Corollary 1-3 baselines"))
    return 0 if res.all_deadlock else 1


def _cmd_theorem3(args: argparse.Namespace) -> int:
    from repro.campaign.adapters import theorem3_via_campaign
    from repro.experiments import render_kv

    res = theorem3_via_campaign(
        limit=args.limit, jobs=args.jobs, cache_dir=args.cache_dir
    )
    print(render_kv(res.summary(), title="E5: Theorem 3 sweep"))
    print()
    print(render_kv(res.fig1_slack, title="Figure 1 per-pair excess hops (nonminimality)"))
    return 0 if res.theorem_holds and res.fig1_certified_nonminimal else 1


def _cmd_gen(args: argparse.Namespace) -> int:
    from repro.campaign.adapters import generalization_via_campaign
    from repro.experiments import render_table

    res = generalization_via_campaign(
        tuple(range(1, args.max_m + 1)), jobs=args.jobs, cache_dir=args.cache_dir
    )
    print(render_table(res.rows(), title="E6: Gen(m) minimum delay to deadlock"))
    print(f"strictly increasing: {res.strictly_increasing}")
    return 0 if res.strictly_increasing else 1


def _cmd_traffic(args: argparse.Namespace) -> int:
    from repro.experiments import render_table
    from repro.experiments.traffic import run_ring_deadlock_probe, run_traffic_experiment

    pts = run_traffic_experiment(rates=tuple(args.rates))
    print(render_table([p.row() for p in pts], title="V1: traffic baselines"))
    probe = run_ring_deadlock_probe()
    print()
    print(render_table([probe.row()], title="V1: ring positive control"))
    return 0 if probe.deadlocked and all(not p.deadlocked for p in pts) else 1


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.cdg import build_cdg, find_cycles
    from repro.core.cyclic_dependency import build_cyclic_dependency_network
    from repro.viz import cdg_to_dot, network_to_dot

    cdn = build_cyclic_dependency_network()
    if args.what == "fig1-network":
        print(network_to_dot(cdn.network, highlight=cdn.cycle_channels))
    elif args.what == "fig1-cdg":
        cdg = build_cdg(cdn.algorithm)
        cycle = find_cycles(cdg).cycles[0]
        print(cdg_to_dot(cdg, cycle=cycle, name="fig1_cdg"))
    else:  # pragma: no cover - argparse restricts choices
        return 2
    return 0


def _default_ledger(cache_dir: str, spec: str) -> str:
    from pathlib import Path

    return str(Path(cache_dir) / "ledgers" / f"{spec}.jsonl")


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign import (
        ProgressReporter,
        ResultCache,
        RunLedger,
        RunnerConfig,
        build_spec,
        run_campaign,
    )
    from repro.experiments import render_kv

    try:
        tasks = build_spec(args.spec, limit=args.limit)
        shard = None
        if args.shard:
            from repro.campaign import parse_shard, shard_tasks

            shard = parse_shard(args.shard)
            tasks = shard_tasks(tasks, *shard)
        config = RunnerConfig(
            max_workers=args.jobs,
            task_timeout=args.timeout,
            retries=args.retries,
            search_jobs=args.search_jobs,
        )
    except (KeyError, ValueError) as exc:
        msg = exc.args[0] if exc.args else exc
        print(f"error: {msg}", file=sys.stderr)
        return 2
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    spec_label = args.spec if shard is None else f"{args.spec}-shard{shard[0]}of{shard[1]}"
    ledger_path = args.ledger or _default_ledger(args.cache_dir, spec_label)
    with RunLedger(ledger_path) as ledger:
        _, summary = run_campaign(
            tasks,
            cache=cache,
            ledger=ledger,
            progress=ProgressReporter(len(tasks), enabled=not args.no_progress),
            config=config,
            spec_name=spec_label,
        )
    rows = summary.rows()
    rows["ledger"] = ledger_path
    if cache is not None:
        rows["cache dir"] = args.cache_dir
        rows["cache hit rate"] = f"{cache.stats.hit_rate:.0%}"
    print(render_kv(rows, title=f"campaign: {spec_label}"))
    for mismatch in summary.expect_mismatches:
        print(f"  MISMATCH {mismatch}")
    return 0 if summary.all_expected else 1


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.campaign import ResultCache, read_ledger
    from repro.experiments import render_kv, render_table

    cache = ResultCache(args.cache_dir)
    print(render_kv(
        {"cache dir": args.cache_dir, "cached results": len(cache)},
        title="campaign cache",
    ))
    ledger_dir = Path(args.cache_dir) / "ledgers"
    rows = []
    merged: dict[str, bool] = {}  # task_hash -> ok of latest execution
    for path in sorted(ledger_dir.glob("*.jsonl")):
        results, summaries = read_ledger(path)
        last = summaries[-1] if summaries else {}
        for res in results:
            merged[res.task_hash] = res.ok
        rows.append(
            {
                "ledger": path.name,
                "results": len(results),
                "distinct tasks": len({r.task_hash for r in results}),
                "runs": len(summaries),
                "last wall (s)": last.get("wall_time", "-"),
                "last cache hits": last.get("from_cache", "-"),
                "last failed": last.get("failed", "-"),
                "last matches": (
                    "-" if not last
                    else not last.get("expect_mismatches") and not last.get("failed")
                ),
            }
        )
    print()
    print(render_table(rows, title="campaign ledgers"))
    if rows:
        # the union view is how sharded runs (--shard i/n) are merged:
        # shards share the cache and write disjoint hash-keyed ledgers
        ok = sum(1 for good in merged.values() if good)
        print()
        print(render_kv(
            {"distinct tasks": len(merged), "ok": ok, "failed": len(merged) - ok},
            title="merged across ledgers",
        ))
    return 0


def _cmd_campaign_trend(args: argparse.Namespace) -> int:
    from repro.campaign import compare_ledgers
    from repro.experiments import render_kv, render_table

    try:
        report = compare_ledgers(
            args.old, args.new,
            threshold=args.threshold,
            min_seconds=args.min_seconds,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_kv(report.summary_rows(), title="campaign trend"))
    if report.regressions:
        print()
        print(render_table(
            [ln.row() for ln in report.regressions],
            title=f"regressions (> {report.threshold:g}x)",
        ))
    if report.improvements:
        print()
        print(render_table(
            [ln.row() for ln in report.improvements],
            title=f"improvements (< 1/{report.threshold:g}x)",
        ))
    return 0 if report.ok else 1


def _cmd_campaign_clean(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.campaign import ResultCache

    removed = ResultCache(args.cache_dir).clear()
    msg = f"removed {removed} cached results"
    if args.ledgers:
        n = 0
        for path in (Path(args.cache_dir) / "ledgers").glob("*.jsonl"):
            path.unlink()
            n += 1
        msg += f" and {n} ledgers"
    print(msg + f" from {args.cache_dir}")
    return 0


#: task parameters that tune the *analysis*, not the scenario geometry --
#: dropped when deriving lint targets from a campaign spec so each distinct
#: construction is linted once
_ANALYSIS_ONLY_PARAMS = frozenset(
    {"max_states", "max_delay", "budget", "length_slack", "extra_copies",
     "copy_depth", "max_cycles", "rate", "cycles", "length", "seed"}
)


def _lint_one(scenario: str, params: dict, *, max_cycles: int):
    """Build one scenario and lint it (algorithm if exposed, else messages)."""
    from repro.campaign.scenarios import build_scenario
    from repro.lint import lint_algorithm, lint_messages

    bundle = build_scenario(scenario, params)
    ps = ",".join(f"{k}={v}" for k, v in sorted(params.items()))
    target = f"{scenario}({ps})" if ps else scenario
    if bundle.algorithm is not None:
        return lint_algorithm(bundle.algorithm, name=target, max_cycles=max_cycles)
    if bundle.messages:
        return lint_messages(bundle.messages, name=target)
    raise ValueError(f"scenario {scenario!r} exposes nothing to lint")


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as _json

    from repro.campaign.scenarios import scenario_names

    if bool(args.scenario) == bool(args.all):
        print("lint: give exactly one of <scenario> or --all", file=sys.stderr)
        return 2

    targets: list[tuple[str, dict]] = []
    if args.all:
        from repro.campaign.specs import build_spec

        seen: set[str] = set()
        for task in build_spec(args.spec):
            if task.scenario.startswith("debug-"):
                continue
            params = {
                k: v
                for k, v in task.params_dict().items()
                if k not in _ANALYSIS_ONLY_PARAMS
            }
            key = _json.dumps([task.scenario, params], sort_keys=True, default=str)
            if key in seen:
                continue
            seen.add(key)
            targets.append((task.scenario, params))
    else:
        if args.scenario not in scenario_names():
            print(
                f"lint: unknown scenario {args.scenario!r}; registered: "
                f"{', '.join(scenario_names())}",
                file=sys.stderr,
            )
            return 2
        try:
            params = _json.loads(args.params)
        except _json.JSONDecodeError as exc:
            print(f"lint: --params is not valid JSON: {exc}", file=sys.stderr)
            return 2
        if not isinstance(params, dict):
            print("lint: --params must be a JSON object", file=sys.stderr)
            return 2
        targets.append((args.scenario, params))

    reports = []
    exit_code = 0
    for scenario, params in targets:
        try:
            report = _lint_one(scenario, params, max_cycles=args.max_cycles)
        except Exception as exc:  # noqa: BLE001 - reported, drives exit code
            print(f"lint {scenario}{params}: build failed: {exc}", file=sys.stderr)
            return 2
        reports.append(report)
        exit_code = max(exit_code, report.exit_code)

    if args.json:
        payload = [r.to_json() for r in reports]
        print(_json.dumps(payload[0] if not args.all else payload, indent=2))
    else:
        for report in reports:
            print(report.render(verbose=args.verbose))
        if args.all:
            decided = sum(1 for r in reports if r.verdict != "undecided")
            errors = sum(len(r.errors) for r in reports)
            print(
                f"\n{len(reports)} targets linted: {decided} certificate-decided, "
                f"{errors} error-severity finding(s)"
            )
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce Schwiebert (SPAA 1997): deadlock-free oblivious "
        "wormhole routing with cyclic dependencies.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_search_jobs_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--search-jobs", type=int, default=1,
            help="worker processes for frontier-parallel reachability "
            "searches (default 1: serial; parallel pays only on "
            "multi-core machines and large frontiers)",
        )

    p = sub.add_parser("fig1", help="Figure 1 / Theorem 1 battery")
    p.add_argument("--max-delay", type=int, default=3)
    add_search_jobs_flag(p)
    p.set_defaults(fn=_cmd_fig1)

    p = sub.add_parser("fig2", help="Figure 2 / Theorem 4 sweep")
    p.set_defaults(fn=_cmd_fig2)

    def add_runner_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", type=int, default=1,
            help="parallel worker processes for the sweep (default 1: serial)",
        )
        p.add_argument(
            "--cache-dir", default=None,
            help="reuse/populate a campaign result cache at this directory",
        )

    p = sub.add_parser("fig3", help="Figure 3 / Theorem 5 panels")
    p.add_argument("--sweep", type=int, default=0, help="random sweep sample count")
    add_runner_flags(p)
    p.set_defaults(fn=_cmd_fig3)

    p = sub.add_parser("theorem2", help="Theorem 2 + corollary baselines")
    p.set_defaults(fn=_cmd_theorem2)

    p = sub.add_parser("theorem3", help="Theorem 3 minimal-routing sweep")
    p.add_argument("--limit", type=int, default=40)
    add_runner_flags(p)
    p.set_defaults(fn=_cmd_theorem3)

    p = sub.add_parser("gen", help="Section 6 generalisation delay profile")
    p.add_argument("--max-m", type=int, default=2)
    add_runner_flags(p)
    p.set_defaults(fn=_cmd_gen)

    p = sub.add_parser("traffic", help="simulator-validation traffic runs")
    p.add_argument("--rates", type=float, nargs="+", default=[0.02, 0.06])
    p.set_defaults(fn=_cmd_traffic)

    p = sub.add_parser("dot", help="emit Graphviz DOT renderings")
    p.add_argument("what", choices=["fig1-network", "fig1-cdg"])
    p.set_defaults(fn=_cmd_dot)

    p = sub.add_parser(
        "lint",
        help="static deadlock linter (rule diagnostics + certificates)",
        description="Run the static routing linter over one registered "
        "scenario or every distinct construction of a campaign spec. "
        "Exit code 0: no error-severity findings; 1: errors found; "
        "2: usage or build failure.",
    )
    p.add_argument(
        "scenario", nargs="?", default=None,
        help="registered scenario name (see repro.campaign.scenarios)",
    )
    p.add_argument(
        "--params", default="{}",
        help='scenario parameters as a JSON object, e.g. \'{"n": 4}\'',
    )
    p.add_argument(
        "--all", action="store_true",
        help="lint every distinct construction in --spec instead",
    )
    p.add_argument(
        "--spec", default="paper-battery",
        help="campaign spec to derive --all targets from (default: paper-battery)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--verbose", action="store_true", help="print per-diagnostic evidence"
    )
    p.add_argument(
        "--max-cycles", type=int, default=10_000,
        help="cap on CDG cycle enumeration (truncation is itself reported)",
    )
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser(
        "campaign", help="parallel verification campaigns (run/status/clean)"
    )
    csub = p.add_subparsers(dest="campaign_command", required=True)

    pr = csub.add_parser("run", help="execute a campaign spec")
    pr.add_argument(
        "--spec", default="paper-battery",
        help="campaign spec name (default: paper-battery)",
    )
    pr.add_argument("--jobs", type=int, default=1, help="worker processes")
    pr.add_argument("--cache-dir", default=".campaign-cache")
    pr.add_argument("--no-cache", action="store_true", help="force live re-verification")
    pr.add_argument(
        "--ledger", default=None,
        help="JSONL ledger path (default: <cache-dir>/ledgers/<spec>.jsonl)",
    )
    pr.add_argument("--limit", type=int, default=None, help="run only the first N tasks")
    pr.add_argument(
        "--timeout", type=float, default=None, help="per-task wall-clock timeout (s)"
    )
    pr.add_argument("--retries", type=int, default=1, help="retries per failed task")
    pr.add_argument("--no-progress", action="store_true")
    pr.add_argument(
        "--shard", default=None, metavar="I/N",
        help="run only hash-range shard I of N (1-based); shards are "
        "disjoint, content-stable, and merge via a shared --cache-dir "
        "(see 'campaign status')",
    )
    add_search_jobs_flag(pr)
    pr.set_defaults(fn=_cmd_campaign_run)

    pt = csub.add_parser(
        "trend", help="diff per-task wall times between two run ledgers"
    )
    pt.add_argument("old", help="baseline ledger (JSONL)")
    pt.add_argument("new", help="candidate ledger (JSONL)")
    pt.add_argument(
        "--threshold", type=float, default=1.5,
        help="flag tasks whose wall time grew beyond this ratio (default 1.5)",
    )
    pt.add_argument(
        "--min-seconds", type=float, default=0.05,
        help="ignore tasks faster than this in the new ledger (noise floor)",
    )
    pt.set_defaults(fn=_cmd_campaign_trend)

    ps = csub.add_parser("status", help="summarise cache + ledgers")
    ps.add_argument("--cache-dir", default=".campaign-cache")
    ps.set_defaults(fn=_cmd_campaign_status)

    pc = csub.add_parser("clean", help="drop cached results")
    pc.add_argument("--cache-dir", default=".campaign-cache")
    pc.add_argument("--ledgers", action="store_true", help="also delete ledgers")
    pc.set_defaults(fn=_cmd_campaign_clean)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
