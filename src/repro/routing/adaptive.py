"""Adaptive routing support (the paper's Section 2/7 context).

The paper contrasts its oblivious result with Duato's adaptive theory: an
adaptive routing function offers a *set* of output channels and remains
deadlock-free when a connected "escape" subfunction has an acyclic CDG,
even though the full dependency graph is cyclic.  This module provides the
adaptive protocol plus two mesh instances:

* :class:`FullyAdaptiveMesh` -- all minimal directions, single VC.  Its CDG
  is cyclic and real deadlocks exist (the four-corners scenario in the
  tests): the negative control.
* :func:`duato_escape_mesh` -- fully adaptive over the VC-1 layer with a
  dimension-order *escape* channel on VC 0; the escape sub-CDG is acyclic,
  so by Duato's sufficiency theorem the algorithm is deadlock-free.

Adaptive messages follow the same wormhole rules as oblivious ones; the
header may take *any* currently-free candidate (preference-ordered), and is
blocked only when every candidate is held (OR semantics -- see
:func:`repro.sim.deadlock.detect_deadlock`).
"""

from __future__ import annotations

from abc import abstractmethod

from repro.routing.base import RoutingError, RoutingFunction, _InjectSentinel
from repro.topology.channels import Channel, NodeId
from repro.topology.network import Network


class AdaptiveRoutingFunction(RoutingFunction):
    """Routing function of the form ``R: C x N -> P(C)`` (Duato's form).

    Subclasses implement :meth:`candidates`; :meth:`route` returns the
    first candidate so oblivious-only consumers (path materialisation, the
    CDG builder for the *deterministic selection*) still work, but the
    simulator detects this class and requests adaptively.
    """

    is_adaptive = True

    @abstractmethod
    def candidates(
        self, in_channel: Channel | _InjectSentinel, node: NodeId, dest: NodeId
    ) -> list[Channel]:
        """Preference-ordered, non-empty list of permitted output channels."""

    def route(self, in_channel, node, dest) -> Channel:
        cands = self.candidates(in_channel, node, dest)
        if not cands:
            raise RoutingError(f"{self.name()}: no candidates at {node!r} toward {dest!r}")
        return cands[0]


class FullyAdaptiveMesh(AdaptiveRoutingFunction):
    """All minimal directions on a mesh, one VC -- deadlock-prone.

    ``prefer_axis_order`` controls the preference order of the candidate
    list (it matters only when several candidates are simultaneously free).
    """

    def __init__(self, network: Network, ndims: int, *, vc: int = 0) -> None:
        super().__init__(network)
        self.ndims = ndims
        self.vc = vc

    def candidates(self, in_channel, node, dest) -> list[Channel]:
        if not isinstance(node, tuple) or not isinstance(dest, tuple):
            raise RoutingError("adaptive mesh routing requires coordinate-tuple node ids")
        out: list[Channel] = []
        for axis in range(self.ndims):
            delta = dest[axis] - node[axis]
            if delta == 0:
                continue
            step = 1 if delta > 0 else -1
            nxt = list(node)
            nxt[axis] += step
            for c in self.network.channels_between(node, tuple(nxt)):
                if c.vc == self.vc:
                    out.append(c)
        if not out:
            raise RoutingError(f"no minimal move from {node!r} to {dest!r}")
        return out

    def name(self) -> str:
        return f"fully-adaptive-mesh{self.ndims}d"


class _DuatoEscapeMesh(AdaptiveRoutingFunction):
    """Fully adaptive on VC1 plus a dimension-order escape on VC0."""

    def __init__(self, network: Network, ndims: int) -> None:
        super().__init__(network)
        self.ndims = ndims
        self._adaptive = FullyAdaptiveMesh(network, ndims, vc=1)
        from repro.routing.dor import dimension_order_mesh

        self._escape = dimension_order_mesh(network, ndims, vc=0)

    def candidates(self, in_channel, node, dest) -> list[Channel]:
        cands = list(self._adaptive.candidates(in_channel, node, dest))
        cands.append(self._escape.route(in_channel, node, dest))
        return cands

    def name(self) -> str:
        return f"duato-escape-mesh{self.ndims}d"

    def escape_function(self) -> RoutingFunction:
        """The escape subfunction (for the acyclic-sub-CDG certificate)."""
        return self._escape


def duato_escape_mesh(network: Network, ndims: int) -> _DuatoEscapeMesh:
    """Duato-style adaptive routing; requires a mesh built with ``vcs=2``."""
    if ndims < 1:
        raise ValueError("ndims must be >= 1")
    return _DuatoEscapeMesh(network, ndims)
