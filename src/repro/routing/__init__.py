"""Oblivious routing framework and baseline routing algorithms.

The paper studies *oblivious* routing functions of the form ``R: C x N -> C``
(Definition 2): the output channel is a function of the input channel and the
message destination.  The restricted form ``R: N x N -> C`` (current node x
destination, input-channel independent) is the subject of Corollary 1.

Public API
----------
:class:`RoutingFunction`     -- the ``C x N -> C`` protocol (abstract base).
:class:`RoutingAlgorithm`    -- path iterator / validator on top of a function.
:class:`TableRouting`        -- oblivious routing compiled from explicit paths.
:func:`dimension_order_mesh` -- e-cube (XY/XYZ...) routing on meshes.
:func:`ecube_hypercube`      -- e-cube routing on hypercubes.
:func:`dateline_torus`       -- Dally--Seitz 2-VC dateline routing on tori.
:func:`clockwise_ring`       -- unrestricted single-direction ring routing
                                (deliberately deadlock-prone baseline).
:mod:`turn_model`            -- oblivious selections inside the turn model.
:mod:`properties`            -- minimality / prefix / suffix / coherence checks
                                (Definitions 7--9).
"""

from repro.routing.base import (
    RoutingFunction,
    RoutingAlgorithm,
    RoutingError,
    INJECT,
)
from repro.routing.table import TableRouting, PathTableError
from repro.routing.paths import (
    path_is_contiguous,
    path_nodes,
    validate_path,
)
from repro.routing.dor import dimension_order_mesh
from repro.routing.hypercube import ecube_hypercube
from repro.routing.torus_vc import dateline_torus
from repro.routing.ring import clockwise_ring
from repro.routing.turn_model import west_first_mesh, north_last_mesh, negative_first_mesh
from repro.routing.adaptive import (
    AdaptiveRoutingFunction,
    FullyAdaptiveMesh,
    duato_escape_mesh,
)
from repro.routing.properties import (
    is_connected,
    is_minimal,
    is_prefix_closed,
    is_suffix_closed,
    is_coherent,
    is_input_channel_independent,
    never_revisits_nodes,
    PropertyScan,
    RoutingProperties,
    analyze_properties,
)

__all__ = [
    "RoutingFunction",
    "RoutingAlgorithm",
    "RoutingError",
    "INJECT",
    "TableRouting",
    "PathTableError",
    "path_is_contiguous",
    "path_nodes",
    "validate_path",
    "dimension_order_mesh",
    "ecube_hypercube",
    "dateline_torus",
    "clockwise_ring",
    "AdaptiveRoutingFunction",
    "FullyAdaptiveMesh",
    "duato_escape_mesh",
    "west_first_mesh",
    "north_last_mesh",
    "negative_first_mesh",
    "is_connected",
    "is_minimal",
    "is_prefix_closed",
    "is_suffix_closed",
    "is_coherent",
    "is_input_channel_independent",
    "never_revisits_nodes",
    "PropertyScan",
    "RoutingProperties",
    "analyze_properties",
]
