"""Dally--Seitz dateline routing on k-ary n-cubes (tori).

The classic 1987 construction: route dimensions in increasing order; inside
each dimension travel the unidirectional ``+`` ring, starting on virtual
channel 1 and switching to virtual channel 0 after crossing the dateline
(the wraparound link into coordinate 0).  The resulting channel dependency
graph is acyclic, making this the canonical "break the ring cycle with
virtual channels" baseline that the paper's introduction contrasts with.

Unidirectional per-dimension rings make the algorithm nonminimal for pairs
that would be closer the other way; that matches the original Dally--Seitz
e-cube torus formulation and keeps the VC discipline simple.
"""

from __future__ import annotations

from repro.routing.base import RoutingError, RoutingFunction, _InjectSentinel
from repro.topology.channels import Channel, NodeId
from repro.topology.network import Network


class _DatelineTorus(RoutingFunction):
    input_channel_independent = True

    def __init__(self, network: Network, dims: tuple[int, ...]) -> None:
        super().__init__(network)
        self.dims = dims

    def route(self, in_channel: Channel | _InjectSentinel, node: NodeId, dest: NodeId) -> Channel:
        if not isinstance(node, tuple) or not isinstance(dest, tuple):
            raise RoutingError("dateline torus routing requires coordinate-tuple node ids")
        for axis, size in enumerate(self.dims):
            i, j = node[axis], dest[axis]
            if i == j:
                continue
            nxt = list(node)
            nxt[axis] = (i + 1) % size
            nxt_t = tuple(nxt)
            # Dateline discipline: VC1 while the wrap into coordinate 0 is
            # still ahead (i > j), VC0 once past it (i < j).
            vc = 1 if i > j else 0
            options = [c for c in self.network.channels_between(node, nxt_t) if c.vc == vc]
            if not options:
                raise RoutingError(
                    f"torus link {node!r}->{nxt_t!r} (vc={vc}) missing; build the "
                    "network with repro.topology.torus(dims, vcs=2)"
                )
            return options[0]
        raise RoutingError(f"route() called with node == dest == {node!r}")

    def name(self) -> str:
        return "dateline-torus" + "x".join(map(str, self.dims))


def dateline_torus(network: Network, dims: tuple[int, ...] | list[int]) -> _DatelineTorus:
    """Dateline 2-VC routing function for a torus built by :func:`repro.topology.torus`."""
    dims = tuple(int(d) for d in dims)
    if not dims:
        raise ValueError("dims must be non-empty")
    return _DatelineTorus(network, dims)
