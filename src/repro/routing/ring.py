"""Unrestricted clockwise routing on a unidirectional ring.

The textbook *deadlock-prone* oblivious algorithm: every message follows the
single clockwise ring with one virtual channel, so the channel dependency
graph is exactly the ring cycle.  Because the routing function has the
restricted form ``N x N -> C`` (Corollary 1), the paper proves this cycle
can never be a false resource cycle -- and indeed the simulator produces a
real deadlock from it.  Used as the positive control in the Theorem 2 /
Corollary experiments and the simulator-validation benchmarks.
"""

from __future__ import annotations

from repro.routing.base import RoutingError, RoutingFunction, _InjectSentinel
from repro.topology.channels import Channel, NodeId
from repro.topology.network import Network


class _ClockwiseRing(RoutingFunction):
    input_channel_independent = True

    def __init__(self, network: Network, n: int, *, vc: int = 0) -> None:
        super().__init__(network)
        self.n = n
        self.vc = vc

    def route(self, in_channel: Channel | _InjectSentinel, node: NodeId, dest: NodeId) -> Channel:
        if not isinstance(node, int):
            raise RoutingError("ring routing requires integer node ids")
        nxt = (node + 1) % self.n
        options = [c for c in self.network.channels_between(node, nxt) if c.vc == self.vc]
        if not options:
            raise RoutingError(
                f"ring link {node!r}->{nxt!r} (vc={self.vc}) missing; build the "
                "network with repro.topology.ring"
            )
        return options[0]

    def name(self) -> str:
        return f"cw-ring{self.n}"


def clockwise_ring(network: Network, n: int, *, vc: int = 0) -> _ClockwiseRing:
    """Clockwise routing function for a ring built by :func:`repro.topology.ring`."""
    if n < 3:
        raise ValueError("n must be >= 3")
    return _ClockwiseRing(network, n, vc=vc)
