"""Dimension-order (e-cube / XY) routing on meshes.

The canonical deadlock-free oblivious baseline: correct the lowest dimension
first, then the next, and so on.  Its channel dependency graph is acyclic
(Dally--Seitz), it is minimal, suffix-closed, prefix-closed and coherent --
the class of algorithms for which the paper's Corollaries 2/3 show
unreachable configurations are impossible.
"""

from __future__ import annotations

from repro.routing.base import RoutingError, RoutingFunction, _InjectSentinel
from repro.topology.channels import Channel, NodeId
from repro.topology.network import Network


class _DimensionOrderMesh(RoutingFunction):
    input_channel_independent = True

    def __init__(self, network: Network, ndims: int, *, vc: int = 0) -> None:
        super().__init__(network)
        self.ndims = ndims
        self.vc = vc

    def route(self, in_channel: Channel | _InjectSentinel, node: NodeId, dest: NodeId) -> Channel:
        cur = node
        tgt = dest
        if not isinstance(cur, tuple) or not isinstance(tgt, tuple):
            raise RoutingError("dimension-order routing requires coordinate-tuple node ids")
        for axis in range(self.ndims):
            if cur[axis] == tgt[axis]:
                continue
            step = 1 if tgt[axis] > cur[axis] else -1
            nxt = list(cur)
            nxt[axis] += step
            nxt_t = tuple(nxt)
            options = [c for c in self.network.channels_between(cur, nxt_t) if c.vc == self.vc]
            if not options:
                raise RoutingError(
                    f"mesh link {cur!r}->{nxt_t!r} (vc={self.vc}) missing; "
                    "was the network built by repro.topology.mesh?"
                )
            return options[0]
        raise RoutingError(f"route() called with node == dest == {cur!r}")

    def name(self) -> str:
        return f"DOR-mesh{self.ndims}d"


def dimension_order_mesh(network: Network, ndims: int, *, vc: int = 0) -> _DimensionOrderMesh:
    """Dimension-order routing function for an ``ndims``-dimensional mesh.

    ``network`` must use coordinate-tuple node ids with unit-step links, as
    produced by :func:`repro.topology.mesh`.
    """
    if ndims < 1:
        raise ValueError("ndims must be >= 1")
    return _DimensionOrderMesh(network, ndims, vc=vc)
