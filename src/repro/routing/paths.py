"""Channel-path helpers shared by the routing, CDG and analysis layers."""

from __future__ import annotations

from collections.abc import Sequence

from repro.topology.channels import Channel, NodeId
from repro.topology.network import Network


def path_is_contiguous(path: Sequence[Channel]) -> bool:
    """True iff consecutive channels chain (``path[i].dst == path[i+1].src``)."""
    return all(a.dst == b.src for a, b in zip(path, path[1:]))


def path_nodes(path: Sequence[Channel]) -> list[NodeId]:
    """Node sequence visited by ``path`` (length ``len(path) + 1``)."""
    if not path:
        return []
    nodes = [path[0].src]
    nodes.extend(ch.dst for ch in path)
    return nodes


def validate_path(
    network: Network,
    path: Sequence[Channel],
    src: NodeId,
    dst: NodeId,
    *,
    allow_node_revisit: bool = True,
) -> None:
    """Raise ``ValueError`` unless ``path`` is a well-formed ``src -> dst`` walk.

    ``allow_node_revisit=False`` additionally enforces the no-repeated-node
    requirement of coherent routing (Definition 9).  Channel revisits are
    always rejected: under oblivious routing they imply an infinite loop.
    """
    if not path:
        raise ValueError("empty path")
    for ch in path:
        if ch not in network:
            raise ValueError(f"channel {ch!r} does not belong to network {network.name!r}")
    if path[0].src != src:
        raise ValueError(f"path starts at {path[0].src!r}, expected {src!r}")
    if path[-1].dst != dst:
        raise ValueError(f"path ends at {path[-1].dst!r}, expected {dst!r}")
    if not path_is_contiguous(path):
        raise ValueError("path channels do not chain end-to-end")
    cids = [ch.cid for ch in path]
    if len(set(cids)) != len(cids):
        raise ValueError("path revisits a channel (oblivious routing would loop)")
    if not allow_node_revisit:
        nodes = path_nodes(path)
        if len(set(nodes)) != len(nodes):
            raise ValueError("path revisits a node (violates coherence requirement)")


def first_occurrence_prefix(path: Sequence[Channel], node: NodeId) -> tuple[Channel, ...]:
    """The prefix of ``path`` up to the *first* visit of ``node``.

    Used by the prefix-closure check (Definition 7, which is stated in terms
    of the first occurrence of the intermediate node).
    """
    if path and path[0].src == node:
        return ()
    for i, ch in enumerate(path):
        if ch.dst == node:
            return tuple(path[: i + 1])
    raise ValueError(f"node {node!r} is not on the path")


def suffix_from(path: Sequence[Channel], node: NodeId) -> tuple[Channel, ...]:
    """The suffix of ``path`` from the *first* visit of ``node`` onward."""
    if path and path[0].src == node:
        return tuple(path)
    for i, ch in enumerate(path):
        if ch.dst == node:
            return tuple(path[i + 1 :])
    raise ValueError(f"node {node!r} is not on the path")
