"""Routing-algorithm property checkers (paper Definitions 7--9 and friends).

These checks drive the corollary experiments:

* **prefix-closed** (Def. 7): the specified path from ``s`` to ``d`` through
  ``w`` implies the algorithm specifies the partial path from ``s`` to the
  *first occurrence* of ``w``.
* **suffix-closed** (Def. 8): the path from ``s`` to ``d`` through ``w``
  implies the algorithm specifies the partial path from ``w`` to ``d`` when
  ``w`` is the source.  Corollary 2: suffix-closed oblivious algorithms have
  no unreachable configurations.
* **coherent** (Def. 9): prefix-closed + suffix-closed + never routes a
  message through the same node twice.  Corollary 3.
* **input-channel independent**: the routing function has the restricted
  form ``R: N x N -> C``.  Corollary 1.
* **minimal / connected**: standard.

All checkers work over a chosen set of (source, destination) pairs -- the
paper's figure networks only define routes for the pairs the construction
uses, so the domain matters.  By default the domain is every pair the
algorithm defines (``TableRouting.defined_pairs``) or all ordered node pairs
for full-coverage algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.routing.base import INJECT, RoutingAlgorithm, RoutingError
from repro.routing.paths import first_occurrence_prefix, path_nodes, suffix_from
from repro.routing.table import TableRouting
from repro.topology.channels import NodeId

Pair = tuple[NodeId, NodeId]


def _domain(alg: RoutingAlgorithm, pairs: Sequence[Pair] | None) -> list[Pair]:
    if pairs is not None:
        return list(pairs)
    if isinstance(alg.fn, TableRouting):
        return alg.fn.defined_pairs()
    nodes = alg.network.nodes
    return [(s, d) for s in nodes for d in nodes if s != d]


def is_connected(alg: RoutingAlgorithm, pairs: Sequence[Pair] | None = None) -> bool:
    """True iff every pair in the domain has a defined, terminating path."""
    return all(alg.try_path(s, d) is not None for s, d in _domain(alg, pairs))


def is_minimal(alg: RoutingAlgorithm, pairs: Sequence[Pair] | None = None) -> bool:
    """True iff every defined path is a shortest path in the network."""
    spl = alg.network.shortest_path_lengths()
    for s, d in _domain(alg, pairs):
        path = alg.try_path(s, d)
        if path is None or len(path) != spl[s][d]:
            return False
    return True


def minimality_slack(alg: RoutingAlgorithm, pairs: Sequence[Pair] | None = None) -> dict[Pair, int]:
    """Per-pair excess hops over the shortest path (0 everywhere iff minimal)."""
    spl = alg.network.shortest_path_lengths()
    out: dict[Pair, int] = {}
    for s, d in _domain(alg, pairs):
        path = alg.path(s, d)
        out[(s, d)] = len(path) - spl[s][d]
    return out


def _closure_violations(
    alg: RoutingAlgorithm,
    pairs: Sequence[Pair] | None,
    *,
    kind: str,
) -> list[tuple[Pair, NodeId, str]]:
    """Shared engine for prefix/suffix closure.

    Returns a list of ``((s, d), w, reason)`` violations.  An intermediate
    pair whose route is undefined counts as a violation: Definitions 7/8
    require the algorithm to *specify* the partial path.
    """
    violations: list[tuple[Pair, NodeId, str]] = []
    for s, d in _domain(alg, pairs):
        path = alg.try_path(s, d)
        if path is None:
            violations.append(((s, d), s, "pair undefined"))
            continue
        nodes = path_nodes(path)
        # intermediate nodes, first occurrences only, excluding endpoints
        seen: set[NodeId] = {s}
        for w in nodes[1:-1]:
            if w in seen:
                continue
            seen.add(w)
            if kind == "prefix":
                expected = first_occurrence_prefix(path, w)
                actual = alg.try_path(s, w)
            else:
                expected = suffix_from(path, w)
                actual = alg.try_path(w, d)
            if actual is None:
                violations.append(((s, d), w, "partial path undefined"))
            elif tuple(actual) != tuple(expected):
                violations.append(((s, d), w, "partial path differs"))
    return violations


def is_prefix_closed(alg: RoutingAlgorithm, pairs: Sequence[Pair] | None = None) -> bool:
    """Definition 7."""
    return not _closure_violations(alg, pairs, kind="prefix")


def is_suffix_closed(alg: RoutingAlgorithm, pairs: Sequence[Pair] | None = None) -> bool:
    """Definition 8."""
    return not _closure_violations(alg, pairs, kind="suffix")


def never_revisits_nodes(alg: RoutingAlgorithm, pairs: Sequence[Pair] | None = None) -> bool:
    """True iff no defined path visits any node twice."""
    for s, d in _domain(alg, pairs):
        path = alg.try_path(s, d)
        if path is None:
            return False
        nodes = path_nodes(path)
        if len(set(nodes)) != len(nodes):
            return False
    return True


def is_coherent(alg: RoutingAlgorithm, pairs: Sequence[Pair] | None = None) -> bool:
    """Definition 9: prefix-closed, suffix-closed, never revisits a node."""
    return (
        never_revisits_nodes(alg, pairs)
        and is_prefix_closed(alg, pairs)
        and is_suffix_closed(alg, pairs)
    )


def is_input_channel_independent(
    alg: RoutingAlgorithm, pairs: Sequence[Pair] | None = None
) -> bool:
    """True iff the function behaves as ``R: N x N -> C`` over the domain.

    Checked empirically: for every node ``n`` and destination ``d`` reached
    through ``n`` on some defined path, all input channels that actually
    occur (including injection when ``(n, d)`` is itself defined) must yield
    the same output channel.  This verifies the Corollary 1 hypothesis
    instead of trusting a subclass flag.
    """
    # (node, dest) -> set of output channel ids observed
    observed: dict[tuple[NodeId, NodeId], set[int]] = {}
    domain = _domain(alg, pairs)
    defined = set(domain)
    for s, d in domain:
        path = alg.try_path(s, d)
        if path is None:
            continue
        first = path[0]
        observed.setdefault((s, d), set()).add(first.cid)
        for a, b in zip(path, path[1:]):
            observed.setdefault((a.dst, d), set()).add(b.cid)
    # injection at intermediate nodes: if (w, d) is defined, its first hop
    # must agree with the through-traffic hop at w toward d.
    for (w, d), outs in list(observed.items()):
        if (w, d) in defined:
            p = alg.try_path(w, d)
            if p is not None:
                outs.add(p[0].cid)
    return all(len(outs) <= 1 for outs in observed.values())


@dataclass
class RoutingProperties:
    """Bundle of the paper-relevant properties of one routing algorithm."""

    name: str
    connected: bool
    minimal: bool
    prefix_closed: bool
    suffix_closed: bool
    coherent: bool
    input_channel_independent: bool
    node_revisit_free: bool
    domain_size: int
    notes: list[str] = field(default_factory=list)

    def summary_row(self) -> dict[str, object]:
        return {
            "algorithm": self.name,
            "connected": self.connected,
            "minimal": self.minimal,
            "prefix-closed": self.prefix_closed,
            "suffix-closed": self.suffix_closed,
            "coherent": self.coherent,
            "NxN->C form": self.input_channel_independent,
        }


def analyze_properties(
    alg: RoutingAlgorithm, pairs: Sequence[Pair] | None = None
) -> RoutingProperties:
    """Evaluate every property checker and return the bundle."""
    domain = _domain(alg, pairs)
    return RoutingProperties(
        name=alg.fn.name(),
        connected=is_connected(alg, domain),
        minimal=is_minimal(alg, domain),
        prefix_closed=is_prefix_closed(alg, domain),
        suffix_closed=is_suffix_closed(alg, domain),
        coherent=is_coherent(alg, domain),
        input_channel_independent=is_input_channel_independent(alg, domain),
        node_revisit_free=never_revisits_nodes(alg, domain),
        domain_size=len(domain),
    )
