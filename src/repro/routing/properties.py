"""Routing-algorithm property checkers (paper Definitions 7--9 and friends).

These checks drive the corollary experiments:

* **prefix-closed** (Def. 7): the specified path from ``s`` to ``d`` through
  ``w`` implies the algorithm specifies the partial path from ``s`` to the
  *first occurrence* of ``w``.
* **suffix-closed** (Def. 8): the path from ``s`` to ``d`` through ``w``
  implies the algorithm specifies the partial path from ``w`` to ``d`` when
  ``w`` is the source.  Corollary 2: suffix-closed oblivious algorithms have
  no unreachable configurations.
* **coherent** (Def. 9): prefix-closed + suffix-closed + never routes a
  message through the same node twice.  Corollary 3.
* **input-channel independent**: the routing function has the restricted
  form ``R: N x N -> C``.  Corollary 1.
* **minimal / connected**: standard.

All checkers work over a chosen set of (source, destination) pairs -- the
paper's figure networks only define routes for the pairs the construction
uses, so the domain matters.  By default the domain is every pair the
algorithm defines (``TableRouting.defined_pairs``) or all ordered node pairs
for full-coverage algorithms.

:class:`PropertyScan` is the engine behind every checker: it resolves each
domain pair's path exactly once and caches the per-property sweeps, so
evaluating all properties (``analyze_properties``, the lint rules) walks
the O(n^2) pair domain once instead of once per checker.  The module-level
``is_*`` functions are thin wrappers kept for API stability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.routing.base import RoutingAlgorithm, RoutingError
from repro.routing.paths import first_occurrence_prefix, path_nodes, suffix_from
from repro.routing.table import TableRouting
from repro.topology.channels import Channel, NodeId

Pair = tuple[NodeId, NodeId]

#: one closure violation: the offending pair, the intermediate node, and why
ClosureViolation = tuple[Pair, NodeId, str]


def _domain(alg: RoutingAlgorithm, pairs: Sequence[Pair] | None) -> list[Pair]:
    if pairs is not None:
        return list(pairs)
    if isinstance(alg.fn, TableRouting):
        return alg.fn.defined_pairs()
    nodes = alg.network.nodes
    return [(s, d) for s in nodes for d in nodes if s != d]


class PropertyScan:
    """Memoized property evaluation of one algorithm over one pair domain.

    Construction resolves every domain pair's path once (``paths`` maps a
    pair to its channel tuple, or ``None`` when the route is undefined or
    broken).  Each property sweep is computed lazily on first request and
    cached, and the violation-reporting accessors expose the *evidence*
    (which pair, which intermediate node, why) that the boolean checkers
    throw away -- the lint rules are built on these.
    """

    def __init__(
        self, alg: RoutingAlgorithm, pairs: Sequence[Pair] | None = None
    ) -> None:
        self.alg = alg
        self.domain: list[Pair] = _domain(alg, pairs)
        self.paths: dict[Pair, tuple[Channel, ...] | None] = {
            pair: alg.try_path(*pair) for pair in self.domain
        }
        self._spl: dict | None = None
        self._closure: dict[str, list[ClosureViolation]] = {}
        self._revisits: list[Pair] | None = None
        self._ici_conflicts: dict[tuple[NodeId, NodeId], list[int]] | None = None

    # ------------------------------------------------------------------
    # shared lazies
    # ------------------------------------------------------------------
    def _shortest_lengths(self) -> dict:
        if self._spl is None:
            self._spl = self.alg.network.shortest_path_lengths()
        return self._spl

    # ------------------------------------------------------------------
    # connectivity / minimality
    # ------------------------------------------------------------------
    def undefined_pairs(self) -> list[Pair]:
        """Domain pairs with no defined, terminating path."""
        return [pair for pair, path in self.paths.items() if path is None]

    def connected(self) -> bool:
        return not self.undefined_pairs()

    def minimality_slack(self) -> dict[Pair, int]:
        """Per-pair excess hops over the shortest path (0 everywhere iff minimal).

        Raises :class:`RoutingError` on an undefined route, matching the
        strict :meth:`RoutingAlgorithm.path` contract.
        """
        spl = self._shortest_lengths()
        out: dict[Pair, int] = {}
        for (s, d), path in self.paths.items():
            if path is None:
                self.alg.path(s, d)  # raises with the informative message
                raise RoutingError(f"no path {s!r}->{d!r}")  # pragma: no cover
            out[(s, d)] = len(path) - spl[s][d]
        return out

    def minimal(self) -> bool:
        spl = self._shortest_lengths()
        return all(
            path is not None and len(path) == spl[s][d]
            for (s, d), path in self.paths.items()
        )

    # ------------------------------------------------------------------
    # closure (Definitions 7/8)
    # ------------------------------------------------------------------
    def closure_violations(self, kind: str) -> list[ClosureViolation]:
        """Definition 7 (``kind="prefix"``) / 8 (``kind="suffix"``) violations.

        Returns ``((s, d), w, reason)`` triples.  An intermediate pair whose
        route is undefined counts as a violation: the definitions require
        the algorithm to *specify* the partial path.
        """
        if kind not in ("prefix", "suffix"):
            raise ValueError(f"closure kind must be 'prefix' or 'suffix', got {kind!r}")
        cached = self._closure.get(kind)
        if cached is not None:
            return cached
        violations: list[ClosureViolation] = []
        for (s, d), path in self.paths.items():
            if path is None:
                violations.append(((s, d), s, "pair undefined"))
                continue
            nodes = path_nodes(path)
            # intermediate nodes, first occurrences only, excluding endpoints
            seen: set[NodeId] = {s}
            for w in nodes[1:-1]:
                if w in seen:
                    continue
                seen.add(w)
                if kind == "prefix":
                    expected = first_occurrence_prefix(path, w)
                    actual = self.alg.try_path(s, w)
                else:
                    expected = suffix_from(path, w)
                    actual = self.alg.try_path(w, d)
                if actual is None:
                    violations.append(((s, d), w, "partial path undefined"))
                elif tuple(actual) != tuple(expected):
                    violations.append(((s, d), w, "partial path differs"))
        self._closure[kind] = violations
        return violations

    def prefix_closed(self) -> bool:
        return not self.closure_violations("prefix")

    def suffix_closed(self) -> bool:
        return not self.closure_violations("suffix")

    # ------------------------------------------------------------------
    # node revisits / coherence (Definition 9)
    # ------------------------------------------------------------------
    def node_revisit_violations(self) -> list[Pair]:
        """Pairs whose path visits a node twice (or is undefined)."""
        if self._revisits is None:
            bad: list[Pair] = []
            for pair, path in self.paths.items():
                if path is None:
                    bad.append(pair)
                    continue
                nodes = path_nodes(path)
                if len(set(nodes)) != len(nodes):
                    bad.append(pair)
            self._revisits = bad
        return self._revisits

    def never_revisits_nodes(self) -> bool:
        return not self.node_revisit_violations()

    def coherent(self) -> bool:
        """Definition 9: prefix-closed, suffix-closed, never revisits a node."""
        return self.never_revisits_nodes() and self.prefix_closed() and self.suffix_closed()

    # ------------------------------------------------------------------
    # input-channel independence (Corollary 1 hypothesis)
    # ------------------------------------------------------------------
    def ici_conflicts(self) -> dict[tuple[NodeId, NodeId], list[int]]:
        """``(node, dest) -> observed output cids`` entries with >1 output.

        Empty iff the function behaves as ``R: N x N -> C`` over the domain.
        Checked empirically: for every node ``n`` and destination ``d``
        reached through ``n`` on some defined path, all input channels that
        actually occur (including injection when ``(n, d)`` is itself
        defined) must yield the same output channel.  This verifies the
        Corollary 1 hypothesis instead of trusting a subclass flag.
        """
        if self._ici_conflicts is None:
            observed: dict[tuple[NodeId, NodeId], set[int]] = {}
            defined = set(self.domain)
            for (s, d), path in self.paths.items():
                if path is None:
                    continue
                observed.setdefault((s, d), set()).add(path[0].cid)
                for a, b in zip(path, path[1:]):
                    observed.setdefault((a.dst, d), set()).add(b.cid)
            # injection at intermediate nodes: if (w, d) is defined, its
            # first hop must agree with the through-traffic hop at w toward d
            for (w, d), outs in observed.items():
                if (w, d) in defined:
                    p = self.paths.get((w, d), None) or self.alg.try_path(w, d)
                    if p is not None:
                        outs.add(p[0].cid)
            self._ici_conflicts = {
                key: sorted(outs) for key, outs in observed.items() if len(outs) > 1
            }
        return self._ici_conflicts

    def input_channel_independent(self) -> bool:
        return not self.ici_conflicts()

    # ------------------------------------------------------------------
    # the bundle
    # ------------------------------------------------------------------
    def properties(self) -> "RoutingProperties":
        return RoutingProperties(
            name=self.alg.fn.name(),
            connected=self.connected(),
            minimal=self.minimal(),
            prefix_closed=self.prefix_closed(),
            suffix_closed=self.suffix_closed(),
            coherent=self.coherent(),
            input_channel_independent=self.input_channel_independent(),
            node_revisit_free=self.never_revisits_nodes(),
            domain_size=len(self.domain),
        )


# ----------------------------------------------------------------------
# stable function API (thin wrappers over PropertyScan)
# ----------------------------------------------------------------------
def is_connected(alg: RoutingAlgorithm, pairs: Sequence[Pair] | None = None) -> bool:
    """True iff every pair in the domain has a defined, terminating path."""
    return PropertyScan(alg, pairs).connected()


def is_minimal(alg: RoutingAlgorithm, pairs: Sequence[Pair] | None = None) -> bool:
    """True iff every defined path is a shortest path in the network."""
    return PropertyScan(alg, pairs).minimal()


def minimality_slack(alg: RoutingAlgorithm, pairs: Sequence[Pair] | None = None) -> dict[Pair, int]:
    """Per-pair excess hops over the shortest path (0 everywhere iff minimal)."""
    return PropertyScan(alg, pairs).minimality_slack()


def _closure_violations(
    alg: RoutingAlgorithm,
    pairs: Sequence[Pair] | None,
    *,
    kind: str,
) -> list[ClosureViolation]:
    """Shared engine for prefix/suffix closure (see ``PropertyScan``)."""
    return PropertyScan(alg, pairs).closure_violations(kind)


def is_prefix_closed(alg: RoutingAlgorithm, pairs: Sequence[Pair] | None = None) -> bool:
    """Definition 7."""
    return PropertyScan(alg, pairs).prefix_closed()


def is_suffix_closed(alg: RoutingAlgorithm, pairs: Sequence[Pair] | None = None) -> bool:
    """Definition 8."""
    return PropertyScan(alg, pairs).suffix_closed()


def never_revisits_nodes(alg: RoutingAlgorithm, pairs: Sequence[Pair] | None = None) -> bool:
    """True iff no defined path visits any node twice."""
    return PropertyScan(alg, pairs).never_revisits_nodes()


def is_coherent(alg: RoutingAlgorithm, pairs: Sequence[Pair] | None = None) -> bool:
    """Definition 9: prefix-closed, suffix-closed, never revisits a node."""
    return PropertyScan(alg, pairs).coherent()


def is_input_channel_independent(
    alg: RoutingAlgorithm, pairs: Sequence[Pair] | None = None
) -> bool:
    """True iff the function behaves as ``R: N x N -> C`` over the domain."""
    return PropertyScan(alg, pairs).input_channel_independent()


@dataclass
class RoutingProperties:
    """Bundle of the paper-relevant properties of one routing algorithm."""

    name: str
    connected: bool
    minimal: bool
    prefix_closed: bool
    suffix_closed: bool
    coherent: bool
    input_channel_independent: bool
    node_revisit_free: bool
    domain_size: int
    notes: list[str] = field(default_factory=list)

    def summary_row(self) -> dict[str, object]:
        return {
            "algorithm": self.name,
            "connected": self.connected,
            "minimal": self.minimal,
            "prefix-closed": self.prefix_closed,
            "suffix-closed": self.suffix_closed,
            "coherent": self.coherent,
            "NxN->C form": self.input_channel_independent,
        }


def analyze_properties(
    alg: RoutingAlgorithm, pairs: Sequence[Pair] | None = None
) -> RoutingProperties:
    """Evaluate every property checker over a single shared path scan."""
    return PropertyScan(alg, pairs).properties()
