"""E-cube routing on binary hypercubes.

Correct the lowest differing address bit first.  Minimal, coherent, acyclic
CDG -- the hypercube counterpart of dimension-order mesh routing, used in
the Corollary 2/3 baseline sweep and the CDG scaling benchmark.
"""

from __future__ import annotations

from repro.routing.base import RoutingError, RoutingFunction, _InjectSentinel
from repro.topology.channels import Channel, NodeId
from repro.topology.network import Network


class _ECubeHypercube(RoutingFunction):
    input_channel_independent = True

    def __init__(self, network: Network, dim: int, *, vc: int = 0) -> None:
        super().__init__(network)
        self.dim = dim
        self.vc = vc

    def route(self, in_channel: Channel | _InjectSentinel, node: NodeId, dest: NodeId) -> Channel:
        if not isinstance(node, int) or not isinstance(dest, int):
            raise RoutingError("e-cube routing requires integer node ids")
        diff = node ^ dest
        if diff == 0:
            raise RoutingError(f"route() called with node == dest == {node!r}")
        bit = (diff & -diff).bit_length() - 1  # lowest set bit
        nxt = node ^ (1 << bit)
        options = [c for c in self.network.channels_between(node, nxt) if c.vc == self.vc]
        if not options:
            raise RoutingError(
                f"hypercube link {node!r}->{nxt!r} (vc={self.vc}) missing; "
                "was the network built by repro.topology.hypercube?"
            )
        return options[0]

    def name(self) -> str:
        return f"ecube-h{self.dim}"


def ecube_hypercube(network: Network, dim: int, *, vc: int = 0) -> _ECubeHypercube:
    """E-cube routing function for a ``dim``-dimensional binary hypercube."""
    if dim < 1:
        raise ValueError("dim must be >= 1")
    return _ECubeHypercube(network, dim, vc=vc)
