"""Oblivious selections inside the Glass--Ni turn model (2-D mesh).

The turn model (Glass & Ni, ISCA '92) proves deadlock freedom for partially
adaptive mesh routing by prohibiting just enough turns to break every cycle
of turns.  Here we implement deterministic *oblivious* members of three turn
model families -- each message takes one fixed path that only uses permitted
turns, so the resulting oblivious algorithm inherits the family's acyclic
channel dependency graph:

* **west-first**: all west (``x-``) hops first, then vertical, then east.
* **north-last**: horizontal hops first, then south, with north (``y+``)
  hops last.
* **negative-first**: all negative-direction hops first (``x-`` then
  ``y-``), then positive (``x+`` then ``y+``).

All three are minimal, coherent and input-channel independent -- useful
contrast points for the paper's corollaries (no unreachable cycles possible)
and alternative baselines in the traffic benchmarks.
"""

from __future__ import annotations

from repro.routing.base import RoutingError, RoutingFunction, _InjectSentinel
from repro.topology.channels import Channel, NodeId
from repro.topology.network import Network

# Each policy is an ordered list of "phases"; a phase is (axis, direction)
# and the router takes hops of the earliest phase that still has distance
# to cover.  Phase order is what encodes the turn restrictions.
_POLICIES: dict[str, tuple[tuple[int, int], ...]] = {
    "west-first": ((0, -1), (1, -1), (1, +1), (0, +1)),
    "north-last": ((0, -1), (0, +1), (1, -1), (1, +1)),
    "negative-first": ((0, -1), (1, -1), (0, +1), (1, +1)),
}


class _TurnModelMesh(RoutingFunction):
    input_channel_independent = True

    def __init__(self, network: Network, policy: str, *, vc: int = 0) -> None:
        super().__init__(network)
        if policy not in _POLICIES:
            raise ValueError(f"unknown turn-model policy {policy!r}")
        self.policy = policy
        self.phases = _POLICIES[policy]
        self.vc = vc

    def route(self, in_channel: Channel | _InjectSentinel, node: NodeId, dest: NodeId) -> Channel:
        if not isinstance(node, tuple) or not isinstance(dest, tuple) or len(node) != 2:
            raise RoutingError("turn-model routing requires 2-D coordinate-tuple node ids")
        for axis, direction in self.phases:
            delta = dest[axis] - node[axis]
            if delta * direction > 0:
                nxt = list(node)
                nxt[axis] += direction
                nxt_t = tuple(nxt)
                options = [
                    c for c in self.network.channels_between(node, nxt_t) if c.vc == self.vc
                ]
                if not options:
                    raise RoutingError(
                        f"mesh link {node!r}->{nxt_t!r} (vc={self.vc}) missing"
                    )
                return options[0]
        raise RoutingError(f"route() called with node == dest == {node!r}")

    def name(self) -> str:
        return f"{self.policy}-mesh"


def west_first_mesh(network: Network, *, vc: int = 0) -> _TurnModelMesh:
    """Deterministic west-first routing on a 2-D mesh."""
    return _TurnModelMesh(network, "west-first", vc=vc)


def north_last_mesh(network: Network, *, vc: int = 0) -> _TurnModelMesh:
    """Deterministic north-last routing on a 2-D mesh."""
    return _TurnModelMesh(network, "north-last", vc=vc)


def negative_first_mesh(network: Network, *, vc: int = 0) -> _TurnModelMesh:
    """Deterministic negative-first routing on a 2-D mesh."""
    return _TurnModelMesh(network, "negative-first", vc=vc)
