"""Routing-function protocol and the path-producing routing algorithm.

Definitions mirrored from the paper:

* **Definition 2** -- a routing function ``R: C x N -> C`` maps (input
  channel, destination) to the output channel.  At the source node there is
  no input channel yet; we model injection with the sentinel :data:`INJECT`,
  so the full domain is ``(C u {INJECT at node}) x N``.
* **Definition 3** -- the routing *algorithm* ``R'(src, dst)`` is the path
  obtained by iterating the routing function from the source until the
  destination is reached.

Because routing here is oblivious, a (source, destination) pair determines a
unique path; :class:`RoutingAlgorithm` materialises, validates and caches
those paths, and every higher layer (CDG construction, simulator, model
checker, property checkers) consumes them through this one interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Final

from repro.topology.channels import Channel, NodeId
from repro.topology.network import Network


class RoutingError(RuntimeError):
    """Raised when a routing function is undefined, inconsistent or divergent.

    ``kind`` distinguishes the failure classes for structured consumers
    (the lint rules): ``"undefined"`` (no route for the pair),
    ``"divergent"`` (exceeded the hop guard), ``"inconsistent"`` (the
    function emitted a channel that does not chain), ``"revisit"`` (the
    path revisits a channel and would loop), ``"invalid"`` (malformed
    request, e.g. source equals destination).
    """

    def __init__(self, message: str, *, kind: str = "undefined") -> None:
        super().__init__(message)
        self.kind = kind


class _InjectSentinel:
    """Sentinel 'input channel' for a message being injected at its source."""

    _instance: "_InjectSentinel | None" = None

    def __new__(cls) -> "_InjectSentinel":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<INJECT>"


INJECT: Final = _InjectSentinel()


class RoutingFunction(ABC):
    """Abstract oblivious routing function ``R: C x N -> C``.

    Subclasses implement :meth:`route`.  ``in_channel`` is :data:`INJECT`
    when the message is being injected at ``node``; otherwise
    ``in_channel.dst == node`` holds.
    """

    #: set by subclasses whose output genuinely ignores ``in_channel``
    #: (the ``N x N -> C`` form of Corollary 1).  The property checker
    #: verifies the claim rather than trusting it.
    input_channel_independent: bool = False

    def __init__(self, network: Network) -> None:
        self.network = network

    @abstractmethod
    def route(self, in_channel: Channel | _InjectSentinel, node: NodeId, dest: NodeId) -> Channel:
        """Return the output channel for a header at ``node`` heading to ``dest``.

        Must raise :class:`RoutingError` when no route is defined.  Never
        called with ``node == dest`` (the message is consumed there).
        """

    # convenience --------------------------------------------------------
    def name(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.name()} on {self.network.name!r}>"


class RoutingAlgorithm:
    """Path view of an oblivious routing function (paper Definition 3).

    Parameters
    ----------
    fn:
        The routing function.
    max_hops:
        Divergence guard: a path longer than this raises
        :class:`RoutingError` (nonminimal algorithms are allowed, infinite
        ones are not).  Defaults to ``4 * num_channels``, which any sane
        path respects since revisiting a channel would loop forever under
        oblivious routing.
    """

    def __init__(self, fn: RoutingFunction, *, max_hops: int | None = None) -> None:
        self.fn = fn
        self.network = fn.network
        self.max_hops = max_hops if max_hops is not None else 4 * max(1, self.network.num_channels)
        self._path_cache: dict[tuple[NodeId, NodeId], tuple[Channel, ...]] = {}

    def path(self, src: NodeId, dst: NodeId) -> tuple[Channel, ...]:
        """The unique channel path from ``src`` to ``dst``.

        Raises :class:`RoutingError` on undefined routes, on a path that
        leaves the network inconsistent (channel endpoints do not chain), on
        channel revisits (which would make the oblivious function loop), and
        on divergence past ``max_hops``.
        """
        if src == dst:
            raise RoutingError(
                f"no path requested from a node to itself ({src!r})", kind="invalid"
            )
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached

        path: list[Channel] = []
        seen: set[int] = set()
        in_ch: Channel | _InjectSentinel = INJECT
        node = src
        while node != dst:
            if len(path) > self.max_hops:
                raise RoutingError(
                    f"{self.fn.name()}: path {src!r}->{dst!r} exceeded {self.max_hops} hops",
                    kind="divergent",
                )
            out = self.fn.route(in_ch, node, dst)
            if out.src != node:
                raise RoutingError(
                    f"{self.fn.name()}: routed onto {out!r} whose source is not {node!r}",
                    kind="inconsistent",
                )
            if out.cid in seen:
                raise RoutingError(
                    f"{self.fn.name()}: path {src!r}->{dst!r} revisits channel {out!r}; "
                    "an oblivious function would loop forever",
                    kind="revisit",
                )
            seen.add(out.cid)
            path.append(out)
            in_ch = out
            node = out.dst
        result = tuple(path)
        self._path_cache[key] = result
        return result

    def try_path(self, src: NodeId, dst: NodeId) -> tuple[Channel, ...] | None:
        """Like :meth:`path` but returns ``None`` instead of raising."""
        try:
            return self.path(src, dst)
        except RoutingError:
            return None

    def all_pairs_paths(self) -> dict[tuple[NodeId, NodeId], tuple[Channel, ...]]:
        """Materialise paths for every ordered node pair (used by the CDG)."""
        out: dict[tuple[NodeId, NodeId], tuple[Channel, ...]] = {}
        for s in self.network.nodes:
            for d in self.network.nodes:
                if s != d:
                    out[(s, d)] = self.path(s, d)
        return out

    def hops(self, src: NodeId, dst: NodeId) -> int:
        return len(self.path(src, dst))

    def clear_cache(self) -> None:
        self._path_cache.clear()
