"""Table-driven oblivious routing compiled from explicit path sets.

The paper's custom constructions (the Figure 1 Cyclic Dependency algorithm,
the Figure 2/3 configurations and the Section 6 generalisation) are defined
by explicitly enumerating the path of every source--destination pair.
:class:`TableRouting` compiles such a path set into a genuine routing
*function* of the form ``R: C x N -> C`` and rejects path sets that are not
representable in that form -- i.e. path sets in which two messages arrive at
the same node on the same channel, head for the same destination, and then
diverge.  That check matters: the whole point of the paper's example is that
it satisfies Definition 2 exactly, so faithfulness here is load-bearing.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.routing.base import RoutingError, RoutingFunction, _InjectSentinel
from repro.routing.paths import validate_path
from repro.topology.channels import Channel, NodeId
from repro.topology.network import Network


class PathTableError(ValueError):
    """Raised when a path set cannot be expressed as ``R: C x N -> C``."""


class TableRouting(RoutingFunction):
    """Oblivious routing function compiled from ``{(src, dst): path}``.

    Parameters
    ----------
    network:
        The network the paths live in.
    paths:
        Mapping from ordered node pairs to channel sequences.  Pairs that are
        absent are simply undefined (the paper's figure networks only define
        the routes the construction needs; full-coverage algorithms pass an
        all-pairs table).
    check:
        When true (default), every path is structurally validated and the
        ``C x N -> C`` functionality check is enforced at construction time.
    """

    def __init__(
        self,
        network: Network,
        paths: Mapping[tuple[NodeId, NodeId], Sequence[Channel]],
        *,
        check: bool = True,
        name: str | None = None,
    ) -> None:
        super().__init__(network)
        self._name = name or "TableRouting"
        self._paths: dict[tuple[NodeId, NodeId], tuple[Channel, ...]] = {
            pair: tuple(p) for pair, p in paths.items()
        }
        # routing-function tables
        self._inject: dict[tuple[NodeId, NodeId], Channel] = {}
        self._hop: dict[tuple[int, NodeId], Channel] = {}
        if check:
            for (src, dst), path in self._paths.items():
                validate_path(network, path, src, dst)
        self._compile()

    # ------------------------------------------------------------------
    def _compile(self) -> None:
        for (src, dst), path in self._paths.items():
            inj_key = (src, dst)
            first = path[0]
            prev = self._inject.get(inj_key)
            if prev is not None and prev.cid != first.cid:
                raise PathTableError(
                    f"injection at {src!r} toward {dst!r} is ambiguous: "
                    f"{prev!r} vs {first!r}"
                )
            self._inject[inj_key] = first
            for a, b in zip(path, path[1:]):
                key = (a.cid, dst)
                prevb = self._hop.get(key)
                if prevb is not None and prevb.cid != b.cid:
                    raise PathTableError(
                        f"paths diverge after channel {a!r} toward {dst!r}: "
                        f"{prevb!r} vs {b!r} -- not expressible as R: C x N -> C"
                    )
                self._hop[key] = b

    # ------------------------------------------------------------------
    def route(self, in_channel: Channel | _InjectSentinel, node: NodeId, dest: NodeId) -> Channel:
        if isinstance(in_channel, _InjectSentinel):
            try:
                return self._inject[(node, dest)]
            except KeyError:
                raise RoutingError(
                    f"{self._name}: no route defined from source {node!r} to {dest!r}"
                ) from None
        try:
            return self._hop[(in_channel.cid, dest)]
        except KeyError:
            raise RoutingError(
                f"{self._name}: no route defined from input channel {in_channel!r} "
                f"(at node {node!r}) to {dest!r}"
            ) from None

    # ------------------------------------------------------------------
    def defined_pairs(self) -> list[tuple[NodeId, NodeId]]:
        """Source--destination pairs the table defines, in insertion order."""
        return list(self._paths)

    def table_path(self, src: NodeId, dst: NodeId) -> tuple[Channel, ...]:
        """The stored path for a pair (bypasses function iteration)."""
        try:
            return self._paths[(src, dst)]
        except KeyError:
            raise RoutingError(f"{self._name}: pair ({src!r}, {dst!r}) undefined") from None

    def covers_all_pairs(self) -> bool:
        nodes = self.network.nodes
        return all(
            (s, d) in self._paths for s in nodes for d in nodes if s != d
        )

    def name(self) -> str:
        return self._name

    @classmethod
    def from_node_paths(
        cls,
        network: Network,
        node_paths: Mapping[tuple[NodeId, NodeId], Sequence[NodeId]],
        *,
        vc_of: Mapping[tuple[NodeId, NodeId], int] | None = None,
        name: str | None = None,
    ) -> "TableRouting":
        """Build from node sequences, resolving each hop to a channel.

        When several parallel channels exist for a hop, ``vc_of`` selects the
        VC (default 0).  Hops with no matching channel raise
        :class:`PathTableError`.
        """
        chan_paths: dict[tuple[NodeId, NodeId], list[Channel]] = {}
        for (src, dst), nodes in node_paths.items():
            nodes = list(nodes)
            if len(nodes) < 2 or nodes[0] != src or nodes[-1] != dst:
                raise PathTableError(
                    f"node path for ({src!r}, {dst!r}) must start/end at the pair"
                )
            chans: list[Channel] = []
            for a, b in zip(nodes, nodes[1:]):
                want_vc = 0 if vc_of is None else vc_of.get((a, b), 0)
                options = [c for c in network.channels_between(a, b) if c.vc == want_vc]
                if not options:
                    raise PathTableError(
                        f"no channel {a!r}->{b!r} (vc={want_vc}) for path ({src!r}, {dst!r})"
                    )
                chans.append(options[0])
            chan_paths[(src, dst)] = chans
        return cls(network, chan_paths, name=name)
