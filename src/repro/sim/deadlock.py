"""Wait-for-graph deadlock detection (paper Definition 6).

A deadlock configuration for oblivious routing is a set of messages, each
holding at least one channel and blocked because its single possible output
channel is occupied by (data flits of) another message in the set.  Since an
oblivious message waits on exactly one channel, the message wait-for graph
(edge ``m1 -> m2`` when ``m1``'s requested channel is owned by ``m2``) has a
cycle **iff** a deadlock configuration exists: every message on a wait-for
cycle can never advance (its holder is also on the cycle), and conversely a
draining or advancing message has no outgoing edge and cannot close a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import networkx as nx

from repro.sim.message import MessageStatus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class DeadlockReport:
    """Evidence of a detected deadlock."""

    cycle: int
    message_ids: tuple[int, ...]
    kind: str = "wait-for-cycle"  # or "quiescence"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ids = ", ".join(map(str, self.message_ids))
        return f"deadlock({self.kind}) at cycle {self.cycle} involving messages [{ids}]"


def build_wait_for_graph(sim: "Simulator") -> nx.DiGraph:
    """Message wait-for graph of the simulator's current state."""
    g = nx.DiGraph()
    for m in sim.messages.values():
        if m.status is MessageStatus.ACTIVE or (
            m.status is MessageStatus.PENDING and m.blocked_on is not None
        ):
            g.add_node(m.mid)
    for m in sim.messages.values():
        if m.blocked_on is None:
            continue
        owner = sim.channel_owner(m.blocked_on)
        if owner is not None and owner != m.mid and owner in g:
            g.add_edge(m.mid, owner)
    return g


def detect_deadlock(sim: "Simulator") -> DeadlockReport | None:
    """Return a report if the current state contains a deadlock.

    Only messages that *hold at least one channel* (ACTIVE) can participate
    in a deadlock cycle per Definition 6; a PENDING message blocked at
    injection merely waits, and the channel it waits on will be released
    unless its owner is itself deadlocked.

    Oblivious messages wait on exactly one channel, so a wait-for-graph
    cycle is the exact criterion.  Adaptive messages (non-empty
    ``blocked_candidates``) wait on a *set* of channels with OR semantics
    -- any one freeing unblocks them -- so the criterion is the greatest
    set ``S`` of hard-blocked messages in which every candidate of every
    member is held by a member of ``S`` (computed by fixpoint).  An
    adaptive arbitration loser (a free candidate existed this cycle) is
    never hard-blocked.
    """
    if any(m.blocked_candidates for m in sim.messages.values()):
        return _detect_or_deadlock(sim)
    g = build_wait_for_graph(sim)
    # restrict to ACTIVE messages for cycle membership
    active = {
        mid
        for mid in g.nodes
        if sim.messages[mid].status is MessageStatus.ACTIVE
    }
    sub = g.subgraph(active)
    try:
        cyc = nx.find_cycle(sub, orientation="original")
    except nx.NetworkXNoCycle:
        return None
    involved = tuple(sorted({edge[0] for edge in cyc}))
    return DeadlockReport(cycle=sim.cycle, message_ids=involved)


def _detect_or_deadlock(sim: "Simulator") -> DeadlockReport | None:
    """OR-semantics (adaptive) deadlock: greatest-fixpoint knot detection."""
    waits: dict[int, list[int]] = {}  # mid -> owners of every blocked candidate
    for m in sim.messages.values():
        if m.status is not MessageStatus.ACTIVE:
            continue
        if m.blocked_candidates:
            cands = m.blocked_candidates
        elif m.blocked_on is not None:
            cands = [m.blocked_on]
        else:
            continue
        owners = [sim.channel_owner(c) for c in cands]
        if any(o is None or o == m.mid for o in owners):
            continue  # some candidate free (or self-held): not hard-blocked
        waits[m.mid] = [o for o in owners if o is not None]

    S = set(waits)
    changed = True
    while changed:
        changed = False
        for mid in list(S):
            if any(owner not in S for owner in waits[mid]):
                S.discard(mid)
                changed = True
    if not S:
        return None
    return DeadlockReport(cycle=sim.cycle, message_ids=tuple(sorted(S)))
