"""Flit-level wormhole-routing network simulator.

A synchronous, cycle-driven simulator implementing the paper's Section 3
model exactly:

* messages are divided into flits; the header flit carries the route and
  data flits follow (wormhole switching);
* each channel has its own flit queue of configurable depth (default one
  flit -- the paper's worst case);
* **atomic buffer allocation** (Assumption 4): a channel queue holds flits
  of at most one message, and is released only after the message's tail flit
  has left it;
* blocked messages stay in the network holding every channel they occupy;
* arriving messages are consumed at one flit per cycle (Assumption 2);
* arbitration among simultaneous requests is pluggable, including the
  paper's adversarial "the message that can lead to deadlock wins" policy
  (Section 3) and a starvation-free FIFO default (Assumption 5).

Public API
----------
:class:`MessageSpec` / :class:`MessageState` -- message description/runtime.
:class:`Simulator`                          -- the engine.
:class:`SimConfig`                          -- buffer depth, limits, policy.
:mod:`arbitration`                          -- arbitration policies.
:mod:`traffic`                              -- synthetic traffic generators.
:func:`detect_deadlock`                     -- wait-for-graph deadlock test.
"""

from repro.sim.message import MessageSpec, MessageState, MessageStatus
from repro.sim.arbitration import (
    ArbitrationPolicy,
    FifoArbitration,
    RoundRobinArbitration,
    RandomArbitration,
    AdversarialArbitration,
)
from repro.sim.engine import Simulator, SimConfig, SimResult
from repro.sim.deadlock import detect_deadlock, build_wait_for_graph, DeadlockReport
from repro.sim.injection import InjectionSchedule, StallSchedule
from repro.sim.traffic import (
    uniform_random_traffic,
    transpose_traffic,
    hotspot_traffic,
    permutation_traffic,
)
from repro.sim.stats import SimStats
from repro.sim.packets import TransferSpec, segment_transfers, reassemble, TransferReport
from repro.sim.router_cost import RouterCostModel, router_cost, network_cost

__all__ = [
    "MessageSpec",
    "MessageState",
    "MessageStatus",
    "ArbitrationPolicy",
    "FifoArbitration",
    "RoundRobinArbitration",
    "RandomArbitration",
    "AdversarialArbitration",
    "Simulator",
    "SimConfig",
    "SimResult",
    "detect_deadlock",
    "build_wait_for_graph",
    "DeadlockReport",
    "InjectionSchedule",
    "StallSchedule",
    "uniform_random_traffic",
    "transpose_traffic",
    "hotspot_traffic",
    "permutation_traffic",
    "SimStats",
    "TransferSpec",
    "segment_transfers",
    "reassemble",
    "TransferReport",
    "RouterCostModel",
    "router_cost",
    "network_cost",
]
