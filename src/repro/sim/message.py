"""Message model for the wormhole simulator.

A message (the paper uses message/packet interchangeably) is a header flit
followed by ``length - 1`` data flits.  Under oblivious routing the header
determines a unique path; the simulator nevertheless routes hop-by-hop
through the routing function, so the same engine would serve deterministic
adaptive extensions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.topology.channels import Channel, NodeId


class MessageStatus(enum.Enum):
    """Lifecycle of a message inside the simulator."""

    PENDING = "pending"  # injection time not reached / first channel not acquired
    ACTIVE = "active"  # holds at least one channel, header not yet consumed
    DRAINING = "draining"  # header consumed at destination, tail still in network
    DELIVERED = "delivered"  # all flits consumed
    FAILED = "failed"  # routing error (diagnostic state, not part of the model)


@dataclass(frozen=True)
class MessageSpec:
    """Immutable description of one message to inject.

    Parameters
    ----------
    mid:
        Unique id.
    src, dst:
        Endpoints (must differ).
    length:
        Total flits, header included.  Arbitrary (Assumption 1); must be >= 1.
    inject_time:
        Earliest cycle at which the header may request its first channel.
    tag:
        Free-form label used by experiments (e.g. ``"M1"``) and by the
        adversarial arbitration policy's preference list.
    """

    mid: int
    src: NodeId
    dst: NodeId
    length: int
    inject_time: int = 0
    tag: str = ""

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"message {self.mid}: src == dst == {self.src!r}")
        if self.length < 1:
            raise ValueError(f"message {self.mid}: length must be >= 1")
        if self.inject_time < 0:
            raise ValueError(f"message {self.mid}: inject_time must be >= 0")

    def display(self) -> str:
        return self.tag or f"m{self.mid}"


@dataclass
class MessageState:
    """Mutable runtime state of one message.

    ``acquired`` is the ordered list of channels currently held (tail first).
    The header flit, while in the network, is at the head of the queue of
    ``acquired[-1]``.  ``flits_injected`` counts flits that have entered the
    first channel; ``flits_consumed`` counts flits removed at the
    destination.
    """

    spec: MessageSpec
    status: MessageStatus = MessageStatus.PENDING
    acquired: list[Channel] = field(default_factory=list)
    flits_injected: int = 0
    flits_consumed: int = 0
    inject_cycle: int | None = None  # cycle the first channel was acquired
    arrival_cycle: int | None = None  # cycle the header was consumed
    done_cycle: int | None = None  # cycle the tail was consumed
    wait_cycles: int = 0  # cycles the header spent blocked (fairness metric)
    max_consecutive_wait: int = 0
    _current_wait: int = 0
    blocked_on: Channel | None = None  # channel requested but not granted
    #: adaptive routing only: the full candidate set the header is blocked
    #: on (OR semantics -- any one freeing unblocks the message)
    blocked_candidates: list[Channel] = field(default_factory=list)
    first_request_cycle: dict[int, int] = field(default_factory=dict)  # cid -> cycle (FIFO arb)

    @property
    def mid(self) -> int:
        return self.spec.mid

    @property
    def leading_channel(self) -> Channel | None:
        return self.acquired[-1] if self.acquired else None

    @property
    def in_network(self) -> bool:
        return self.status in (MessageStatus.ACTIVE, MessageStatus.DRAINING)

    @property
    def flits_in_network(self) -> int:
        return self.flits_injected - self.flits_consumed

    def latency(self) -> int | None:
        """Injection-to-last-flit-consumed latency, if delivered."""
        if self.done_cycle is None or self.inject_cycle is None:
            return None
        return self.done_cycle - self.spec.inject_time
