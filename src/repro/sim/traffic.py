"""Synthetic traffic generators for the substrate-validation benchmarks.

These produce :class:`~repro.sim.message.MessageSpec` lists for the classic
interconnection-network workloads: uniform random, transpose/permutation and
hotspot.  All generators are seeded for reproducibility.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence

from repro.sim.message import MessageSpec
from repro.topology.channels import NodeId
from repro.topology.network import Network


def _bernoulli_injections(
    net: Network,
    *,
    rate: float,
    cycles: int,
    length: int,
    choose_dest: Callable[[random.Random, NodeId, Sequence[NodeId]], NodeId],
    seed: int,
) -> list[MessageSpec]:
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be in [0, 1] (messages/node/cycle)")
    if cycles < 1 or length < 1:
        raise ValueError("cycles and length must be >= 1")
    rng = random.Random(seed)
    nodes = net.nodes
    specs: list[MessageSpec] = []
    for t in range(cycles):
        for node in nodes:
            if rng.random() < rate:
                dst = choose_dest(rng, node, nodes)
                if dst == node:
                    continue
                specs.append(
                    MessageSpec(
                        mid=len(specs), src=node, dst=dst, length=length, inject_time=t
                    )
                )
    return specs


def uniform_random_traffic(
    net: Network, *, rate: float, cycles: int, length: int = 4, seed: int = 0
) -> list[MessageSpec]:
    """Each node injects Bernoulli(rate) per cycle to a uniform random destination."""

    def choose(rng: random.Random, src: NodeId, nodes: Sequence[NodeId]) -> NodeId:
        while True:
            d = rng.choice(nodes)
            if d != src:
                return d

    return _bernoulli_injections(
        net, rate=rate, cycles=cycles, length=length, choose_dest=choose, seed=seed
    )


def transpose_traffic(
    net: Network, *, rate: float, cycles: int, length: int = 4, seed: int = 0
) -> list[MessageSpec]:
    """Matrix-transpose pattern for 2-D coordinate meshes: ``(x, y) -> (y, x)``."""

    def choose(rng: random.Random, src: NodeId, nodes: Sequence[NodeId]) -> NodeId:
        if not isinstance(src, tuple) or len(src) != 2:
            raise ValueError("transpose traffic requires 2-D coordinate node ids")
        return (src[1], src[0])

    return _bernoulli_injections(
        net, rate=rate, cycles=cycles, length=length, choose_dest=choose, seed=seed
    )


def hotspot_traffic(
    net: Network,
    *,
    rate: float,
    cycles: int,
    hotspot: NodeId,
    hotspot_fraction: float = 0.3,
    length: int = 4,
    seed: int = 0,
) -> list[MessageSpec]:
    """Uniform traffic with a fraction redirected to one hot node."""
    if not 0.0 <= hotspot_fraction <= 1.0:
        raise ValueError("hotspot_fraction must be in [0, 1]")

    def choose(rng: random.Random, src: NodeId, nodes: Sequence[NodeId]) -> NodeId:
        if rng.random() < hotspot_fraction and src != hotspot:
            return hotspot
        while True:
            d = rng.choice(nodes)
            if d != src:
                return d

    return _bernoulli_injections(
        net, rate=rate, cycles=cycles, length=length, choose_dest=choose, seed=seed
    )


def permutation_traffic(
    net: Network, *, length: int = 4, seed: int = 0, at: int = 0
) -> list[MessageSpec]:
    """One message per node under a random fixed-point-free permutation."""
    rng = random.Random(seed)
    nodes = net.nodes
    n = len(nodes)
    if n < 2:
        raise ValueError("need at least two nodes")
    # derangement by retry (expected ~e tries)
    while True:
        perm = list(range(n))
        rng.shuffle(perm)
        if all(perm[i] != i for i in range(n)):
            break
    return [
        MessageSpec(mid=i, src=nodes[i], dst=nodes[perm[i]], length=length, inject_time=at)
        for i in range(n)
    ]
