"""Synchronous cycle-driven wormhole simulation engine.

Model (paper Section 3, Assumptions 1--5):

* Every channel owns a flit queue of ``buffer_depth`` flits (default 1, the
  paper's worst case) with **atomic buffer allocation**: the queue belongs to
  at most one message at a time and is released only after that message's
  tail flit leaves it.
* Per cycle, each channel forwards at most one flit and accepts at most one
  flit (unit bandwidth); a message's flits therefore advance as a train
  behind the header.
* The header advances into the next channel chosen by the routing function
  when that channel is free; otherwise the message blocks in place, holding
  everything it occupies.
* Arrival consumes one flit per cycle (Assumption 2); consumption cannot be
  refused.
* Simultaneous requests for one channel go through a pluggable
  :class:`~repro.sim.arbitration.ArbitrationPolicy`.
* A :class:`~repro.sim.injection.StallSchedule` can freeze a message's
  in-network progress on chosen cycles -- the "router delay" adversary of
  the paper's Section 6.

The engine is deterministic given (specs, policy, stalls); all the
*nondeterminism* the paper's adversary controls is explored exhaustively by
:mod:`repro.analysis`, which shares these movement semantics (cross-checked
by tests in ``tests/test_cross_validation.py``).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable

from repro.obs import get as _obs_get
from repro.routing.base import INJECT, RoutingError, RoutingFunction
from repro.sim.arbitration import ArbitrationPolicy, FifoArbitration
from repro.sim.deadlock import DeadlockReport, detect_deadlock
from repro.sim.injection import StallSchedule
from repro.sim.message import MessageSpec, MessageState, MessageStatus
from repro.sim.stats import SimStats
from repro.topology.channels import Channel
from repro.topology.network import Network

TraceHook = Callable[[int, str, dict], None]


@dataclass
class SimConfig:
    """Engine knobs.

    ``buffer_depth``: flit capacity of every channel queue.
    ``switching``: the switching-technique continuum from the paper's
    introduction --

    * ``"wormhole"`` (default): the header advances as soon as the next
      channel is free; data flits trail behind.
    * ``"store_and_forward"``: the header advances only after the *entire*
      message has accumulated in the current channel queue (``buffer_depth``
      must therefore be >= the longest message).
    * ``"virtual_cut_through"``: wormhole advancement, but buffers are
      expected to be message-sized so a blocked message collapses into one
      queue; behaviourally this is wormhole with deep buffers, and the
      constructor only validates the intent.

    ``max_cycles``: hard stop (the run is then reported ``timed_out``).
    ``stop_on_deadlock``: halt as soon as a wait-for cycle appears.
    ``quiescence_window``: additionally declare deadlock when no flit has
    moved for this many cycles while undelivered messages remain and no
    pending injections can ever proceed; a belt-and-braces check that the
    wait-for analysis cannot miss anything.
    """

    buffer_depth: int = 1
    switching: str = "wormhole"
    max_cycles: int = 100_000
    stop_on_deadlock: bool = True
    quiescence_window: int = 64
    #: record per-channel busy cycles (adds O(held channels) work per cycle;
    #: off by default to keep the hot loop lean)
    track_utilization: bool = False

    def __post_init__(self) -> None:
        if self.buffer_depth < 1:
            raise ValueError("buffer_depth must be >= 1")
        if self.max_cycles < 1:
            raise ValueError("max_cycles must be >= 1")
        if self.switching not in ("wormhole", "store_and_forward", "virtual_cut_through"):
            raise ValueError(f"unknown switching technique {self.switching!r}")

    @classmethod
    def store_and_forward(cls, max_message_length: int, **kw) -> "SimConfig":
        """Store-and-forward with buffers sized for the longest message."""
        return cls(
            buffer_depth=max_message_length, switching="store_and_forward", **kw
        )

    @classmethod
    def virtual_cut_through(cls, max_message_length: int, **kw) -> "SimConfig":
        """Virtual cut-through: eager advance with message-sized buffers."""
        return cls(
            buffer_depth=max_message_length, switching="virtual_cut_through", **kw
        )


@dataclass
class SimResult:
    """Outcome of a run."""

    cycles: int
    delivered: int
    total: int
    deadlock: DeadlockReport | None
    timed_out: bool
    stats: SimStats
    messages: dict[int, MessageState] = field(repr=False, default_factory=dict)

    @property
    def deadlocked(self) -> bool:
        return self.deadlock is not None

    @property
    def completed(self) -> bool:
        return self.delivered == self.total and not self.deadlocked


class _ChannelQueue:
    """Runtime state of one channel: owner + flit FIFO."""

    __slots__ = ("channel", "owner", "queue", "sent", "received")

    def __init__(self, channel: Channel) -> None:
        self.channel = channel
        self.owner: int | None = None
        self.queue: deque[int] = deque()  # flit indices of the owning message
        self.sent = False  # one flit out per cycle
        self.received = False  # one flit in per cycle

    def reset_cycle(self) -> None:
        self.sent = False
        self.received = False


class Simulator:
    """The wormhole engine.  One instance simulates one scenario."""

    def __init__(
        self,
        network: Network,
        routing: RoutingFunction,
        specs: Iterable[MessageSpec],
        *,
        config: SimConfig | None = None,
        arbitration: ArbitrationPolicy | None = None,
        stalls: StallSchedule | None = None,
        trace: TraceHook | None = None,
    ) -> None:
        self.network = network
        self.routing = routing
        self.config = config or SimConfig()
        self.arbitration = arbitration or FifoArbitration()
        self.stalls = stalls
        self.trace = trace
        self.cycle = 0
        self.messages: dict[int, MessageState] = {}
        for spec in specs:
            if spec.mid in self.messages:
                raise ValueError(f"duplicate message id {spec.mid}")
            if (
                self.config.switching == "store_and_forward"
                and spec.length > self.config.buffer_depth
            ):
                raise ValueError(
                    f"store-and-forward needs buffer_depth >= message length "
                    f"({spec.length} > {self.config.buffer_depth}); use "
                    "SimConfig.store_and_forward(max_message_length)"
                )
            self.messages[spec.mid] = MessageState(spec=spec)
        self._queues: dict[int, _ChannelQueue] = {
            ch.cid: _ChannelQueue(ch) for ch in network.channels
        }
        self._moved_this_cycle = False
        self._idle_cycles = 0
        self.stats = SimStats()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def queue_of(self, channel: Channel) -> _ChannelQueue:
        return self._queues[channel.cid]

    def channel_owner(self, channel: Channel) -> int | None:
        return self._queues[channel.cid].owner

    def _emit(self, kind: str, **data: object) -> None:
        if self.trace is not None:
            self.trace(self.cycle, kind, data)

    def _stalled(self, m: MessageState) -> bool:
        return self.stalls is not None and self.stalls.stalled(m.mid, self.cycle)

    # ------------------------------------------------------------------
    # one synchronous cycle
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the network by one clock cycle.

        The cycle runs in *grant rounds* to model pipelined channel
        handoff: flits stream, so when a tail flit vacates a channel during
        a cycle, another header may enter that channel in the same cycle
        (this is how the paper's schedules use the shared channel --
        "immediately after M1 has traversed [cs], the second message starts
        traversing [cs]").  Each round computes requests against the
        current queue state, arbitrates, applies the granted moves and the
        resulting tail releases, then retries messages that were blocked;
        every message still moves at most one hop per cycle.
        """
        for q in self._queues.values():
            q.reset_cycle()
        self._moved_this_cycle = False

        acted: set[int] = set()  # header moved / stalled / lost this cycle
        first_round = True
        while True:
            moved_this_round = self._grant_round(acted, first_round=first_round)
            first_round = False
            # releases make freed channels visible to the next round
            for m in self.messages.values():
                if m.in_network:
                    self._release_tail(m)
            if not moved_this_round:
                break

        if self.config.track_utilization:
            busy = self.stats.channel_busy_cycles
            for q in self._queues.values():
                if q.queue:
                    busy[q.channel.cid] = busy.get(q.channel.cid, 0) + 1

        # fairness accounting (Assumption 5: starvation must be visible)
        for m in self.messages.values():
            if m.status is MessageStatus.ACTIVE and m.blocked_on is not None:
                m.wait_cycles += 1
                m._current_wait += 1
                if m._current_wait > m.max_consecutive_wait:
                    m.max_consecutive_wait = m._current_wait
            else:
                m._current_wait = 0

        if not self._moved_this_cycle:
            self._idle_cycles += 1
        else:
            self._idle_cycles = 0
        self.cycle += 1

    def _request_next(self, m: MessageState, in_channel, node, requests) -> None:
        """Compute the header's request (oblivious or adaptive) for a round.

        Oblivious functions have one next channel; adaptive functions
        (``is_adaptive``) offer a preference-ordered candidate list, and
        the header requests the first *free* candidate, blocking only when
        every candidate is held by another message (OR semantics).
        """
        try:
            if getattr(self.routing, "is_adaptive", False):
                cands = self.routing.candidates(in_channel, node, m.spec.dst)
            else:
                cands = [self.routing.route(in_channel, node, m.spec.dst)]
        except RoutingError:
            m.status = MessageStatus.FAILED
            self._emit("routing_failed", mid=m.mid)
            return
        usable = [c for c in cands if self._queues[c.cid].owner != m.mid]
        if not usable:
            m.status = MessageStatus.FAILED
            self._emit("self_block", mid=m.mid)
            return
        for c in usable:
            if self._queues[c.cid].owner is None:
                m.first_request_cycle.setdefault(c.cid, self.cycle)
                m.blocked_candidates = []
                requests.setdefault(c.cid, []).append(m)
                return
        # all candidates held by other messages
        m.first_request_cycle.setdefault(usable[0].cid, self.cycle)
        m.blocked_on = usable[0]
        m.blocked_candidates = list(usable)

    def _grant_round(self, acted: set[int], *, first_round: bool) -> bool:
        """One request/arbitrate/apply round; returns True if a header moved."""
        requests: dict[int, list[MessageState]] = {}  # cid -> requesters
        arrivals: list[MessageState] = []
        drains: list[MessageState] = []
        movers: list[tuple[MessageState, Channel]] = []

        for m in self.messages.values():
            if m.mid in acted:
                continue
            if m.status is MessageStatus.DRAINING:
                if first_round:
                    drains.append(m)
                    acted.add(m.mid)
                continue
            if m.status is MessageStatus.PENDING:
                if m.spec.inject_time > self.cycle or self._stalled(m):
                    continue
                self._request_next(m, INJECT, m.spec.src, requests)
                continue
            if m.status is not MessageStatus.ACTIVE:
                continue
            if self._stalled(m):
                acted.add(m.mid)
                self._emit("stalled", mid=m.mid)
                continue
            leading = m.acquired[-1]
            if self.config.switching == "store_and_forward":
                # the whole packet must accumulate in the current queue
                # before the header may move on (or be delivered)
                lq = self._queues[leading.cid]
                if len(lq.queue) < m.spec.length:
                    continue  # keep accumulating (cascade still runs)
            node = leading.dst
            if node == m.spec.dst:
                arrivals.append(m)
                acted.add(m.mid)
                continue
            self._request_next(m, leading, node, requests)

        for cid, reqs in requests.items():
            ch = self._queues[cid].channel
            winner = self.arbitration.choose(ch, reqs, self.cycle) if len(reqs) > 1 else reqs[0]
            if winner not in reqs:
                raise RuntimeError("arbitration returned a non-requester")
            for m in reqs:
                if m is winner:
                    m.blocked_on = None
                    movers.append((m, ch))
                    acted.add(m.mid)
                else:
                    # a loser cannot reach another channel this cycle
                    m.blocked_on = ch
                    acted.add(m.mid)
            if len(reqs) > 1:
                self.stats.arbitration_conflicts += 1

        for m in arrivals:
            self._apply_front_consume(m, arrival=True)
            self._cascade(m)
        for m in drains:
            self._apply_front_consume(m, arrival=False)
            self._cascade(m)
        for m, ch in movers:
            if m.status is MessageStatus.PENDING:
                self._apply_injection_acquire(m, ch)
            else:
                self._apply_header_advance(m, ch)
            self._cascade(m)

        # data flits of messages whose header did not move still advance
        # into any space the train has (only possible with buffer_depth > 1).
        if first_round and self.config.buffer_depth > 1:
            for m in self.messages.values():
                if (
                    m.status is MessageStatus.ACTIVE
                    and m.mid not in acted
                    and not self._stalled(m)
                ):
                    self._cascade(m)

        return bool(arrivals or drains or movers)

    # ------------------------------------------------------------------
    # move primitives
    # ------------------------------------------------------------------
    def _apply_injection_acquire(self, m: MessageState, ch: Channel) -> None:
        q = self._queues[ch.cid]
        assert q.owner is None
        q.owner = m.mid
        q.queue.append(0)  # header flit index 0
        q.received = True
        m.acquired.append(ch)
        m.flits_injected = 1
        m.status = MessageStatus.ACTIVE
        m.inject_cycle = self.cycle
        m.blocked_on = None
        m.blocked_candidates = []
        self._moved_this_cycle = True
        self.stats.flit_moves += 1
        self._emit("inject", mid=m.mid, channel=ch.cid)

    def _apply_header_advance(self, m: MessageState, ch: Channel) -> None:
        leading = m.acquired[-1]
        lq = self._queues[leading.cid]
        nq = self._queues[ch.cid]
        assert nq.owner is None and lq.queue and lq.queue[0] == 0
        flit = lq.queue.popleft()
        lq.sent = True
        nq.owner = m.mid
        nq.queue.append(flit)
        nq.received = True
        m.acquired.append(ch)
        m.blocked_on = None
        m.blocked_candidates = []
        self._moved_this_cycle = True
        self.stats.flit_moves += 1
        self._emit("advance", mid=m.mid, channel=ch.cid)

    def _apply_front_consume(self, m: MessageState, *, arrival: bool) -> None:
        leading = m.acquired[-1]
        lq = self._queues[leading.cid]
        assert lq.queue
        lq.queue.popleft()
        lq.sent = True
        m.flits_consumed += 1
        self._moved_this_cycle = True
        self.stats.flit_moves += 1
        if arrival:
            m.arrival_cycle = self.cycle
            m.status = MessageStatus.DRAINING
            self._emit("arrive", mid=m.mid)
        else:
            self._emit("consume", mid=m.mid)

    def _cascade(self, m: MessageState) -> None:
        """Slide the flit train forward one slot where space allows."""
        acq = m.acquired
        depth = self.config.buffer_depth
        for i in range(len(acq) - 1, 0, -1):
            dst_q = self._queues[acq[i].cid]
            src_q = self._queues[acq[i - 1].cid]
            if (
                not dst_q.received
                and len(dst_q.queue) < depth
                and src_q.queue
                and not src_q.sent
            ):
                dst_q.queue.append(src_q.queue.popleft())
                dst_q.received = True
                src_q.sent = True
                self._moved_this_cycle = True
                self.stats.flit_moves += 1
        # injection of the next flit into the first held channel
        if m.flits_injected < m.spec.length and acq:
            q0 = self._queues[acq[0].cid]
            if not q0.received and len(q0.queue) < depth:
                q0.queue.append(m.flits_injected)
                q0.received = True
                m.flits_injected += 1
                self._moved_this_cycle = True
                self.stats.flit_moves += 1

    def _release_tail(self, m: MessageState) -> None:
        """Release emptied channels whose tail flit has passed (Assumption 4)."""
        tail_passed_injection = m.flits_injected == m.spec.length
        while m.acquired:
            back = m.acquired[0]
            q = self._queues[back.cid]
            if q.queue or not tail_passed_injection:
                break
            q.owner = None
            m.acquired.pop(0)
            self._emit("release", mid=m.mid, channel=back.cid)
        if (
            m.status is MessageStatus.DRAINING
            and m.flits_consumed == m.spec.length
        ):
            assert not m.acquired
            m.status = MessageStatus.DELIVERED
            m.done_cycle = self.cycle
            self.stats.record_delivery(m)
            self._emit("deliver", mid=m.mid)

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def _all_done(self) -> bool:
        return all(
            m.status in (MessageStatus.DELIVERED, MessageStatus.FAILED)
            for m in self.messages.values()
        )

    def _quiesced(self) -> bool:
        """No movement for a window, and nothing can ever move again.

        Pending messages whose injection time is in the future could still
        move, so they exempt the run from quiescence-deadlock.
        """
        if self._idle_cycles < self.config.quiescence_window:
            return False
        for m in self.messages.values():
            # self.cycle is the *next* cycle to run, so an injection due at
            # exactly self.cycle can still move
            if m.status is MessageStatus.PENDING and m.spec.inject_time >= self.cycle:
                return False
        return True

    def run(self) -> SimResult:
        """Run to completion, deadlock, or the cycle limit."""
        tel = _obs_get()
        if tel is None:
            return self._run_impl()
        with tel.span(
            "sim.run",
            messages=len(self.messages),
            switching=self.config.switching,
        ) as sp:
            t0 = time.perf_counter()
            result = self._run_impl()
            dur = time.perf_counter() - t0
            sp.set(
                cycles=result.cycles,
                delivered=result.delivered,
                total=result.total,
                deadlocked=result.deadlocked,
                timed_out=result.timed_out,
                flit_moves=result.stats.flit_moves,
                arbitration_conflicts=result.stats.arbitration_conflicts,
            )
            if dur > 0 and result.cycles:
                sp.set(
                    cycles_per_sec=round(result.cycles / dur, 1),
                    conflicts_per_sec=round(
                        result.stats.arbitration_conflicts / dur, 1
                    ),
                )
            tel.incr("sim.runs")
            tel.incr("sim.cycles", result.cycles)
            tel.incr("sim.flit_moves", result.stats.flit_moves)
            tel.incr("sim.arbitration_conflicts", result.stats.arbitration_conflicts)
            tel.incr("sim.delivered", result.delivered)
        return result

    def _run_impl(self) -> SimResult:
        deadlock: DeadlockReport | None = None
        while self.cycle < self.config.max_cycles:
            if self._all_done():
                break
            self.step()
            report = detect_deadlock(self)
            if report is not None:
                deadlock = report
                if self.config.stop_on_deadlock:
                    break
            if self._quiesced():
                deadlock = DeadlockReport(
                    cycle=self.cycle,
                    message_ids=tuple(
                        m.mid for m in self.messages.values() if m.in_network
                    ),
                    kind="quiescence",
                )
                break
        timed_out = self.cycle >= self.config.max_cycles and not self._all_done()
        delivered = sum(
            1 for m in self.messages.values() if m.status is MessageStatus.DELIVERED
        )
        self.stats.cycles = self.cycle
        return SimResult(
            cycles=self.cycle,
            delivered=delivered,
            total=len(self.messages),
            deadlock=deadlock,
            timed_out=timed_out,
            stats=self.stats,
            messages=self.messages,
        )
