"""Simulation statistics.

Latency/throughput collection for the traffic benchmarks.  Latencies
accumulate into the shared bucketed :class:`~repro.obs.core.Histogram`
instead of an unbounded per-delivery list -- a long traffic run used to
hold every latency sample in memory just to compute one p99 at the end.
The histogram is O(1) memory, mergeable across runs, and its bucketed
p50/p95/p99 are upper bounds within one power-of-two bucket, which is
ample resolution for cycle-count latencies; count/sum/min/max (and
therefore the mean) stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs.core import Histogram

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.message import MessageState


@dataclass
class SimStats:
    """Counters accumulated during a run."""

    cycles: int = 0
    flit_moves: int = 0
    arbitration_conflicts: int = 0
    #: bucketed latency distribution (replaces the old unbounded list)
    latencies: Histogram = field(default_factory=Histogram)
    delivered_flits: int = 0
    #: cid -> cycles the channel queue was non-empty (only populated when
    #: SimConfig.track_utilization is set)
    channel_busy_cycles: dict[int, int] = field(default_factory=dict)

    def record_delivery(self, m: "MessageState") -> None:
        lat = m.latency()
        if lat is not None:
            self.latencies.observe(lat)
        self.delivered_flits += m.spec.length

    # ------------------------------------------------------------------
    @property
    def delivered_messages(self) -> int:
        return self.latencies.count

    def mean_latency(self) -> float:
        return self.latencies.mean()  # exact: tracked sum / count

    def p50_latency(self) -> float:
        return self.latencies.quantile(0.5)

    def p95_latency(self) -> float:
        return self.latencies.quantile(0.95)

    def p99_latency(self) -> float:
        return self.latencies.quantile(0.99)

    def max_latency(self) -> int:
        return int(self.latencies.max) if self.latencies.count else 0

    def throughput_flits_per_cycle(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.delivered_flits / self.cycles

    def channel_utilization(self, cid: int) -> float:
        """Fraction of cycles channel ``cid`` was busy (0.0 when untracked)."""
        if self.cycles == 0:
            return 0.0
        return self.channel_busy_cycles.get(cid, 0) / self.cycles

    def hottest_channels(self, k: int = 5) -> list[tuple[int, float]]:
        """The ``k`` busiest channels as ``(cid, utilization)`` pairs."""
        ranked = sorted(self.channel_busy_cycles.items(), key=lambda kv: -kv[1])
        return [(cid, self.channel_utilization(cid)) for cid, _ in ranked[:k]]

    def summary(self) -> dict[str, float]:
        return {
            "cycles": float(self.cycles),
            "delivered_messages": float(self.delivered_messages),
            "mean_latency": self.mean_latency(),
            "p50_latency": self.p50_latency(),
            "p95_latency": self.p95_latency(),
            "p99_latency": self.p99_latency(),
            "throughput_flits_per_cycle": self.throughput_flits_per_cycle(),
            "arbitration_conflicts": float(self.arbitration_conflicts),
        }
