"""Simulation statistics.

Latency/throughput collection for the traffic benchmarks.  Aggregation uses
NumPy only at summary time -- the per-event path is plain attribute updates,
which profiling shows dominates; vectorizing the *summary* is where the
guide's advice pays off, not the hot loop bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.message import MessageState


@dataclass
class SimStats:
    """Counters accumulated during a run."""

    cycles: int = 0
    flit_moves: int = 0
    arbitration_conflicts: int = 0
    latencies: list[int] = field(default_factory=list)
    delivered_flits: int = 0
    #: cid -> cycles the channel queue was non-empty (only populated when
    #: SimConfig.track_utilization is set)
    channel_busy_cycles: dict[int, int] = field(default_factory=dict)

    def record_delivery(self, m: "MessageState") -> None:
        lat = m.latency()
        if lat is not None:
            self.latencies.append(lat)
        self.delivered_flits += m.spec.length

    # ------------------------------------------------------------------
    @property
    def delivered_messages(self) -> int:
        return len(self.latencies)

    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else float("nan")

    def p99_latency(self) -> float:
        return float(np.percentile(self.latencies, 99)) if self.latencies else float("nan")

    def max_latency(self) -> int:
        return max(self.latencies) if self.latencies else 0

    def throughput_flits_per_cycle(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.delivered_flits / self.cycles

    def channel_utilization(self, cid: int) -> float:
        """Fraction of cycles channel ``cid`` was busy (0.0 when untracked)."""
        if self.cycles == 0:
            return 0.0
        return self.channel_busy_cycles.get(cid, 0) / self.cycles

    def hottest_channels(self, k: int = 5) -> list[tuple[int, float]]:
        """The ``k`` busiest channels as ``(cid, utilization)`` pairs."""
        ranked = sorted(self.channel_busy_cycles.items(), key=lambda kv: -kv[1])
        return [(cid, self.channel_utilization(cid)) for cid, _ in ranked[:k]]

    def summary(self) -> dict[str, float]:
        return {
            "cycles": float(self.cycles),
            "delivered_messages": float(self.delivered_messages),
            "mean_latency": self.mean_latency(),
            "p99_latency": self.p99_latency(),
            "throughput_flits_per_cycle": self.throughput_flits_per_cycle(),
            "arbitration_conflicts": float(self.arbitration_conflicts),
        }
